# Empty dependencies file for op_crdts_test.
# This may be replaced when dependencies are built.
