file(REMOVE_RECURSE
  "CMakeFiles/op_crdts_test.dir/op_crdts_test.cc.o"
  "CMakeFiles/op_crdts_test.dir/op_crdts_test.cc.o.d"
  "op_crdts_test"
  "op_crdts_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/op_crdts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
