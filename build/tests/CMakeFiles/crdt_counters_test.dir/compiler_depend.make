# Empty compiler generated dependencies file for crdt_counters_test.
# This may be replaced when dependencies are built.
