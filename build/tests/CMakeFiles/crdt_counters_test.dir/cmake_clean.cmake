file(REMOVE_RECURSE
  "CMakeFiles/crdt_counters_test.dir/crdt_counters_test.cc.o"
  "CMakeFiles/crdt_counters_test.dir/crdt_counters_test.cc.o.d"
  "crdt_counters_test"
  "crdt_counters_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crdt_counters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
