file(REMOVE_RECURSE
  "CMakeFiles/causal_gt_test.dir/causal_gt_test.cc.o"
  "CMakeFiles/causal_gt_test.dir/causal_gt_test.cc.o.d"
  "causal_gt_test"
  "causal_gt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causal_gt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
