# Empty compiler generated dependencies file for causal_gt_test.
# This may be replaced when dependencies are built.
