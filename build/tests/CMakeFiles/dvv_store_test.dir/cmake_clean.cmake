file(REMOVE_RECURSE
  "CMakeFiles/dvv_store_test.dir/dvv_store_test.cc.o"
  "CMakeFiles/dvv_store_test.dir/dvv_store_test.cc.o.d"
  "dvv_store_test"
  "dvv_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvv_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
