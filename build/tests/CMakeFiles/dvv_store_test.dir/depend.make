# Empty dependencies file for dvv_store_test.
# This may be replaced when dependencies are built.
