file(REMOVE_RECURSE
  "CMakeFiles/versioned_store_test.dir/versioned_store_test.cc.o"
  "CMakeFiles/versioned_store_test.dir/versioned_store_test.cc.o.d"
  "versioned_store_test"
  "versioned_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/versioned_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
