# Empty compiler generated dependencies file for versioned_store_test.
# This may be replaced when dependencies are built.
