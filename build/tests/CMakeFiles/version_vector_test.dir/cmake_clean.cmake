file(REMOVE_RECURSE
  "CMakeFiles/version_vector_test.dir/version_vector_test.cc.o"
  "CMakeFiles/version_vector_test.dir/version_vector_test.cc.o.d"
  "version_vector_test"
  "version_vector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/version_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
