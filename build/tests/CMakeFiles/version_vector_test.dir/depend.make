# Empty dependencies file for version_vector_test.
# This may be replaced when dependencies are built.
