file(REMOVE_RECURSE
  "CMakeFiles/quorum_store_test.dir/quorum_store_test.cc.o"
  "CMakeFiles/quorum_store_test.dir/quorum_store_test.cc.o.d"
  "quorum_store_test"
  "quorum_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quorum_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
