file(REMOVE_RECURSE
  "CMakeFiles/redblue_test.dir/redblue_test.cc.o"
  "CMakeFiles/redblue_test.dir/redblue_test.cc.o.d"
  "redblue_test"
  "redblue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redblue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
