# Empty compiler generated dependencies file for redblue_test.
# This may be replaced when dependencies are built.
