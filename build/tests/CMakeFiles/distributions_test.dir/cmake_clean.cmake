file(REMOVE_RECURSE
  "CMakeFiles/distributions_test.dir/distributions_test.cc.o"
  "CMakeFiles/distributions_test.dir/distributions_test.cc.o.d"
  "distributions_test"
  "distributions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
