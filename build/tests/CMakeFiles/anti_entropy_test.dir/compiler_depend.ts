# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for anti_entropy_test.
