file(REMOVE_RECURSE
  "CMakeFiles/crdt_registers_test.dir/crdt_registers_test.cc.o"
  "CMakeFiles/crdt_registers_test.dir/crdt_registers_test.cc.o.d"
  "crdt_registers_test"
  "crdt_registers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crdt_registers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
