file(REMOVE_RECURSE
  "CMakeFiles/causal_store_test.dir/causal_store_test.cc.o"
  "CMakeFiles/causal_store_test.dir/causal_store_test.cc.o.d"
  "causal_store_test"
  "causal_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causal_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
