file(REMOVE_RECURSE
  "CMakeFiles/rga_test.dir/rga_test.cc.o"
  "CMakeFiles/rga_test.dir/rga_test.cc.o.d"
  "rga_test"
  "rga_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rga_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
