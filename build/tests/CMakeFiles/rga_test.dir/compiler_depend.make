# Empty compiler generated dependencies file for rga_test.
# This may be replaced when dependencies are built.
