# Empty dependencies file for crdt_sets_test.
# This may be replaced when dependencies are built.
