file(REMOVE_RECURSE
  "CMakeFiles/crdt_sets_test.dir/crdt_sets_test.cc.o"
  "CMakeFiles/crdt_sets_test.dir/crdt_sets_test.cc.o.d"
  "crdt_sets_test"
  "crdt_sets_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crdt_sets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
