file(REMOVE_RECURSE
  "CMakeFiles/hash_stats_test.dir/hash_stats_test.cc.o"
  "CMakeFiles/hash_stats_test.dir/hash_stats_test.cc.o.d"
  "hash_stats_test"
  "hash_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
