file(REMOVE_RECURSE
  "CMakeFiles/delta_orset_test.dir/delta_orset_test.cc.o"
  "CMakeFiles/delta_orset_test.dir/delta_orset_test.cc.o.d"
  "delta_orset_test"
  "delta_orset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_orset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
