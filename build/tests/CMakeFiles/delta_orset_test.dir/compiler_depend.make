# Empty compiler generated dependencies file for delta_orset_test.
# This may be replaced when dependencies are built.
