# Empty compiler generated dependencies file for geo_broadcast_test.
# This may be replaced when dependencies are built.
