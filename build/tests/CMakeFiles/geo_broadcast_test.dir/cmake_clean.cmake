file(REMOVE_RECURSE
  "CMakeFiles/geo_broadcast_test.dir/geo_broadcast_test.cc.o"
  "CMakeFiles/geo_broadcast_test.dir/geo_broadcast_test.cc.o.d"
  "geo_broadcast_test"
  "geo_broadcast_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_broadcast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
