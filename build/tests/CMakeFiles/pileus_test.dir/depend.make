# Empty dependencies file for pileus_test.
# This may be replaced when dependencies are built.
