file(REMOVE_RECURSE
  "CMakeFiles/pileus_test.dir/pileus_test.cc.o"
  "CMakeFiles/pileus_test.dir/pileus_test.cc.o.d"
  "pileus_test"
  "pileus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pileus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
