file(REMOVE_RECURSE
  "CMakeFiles/replica_storage_test.dir/replica_storage_test.cc.o"
  "CMakeFiles/replica_storage_test.dir/replica_storage_test.cc.o.d"
  "replica_storage_test"
  "replica_storage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replica_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
