# Empty dependencies file for replica_storage_test.
# This may be replaced when dependencies are built.
