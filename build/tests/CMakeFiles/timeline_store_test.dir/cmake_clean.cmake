file(REMOVE_RECURSE
  "CMakeFiles/timeline_store_test.dir/timeline_store_test.cc.o"
  "CMakeFiles/timeline_store_test.dir/timeline_store_test.cc.o.d"
  "timeline_store_test"
  "timeline_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeline_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
