# Empty dependencies file for timeline_store_test.
# This may be replaced when dependencies are built.
