file(REMOVE_RECURSE
  "CMakeFiles/wal_merkle_test.dir/wal_merkle_test.cc.o"
  "CMakeFiles/wal_merkle_test.dir/wal_merkle_test.cc.o.d"
  "wal_merkle_test"
  "wal_merkle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wal_merkle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
