# Empty compiler generated dependencies file for wal_merkle_test.
# This may be replaced when dependencies are built.
