file(REMOVE_RECURSE
  "CMakeFiles/replicated_store_test.dir/replicated_store_test.cc.o"
  "CMakeFiles/replicated_store_test.dir/replicated_store_test.cc.o.d"
  "replicated_store_test"
  "replicated_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replicated_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
