file(REMOVE_RECURSE
  "CMakeFiles/pbs_test.dir/pbs_test.cc.o"
  "CMakeFiles/pbs_test.dir/pbs_test.cc.o.d"
  "pbs_test"
  "pbs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
