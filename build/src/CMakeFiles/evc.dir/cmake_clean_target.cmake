file(REMOVE_RECURSE
  "libevc.a"
)
