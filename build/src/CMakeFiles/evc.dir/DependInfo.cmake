
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/causal/causal_store.cc" "src/CMakeFiles/evc.dir/causal/causal_store.cc.o" "gcc" "src/CMakeFiles/evc.dir/causal/causal_store.cc.o.d"
  "/root/repo/src/clock/version_vector.cc" "src/CMakeFiles/evc.dir/clock/version_vector.cc.o" "gcc" "src/CMakeFiles/evc.dir/clock/version_vector.cc.o.d"
  "/root/repo/src/common/distributions.cc" "src/CMakeFiles/evc.dir/common/distributions.cc.o" "gcc" "src/CMakeFiles/evc.dir/common/distributions.cc.o.d"
  "/root/repo/src/common/hash.cc" "src/CMakeFiles/evc.dir/common/hash.cc.o" "gcc" "src/CMakeFiles/evc.dir/common/hash.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/evc.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/evc.dir/common/logging.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/evc.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/evc.dir/common/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/evc.dir/common/status.cc.o" "gcc" "src/CMakeFiles/evc.dir/common/status.cc.o.d"
  "/root/repo/src/consensus/paxos.cc" "src/CMakeFiles/evc.dir/consensus/paxos.cc.o" "gcc" "src/CMakeFiles/evc.dir/consensus/paxos.cc.o.d"
  "/root/repo/src/core/replicated_store.cc" "src/CMakeFiles/evc.dir/core/replicated_store.cc.o" "gcc" "src/CMakeFiles/evc.dir/core/replicated_store.cc.o.d"
  "/root/repo/src/crdt/delta_orset.cc" "src/CMakeFiles/evc.dir/crdt/delta_orset.cc.o" "gcc" "src/CMakeFiles/evc.dir/crdt/delta_orset.cc.o.d"
  "/root/repo/src/crdt/gcounter.cc" "src/CMakeFiles/evc.dir/crdt/gcounter.cc.o" "gcc" "src/CMakeFiles/evc.dir/crdt/gcounter.cc.o.d"
  "/root/repo/src/crdt/geo_broadcast.cc" "src/CMakeFiles/evc.dir/crdt/geo_broadcast.cc.o" "gcc" "src/CMakeFiles/evc.dir/crdt/geo_broadcast.cc.o.d"
  "/root/repo/src/crdt/orset.cc" "src/CMakeFiles/evc.dir/crdt/orset.cc.o" "gcc" "src/CMakeFiles/evc.dir/crdt/orset.cc.o.d"
  "/root/repo/src/crdt/registers.cc" "src/CMakeFiles/evc.dir/crdt/registers.cc.o" "gcc" "src/CMakeFiles/evc.dir/crdt/registers.cc.o.d"
  "/root/repo/src/crdt/rga.cc" "src/CMakeFiles/evc.dir/crdt/rga.cc.o" "gcc" "src/CMakeFiles/evc.dir/crdt/rga.cc.o.d"
  "/root/repo/src/replication/anti_entropy.cc" "src/CMakeFiles/evc.dir/replication/anti_entropy.cc.o" "gcc" "src/CMakeFiles/evc.dir/replication/anti_entropy.cc.o.d"
  "/root/repo/src/replication/hash_ring.cc" "src/CMakeFiles/evc.dir/replication/hash_ring.cc.o" "gcc" "src/CMakeFiles/evc.dir/replication/hash_ring.cc.o.d"
  "/root/repo/src/replication/quorum_store.cc" "src/CMakeFiles/evc.dir/replication/quorum_store.cc.o" "gcc" "src/CMakeFiles/evc.dir/replication/quorum_store.cc.o.d"
  "/root/repo/src/replication/timeline_store.cc" "src/CMakeFiles/evc.dir/replication/timeline_store.cc.o" "gcc" "src/CMakeFiles/evc.dir/replication/timeline_store.cc.o.d"
  "/root/repo/src/session/session.cc" "src/CMakeFiles/evc.dir/session/session.cc.o" "gcc" "src/CMakeFiles/evc.dir/session/session.cc.o.d"
  "/root/repo/src/sim/latency.cc" "src/CMakeFiles/evc.dir/sim/latency.cc.o" "gcc" "src/CMakeFiles/evc.dir/sim/latency.cc.o.d"
  "/root/repo/src/sim/network.cc" "src/CMakeFiles/evc.dir/sim/network.cc.o" "gcc" "src/CMakeFiles/evc.dir/sim/network.cc.o.d"
  "/root/repo/src/sim/rpc.cc" "src/CMakeFiles/evc.dir/sim/rpc.cc.o" "gcc" "src/CMakeFiles/evc.dir/sim/rpc.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/evc.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/evc.dir/sim/simulator.cc.o.d"
  "/root/repo/src/sla/pileus.cc" "src/CMakeFiles/evc.dir/sla/pileus.cc.o" "gcc" "src/CMakeFiles/evc.dir/sla/pileus.cc.o.d"
  "/root/repo/src/stale/pbs.cc" "src/CMakeFiles/evc.dir/stale/pbs.cc.o" "gcc" "src/CMakeFiles/evc.dir/stale/pbs.cc.o.d"
  "/root/repo/src/storage/dvv_store.cc" "src/CMakeFiles/evc.dir/storage/dvv_store.cc.o" "gcc" "src/CMakeFiles/evc.dir/storage/dvv_store.cc.o.d"
  "/root/repo/src/storage/merkle.cc" "src/CMakeFiles/evc.dir/storage/merkle.cc.o" "gcc" "src/CMakeFiles/evc.dir/storage/merkle.cc.o.d"
  "/root/repo/src/storage/replica_storage.cc" "src/CMakeFiles/evc.dir/storage/replica_storage.cc.o" "gcc" "src/CMakeFiles/evc.dir/storage/replica_storage.cc.o.d"
  "/root/repo/src/storage/versioned_store.cc" "src/CMakeFiles/evc.dir/storage/versioned_store.cc.o" "gcc" "src/CMakeFiles/evc.dir/storage/versioned_store.cc.o.d"
  "/root/repo/src/storage/wal.cc" "src/CMakeFiles/evc.dir/storage/wal.cc.o" "gcc" "src/CMakeFiles/evc.dir/storage/wal.cc.o.d"
  "/root/repo/src/txn/escrow.cc" "src/CMakeFiles/evc.dir/txn/escrow.cc.o" "gcc" "src/CMakeFiles/evc.dir/txn/escrow.cc.o.d"
  "/root/repo/src/txn/redblue.cc" "src/CMakeFiles/evc.dir/txn/redblue.cc.o" "gcc" "src/CMakeFiles/evc.dir/txn/redblue.cc.o.d"
  "/root/repo/src/verify/linearizability.cc" "src/CMakeFiles/evc.dir/verify/linearizability.cc.o" "gcc" "src/CMakeFiles/evc.dir/verify/linearizability.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/CMakeFiles/evc.dir/workload/workload.cc.o" "gcc" "src/CMakeFiles/evc.dir/workload/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
