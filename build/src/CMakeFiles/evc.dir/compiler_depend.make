# Empty compiler generated dependencies file for evc.
# This may be replaced when dependencies are built.
