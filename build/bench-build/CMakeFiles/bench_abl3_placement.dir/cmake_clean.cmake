file(REMOVE_RECURSE
  "../bench/bench_abl3_placement"
  "../bench/bench_abl3_placement.pdb"
  "CMakeFiles/bench_abl3_placement.dir/bench_abl3_placement.cc.o"
  "CMakeFiles/bench_abl3_placement.dir/bench_abl3_placement.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl3_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
