# Empty dependencies file for bench_abl3_placement.
# This may be replaced when dependencies are built.
