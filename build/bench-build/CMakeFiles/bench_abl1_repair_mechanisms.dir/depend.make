# Empty dependencies file for bench_abl1_repair_mechanisms.
# This may be replaced when dependencies are built.
