# Empty compiler generated dependencies file for bench_tab4_quorum_matrix.
# This may be replaced when dependencies are built.
