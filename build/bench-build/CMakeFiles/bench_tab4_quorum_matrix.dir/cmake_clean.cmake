file(REMOVE_RECURSE
  "../bench/bench_tab4_quorum_matrix"
  "../bench/bench_tab4_quorum_matrix.pdb"
  "CMakeFiles/bench_tab4_quorum_matrix.dir/bench_tab4_quorum_matrix.cc.o"
  "CMakeFiles/bench_tab4_quorum_matrix.dir/bench_tab4_quorum_matrix.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab4_quorum_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
