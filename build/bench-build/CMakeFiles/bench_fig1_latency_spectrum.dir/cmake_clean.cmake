file(REMOVE_RECURSE
  "../bench/bench_fig1_latency_spectrum"
  "../bench/bench_fig1_latency_spectrum.pdb"
  "CMakeFiles/bench_fig1_latency_spectrum.dir/bench_fig1_latency_spectrum.cc.o"
  "CMakeFiles/bench_fig1_latency_spectrum.dir/bench_fig1_latency_spectrum.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_latency_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
