# Empty dependencies file for bench_fig1_latency_spectrum.
# This may be replaced when dependencies are built.
