# Empty compiler generated dependencies file for bench_fig7_partition_cap.
# This may be replaced when dependencies are built.
