file(REMOVE_RECURSE
  "../bench/bench_fig7_partition_cap"
  "../bench/bench_fig7_partition_cap.pdb"
  "CMakeFiles/bench_fig7_partition_cap.dir/bench_fig7_partition_cap.cc.o"
  "CMakeFiles/bench_fig7_partition_cap.dir/bench_fig7_partition_cap.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_partition_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
