file(REMOVE_RECURSE
  "../bench/bench_tab2_escrow"
  "../bench/bench_tab2_escrow.pdb"
  "CMakeFiles/bench_tab2_escrow.dir/bench_tab2_escrow.cc.o"
  "CMakeFiles/bench_tab2_escrow.dir/bench_tab2_escrow.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_escrow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
