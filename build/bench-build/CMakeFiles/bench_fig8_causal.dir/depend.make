# Empty dependencies file for bench_fig8_causal.
# This may be replaced when dependencies are built.
