file(REMOVE_RECURSE
  "../bench/bench_fig8_causal"
  "../bench/bench_fig8_causal.pdb"
  "CMakeFiles/bench_fig8_causal.dir/bench_fig8_causal.cc.o"
  "CMakeFiles/bench_fig8_causal.dir/bench_fig8_causal.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_causal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
