file(REMOVE_RECURSE
  "../bench/bench_abl2_merkle_gossip"
  "../bench/bench_abl2_merkle_gossip.pdb"
  "CMakeFiles/bench_abl2_merkle_gossip.dir/bench_abl2_merkle_gossip.cc.o"
  "CMakeFiles/bench_abl2_merkle_gossip.dir/bench_abl2_merkle_gossip.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl2_merkle_gossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
