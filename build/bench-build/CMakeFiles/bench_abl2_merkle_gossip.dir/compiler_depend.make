# Empty compiler generated dependencies file for bench_abl2_merkle_gossip.
# This may be replaced when dependencies are built.
