# Empty dependencies file for bench_tab1_redblue.
# This may be replaced when dependencies are built.
