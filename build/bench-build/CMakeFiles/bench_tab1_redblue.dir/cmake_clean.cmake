file(REMOVE_RECURSE
  "../bench/bench_tab1_redblue"
  "../bench/bench_tab1_redblue.pdb"
  "CMakeFiles/bench_tab1_redblue.dir/bench_tab1_redblue.cc.o"
  "CMakeFiles/bench_tab1_redblue.dir/bench_tab1_redblue.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_redblue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
