# Empty compiler generated dependencies file for bench_fig2_pbs_staleness.
# This may be replaced when dependencies are built.
