file(REMOVE_RECURSE
  "../bench/bench_tab3_sla_utility"
  "../bench/bench_tab3_sla_utility.pdb"
  "CMakeFiles/bench_tab3_sla_utility.dir/bench_tab3_sla_utility.cc.o"
  "CMakeFiles/bench_tab3_sla_utility.dir/bench_tab3_sla_utility.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_sla_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
