# Empty compiler generated dependencies file for bench_tab3_sla_utility.
# This may be replaced when dependencies are built.
