# Empty dependencies file for bench_fig5_lost_updates.
# This may be replaced when dependencies are built.
