file(REMOVE_RECURSE
  "../bench/bench_fig4_session_guarantees"
  "../bench/bench_fig4_session_guarantees.pdb"
  "CMakeFiles/bench_fig4_session_guarantees.dir/bench_fig4_session_guarantees.cc.o"
  "CMakeFiles/bench_fig4_session_guarantees.dir/bench_fig4_session_guarantees.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_session_guarantees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
