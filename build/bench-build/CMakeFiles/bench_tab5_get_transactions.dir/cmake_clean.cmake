file(REMOVE_RECURSE
  "../bench/bench_tab5_get_transactions"
  "../bench/bench_tab5_get_transactions.pdb"
  "CMakeFiles/bench_tab5_get_transactions.dir/bench_tab5_get_transactions.cc.o"
  "CMakeFiles/bench_tab5_get_transactions.dir/bench_tab5_get_transactions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab5_get_transactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
