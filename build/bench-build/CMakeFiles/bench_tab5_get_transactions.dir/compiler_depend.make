# Empty compiler generated dependencies file for bench_tab5_get_transactions.
# This may be replaced when dependencies are built.
