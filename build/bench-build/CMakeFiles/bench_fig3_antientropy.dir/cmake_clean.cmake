file(REMOVE_RECURSE
  "../bench/bench_fig3_antientropy"
  "../bench/bench_fig3_antientropy.pdb"
  "CMakeFiles/bench_fig3_antientropy.dir/bench_fig3_antientropy.cc.o"
  "CMakeFiles/bench_fig3_antientropy.dir/bench_fig3_antientropy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_antientropy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
