file(REMOVE_RECURSE
  "../bench/bench_fig6_crdt_costs"
  "../bench/bench_fig6_crdt_costs.pdb"
  "CMakeFiles/bench_fig6_crdt_costs.dir/bench_fig6_crdt_costs.cc.o"
  "CMakeFiles/bench_fig6_crdt_costs.dir/bench_fig6_crdt_costs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_crdt_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
