# Empty dependencies file for bench_fig6_crdt_costs.
# This may be replaced when dependencies are built.
