file(REMOVE_RECURSE
  "CMakeFiles/geo_bank.dir/geo_bank.cpp.o"
  "CMakeFiles/geo_bank.dir/geo_bank.cpp.o.d"
  "geo_bank"
  "geo_bank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_bank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
