# Empty compiler generated dependencies file for geo_bank.
# This may be replaced when dependencies are built.
