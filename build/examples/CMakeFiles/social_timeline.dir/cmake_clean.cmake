file(REMOVE_RECURSE
  "CMakeFiles/social_timeline.dir/social_timeline.cpp.o"
  "CMakeFiles/social_timeline.dir/social_timeline.cpp.o.d"
  "social_timeline"
  "social_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
