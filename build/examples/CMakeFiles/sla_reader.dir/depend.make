# Empty dependencies file for sla_reader.
# This may be replaced when dependencies are built.
