file(REMOVE_RECURSE
  "CMakeFiles/sla_reader.dir/sla_reader.cpp.o"
  "CMakeFiles/sla_reader.dir/sla_reader.cpp.o.d"
  "sla_reader"
  "sla_reader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sla_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
