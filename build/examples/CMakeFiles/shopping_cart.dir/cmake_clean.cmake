file(REMOVE_RECURSE
  "CMakeFiles/shopping_cart.dir/shopping_cart.cpp.o"
  "CMakeFiles/shopping_cart.dir/shopping_cart.cpp.o.d"
  "shopping_cart"
  "shopping_cart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shopping_cart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
