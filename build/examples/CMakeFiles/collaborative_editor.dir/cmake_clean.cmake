file(REMOVE_RECURSE
  "CMakeFiles/collaborative_editor.dir/collaborative_editor.cpp.o"
  "CMakeFiles/collaborative_editor.dir/collaborative_editor.cpp.o.d"
  "collaborative_editor"
  "collaborative_editor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collaborative_editor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
