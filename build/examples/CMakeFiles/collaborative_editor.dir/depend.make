# Empty dependencies file for collaborative_editor.
# This may be replaced when dependencies are built.
