// Session-guarantee checker over recorded per-session histories.
//
// Detects violations of the four Bayou session guarantees (Terry et al.,
// PDIS '94) from a black-box client history — no access to server state:
//   * RYW — a session's read must reflect its own earlier acked writes;
//   * MR  — a session's read must reflect every write an earlier read of
//           the session observed (reads never go backwards);
//   * MW  — observing a session's write implies that session's earlier
//           writes (any key) are also visible;
//   * WFR — observing a write implies the writes its session had *read*
//           before issuing it are also visible.
//
// Method: every write carries a value unique across the whole history (the
// recorders enforce this), so an observed value identifies the write that
// produced it. Each guarantee becomes a set of "must reflect w" obligations
// attached to future reads. A read *fails to reflect* w only when the
// verdict is provable from real time: every value it returned was produced
// by a write that wholly precedes w (response < w.invoke), or it returned
// not-found while w is a tracked write (these workloads never delete). Reads
// of unknown/concurrent values are conservatively accepted, and writes that
// were never acknowledged are given an open-ended interval — they may take
// effect any time, so they can never prove a violation. Every reported
// violation is therefore a real anomaly; the checker is sound, not complete.

#ifndef EVC_VERIFY_SESSION_GUARANTEES_H_
#define EVC_VERIFY_SESSION_GUARANTEES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace evc::verify {

/// One recorded client operation. Histories interleave sessions; within a
/// session, ops must appear in completion order (sessions are sequential —
/// they issue the next op only after the previous one returned).
struct RecordedOp {
  enum class Kind { kWrite, kRead };
  Kind kind = Kind::kRead;
  int session = 0;
  std::string key;
  /// kWrite: the (history-unique) value written.
  std::string value;
  /// kRead: every value returned (sibling sets; empty means not-found).
  std::vector<std::string> observed;
  /// kRead: served from a client-side cache (edge-cache tier) rather than a
  /// replica. Checked under exactly the same obligations — the lease
  /// protocol's claim is that cached serves are indistinguishable — and
  /// violations on such reads are additionally tallied per-tier.
  bool from_cache = false;
  /// kWrite: acknowledged. kRead: completed successfully (failed reads are
  /// ignored by the checker).
  bool acked = false;
  /// Real-time interval in any monotonic unit.
  int64_t invoke = 0;
  int64_t response = 0;
};

/// Builders for readable test histories.
RecordedOp RecWrite(int session, std::string key, std::string value,
                    int64_t invoke, int64_t response, bool acked = true);
RecordedOp RecRead(int session, std::string key,
                   std::vector<std::string> observed, int64_t invoke,
                   int64_t response, bool from_cache = false);

struct SessionCheckOptions {
  bool check_ryw = true;
  bool check_mr = true;
  bool check_mw = true;
  bool check_wfr = true;
};

struct SessionViolation {
  enum class Kind { kRyw, kMr, kMw, kWfr };
  Kind kind;
  int session = 0;        ///< the reading session that saw the anomaly
  size_t op_index = 0;    ///< index of the violating read in the history
  std::string key;
  std::string expected;   ///< the write value the read failed to reflect
  std::string ToString() const;
};

struct SessionCheckResult {
  size_t ryw_violations = 0;
  size_t mr_violations = 0;
  size_t mw_violations = 0;
  size_t wfr_violations = 0;
  std::vector<SessionViolation> violations;  ///< capped at 32
  /// Reads in the history that were served from a cache (from_cache), and
  /// how many of the violations above landed on one. A non-zero
  /// cached_read_violations with zero violations on uncached reads points
  /// the blame squarely at the caching tier's invalidation protocol.
  size_t cached_reads = 0;
  size_t cached_read_violations = 0;
  /// Two writes shared a value: the history breaks the precondition and no
  /// verdict is claimed.
  bool malformed = false;

  size_t total() const {
    return ryw_violations + mr_violations + mw_violations + wfr_violations;
  }
  bool ok() const { return !malformed && total() == 0; }
  std::string ToString() const;
};

[[nodiscard]] SessionCheckResult CheckSessionGuarantees(
    const std::vector<RecordedOp>& history,
    const SessionCheckOptions& options = {});

}  // namespace evc::verify

#endif  // EVC_VERIFY_SESSION_GUARANTEES_H_
