// Causal-consistency checker over dependency-annotated histories.
//
// The causal store (causal/causal_store.h) annotates every write with a
// totally ordered WriteId and the dependency set it carried. This checker
// replays a recorded client history and verifies the causal+ contract from
// the client's point of view:
//   * per-session per-key monotonicity — the WriteId a session observes for
//     a key never decreases (the LWW register only moves forward at a
//     datacenter, and sessions are pinned to one datacenter);
//   * dependency visibility — once a session has observed a write, every
//     later read of one of that write's dependency keys must return a
//     version at least as new as the dependency ("the photo is visible
//     before the comment"); a not-found on an owed key is the same anomaly.
//
// Sessions must be recorded in completion order and each session must talk
// to a single datacenter (reads from a different replica can legitimately
// observe older versions — that is eventual, not causal, consistency).

#ifndef EVC_VERIFY_CAUSAL_CHECKER_H_
#define EVC_VERIFY_CAUSAL_CHECKER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "causal/causal_store.h"

namespace evc::verify {

/// One recorded operation against the causal store.
struct CausalRecordedOp {
  enum class Kind { kWrite, kRead };
  Kind kind = Kind::kRead;
  int session = 0;
  std::string key;
  /// kWrite: the id the datacenter assigned. kRead: the id observed
  /// (ignored when `found` is false).
  causal::WriteId id;
  /// kWrite: the dependency context the write carried. kRead: the
  /// dependencies of the observed write.
  std::vector<causal::Dependency> deps;
  bool found = true;
};

struct CausalCheckResult {
  size_t monotonic_violations = 0;   ///< per-session per-key id went backwards
  size_t dependency_violations = 0;  ///< owed dependency not visible
  size_t not_found_violations = 0;   ///< not-found on a key with an owed dep
  std::vector<std::string> details;  ///< capped at 32

  size_t total() const {
    return monotonic_violations + dependency_violations + not_found_violations;
  }
  bool ok() const { return total() == 0; }
  std::string ToString() const;
};

[[nodiscard]] CausalCheckResult CheckCausalHistory(
    const std::vector<CausalRecordedOp>& history);

}  // namespace evc::verify

#endif  // EVC_VERIFY_CAUSAL_CHECKER_H_
