#include "verify/session_guarantees.h"

#include <array>
#include <deque>
#include <limits>
#include <map>
#include <unordered_map>

namespace evc::verify {

namespace {
constexpr size_t kDetailCap = 32;
}  // namespace

RecordedOp RecWrite(int session, std::string key, std::string value,
                    int64_t invoke, int64_t response, bool acked) {
  RecordedOp op;
  op.kind = RecordedOp::Kind::kWrite;
  op.session = session;
  op.key = std::move(key);
  op.value = std::move(value);
  op.acked = acked;
  op.invoke = invoke;
  op.response = response;
  return op;
}

RecordedOp RecRead(int session, std::string key,
                   std::vector<std::string> observed, int64_t invoke,
                   int64_t response, bool from_cache) {
  RecordedOp op;
  op.kind = RecordedOp::Kind::kRead;
  op.session = session;
  op.key = std::move(key);
  op.observed = std::move(observed);
  op.acked = true;
  op.invoke = invoke;
  op.response = response;
  op.from_cache = from_cache;
  return op;
}

std::string SessionViolation::ToString() const {
  const char* name = "?";
  switch (kind) {
    case Kind::kRyw: name = "RYW"; break;
    case Kind::kMr: name = "MR"; break;
    case Kind::kMw: name = "MW"; break;
    case Kind::kWfr: name = "WFR"; break;
  }
  return std::string(name) + " violation: session " + std::to_string(session) +
         " op#" + std::to_string(op_index) + " read of '" + key +
         "' fails to reflect write '" + expected + "'";
}

std::string SessionCheckResult::ToString() const {
  if (malformed) return "malformed history (duplicate write values)";
  return "ryw=" + std::to_string(ryw_violations) +
         " mr=" + std::to_string(mr_violations) +
         " mw=" + std::to_string(mw_violations) +
         " wfr=" + std::to_string(wfr_violations) +
         " cached_reads=" + std::to_string(cached_reads) +
         " cached_violations=" + std::to_string(cached_read_violations);
}

namespace {

struct WriteInfo {
  size_t op_index = 0;
  int session = 0;
  std::string key;
  std::string value;
  int64_t invoke = 0;
  /// Acked writes keep their real response; unacked writes get an
  /// open-ended interval (they may take effect at any later time, so they
  /// can never prove that a state is old).
  int64_t eff_response = 0;
  bool acked = false;
  /// MW: the writer's latest earlier *acked* write per key at issue time.
  std::map<std::string, const WriteInfo*> mw_deps;
  /// WFR: the latest tracked write the writer had *observed* per key.
  std::map<std::string, const WriteInfo*> wfr_deps;
};

using Kind = SessionViolation::Kind;

class SessionChecker {
 public:
  SessionChecker(const std::vector<RecordedOp>& history,
                 const SessionCheckOptions& options)
      : history_(history), options_(options) {}

  SessionCheckResult Run() {
    if (!BuildRegistry()) {
      result_.malformed = true;
      return result_;
    }
    BuildSnapshots();
    CheckObligations();
    return result_;
  }

 private:
  bool BuildRegistry() {
    for (size_t i = 0; i < history_.size(); ++i) {
      const RecordedOp& op = history_[i];
      if (op.kind != RecordedOp::Kind::kWrite) continue;
      if (registry_.count(op.value)) return false;  // values must be unique
      writes_.push_back(WriteInfo{});
      WriteInfo& info = writes_.back();
      info.op_index = i;
      info.session = op.session;
      info.key = op.key;
      info.value = op.value;
      info.invoke = op.invoke;
      info.acked = op.acked;
      info.eff_response =
          op.acked ? op.response : std::numeric_limits<int64_t>::max();
      registry_[op.value] = &info;
    }
    return true;
  }

  const WriteInfo* Lookup(const std::string& value) const {
    auto it = registry_.find(value);
    return it == registry_.end() ? nullptr : it->second;
  }

  /// Per session, in op order: record each write's dependency snapshots.
  void BuildSnapshots() {
    struct SessionState {
      std::map<std::string, const WriteInfo*> own_acked;  // key -> latest
      std::map<std::string, const WriteInfo*> observed;   // key -> max invoke
    };
    std::map<int, SessionState> sessions;
    for (const RecordedOp& op : history_) {
      SessionState& s = sessions[op.session];
      if (op.kind == RecordedOp::Kind::kWrite) {
        auto it = registry_.find(op.value);
        if (it == registry_.end()) continue;
        WriteInfo* info = it->second;
        info->mw_deps = s.own_acked;
        info->wfr_deps = s.observed;
        if (op.acked) s.own_acked[op.key] = info;
      } else if (op.acked) {
        for (const std::string& v : op.observed) {
          const WriteInfo* w = Lookup(v);
          if (w == nullptr) continue;
          const WriteInfo*& slot = s.observed[op.key];
          if (slot == nullptr || slot->invoke < w->invoke) slot = w;
        }
      }
    }
  }

  /// True when the read's returned state may include dep's effect: some
  /// returned value is unknown, or was produced by a write that did not
  /// wholly precede dep. Empty (not-found) can never include a tracked dep.
  bool Reflects(const RecordedOp& read, const WriteInfo& dep) const {
    if (read.observed.empty()) return false;
    for (const std::string& v : read.observed) {
      const WriteInfo* w = Lookup(v);
      if (w == nullptr) return true;
      if (w->eff_response >= dep.invoke) return true;
    }
    return false;
  }

  void Record(Kind kind, const RecordedOp& read, size_t op_index,
              const WriteInfo& dep) {
    switch (kind) {
      case Kind::kRyw: ++result_.ryw_violations; break;
      case Kind::kMr: ++result_.mr_violations; break;
      case Kind::kMw: ++result_.mw_violations; break;
      case Kind::kWfr: ++result_.wfr_violations; break;
    }
    if (read.from_cache) ++result_.cached_read_violations;
    if (result_.violations.size() < kDetailCap) {
      SessionViolation v;
      v.kind = kind;
      v.session = read.session;
      v.op_index = op_index;
      v.key = read.key;
      v.expected = dep.value;
      result_.violations.push_back(std::move(v));
    }
  }

  void CheckObligations() {
    // obligations[session][key][kind] = the dep with max invoke; a dep with
    // a later invoke subsumes earlier ones (reflecting it implies
    // reflecting them), so one slot per kind suffices.
    using PerKey = std::array<const WriteInfo*, 4>;
    std::map<int, std::map<std::string, PerKey>> obligations;
    auto add = [&](int session, const std::string& key, Kind kind,
                   const WriteInfo* dep) {
      PerKey& slot = obligations[session]
                         .try_emplace(key, PerKey{nullptr, nullptr, nullptr,
                                                  nullptr})
                         .first->second;
      const WriteInfo*& entry = slot[static_cast<size_t>(kind)];
      if (entry == nullptr || entry->invoke < dep->invoke) entry = dep;
    };

    const bool enabled[4] = {options_.check_ryw, options_.check_mr,
                             options_.check_mw, options_.check_wfr};
    for (size_t i = 0; i < history_.size(); ++i) {
      const RecordedOp& op = history_[i];
      if (op.kind == RecordedOp::Kind::kWrite) {
        if (op.acked) {
          const WriteInfo* w = Lookup(op.value);
          if (w != nullptr) add(op.session, op.key, Kind::kRyw, w);
        }
        continue;
      }
      if (!op.acked) continue;
      if (op.from_cache) ++result_.cached_reads;

      // Check what this read owes.
      auto session_it = obligations.find(op.session);
      if (session_it != obligations.end()) {
        auto key_it = session_it->second.find(op.key);
        if (key_it != session_it->second.end()) {
          for (size_t k = 0; k < 4; ++k) {
            const WriteInfo* dep = key_it->second[k];
            if (dep == nullptr || !enabled[k]) continue;
            if (!Reflects(op, *dep)) {
              Record(static_cast<Kind>(k), op, i, *dep);
            }
          }
        }
      }

      // Accrue new obligations from what it observed.
      for (const std::string& v : op.observed) {
        const WriteInfo* w = Lookup(v);
        if (w == nullptr) continue;
        // MR: this session must keep seeing at least w on this key.
        add(op.session, op.key, Kind::kMr, w);
        // MW: w's visibility implies its session's earlier acked writes.
        for (const auto& [dep_key, dep] : w->mw_deps) {
          add(op.session, dep_key, Kind::kMw, dep);
        }
        // WFR: w's visibility implies the writes its session had read.
        for (const auto& [dep_key, dep] : w->wfr_deps) {
          add(op.session, dep_key, Kind::kWfr, dep);
        }
      }
    }
  }

  const std::vector<RecordedOp>& history_;
  const SessionCheckOptions& options_;
  SessionCheckResult result_;
  std::deque<WriteInfo> writes_;
  std::unordered_map<std::string, WriteInfo*> registry_;
};

}  // namespace

SessionCheckResult CheckSessionGuarantees(
    const std::vector<RecordedOp>& history,
    const SessionCheckOptions& options) {
  return SessionChecker(history, options).Run();
}

}  // namespace evc::verify
