#include "verify/linearizability.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/status.h"

namespace evc::verify {

Operation Write(std::string value, int64_t invoke, int64_t response) {
  Operation op;
  op.type = Operation::Type::kWrite;
  op.value = std::move(value);
  op.invoke = invoke;
  op.response = response;
  return op;
}

Operation Read(std::string value, int64_t invoke, int64_t response) {
  Operation op;
  op.type = Operation::Type::kRead;
  op.value = std::move(value);
  op.found = true;
  op.invoke = invoke;
  op.response = response;
  return op;
}

Operation ReadNotFound(int64_t invoke, int64_t response) {
  Operation op;
  op.type = Operation::Type::kRead;
  op.found = false;
  op.invoke = invoke;
  op.response = response;
  return op;
}

namespace {

// Register states are interned: 0 = "not present", i+1 = distinct value i.
class Checker {
 public:
  Checker(const std::vector<Operation>& history, const CheckOptions& options)
      : history_(history), options_(options) {
    EVC_CHECK(history.size() <= 63);
    auto intern = [this](const std::string& value) {
      if (!value_ids_.count(value)) {
        const int id = static_cast<int>(value_ids_.size()) + 1;
        value_ids_[value] = id;
      }
    };
    for (const Operation& op : history_) {
      if (op.type == Operation::Type::kWrite || op.found) intern(op.value);
    }
    if (options_.initial_present) intern(options_.initial_value);
    initial_state_ = options_.initial_present
                         ? InternOrZero(options_.initial_value)
                         : 0;
  }

  CheckResult Run() {
    CheckResult result;
    const uint64_t all_done = (uint64_t{1} << history_.size()) - 1;
    result.linearizable = Dfs(all_done, initial_state_, &result);
    return result;
  }

 private:
  int InternOrZero(const std::string& value) const {
    auto it = value_ids_.find(value);
    return it == value_ids_.end() ? 0 : it->second;
  }

  /// `remaining` is the bitmask of not-yet-linearized ops; `state` is the
  /// interned register value. Returns true if the remainder linearizes.
  bool Dfs(uint64_t remaining, int state, CheckResult* result) {
    if (remaining == 0) return true;
    const auto memo_key = std::make_pair(remaining, state);
    if (!visited_.insert(memo_key).second) return false;
    if (++result->states_explored > options_.max_states) {
      result->exhausted = true;
      return false;
    }

    // An op may be linearized next iff no other remaining op completed
    // strictly before it was invoked (real-time order).
    int64_t min_response = INT64_MAX;
    for (size_t i = 0; i < history_.size(); ++i) {
      if ((remaining >> i) & 1) {
        min_response = std::min(min_response, history_[i].response);
      }
    }
    for (size_t i = 0; i < history_.size(); ++i) {
      if (!((remaining >> i) & 1)) continue;
      const Operation& op = history_[i];
      if (op.invoke > min_response) continue;  // something finished first

      if (op.type == Operation::Type::kRead) {
        const int expect = op.found ? InternOrZero(op.value) : 0;
        if (op.found && expect == 0) continue;  // value never written
        if (expect != state) continue;          // read wouldn't match
        if (Dfs(remaining & ~(uint64_t{1} << i), state, result)) return true;
      } else {
        const int next_state = InternOrZero(op.value);
        if (Dfs(remaining & ~(uint64_t{1} << i), next_state, result)) {
          return true;
        }
      }
      if (result->exhausted) return false;
    }
    return false;
  }

  const std::vector<Operation>& history_;
  const CheckOptions& options_;
  std::map<std::string, int> value_ids_;
  int initial_state_ = 0;
  std::set<std::pair<uint64_t, int>> visited_;
};

}  // namespace

CheckResult CheckLinearizable(const std::vector<Operation>& history,
                              const CheckOptions& options) {
  if (history.empty()) {
    CheckResult result;
    result.linearizable = true;
    return result;
  }
  Checker checker(history, options);
  return checker.Run();
}

}  // namespace evc::verify
