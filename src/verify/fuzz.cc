#include "verify/fuzz.h"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "cache/edge_cache.h"
#include "causal/causal_store.h"
#include "obs/export.h"
#include "consensus/paxos.h"
#include "membership/config_service.h"
#include "crdt/gcounter.h"
#include "crdt/orset.h"
#include "replication/anti_entropy.h"
#include "replication/quorum_store.h"
#include "replication/timeline_store.h"
#include "sim/latency.h"
#include "sim/rpc.h"
#include "verify/linearizability.h"

namespace evc::verify {

using sim::kMillisecond;
using sim::kSecond;

const char* ToString(FuzzStore store) {
  switch (store) {
    case FuzzStore::kPaxos: return "paxos";
    case FuzzStore::kQuorumStrict: return "quorum-strict";
    case FuzzStore::kQuorumWeak: return "quorum-weak";
    case FuzzStore::kTimeline: return "timeline";
    case FuzzStore::kCausal: return "causal";
    case FuzzStore::kGCounter: return "gcounter";
    case FuzzStore::kOrSet: return "orset";
    case FuzzStore::kEdgeCache: return "edge-cache";
    case FuzzStore::kQuorumElastic: return "quorum-elastic";
  }
  return "?";
}

bool ParseFuzzStore(const std::string& name, FuzzStore* store) {
  for (FuzzStore s : AllFuzzStores()) {
    if (name == ToString(s)) {
      *store = s;
      return true;
    }
  }
  return false;
}

std::vector<FuzzStore> AllFuzzStores() {
  return {FuzzStore::kPaxos,        FuzzStore::kQuorumStrict,
          FuzzStore::kQuorumWeak,   FuzzStore::kTimeline,
          FuzzStore::kCausal,       FuzzStore::kGCounter,
          FuzzStore::kOrSet,        FuzzStore::kEdgeCache,
          FuzzStore::kQuorumElastic};
}

FuzzOptions DefaultFuzzOptions(FuzzStore store, uint64_t seed) {
  FuzzOptions o;
  o.seed = seed;
  o.store = store;
  switch (store) {
    case FuzzStore::kPaxos:
      // Single register, few ops: the linearizability search is exponential.
      o.servers = 3;
      o.sessions = 3;
      o.ops_per_session = 10;
      o.keyspace = 1;
      o.quiescence_timeout = 60 * kSecond;
      break;
    case FuzzStore::kQuorumStrict:
    case FuzzStore::kQuorumWeak:
      o.servers = 5;
      o.sessions = 4;
      o.ops_per_session = 25;
      o.keyspace = 4;
      o.quiescence_timeout = 60 * kSecond;
      break;
    case FuzzStore::kTimeline:
    case FuzzStore::kCausal:
      o.servers = 3;
      o.sessions = 3;
      o.ops_per_session = 25;
      o.keyspace = 4;
      o.quiescence_timeout = 15 * kSecond;
      break;
    case FuzzStore::kGCounter:
    case FuzzStore::kOrSet:
      o.servers = 4;
      o.sessions = 4;
      o.ops_per_session = 30;
      o.keyspace = 8;  // element pool size for the or-set
      o.quiescence_timeout = 20 * kSecond;
      break;
    case FuzzStore::kEdgeCache:
      // Small keyspace so sessions collide on keys and writes actually meet
      // outstanding leases (the revoke path is the thing under test).
      o.servers = 3;
      o.sessions = 4;
      o.ops_per_session = 25;
      o.keyspace = 3;
      o.quiescence_timeout = 15 * kSecond;
      break;
    case FuzzStore::kQuorumElastic:
      // Live membership changes under a strict quorum. The schedule is the
      // "elastic" shape: no partitions or hard crashes (reconfiguration is
      // the fault under test; availability through it is the claim), but
      // gray degradation, rolling restarts, and add/remove draws all on.
      o.servers = 4;
      o.sessions = 3;
      o.ops_per_session = 25;
      o.keyspace = 4;
      o.quiescence_timeout = 60 * kSecond;
      o.nemesis.duration = 25 * kSecond;
      o.nemesis.mean_fault_interval = 2 * kSecond;
      o.nemesis.allow_partitions = false;
      o.nemesis.allow_crashes = false;
      o.nemesis.allow_loss = false;
      o.nemesis.allow_duplication = false;
      o.nemesis.allow_slow_links = true;
      o.nemesis.allow_flaky_links = true;
      o.nemesis.allow_slow_nodes = true;
      o.nemesis.allow_membership = true;
      o.nemesis.allow_rolling_restart = true;
      break;
  }
  return o;
}

bool FuzzReport::AnomalyDetected() const {
  if (lin_checked && !linearizable && !lin_exhausted) return true;
  if (conv_checked && conv_applicable && !convergence.ok()) return true;
  if (sess_checked && session.total() > 0) return true;
  if (causal_checked && !causal.ok()) return true;
  if (fork_checked && fork_violations > 0) return true;
  if (crdt_value_checked && !crdt_value_ok) return true;
  return false;
}

bool FuzzReport::MeetsClaims(std::string* why) const {
  auto fail = [why](const char* reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (lin_checked && !linearizable && !lin_exhausted) {
    return fail("history is not linearizable");
  }
  if (conv_checked && conv_applicable && !convergence.ok()) {
    return fail("replicas failed to converge / lost an acked write");
  }
  if (causal_checked && !causal.ok()) {
    return fail("causal consistency violated");
  }
  if (fork_checked && fork_violations > 0) {
    return fail("record timeline forked");
  }
  if (crdt_value_checked && !crdt_value_ok) {
    return fail("CRDT value diverged from acked operations");
  }
  if (sess_checked && session.total() > 0) {
    // Only the strong quorum configuration promises session guarantees; the
    // weak configuration records them as expected anomalies. The edge cache
    // claims all four guarantees *through the cache* — any violation there,
    // cached serve or not, breaks the lease protocol's contract. The elastic
    // configuration claims them ACROSS reconfiguration boundaries: an epoch
    // change is not allowed to cost a single guarantee.
    if (store == FuzzStore::kQuorumStrict || store == FuzzStore::kTimeline ||
        store == FuzzStore::kEdgeCache ||
        store == FuzzStore::kQuorumElastic) {
      return fail("session guarantee violated");
    }
  }
  return true;
}

std::string FuzzReport::Summary() const {
  std::ostringstream os;
  os << "store=" << verify::ToString(store) << " seed=" << seed
     << " writes=" << writes_acked << "+" << writes_failed
     << " reads=" << reads_ok << "+" << reads_failed
     << " faults=" << faults_injected << " drops=" << messages_dropped;
  if (lin_checked) {
    os << " lin=" << (linearizable ? "ok" : (lin_exhausted ? "?" : "FAIL"))
       << "(" << lin_ops << "ops)";
  }
  if (conv_checked) {
    if (!conv_applicable) {
      os << " conv=n/a";
    } else {
      os << " conv=" << (convergence.ok() ? "ok" : "FAIL");
    }
  }
  if (sess_checked) {
    os << " sess=ryw" << session.ryw_violations << ",mr"
       << session.mr_violations << ",mw" << session.mw_violations << ",wfr"
       << session.wfr_violations;
    if (session.cached_reads > 0) {
      os << " cached=" << session.cached_read_violations << "/"
         << session.cached_reads;
    }
  }
  if (causal_checked) {
    os << " causal=" << (causal.ok() ? "ok" : "FAIL");
  }
  if (fork_checked) {
    os << " forks=" << fork_violations;
  }
  if (crdt_value_checked) {
    os << " value=" << (crdt_value_ok ? "ok" : "FAIL");
  }
  if (store == FuzzStore::kEdgeCache) {
    os << " cache=" << cache_hits << "h," << cache_misses << "m,"
       << cache_revokes_sent << "rev," << cache_writes_fenced << "fence";
  }
  if (store == FuzzStore::kQuorumElastic) {
    os << " elastic=" << epochs_committed << "e," << membership_ops << "ops,"
       << keys_migrated << "mig," << stale_epoch_rejects << "fence,"
       << hints_redirected << "redir";
  }
  std::string why;
  os << " claims=" << (MeetsClaims(&why) ? "ok" : "VIOLATED");
  return os.str();
}

namespace {

constexpr int64_t kOpenInterval = std::numeric_limits<int64_t>::max();

uint64_t NemesisSeed(uint64_t seed) {
  return seed * 0x9e3779b97f4a7c15ULL + 0x6e656d65ULL;  // "neme"
}

/// Simulator + network + rpc, wired identically for every store.
struct SimStack {
  explicit SimStack(const FuzzOptions& o)
      : sim(o.seed, o.scheduler),
        net(&sim,
            std::make_unique<sim::UniformLatency>(2 * kMillisecond,
                                                  12 * kMillisecond)),
        rpc(&net) {}
  sim::Simulator sim;
  sim::Network net;
  sim::Rpc rpc;
};

std::string UniqueValue(int session, int n) {
  return "s" + std::to_string(session) + "." + std::to_string(n);
}

/// Drives the common phases of every runner: unleash the nemesis, run the
/// client sessions to completion, heal, then quiesce (optionally breaking
/// early once `settled` reports the store repaired).
class Driver : public sim::LoadActuator {
 public:
  Driver(SimStack* s, sim::Nemesis* nemesis, const FuzzOptions& options)
      : s_(s), nemesis_(nemesis), options_(options) {
    // Wire the load faults into this driver's pacing. Consumes no
    // randomness and is inert unless the schedule draws kFlashCrowd /
    // kLoadSpike (the load family is off by default), so historical
    // schedules replay bit-identically.
    nemesis_->SetLoadActuator(this);
  }

  bool stopped() const { return stopped_; }
  /// Exponential think time targeting ops_per_session ops over the fault
  /// window; an active flash crowd divides the mean gap (multiplies the
  /// offered rate).
  sim::Time NextGap(Rng* rng) const {
    const double mean = static_cast<double>(options_.nemesis.duration) /
                        std::max(1, options_.ops_per_session) /
                        std::max(1.0, load_factor_);
    return static_cast<sim::Time>(rng->NextExponential(mean)) + 1;
  }

  /// Draws a workload key, rotated by the hot-key shifts applied so far
  /// (kLoadSpike). With no shifts this is exactly the historical
  /// "k<NextBounded(keyspace)>" draw.
  std::string Key(Rng* rng, int keyspace) const {
    const uint64_t drawn = rng->NextBounded(keyspace);
    const uint64_t shifted =
        (drawn + key_shift_) % static_cast<uint64_t>(std::max(1, keyspace));
    return "k" + std::to_string(shifted);
  }

  // sim::LoadActuator:
  void SetLoadFactor(double factor) override { load_factor_ = factor; }
  void ShiftHotKeys() override { ++key_shift_; }

  void SessionDone() { --live_; }

  /// `live` sessions must call SessionDone() when their op chain finishes.
  void RunWorkload(int live) {
    live_ = live;
    nemesis_->Execute(nemesis_->GeneratePlan(options_.nemesis));
    const sim::Time deadline =
        s_->sim.Now() + options_.nemesis.duration + 30 * kSecond;
    while (live_ > 0 && s_->sim.Now() < deadline) {
      s_->sim.RunFor(50 * kMillisecond);
    }
    stopped_ = true;
    nemesis_->HealAll();
  }

  void Quiesce(const std::function<bool()>& settled = nullptr) {
    const sim::Time end = s_->sim.Now() + options_.quiescence_timeout;
    // Always give in-flight client ops and first repair rounds a chance.
    s_->sim.RunFor(2 * kSecond);
    while (s_->sim.Now() < end) {
      if (settled && settled()) break;
      s_->sim.RunFor(1 * kSecond);
    }
  }

 private:
  SimStack* s_;
  sim::Nemesis* nemesis_;
  const FuzzOptions& options_;
  int live_ = 0;
  bool stopped_ = false;
  double load_factor_ = 1.0;  ///< kFlashCrowd multiplier (1.0 = nominal)
  uint64_t key_shift_ = 0;    ///< hot-key rotations applied (kLoadSpike)
};

void FillCommon(FuzzReport* rep, const FuzzOptions& o, const SimStack& s,
                const sim::Nemesis& nemesis) {
  rep->store = o.store;
  rep->seed = o.seed;
  rep->faults_injected = nemesis.stats().total();
  rep->messages_dropped = s.net.messages_dropped();
  if (o.capture_metrics_json != nullptr) {
    *o.capture_metrics_json = obs::MetricsToJson(s.sim.metrics()).Dump(2);
  }
  if (o.capture_trace_csv != nullptr) {
    *o.capture_trace_csv = obs::TraceToCsv(s.sim.tracer());
  }
}

// --------------------------------------------------------------------------
// Paxos: linearizability + post-heal state-machine agreement.
// --------------------------------------------------------------------------

FuzzReport RunPaxos(const FuzzOptions& o) {
  FuzzReport rep;
  SimStack s(o);
  consensus::PaxosOptions popt;
  popt.crash_amnesia = o.amnesia;
  consensus::PaxosCluster cluster(&s.rpc, popt);
  const std::vector<sim::NodeId> servers = cluster.AddServers(o.servers);
  cluster.Start();
  s.sim.RunFor(2 * kSecond);  // let the first leader emerge before faults

  sim::Nemesis nemesis(&s.net, servers, NemesisSeed(o.seed));
  Driver driver(&s, &nemesis, o);

  const std::string kKey = "reg";
  std::vector<Operation> history;
  struct Session {
    std::unique_ptr<consensus::PaxosKvClient> client;
    Rng rng{0};
    int issued = 0;
  };
  std::vector<std::unique_ptr<Session>> sessions;
  Rng root(o.seed ^ 0x5e5510ULL);

  std::function<void(int)> next = [&](int i) {
    Session& sess = *sessions[i];
    if (driver.stopped() || sess.issued >= o.ops_per_session) {
      driver.SessionDone();
      return;
    }
    const int n = sess.issued++;
    const int64_t invoke = s.sim.Now();
    if (sess.rng.NextBool(0.5)) {
      const std::string value = UniqueValue(i, n);
      // Record at issue with an open interval: a timed-out proposal may
      // still commit, so it must stay a candidate for every later time.
      history.push_back(Write(value, invoke, kOpenInterval));
      const size_t slot = history.size() - 1;
      sess.client->Put(kKey, value, [&, i, slot](Result<uint64_t> r) {
        if (r.ok()) {
          history[slot].response = s.sim.Now();
          ++rep.writes_acked;
        } else {
          ++rep.writes_failed;
        }
        s.sim.ScheduleAfter(driver.NextGap(&sessions[i]->rng),
                            [&, i] { next(i); });
      });
    } else {
      sess.client->Get(kKey, [&, i, invoke](Result<std::string> r) {
        const int64_t response = s.sim.Now();
        if (r.ok()) {
          history.push_back(Read(*r, invoke, response));
          ++rep.reads_ok;
        } else if (r.status().IsNotFound()) {
          history.push_back(ReadNotFound(invoke, response));
          ++rep.reads_ok;
        } else {
          ++rep.reads_failed;
        }
        s.sim.ScheduleAfter(driver.NextGap(&sessions[i]->rng),
                            [&, i] { next(i); });
      });
    }
  };

  for (int i = 0; i < o.sessions; ++i) {
    auto sess = std::make_unique<Session>();
    const sim::NodeId node = s.net.AddNode();
    sess->client = std::make_unique<consensus::PaxosKvClient>(
        &cluster, &s.sim, node, servers);
    sess->rng = root.Fork(static_cast<uint64_t>(i));
    sessions.push_back(std::move(sess));
    s.sim.ScheduleAfter(driver.NextGap(&sessions.back()->rng),
                        [&, i] { next(i); });
  }

  driver.RunWorkload(o.sessions);
  auto applied_agree = [&] {
    const uint64_t index0 = cluster.AppliedIndex(servers[0]);
    for (sim::NodeId srv : servers) {
      if (cluster.AppliedIndex(srv) != index0) return false;
    }
    return index0 > 0;
  };
  driver.Quiesce(applied_agree);

  rep.lin_checked = true;
  rep.lin_ops = history.size();
  CheckOptions lin_options;
  lin_options.max_states = 1u << 22;
  const CheckResult lin = CheckLinearizable(history, lin_options);
  rep.linearizable = lin.linearizable;
  rep.lin_exhausted = lin.exhausted;

  // Post-heal agreement of the applied state machines.
  std::vector<ReplicaState> states;
  for (sim::NodeId srv : servers) {
    ReplicaState state;
    if (auto v = cluster.AppliedValue(srv, kKey)) state[kKey] = {*v};
    states.push_back(std::move(state));
  }
  rep.conv_checked = true;
  rep.convergence = CheckConvergence(states, {});

  FillCommon(&rep, o, s, nemesis);
  return rep;
}

// --------------------------------------------------------------------------
// Dynamo-style quorum store (strict R+W>N and weak R=W=1 configurations).
// --------------------------------------------------------------------------

FuzzReport RunQuorum(const FuzzOptions& o, bool strict) {
  FuzzReport rep;
  SimStack s(o);
  repl::QuorumConfig cfg;
  cfg.replication_factor = 3;
  cfg.read_quorum = strict ? 2 : 1;
  cfg.write_quorum = strict ? 2 : 1;
  cfg.sloppy = !strict;
  cfg.read_repair = true;
  cfg.crash_amnesia = o.amnesia;
  cfg.use_oracle_detector = o.use_oracle_detector;
  if (o.overload) {
    // Overload profile: full defense stack on. Shedding / failing fast is
    // legal; the claims below still have to hold.
    cfg.admission_enabled = true;
    cfg.resilience.retry_budget.enabled = true;
    cfg.resilience.aimd.enabled = true;
  }
  repl::DynamoCluster cluster(&s.rpc, cfg);
  const std::vector<sim::NodeId> servers = cluster.AddServers(o.servers);
  cluster.StartHintDelivery(500 * kMillisecond);
  cluster.StartFailureDetection();  // no-op in oracle mode

  std::vector<ReplicaStorage*> storages;
  for (sim::NodeId srv : servers) storages.push_back(cluster.storage(srv));
  repl::AntiEntropyOptions ae_options;
  ae_options.interval = 250 * kMillisecond;
  if (!o.use_oracle_detector) {
    // Route gossip peer selection through each node's own detector verdict.
    ae_options.peer_usable = [&cluster](sim::NodeId self, sim::NodeId peer) {
      return cluster.PeerUsable(self, peer);
    };
  }
  if (o.overload) {
    // Gossip yields to peers advertising load (piggybacked on replies).
    ae_options.load_of = [&s](sim::NodeId self, sim::NodeId peer) {
      return s.rpc.PeerLoad(self, peer);
    };
  }
  repl::AntiEntropy ae(&s.net, servers, storages, ae_options);
  ae.Start();

  sim::Nemesis nemesis(&s.net, servers, NemesisSeed(o.seed));
  Driver driver(&s, &nemesis, o);

  std::vector<RecordedOp> history;
  std::vector<AckedWrite> acked;
  std::map<std::string, VersionVector> acked_vv;  // value -> stored vv
  struct Session {
    sim::NodeId node = 0;
    Rng rng{0};
    int issued = 0;
    std::map<std::string, VersionVector> context;  // last read context
  };
  std::vector<std::unique_ptr<Session>> sessions;
  Rng root(o.seed ^ 0x0d15c0ULL);

  std::function<void(int)> next = [&](int i) {
    Session& sess = *sessions[i];
    if (driver.stopped() || sess.issued >= o.ops_per_session) {
      driver.SessionDone();
      return;
    }
    const int n = sess.issued++;
    const std::string key = driver.Key(&sess.rng, o.keyspace);
    const sim::NodeId coord =
        servers[sess.rng.NextBounded(servers.size())];
    const int64_t invoke = s.sim.Now();
    if (sess.rng.NextBool(0.5)) {
      const std::string value = UniqueValue(i, n);
      history.push_back(RecWrite(i, key, value, invoke, invoke,
                                 /*acked=*/false));
      const size_t slot = history.size() - 1;
      VersionVector context = sess.context[key];
      cluster.Put(sess.node, coord, key, value, context,
                  [&, i, key, value, slot](Result<Version> r) {
                    if (r.ok()) {
                      history[slot].acked = true;
                      history[slot].response = s.sim.Now();
                      acked.push_back({key, value});
                      acked_vv[value] = r->vv;
                      ++rep.writes_acked;
                    } else {
                      ++rep.writes_failed;
                    }
                    s.sim.ScheduleAfter(driver.NextGap(&sessions[i]->rng),
                                        [&, i] { next(i); });
                  });
    } else {
      cluster.Get(sess.node, coord, key,
                  [&, i, key, invoke](Result<repl::ReadResult> r) {
                    const int64_t response = s.sim.Now();
                    if (r.ok()) {
                      std::vector<std::string> observed;
                      for (const Version& v : r->versions) {
                        observed.push_back(v.value);
                      }
                      sessions[i]->context[key] = r->context;
                      history.push_back(
                          RecRead(i, key, std::move(observed), invoke,
                                  response));
                      ++rep.reads_ok;
                    } else {
                      ++rep.reads_failed;
                    }
                    s.sim.ScheduleAfter(driver.NextGap(&sessions[i]->rng),
                                        [&, i] { next(i); });
                  });
    }
  };

  for (int i = 0; i < o.sessions; ++i) {
    auto sess = std::make_unique<Session>();
    sess->node = s.net.AddNode();
    sess->rng = root.Fork(static_cast<uint64_t>(i));
    sessions.push_back(std::move(sess));
    s.sim.ScheduleAfter(driver.NextGap(&sessions.back()->rng),
                        [&, i] { next(i); });
  }

  driver.RunWorkload(o.sessions);
  driver.Quiesce(
      [&] { return ae.Converged() && cluster.pending_hints() == 0; });

  // Final state: anti-entropy replicates every key to every server, so all
  // server states must agree in full.
  std::vector<ReplicaState> states;
  for (sim::NodeId srv : servers) {
    ReplicaState state;
    for (int k = 0; k < o.keyspace; ++k) {
      const std::string key = "k" + std::to_string(k);
      std::vector<Version> versions = cluster.storage(srv)->Get(key);
      if (versions.empty()) continue;
      std::vector<std::string> values;
      for (const Version& v : versions) values.push_back(v.value);
      std::sort(values.begin(), values.end());
      state[key] = std::move(values);
    }
    states.push_back(std::move(state));
  }
  // An acked write is covered when still a sibling or causally dominated by
  // a surviving sibling (read-modify-write supersession).
  std::map<std::string, std::vector<Version>> final_versions;
  for (int k = 0; k < o.keyspace; ++k) {
    const std::string key = "k" + std::to_string(k);
    final_versions[key] = cluster.storage(servers[0])->GetRaw(key);
  }
  auto covered = [&](const AckedWrite& w,
                     const std::vector<std::string>& final_values) {
    for (const std::string& v : final_values) {
      if (v == w.value) return true;
    }
    auto vv_it = acked_vv.find(w.value);
    if (vv_it == acked_vv.end()) return false;
    for (const Version& v : final_versions[w.key]) {
      if (v.vv.Descends(vv_it->second)) return true;
    }
    return false;
  };
  rep.conv_checked = true;
  rep.convergence = CheckConvergence(states, acked, covered);

  rep.sess_checked = true;
  rep.session = CheckSessionGuarantees(history);

  rep.hints_stored = cluster.stats().hints_stored;
  rep.hints_delivered = cluster.stats().hints_delivered;
  rep.hints_lost = cluster.stats().hints_lost;
  rep.hints_pending = cluster.pending_hints();
  rep.detector_false_positives =
      s.sim.metrics()
          .global()
          .CounterFor("resilience.detector.false_positives")
          .value();

  FillCommon(&rep, o, s, nemesis);
  return rep;
}

// --------------------------------------------------------------------------
// Elastic quorum: strict R+W>N with Paxos-backed live membership changes.
// The nemesis adds, removes, and rolling-restarts data servers mid-workload;
// the checkers then assert the static-cluster claims (convergence, session
// guarantees, hint ledger) ACROSS every reconfiguration boundary.
// --------------------------------------------------------------------------

/// Drives nemesis kAddNode/kRemoveNode draws into DynamoCluster live
/// reconfigurations. Refusals (reconfig already in flight, member floor) are
/// reported back so the nemesis records the op as skipped.
class ElasticActuator : public sim::MembershipActuator {
 public:
  explicit ElasticActuator(repl::DynamoCluster* cluster) : cluster_(cluster) {}

  bool AddNode() override {
    Result<sim::NodeId> added = cluster_->AddServerLive([](Status) {});
    return added.ok();
  }
  std::vector<sim::NodeId> RemovableNodes() override {
    std::vector<sim::NodeId> members = cluster_->CommittedMembers();
    if (static_cast<int>(members.size()) <= cluster_->config().min_members) {
      return {};
    }
    return members;
  }
  bool RemoveNode(sim::NodeId node) override {
    return cluster_->RemoveServerLive(node, [](Status) {}).ok();
  }

 private:
  repl::DynamoCluster* cluster_;
};

FuzzReport RunQuorumElastic(const FuzzOptions& o) {
  FuzzReport rep;
  SimStack s(o);

  // The configuration service's Paxos group lives on its own nodes, OUTSIDE
  // the nemesis target set: the config core's availability is an assumption
  // of the design (exactly as in the paper's primary-copy protocols); what
  // the schedule attacks is the data plane through membership churn.
  consensus::PaxosCluster paxos(&s.rpc, consensus::PaxosOptions{});
  const std::vector<sim::NodeId> paxos_servers = paxos.AddServers(3);
  paxos.Start();
  membership::ConfigService config(&s.rpc, &paxos, paxos_servers);

  repl::QuorumConfig cfg;
  cfg.replication_factor = 3;
  cfg.read_quorum = 2;
  cfg.write_quorum = 2;
  cfg.sloppy = o.elastic_sloppy;
  cfg.read_repair = true;
  cfg.use_hash_ring = true;
  cfg.crash_amnesia = o.amnesia;
  cfg.use_oracle_detector = o.use_oracle_detector;
  if (o.overload) {
    cfg.admission_enabled = true;
    cfg.resilience.retry_budget.enabled = true;
    cfg.resilience.aimd.enabled = true;
  }
  repl::DynamoCluster cluster(&s.rpc, cfg);
  const std::vector<sim::NodeId> servers = cluster.AddServers(o.servers);
  cluster.StartHintDelivery(500 * kMillisecond);
  cluster.StartFailureDetection();  // no-op in oracle mode

  std::vector<ReplicaStorage*> storages;
  for (sim::NodeId srv : servers) storages.push_back(cluster.storage(srv));
  repl::AntiEntropyOptions ae_options;
  ae_options.interval = 250 * kMillisecond;
  if (!o.use_oracle_detector) {
    ae_options.peer_usable = [&cluster](sim::NodeId self, sim::NodeId peer) {
      return cluster.PeerUsable(self, peer);
    };
  }
  if (o.overload) {
    ae_options.load_of = [&s](sim::NodeId self, sim::NodeId peer) {
      return s.rpc.PeerLoad(self, peer);
    };
  }
  repl::AntiEntropy ae(&s.net, servers, storages, ae_options);
  ae.Start();

  // Membership wiring: a live-joined server starts gossiping before any data
  // moves; a committed removal marks the node departed so peer draws skip it.
  std::set<sim::NodeId> gossiping(servers.begin(), servers.end());
  cluster.SetServerCreatedCallback(
      [&](sim::NodeId node, ReplicaStorage* storage) {
        ae.AddMember(node, storage);
        gossiping.insert(node);
      });
  cluster.SetCommitCallback([&](const membership::MembershipView& view) {
    ++rep.epochs_committed;
    for (auto it = gossiping.begin(); it != gossiping.end();) {
      if (view.Contains(*it)) {
        ++it;
      } else {
        ae.MarkDeparted(*it);
        it = gossiping.erase(it);
      }
    }
  });

  // Bootstrap epoch 1 with the initial server set, then hand the cluster its
  // view-driven membership.
  s.sim.RunFor(2 * kSecond);  // let the config group elect a leader
  bool bootstrapped = false;
  config.Bootstrap(servers, [&](Status st) {
    EVC_CHECK_OK(st);
    bootstrapped = true;
  });
  const sim::Time boot_deadline = s.sim.Now() + 30 * kSecond;
  while (!bootstrapped && s.sim.Now() < boot_deadline) {
    s.sim.RunFor(100 * kMillisecond);
  }
  EVC_CHECK(bootstrapped);
  cluster.EnableElastic(&config);

  sim::Nemesis nemesis(&s.net, servers, NemesisSeed(o.seed));
  ElasticActuator actuator(&cluster);
  nemesis.SetMembershipActuator(&actuator);
  Driver driver(&s, &nemesis, o);

  std::vector<RecordedOp> history;
  std::vector<AckedWrite> acked;
  std::map<std::string, VersionVector> acked_vv;  // value -> stored vv
  struct Session {
    sim::NodeId node = 0;
    Rng rng{0};
    int issued = 0;
    std::map<std::string, VersionVector> context;  // last read context
  };
  std::vector<std::unique_ptr<Session>> sessions;
  Rng root(o.seed ^ 0x0d15c0ULL);

  std::function<void(int)> next = [&](int i) {
    Session& sess = *sessions[i];
    if (driver.stopped() || sess.issued >= o.ops_per_session) {
      driver.SessionDone();
      return;
    }
    const int n = sess.issued++;
    const std::string key = driver.Key(&sess.rng, o.keyspace);
    // Coordinators are drawn from the CURRENT committed membership — the
    // client-visible contract of the config service. A request can still
    // race a commit (pick a server that departs in flight); it then fails
    // cleanly at the epoch fence and is simply counted as unavailable.
    const std::vector<sim::NodeId> members = cluster.CommittedMembers();
    const sim::NodeId coord = members[sess.rng.NextBounded(members.size())];
    const int64_t invoke = s.sim.Now();
    if (sess.rng.NextBool(0.5)) {
      const std::string value = UniqueValue(i, n);
      history.push_back(RecWrite(i, key, value, invoke, invoke,
                                 /*acked=*/false));
      const size_t slot = history.size() - 1;
      VersionVector context = sess.context[key];
      cluster.Put(sess.node, coord, key, value, context,
                  [&, i, key, value, slot](Result<Version> r) {
                    if (r.ok()) {
                      history[slot].acked = true;
                      history[slot].response = s.sim.Now();
                      acked.push_back({key, value});
                      acked_vv[value] = r->vv;
                      ++rep.writes_acked;
                    } else {
                      ++rep.writes_failed;
                    }
                    s.sim.ScheduleAfter(driver.NextGap(&sessions[i]->rng),
                                        [&, i] { next(i); });
                  });
    } else {
      cluster.Get(sess.node, coord, key,
                  [&, i, key, invoke](Result<repl::ReadResult> r) {
                    const int64_t response = s.sim.Now();
                    if (r.ok()) {
                      std::vector<std::string> observed;
                      for (const Version& v : r->versions) {
                        observed.push_back(v.value);
                      }
                      sessions[i]->context[key] = r->context;
                      history.push_back(
                          RecRead(i, key, std::move(observed), invoke,
                                  response));
                      ++rep.reads_ok;
                    } else {
                      ++rep.reads_failed;
                    }
                    s.sim.ScheduleAfter(driver.NextGap(&sessions[i]->rng),
                                        [&, i] { next(i); });
                  });
    }
  };

  for (int i = 0; i < o.sessions; ++i) {
    auto sess = std::make_unique<Session>();
    sess->node = s.net.AddNode();
    sess->rng = root.Fork(static_cast<uint64_t>(i));
    sessions.push_back(std::move(sess));
    s.sim.ScheduleAfter(driver.NextGap(&sessions.back()->rng),
                        [&, i] { next(i); });
  }

  driver.RunWorkload(o.sessions);
  // Quiesce until the last reconfiguration has fully settled (prepare →
  // catch-up → commit → every server on the committed epoch), hints have
  // drained, and anti-entropy reports the live members identical.
  driver.Quiesce([&] {
    return !cluster.Migrating() && cluster.pending_hints() == 0 &&
           ae.Converged();
  });

  // Convergence is asserted over the FINAL committed membership: departed
  // servers keep their stale shadow copies (harmless — nothing routes to
  // them), live-joined servers must hold the full acked history.
  const std::vector<sim::NodeId> final_members = cluster.CommittedMembers();
  std::vector<ReplicaState> states;
  for (sim::NodeId srv : final_members) {
    ReplicaState state;
    for (int k = 0; k < o.keyspace; ++k) {
      const std::string key = "k" + std::to_string(k);
      std::vector<Version> versions = cluster.storage(srv)->Get(key);
      if (versions.empty()) continue;
      std::vector<std::string> values;
      for (const Version& v : versions) values.push_back(v.value);
      std::sort(values.begin(), values.end());
      state[key] = std::move(values);
    }
    states.push_back(std::move(state));
  }
  std::map<std::string, std::vector<Version>> final_versions;
  for (int k = 0; k < o.keyspace; ++k) {
    const std::string key = "k" + std::to_string(k);
    final_versions[key] = cluster.storage(final_members[0])->GetRaw(key);
  }
  auto covered = [&](const AckedWrite& w,
                     const std::vector<std::string>& final_values) {
    for (const std::string& v : final_values) {
      if (v == w.value) return true;
    }
    auto vv_it = acked_vv.find(w.value);
    if (vv_it == acked_vv.end()) return false;
    for (const Version& v : final_versions[w.key]) {
      if (v.vv.Descends(vv_it->second)) return true;
    }
    return false;
  };
  rep.conv_checked = true;
  rep.convergence = CheckConvergence(states, acked, covered);

  if (!o.elastic_sloppy) {
    // Only the strict configuration claims session guarantees; the sloppy
    // variant exists to drive hint traffic for the ledger sweep.
    rep.sess_checked = true;
    rep.session = CheckSessionGuarantees(history);
  }

  rep.hints_stored = cluster.stats().hints_stored;
  rep.hints_delivered = cluster.stats().hints_delivered;
  rep.hints_lost = cluster.stats().hints_lost;
  rep.hints_pending = cluster.pending_hints();
  rep.detector_false_positives =
      s.sim.metrics()
          .global()
          .CounterFor("resilience.detector.false_positives")
          .value();
  rep.membership_ops = nemesis.stats().membership_ops;
  rep.keys_migrated = cluster.stats().keys_migrated;
  rep.stale_epoch_rejects = cluster.stats().stale_epoch_rejects;
  rep.hints_redirected = cluster.stats().hints_redirected;

  FillCommon(&rep, o, s, nemesis);
  return rep;
}

// --------------------------------------------------------------------------
// Timeline (PNUTS primary-copy): fork-freedom + monotonic reads.
// --------------------------------------------------------------------------

FuzzReport RunTimeline(const FuzzOptions& o) {
  FuzzReport rep;
  SimStack s(o);
  repl::TimelineOptions topt;
  topt.replication_factor = o.servers;
  topt.crash_amnesia = o.amnesia;
  repl::TimelineCluster cluster(&s.rpc, topt);
  const std::vector<sim::NodeId> servers = cluster.AddServers(o.servers);

  sim::Nemesis nemesis(&s.net, servers, NemesisSeed(o.seed));
  Driver driver(&s, &nemesis, o);

  std::vector<RecordedOp> history;
  std::vector<AckedWrite> acked;
  std::map<std::string, uint64_t> seqno_of;  // value -> timeline position
  // Timeline forks: (key, seqno) -> the unique value every observer must see.
  std::map<std::pair<std::string, uint64_t>, std::string> timeline;
  auto observe = [&](const std::string& key, uint64_t seqno,
                     const std::string& value) {
    auto [it, inserted] = timeline.try_emplace({key, seqno}, value);
    if (!inserted && it->second != value) ++rep.fork_violations;
    seqno_of.emplace(value, seqno);
  };

  struct Session {
    sim::NodeId node = 0;
    sim::NodeId replica = 0;  // pinned read replica
    Rng rng{0};
    int issued = 0;
  };
  std::vector<std::unique_ptr<Session>> sessions;
  Rng root(o.seed ^ 0x7191e1ULL);

  std::function<void(int)> next = [&](int i) {
    Session& sess = *sessions[i];
    if (driver.stopped() || sess.issued >= o.ops_per_session) {
      driver.SessionDone();
      return;
    }
    const int n = sess.issued++;
    const std::string key = driver.Key(&sess.rng, o.keyspace);
    const int64_t invoke = s.sim.Now();
    if (sess.rng.NextBool(0.5)) {
      const std::string value = UniqueValue(i, n);
      history.push_back(RecWrite(i, key, value, invoke, invoke,
                                 /*acked=*/false));
      const size_t slot = history.size() - 1;
      cluster.Write(sess.node, key, value,
                    [&, i, key, value, slot](Result<uint64_t> r) {
                      if (r.ok()) {
                        history[slot].acked = true;
                        history[slot].response = s.sim.Now();
                        acked.push_back({key, value});
                        observe(key, *r, value);
                        ++rep.writes_acked;
                      } else {
                        ++rep.writes_failed;
                      }
                      s.sim.ScheduleAfter(driver.NextGap(&sessions[i]->rng),
                                          [&, i] { next(i); });
                    });
    } else {
      cluster.Read(sess.node, sess.replica, key,
                   repl::TimelineReadLevel::kAny, 0,
                   [&, i, key, invoke](Result<repl::TimelineRead> r) {
                     const int64_t response = s.sim.Now();
                     if (r.ok()) {
                       std::vector<std::string> observed;
                       if (r->found) {
                         observed.push_back(r->value);
                         observe(key, r->seqno, r->value);
                       }
                       history.push_back(RecRead(i, key, std::move(observed),
                                                 invoke, response));
                       ++rep.reads_ok;
                     } else {
                       ++rep.reads_failed;
                     }
                     s.sim.ScheduleAfter(driver.NextGap(&sessions[i]->rng),
                                         [&, i] { next(i); });
                   });
    }
  };

  for (int i = 0; i < o.sessions; ++i) {
    auto sess = std::make_unique<Session>();
    sess->node = s.net.AddNode();
    sess->replica = servers[i % servers.size()];
    sess->rng = root.Fork(static_cast<uint64_t>(i));
    sessions.push_back(std::move(sess));
    s.sim.ScheduleAfter(driver.NextGap(&sessions.back()->rng),
                        [&, i] { next(i); });
  }

  driver.RunWorkload(o.sessions);
  driver.Quiesce();

  rep.fork_checked = true;

  // Reads at a pinned replica never go backwards: monotonic reads only (a
  // lagging replica legitimately misses the session's own master writes).
  rep.sess_checked = true;
  SessionCheckOptions sess_options;
  sess_options.check_ryw = false;
  sess_options.check_mw = false;
  sess_options.check_wfr = false;
  rep.session = CheckSessionGuarantees(history, sess_options);

  // Replication is fire-and-forget: convergence is only promised when the
  // schedule dropped no messages.
  rep.conv_checked = true;
  rep.conv_applicable = s.net.messages_dropped() == 0;
  if (rep.conv_applicable) {
    std::vector<ReplicaState> states;
    for (sim::NodeId srv : servers) {
      ReplicaState state;
      for (int k = 0; k < o.keyspace; ++k) {
        const std::string key = "k" + std::to_string(k);
        // Synchronous local read through the test hook pair.
        const uint64_t seqno = cluster.VisibleSeqno(srv, key);
        if (seqno == 0) continue;
        state[key] = {std::to_string(seqno)};
      }
      states.push_back(std::move(state));
    }
    // Agreement on per-key seqnos; an acked write is covered when the final
    // timeline position is at least its own.
    std::vector<AckedWrite> acked_seqnos;
    for (const AckedWrite& w : acked) {
      auto it = seqno_of.find(w.value);
      if (it == seqno_of.end()) continue;
      acked_seqnos.push_back({w.key, std::to_string(it->second)});
    }
    auto covered = [](const AckedWrite& w,
                      const std::vector<std::string>& final_values) {
      const uint64_t want = std::stoull(w.value);
      for (const std::string& v : final_values) {
        if (std::stoull(v) >= want) return true;
      }
      return false;
    };
    rep.convergence = CheckConvergence(states, acked_seqnos, covered);
  }

  FillCommon(&rep, o, s, nemesis);
  return rep;
}

// --------------------------------------------------------------------------
// Edge cache over timeline: all four session guarantees through the cache.
// --------------------------------------------------------------------------

// The lease protocol's claim is strong: a cached entry is served only under
// a live lease, and a write acks only after every lease on its key was
// revoked or expired — so a served entry is never behind ANY acked write on
// its key, and RYW/MR/MW/WFR all hold through the cache with no freshness
// floor. This runner checks exactly that: every read goes through the cache
// tier (hits recorded with from_cache so violations indict the tier), while
// crashes (lease-table amnesia + write fencing) and gray degradation of the
// cache *clients* (a partitioned holder must wait out its own TTL, never
// serve past it) stress the revoke path's edges.
FuzzReport RunEdgeCache(const FuzzOptions& o) {
  FuzzReport rep;
  SimStack s(o);
  repl::TimelineOptions topt;
  topt.replication_factor = o.servers;
  topt.crash_amnesia = o.amnesia;
  // A gated write can legally stall for a full lease TTL (unreachable
  // holder) plus a crash-recovery fence; the per-attempt write timeout must
  // cover that or every contended write would time out at the client.
  topt.rpc_timeout = 1 * kSecond;
  repl::TimelineCluster cluster(&s.rpc, topt);
  const std::vector<sim::NodeId> servers = cluster.AddServers(o.servers);

  cache::EdgeCacheOptions copt;
  copt.lease_ttl = 300 * kMillisecond;
  copt.crash_amnesia = o.amnesia;
  cache::EdgeCacheTier tier(&s.rpc, &cluster, copt);

  std::vector<RecordedOp> history;
  std::vector<AckedWrite> acked;
  std::map<std::string, uint64_t> seqno_of;  // value -> timeline position
  std::map<std::pair<std::string, uint64_t>, std::string> timeline;
  auto observe = [&](const std::string& key, uint64_t seqno,
                     const std::string& value) {
    auto [it, inserted] = timeline.try_emplace({key, seqno}, value);
    if (!inserted && it->second != value) ++rep.fork_violations;
    seqno_of.emplace(value, seqno);
  };

  struct Session {
    sim::NodeId node = 0;
    cache::EdgeCacheClient* client = nullptr;
    Rng rng{0};
    int issued = 0;
  };
  std::vector<std::unique_ptr<Session>> sessions;
  std::vector<sim::NodeId> client_nodes;
  Rng root(o.seed ^ 0xedcecaULL);
  for (int i = 0; i < o.sessions; ++i) {
    auto sess = std::make_unique<Session>();
    sess->node = s.net.AddNode();
    sess->client = tier.AddClient(sess->node);
    sess->rng = root.Fork(static_cast<uint64_t>(i));
    client_nodes.push_back(sess->node);
    sessions.push_back(std::move(sess));
  }

  sim::Nemesis nemesis(&s.net, servers, NemesisSeed(o.seed));
  // Clients are fair game for gray degradation (a slow or flaky cache
  // holder is exactly the hard case for revocation) but never for
  // partitions or crashes, which would just silence their workload.
  nemesis.SetGrayTargets(client_nodes);
  Driver driver(&s, &nemesis, o);

  std::function<void(int)> next = [&](int i) {
    Session& sess = *sessions[i];
    if (driver.stopped() || sess.issued >= o.ops_per_session) {
      driver.SessionDone();
      return;
    }
    const int n = sess.issued++;
    const std::string key = driver.Key(&sess.rng, o.keyspace);
    const int64_t invoke = s.sim.Now();
    if (sess.rng.NextBool(0.5)) {
      const std::string value = UniqueValue(i, n);
      history.push_back(RecWrite(i, key, value, invoke, invoke,
                                 /*acked=*/false));
      const size_t slot = history.size() - 1;
      sess.client->Put(key, value,
                       [&, i, key, value, slot](Result<uint64_t> r) {
                         if (r.ok()) {
                           history[slot].acked = true;
                           history[slot].response = s.sim.Now();
                           acked.push_back({key, value});
                           observe(key, *r, value);
                           ++rep.writes_acked;
                         } else {
                           ++rep.writes_failed;
                         }
                         s.sim.ScheduleAfter(
                             driver.NextGap(&sessions[i]->rng),
                             [&, i] { next(i); });
                       });
    } else {
      sess.client->Get(
          key, /*min_seqno=*/0,
          [&, i, key, invoke](Result<cache::CachedRead> r) {
            const int64_t response = s.sim.Now();
            if (r.ok()) {
              std::vector<std::string> observed;
              if (r->found) {
                observed.push_back(r->value);
                observe(key, r->seqno, r->value);
              }
              history.push_back(RecRead(i, key, std::move(observed), invoke,
                                        response, r->from_cache));
              ++rep.reads_ok;
            } else {
              ++rep.reads_failed;
            }
            s.sim.ScheduleAfter(driver.NextGap(&sessions[i]->rng),
                                [&, i] { next(i); });
          });
    }
  };

  for (int i = 0; i < o.sessions; ++i) {
    s.sim.ScheduleAfter(driver.NextGap(&sessions[i]->rng),
                        [&, i] { next(i); });
  }

  driver.RunWorkload(o.sessions);
  driver.Quiesce();

  rep.fork_checked = true;

  // The whole point: ALL FOUR session guarantees, cached serves included.
  rep.sess_checked = true;
  rep.session = CheckSessionGuarantees(history);

  // Replica convergence beneath the cache (same claim as timeline:
  // replication is fire-and-forget, so only when nothing was dropped).
  rep.conv_checked = true;
  rep.conv_applicable = s.net.messages_dropped() == 0;
  if (rep.conv_applicable) {
    std::vector<ReplicaState> states;
    for (sim::NodeId srv : servers) {
      ReplicaState state;
      for (int k = 0; k < o.keyspace; ++k) {
        const std::string key = "k" + std::to_string(k);
        const uint64_t seqno = cluster.VisibleSeqno(srv, key);
        if (seqno == 0) continue;
        state[key] = {std::to_string(seqno)};
      }
      states.push_back(std::move(state));
    }
    std::vector<AckedWrite> acked_seqnos;
    for (const AckedWrite& w : acked) {
      auto it = seqno_of.find(w.value);
      if (it == seqno_of.end()) continue;
      acked_seqnos.push_back({w.key, std::to_string(it->second)});
    }
    auto covered = [](const AckedWrite& w,
                      const std::vector<std::string>& final_values) {
      const uint64_t want = std::stoull(w.value);
      for (const std::string& v : final_values) {
        if (std::stoull(v) >= want) return true;
      }
      return false;
    };
    rep.convergence = CheckConvergence(states, acked_seqnos, covered);
  }

  rep.cache_hits = tier.stats().hits;
  rep.cache_misses = tier.stats().misses;
  rep.cache_revokes_sent = tier.stats().revokes_sent;
  rep.cache_writes_fenced = tier.stats().writes_fenced;

  FillCommon(&rep, o, s, nemesis);
  return rep;
}

// --------------------------------------------------------------------------
// Causal (COPS): dependency visibility + per-session monotonicity.
// --------------------------------------------------------------------------

FuzzReport RunCausal(const FuzzOptions& o) {
  FuzzReport rep;
  SimStack s(o);
  causal::CausalOptions copt;
  copt.crash_amnesia = o.amnesia;
  causal::CausalCluster cluster(&s.rpc, copt);
  const std::vector<sim::NodeId> dcs = cluster.AddDatacenters(o.servers);

  sim::Nemesis nemesis(&s.net, dcs, NemesisSeed(o.seed));
  Driver driver(&s, &nemesis, o);

  std::vector<CausalRecordedOp> history;
  std::vector<AckedWrite> acked;
  std::map<std::string, causal::WriteId> id_of;  // value -> write id
  struct Session {
    std::unique_ptr<causal::CausalClient> client;
    Rng rng{0};
    int issued = 0;
  };
  std::vector<std::unique_ptr<Session>> sessions;
  Rng root(o.seed ^ 0xca05a1ULL);

  std::function<void(int)> next = [&](int i) {
    Session& sess = *sessions[i];
    if (driver.stopped() || sess.issued >= o.ops_per_session) {
      driver.SessionDone();
      return;
    }
    const int n = sess.issued++;
    const std::string key = driver.Key(&sess.rng, o.keyspace);
    if (sess.rng.NextBool(0.5)) {
      const std::string value = UniqueValue(i, n);
      // The dependency context the client will attach to this write.
      std::vector<causal::Dependency> deps;
      for (const auto& [dep_key, dep_id] : sess.client->context()) {
        deps.push_back({dep_key, dep_id});
      }
      sess.client->Put(key, value,
                       [&, i, key, value,
                        deps](Result<causal::WriteId> r) {
                         if (r.ok()) {
                           CausalRecordedOp op;
                           op.kind = CausalRecordedOp::Kind::kWrite;
                           op.session = i;
                           op.key = key;
                           op.id = *r;
                           op.deps = deps;
                           history.push_back(std::move(op));
                           acked.push_back({key, value});
                           id_of[value] = *r;
                           ++rep.writes_acked;
                         } else {
                           ++rep.writes_failed;
                         }
                         s.sim.ScheduleAfter(
                             driver.NextGap(&sessions[i]->rng),
                             [&, i] { next(i); });
                       });
    } else {
      sess.client->Get(key, [&, i, key](Result<causal::CausalRead> r) {
        if (r.ok()) {
          CausalRecordedOp op;
          op.kind = CausalRecordedOp::Kind::kRead;
          op.session = i;
          op.key = key;
          op.found = r->found;
          if (r->found) {
            op.id = r->id;
            op.deps = r->deps;
            id_of.emplace(r->value, r->id);
          }
          history.push_back(std::move(op));
          ++rep.reads_ok;
        } else {
          ++rep.reads_failed;
        }
        s.sim.ScheduleAfter(driver.NextGap(&sessions[i]->rng),
                            [&, i] { next(i); });
      });
    }
  };

  for (int i = 0; i < o.sessions; ++i) {
    auto sess = std::make_unique<Session>();
    const sim::NodeId node = s.net.AddNode();
    sess->client = std::make_unique<causal::CausalClient>(
        &cluster, node, dcs[i % dcs.size()]);
    sess->rng = root.Fork(static_cast<uint64_t>(i));
    sessions.push_back(std::move(sess));
    s.sim.ScheduleAfter(driver.NextGap(&sessions.back()->rng),
                        [&, i] { next(i); });
  }

  driver.RunWorkload(o.sessions);
  driver.Quiesce();

  rep.causal_checked = true;
  rep.causal = CheckCausalHistory(history);

  // Geo-replication is fire-and-forget: convergence only when nothing was
  // dropped, and no dep-waiting write died in a crashed buffer (its origin
  // DC applied it, but it will never re-replicate).
  rep.conv_checked = true;
  rep.conv_applicable = s.net.messages_dropped() == 0 &&
                        cluster.stats().pending_dropped == 0;
  if (rep.conv_applicable) {
    std::vector<ReplicaState> states;
    for (sim::NodeId dc : dcs) {
      ReplicaState state;
      for (int k = 0; k < o.keyspace; ++k) {
        const std::string key = "k" + std::to_string(k);
        const causal::CausalRead r = cluster.LocalRead(dc, key);
        if (r.found) state[key] = {r.value};
      }
      states.push_back(std::move(state));
    }
    auto covered = [&](const AckedWrite& w,
                       const std::vector<std::string>& final_values) {
      auto want = id_of.find(w.value);
      if (want == id_of.end()) return true;
      for (const std::string& v : final_values) {
        if (v == w.value) return true;
        auto got = id_of.find(v);
        // Unknown final value: an unacked write that won LWW; with zero
        // drops its id is necessarily newer, so accept conservatively.
        if (got == id_of.end() || want->second < got->second) return true;
      }
      return false;
    };
    rep.convergence = CheckConvergence(states, acked, covered);
  }

  FillCommon(&rep, o, s, nemesis);
  return rep;
}

// --------------------------------------------------------------------------
// State-based CRDTs over randomized full-state gossip.
// --------------------------------------------------------------------------

template <typename State, typename ApplyOp, typename Finalize>
FuzzReport RunCrdt(const FuzzOptions& o, std::vector<State> replicas,
                   const char* gossip_type, ApplyOp apply_op,
                   Finalize finalize) {
  FuzzReport rep;
  SimStack s(o);
  const int n = static_cast<int>(replicas.size());
  std::vector<sim::NodeId> nodes;
  for (int i = 0; i < n; ++i) nodes.push_back(s.net.AddNode());
  const sim::MsgType gossip_msg = s.net.InternType(gossip_type);
  for (int i = 0; i < n; ++i) {
    s.net.RegisterHandler(nodes[i], gossip_msg, [&, i](sim::Message m) {
      replicas[i].Merge(std::move(m.payload).Take<State>());
    });
  }

  // Amnesia model for the harness-owned CRDT replicas: client ops write
  // through a per-replica durable copy (a local op is synchronously
  // journaled, so it survives a crash), while gossip-merged state is
  // volatile. A nemesis crash resets the live replica to its durable copy;
  // peers re-supply the lost merges through gossip after restart.
  std::vector<State> durable;
  struct AmnesiaHook : sim::CrashParticipant {
    std::vector<State>* live = nullptr;
    std::vector<State>* saved = nullptr;
    const std::vector<sim::NodeId>* nodes = nullptr;
    void OnCrash(uint32_t node) override {
      for (size_t i = 0; i < nodes->size(); ++i) {
        if ((*nodes)[i] == node) (*live)[i] = (*saved)[i];
      }
    }
    void OnRestart(uint32_t) override {}
  };
  AmnesiaHook hook;
  if (o.amnesia) {
    durable = replicas;
    hook.live = &replicas;
    hook.saved = &durable;
    hook.nodes = &nodes;
    for (sim::NodeId node : nodes) s.sim.RegisterCrashParticipant(node, &hook);
  }

  // Periodic push gossip: every replica ships full state to a random peer.
  Rng gossip_rng(o.seed ^ 0x90551bULL);
  std::function<void()> gossip = [&] {
    for (int i = 0; i < n; ++i) {
      const int peer =
          (i + 1 + static_cast<int>(gossip_rng.NextBounded(n - 1))) % n;
      s.net.Send(nodes[i], nodes[peer], gossip_msg, replicas[i]);
    }
    s.sim.ScheduleAfter(100 * kMillisecond, gossip);
  };
  s.sim.ScheduleAfter(100 * kMillisecond, gossip);

  sim::Nemesis nemesis(&s.net, nodes, NemesisSeed(o.seed));
  Driver driver(&s, &nemesis, o);

  struct Session {
    int replica = 0;
    Rng rng{0};
    int issued = 0;
  };
  std::vector<std::unique_ptr<Session>> sessions;
  Rng root(o.seed ^ 0xc4d700ULL);

  std::function<void(int)> next = [&](int i) {
    Session& sess = *sessions[i];
    if (driver.stopped() || sess.issued >= o.ops_per_session) {
      driver.SessionDone();
      return;
    }
    ++sess.issued;
    // Ops execute locally, but only against a live replica.
    if (s.net.IsNodeUp(nodes[sess.replica])) {
      if (o.amnesia) {
        // Commit to the durable copy, then fold into the live replica. All
        // tags/components a replica mints live in its durable copy, so a
        // crash can only lose state that peers still hold.
        apply_op(&rep, &sess.rng, sess.replica, &durable[sess.replica]);
        replicas[sess.replica].Merge(durable[sess.replica]);
      } else {
        apply_op(&rep, &sess.rng, sess.replica, &replicas[sess.replica]);
      }
      ++rep.writes_acked;
    } else {
      ++rep.writes_failed;
    }
    s.sim.ScheduleAfter(driver.NextGap(&sess.rng), [&, i] { next(i); });
  };

  for (int i = 0; i < o.sessions; ++i) {
    auto sess = std::make_unique<Session>();
    sess->replica = i % n;
    sess->rng = root.Fork(static_cast<uint64_t>(i));
    sessions.push_back(std::move(sess));
    s.sim.ScheduleAfter(driver.NextGap(&sessions.back()->rng),
                        [&, i] { next(i); });
  }

  driver.RunWorkload(o.sessions);
  driver.Quiesce([&] {
    for (int i = 1; i < n; ++i) {
      if (!(replicas[i] == replicas[0])) return false;
    }
    return true;
  });

  if (o.amnesia) s.sim.UnregisterCrashParticipant(&hook);
  finalize(&rep, replicas);
  FillCommon(&rep, o, s, nemesis);
  return rep;
}

FuzzReport RunGCounter(const FuzzOptions& o) {
  std::vector<crdt::GCounter> replicas(o.servers);
  uint64_t total = 0;
  auto apply_op = [&total](FuzzReport*, Rng* rng, int replica,
                           crdt::GCounter* state) {
    const uint64_t amount = rng->NextBounded(3) + 1;
    state->Increment(static_cast<uint32_t>(replica), amount);
    total += amount;
  };
  auto finalize = [&total](FuzzReport* rep,
                           const std::vector<crdt::GCounter>& replicas) {
    std::vector<ReplicaState> states;
    for (const crdt::GCounter& r : replicas) {
      states.push_back({{"counter", {std::to_string(r.Value())}}});
    }
    rep->conv_checked = true;
    rep->convergence = CheckConvergence(states, {});
    rep->crdt_value_checked = true;
    rep->crdt_value_ok = true;
    for (const crdt::GCounter& r : replicas) {
      if (r.Value() != total) rep->crdt_value_ok = false;
    }
  };
  return RunCrdt(o, std::move(replicas), "gcounter-gossip", apply_op,
                 finalize);
}

FuzzReport RunOrSet(const FuzzOptions& o) {
  std::vector<crdt::OrSet> replicas;
  for (int i = 0; i < o.servers; ++i) {
    replicas.emplace_back(static_cast<uint32_t>(i));
  }
  std::set<std::string> added;
  std::set<std::string> removed_any;
  auto apply_op = [&](FuzzReport*, Rng* rng, int, crdt::OrSet* state) {
    const std::string elem =
        "e" + std::to_string(rng->NextBounded(o.keyspace));
    if (rng->NextBool(0.65)) {
      state->Add(elem);
      added.insert(elem);
    } else {
      state->Remove(elem);
      removed_any.insert(elem);
    }
  };
  auto finalize = [&](FuzzReport* rep,
                      const std::vector<crdt::OrSet>& final_replicas) {
    std::vector<ReplicaState> states;
    for (const crdt::OrSet& r : final_replicas) {
      std::vector<std::string> elements = r.Elements();
      std::sort(elements.begin(), elements.end());
      states.push_back({{"set", std::move(elements)}});
    }
    // Elements that were added and never removed anywhere must survive
    // (a remove is the only path to absence in an OR-set).
    std::vector<AckedWrite> must_survive;
    for (const std::string& e : added) {
      if (!removed_any.count(e)) must_survive.push_back({"set", e});
    }
    rep->conv_checked = true;
    rep->convergence = CheckConvergence(states, must_survive);
  };
  return RunCrdt(o, std::move(replicas), "orset-gossip", apply_op, finalize);
}

}  // namespace

FuzzReport RunFuzzSeed(const FuzzOptions& options) {
  switch (options.store) {
    case FuzzStore::kPaxos: return RunPaxos(options);
    case FuzzStore::kQuorumStrict: return RunQuorum(options, true);
    case FuzzStore::kQuorumWeak: return RunQuorum(options, false);
    case FuzzStore::kTimeline: return RunTimeline(options);
    case FuzzStore::kCausal: return RunCausal(options);
    case FuzzStore::kGCounter: return RunGCounter(options);
    case FuzzStore::kOrSet: return RunOrSet(options);
    case FuzzStore::kEdgeCache: return RunEdgeCache(options);
    case FuzzStore::kQuorumElastic: return RunQuorumElastic(options);
  }
  return {};
}

}  // namespace evc::verify
