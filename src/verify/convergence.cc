#include "verify/convergence.h"

#include <algorithm>
#include <set>

namespace evc::verify {

namespace {
constexpr size_t kDetailCap = 16;
}  // namespace

std::string ConvergenceResult::ToString() const {
  std::string out = replicas_agree ? "converged" : "DIVERGED";
  if (!divergent_keys.empty()) {
    out += " keys=[";
    for (size_t i = 0; i < divergent_keys.size(); ++i) {
      if (i > 0) out += ",";
      out += divergent_keys[i];
    }
    out += "]";
  }
  out += " lost_writes=" + std::to_string(lost_write_count);
  if (!lost_writes.empty()) {
    out += " [";
    for (size_t i = 0; i < lost_writes.size(); ++i) {
      if (i > 0) out += ",";
      out += lost_writes[i].key + "=" + lost_writes[i].value;
    }
    out += "]";
  }
  return out;
}

ConvergenceResult CheckConvergence(const std::vector<ReplicaState>& replicas,
                                   const std::vector<AckedWrite>& acked_writes,
                                   const CoveredPredicate& covered) {
  ConvergenceResult result;
  result.replicas_agree = true;

  if (!replicas.empty()) {
    // Agreement: every replica equals replica 0, key by key (collect the
    // union of keys so one-sided extras are reported too).
    std::set<std::string> keys;
    for (const ReplicaState& r : replicas) {
      for (const auto& [key, values] : r) {
        (void)values;
        keys.insert(key);
      }
    }
    const ReplicaState& base = replicas.front();
    for (const std::string& key : keys) {
      bool divergent = false;
      auto base_it = base.find(key);
      for (size_t r = 1; r < replicas.size() && !divergent; ++r) {
        auto it = replicas[r].find(key);
        const bool base_has = base_it != base.end();
        const bool r_has = it != replicas[r].end();
        if (base_has != r_has ||
            (base_has && base_it->second != it->second)) {
          divergent = true;
        }
      }
      if (divergent) {
        result.replicas_agree = false;
        if (result.divergent_keys.size() < kDetailCap) {
          result.divergent_keys.push_back(key);
        }
      }
    }
  }

  // Lost-update detection against replica 0 (if the replicas disagree the
  // run already fails on agreement; replica 0 is as good a witness as any).
  static const std::vector<std::string> kEmpty;
  for (const AckedWrite& write : acked_writes) {
    const std::vector<std::string>* values = &kEmpty;
    if (!replicas.empty()) {
      auto it = replicas.front().find(write.key);
      if (it != replicas.front().end()) values = &it->second;
    }
    const bool present = std::find(values->begin(), values->end(),
                                   write.value) != values->end();
    const bool accounted =
        present || (covered != nullptr && covered(write, *values));
    if (!accounted) {
      ++result.lost_write_count;
      if (result.lost_writes.size() < kDetailCap) {
        result.lost_writes.push_back(write);
      }
    }
  }
  return result;
}

}  // namespace evc::verify
