// Randomized fault-schedule consistency fuzzer.
//
// One seed = one deterministic adversarial run: a seeded Nemesis composes a
// random fault schedule (partitions, crash/restart cycles, loss/duplication
// ramps) while client sessions run a recorded workload against one of the
// repo's stores; after the final heal and a quiescence period, the property
// checkers in verify/ decide whether the store kept exactly the promises its
// consistency level makes:
//
//   store            | must hold under every schedule
//   -----------------+------------------------------------------------------
//   paxos            | linearizability, replica convergence after heal
//   quorum R+W>N     | convergence, no lost acked writes, all four session
//                    | guarantees
//   quorum R=W=1     | convergence + no lost acked writes after anti-entropy
//                    | (session guarantees intentionally NOT claimed: the
//                    | checkers are expected to catch real stale-read
//                    | anomalies on some seeds — that is the negative test)
//   timeline (PNUTS) | no timeline forks, monotonic reads at a pinned
//                    | replica; convergence when no message was dropped
//   causal (COPS)    | causal consistency (deps visible, per-key monotone);
//                    | convergence when no message was dropped (replication
//                    | is fire-and-forget by design)
//   CRDT g-counter   | convergence + counter value == sum of increments
//   CRDT or-set      | convergence of membership
//   edge-cache       | ALL FOUR session guarantees through the cache (a
//                    | served lease implies no newer acked write), timeline
//                    | fork-freedom, convergence when no message was dropped
//
// Every run is a pure function of (store, seed): a failing seed replays
// bit-identically (tools/evc_fuzz --store=... --seed=...).

#ifndef EVC_VERIFY_FUZZ_H_
#define EVC_VERIFY_FUZZ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/nemesis.h"
#include "sim/simulator.h"
#include "verify/causal_checker.h"
#include "verify/convergence.h"
#include "verify/session_guarantees.h"

namespace evc::verify {

enum class FuzzStore {
  kPaxos,
  kQuorumStrict,  ///< N=3 R=2 W=2, read repair, anti-entropy
  kQuorumWeak,    ///< N=3 R=1 W=1, sloppy quorums + hints, anti-entropy
  kTimeline,      ///< PNUTS-style primary-copy
  kCausal,        ///< COPS-style causal+
  kGCounter,      ///< state-based CRDT counter over gossip
  kOrSet,         ///< observed-remove set over gossip
  kEdgeCache,     ///< lease-based edge cache over the timeline store
  kQuorumElastic, ///< strict quorum + Paxos-backed live membership changes
};

const char* ToString(FuzzStore store);
/// Parses the names printed by ToString (e.g. "quorum-weak"). Returns false
/// on unknown names.
bool ParseFuzzStore(const std::string& name, FuzzStore* store);
std::vector<FuzzStore> AllFuzzStores();

struct FuzzOptions {
  uint64_t seed = 1;
  FuzzStore store = FuzzStore::kQuorumWeak;
  int servers = 5;
  int sessions = 3;
  int ops_per_session = 30;
  int keyspace = 4;
  sim::NemesisScheduleOptions nemesis;
  /// Virtual time allowed for post-heal repair before the convergence check.
  sim::Time quiescence_timeout = 60 * sim::kSecond;
  /// Amnesia crashes: register every store as a simulator CrashParticipant,
  /// so a nemesis crash drops volatile state and restart replays the
  /// store's journal. Off (the default, matching the pinned seed corpora)
  /// reproduces the historical crash-is-just-network-silence behavior.
  bool amnesia = false;
  /// Quorum stores only: use the omniscient CanCommunicate oracle for
  /// sloppy-quorum target selection instead of the default phi-accrual
  /// detector (see QuorumConfig::use_oracle_detector). Same-seed A/B runs
  /// of the two modes compare their hinted-handoff behavior.
  bool use_oracle_detector = false;
  /// kQuorumElastic only: run the elastic cluster with sloppy quorums and
  /// hinted handoff instead of the strict R+W>N configuration. The hint-
  /// ledger sweep uses this to drive hint traffic across membership changes
  /// (strict mode stores hints only on rare cross-epoch leg failures);
  /// session guarantees are not asserted in this mode — sloppy quorums
  /// trade RYW for availability by design.
  bool elastic_sloppy = false;
  /// Overload mode (--profile=overload): arms the nemesis load family
  /// (set nemesis.allow_load_spikes too), routes kFlashCrowd / kLoadSpike
  /// through the driver's pacing (offered load multiplies, hot keys
  /// rotate), and turns the overload defenses on for the quorum stores —
  /// server admission control plus client retry budgets and AIMD limits.
  /// The claims checked are unchanged: shedding and failing fast are legal
  /// under overload; corrupting state or failing to converge is not.
  bool overload = false;
  /// Event-scheduler implementation for the run's simulator. The two
  /// schedulers promise identical (when, seq) execution order; the 25-seed
  /// differential harness (tests/simcore_diff_test.cc) runs every seed
  /// under both and asserts byte-identical exports.
  sim::SchedulerKind scheduler = sim::SchedulerKind::kCalendar;
  /// When non-null, filled at end-of-run with the deterministic metric /
  /// trace exports (obs/export.h) for byte-for-byte comparison.
  std::string* capture_metrics_json = nullptr;
  std::string* capture_trace_csv = nullptr;
};

/// Per-store defaults (server counts, op counts sized to each checker).
FuzzOptions DefaultFuzzOptions(FuzzStore store, uint64_t seed);

struct FuzzReport {
  FuzzStore store = FuzzStore::kQuorumWeak;
  uint64_t seed = 0;

  // Workload accounting.
  uint64_t writes_acked = 0;
  uint64_t writes_failed = 0;
  uint64_t reads_ok = 0;
  uint64_t reads_failed = 0;
  uint64_t faults_injected = 0;
  uint64_t messages_dropped = 0;

  // Linearizability (paxos).
  bool lin_checked = false;
  bool linearizable = true;
  bool lin_exhausted = false;
  size_t lin_ops = 0;

  // Convergence after heal + quiescence.
  bool conv_checked = false;
  /// False when the store has no repair path and the schedule dropped
  /// messages (timeline/causal replicate fire-and-forget): divergence is
  /// then expected, not a bug, and convergence is not claimed.
  bool conv_applicable = true;
  ConvergenceResult convergence;

  // Session guarantees.
  bool sess_checked = false;
  SessionCheckResult session;

  // Causal consistency.
  bool causal_checked = false;
  CausalCheckResult causal;

  // Timeline forks: same (key, seqno) observed with two different values.
  bool fork_checked = false;
  size_t fork_violations = 0;

  // CRDT value property (g-counter total == acked increments).
  bool crdt_value_checked = false;
  bool crdt_value_ok = true;

  // Quorum stores: hinted-handoff ledger (every stored hint is eventually
  // delivered, lost to an amnesia crash, or still pending — the
  // fuzz-sweep ledger test asserts stored == delivered + lost + pending)
  // and detector honesty (suspicions raised while the network oracle said
  // the peer was reachable — zero by definition in oracle mode).
  uint64_t hints_stored = 0;
  uint64_t hints_delivered = 0;
  uint64_t hints_lost = 0;
  uint64_t hints_pending = 0;
  uint64_t detector_false_positives = 0;

  // Elastic membership (kQuorumElastic only): reconfigurations that actually
  // committed during the run, plus the data-plane evidence that the epoch
  // fences and migration paths were exercised rather than idle.
  uint64_t epochs_committed = 0;     ///< committed epochs beyond bootstrap
  uint64_t membership_ops = 0;       ///< nemesis add/remove ops that started
  uint64_t keys_migrated = 0;        ///< keys streamed to new owners
  uint64_t stale_epoch_rejects = 0;  ///< data-plane RPCs fenced by epoch
  uint64_t hints_redirected = 0;     ///< hints re-aimed off departed nodes

  // Edge cache: client-tier accounting (kEdgeCache only).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_revokes_sent = 0;
  uint64_t cache_writes_fenced = 0;

  /// Any consistency violation recorded, including ones the store's level
  /// does not forbid (weak-store stale reads). This is how the fuzz tests
  /// prove the checkers detect real anomalies rather than vacuously passing.
  bool AnomalyDetected() const;

  /// True when the store satisfied every property its consistency level
  /// claims under this schedule. On false, `why` (if given) names the
  /// violated claim.
  bool MeetsClaims(std::string* why = nullptr) const;

  /// Deterministic one-line summary (identical across replays of a seed).
  std::string Summary() const;
};

/// Runs one seed. Deterministic: same options => identical report.
FuzzReport RunFuzzSeed(const FuzzOptions& options);

}  // namespace evc::verify

#endif  // EVC_VERIFY_FUZZ_H_
