// Eventual-convergence checker: after faults heal and the system quiesces,
// (1) every replica holds the same state, and (2) no acknowledged write has
// been lost — its value is either still visible or provably superseded.
//
// This is the machine-checked form of the tutorial's core liveness promise:
// "replicas eventually agree, and agreement contains everything the system
// acknowledged". Property (2) is what catches lost updates — an acked write
// that silently vanishes (dropped hint, bad merge, read-repair regression)
// fails the check even though the replicas agree with each other.

#ifndef EVC_VERIFY_CONVERGENCE_H_
#define EVC_VERIFY_CONVERGENCE_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace evc::verify {

/// One replica's final observable state: key -> sorted visible values
/// (sibling sets for multi-value stores, singleton vectors for registers).
using ReplicaState = std::map<std::string, std::vector<std::string>>;

/// A write the system acknowledged to a client.
struct AckedWrite {
  std::string key;
  std::string value;
};

/// Decides whether the final sibling set of `write.key` accounts for
/// `write`. The default (value membership) suits write-once values; stores
/// with causal supersession pass a predicate that also accepts dominated
/// writes (e.g. "some final version's vector clock dominates the write's").
using CoveredPredicate = std::function<bool(
    const AckedWrite& write, const std::vector<std::string>& final_values)>;

struct ConvergenceResult {
  bool replicas_agree = false;
  std::vector<std::string> divergent_keys;  ///< capped at 16
  std::vector<AckedWrite> lost_writes;      ///< capped at 16
  size_t lost_write_count = 0;

  bool ok() const { return replicas_agree && lost_write_count == 0; }
  std::string ToString() const;
};

/// Checks agreement across `replicas` and coverage of every acked write
/// against the first replica's state. With zero replicas the result is
/// vacuously converged (but lost writes are still reported).
[[nodiscard]] ConvergenceResult CheckConvergence(
    const std::vector<ReplicaState>& replicas,
    const std::vector<AckedWrite>& acked_writes,
    const CoveredPredicate& covered = nullptr);

}  // namespace evc::verify

#endif  // EVC_VERIFY_CONVERGENCE_H_
