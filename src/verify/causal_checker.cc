#include "verify/causal_checker.h"

#include <map>

namespace evc::verify {

namespace {
constexpr size_t kDetailCap = 32;
}  // namespace

std::string CausalCheckResult::ToString() const {
  return "monotonic=" + std::to_string(monotonic_violations) +
         " dependency=" + std::to_string(dependency_violations) +
         " not_found=" + std::to_string(not_found_violations);
}

CausalCheckResult CheckCausalHistory(
    const std::vector<CausalRecordedOp>& history) {
  CausalCheckResult result;
  auto note = [&result](std::string detail) {
    if (result.details.size() < kDetailCap) {
      result.details.push_back(std::move(detail));
    }
  };

  struct SessionState {
    // Highest id observed (or written) per key.
    std::map<std::string, causal::WriteId> seen;
    // Owed visibility per key: max dependency id accumulated from observed
    // writes (and the session's own writes — local RYW in causal+).
    std::map<std::string, causal::WriteId> owed;
  };
  std::map<int, SessionState> sessions;

  auto owe = [](SessionState& s, const std::string& key,
                const causal::WriteId& id) {
    causal::WriteId& slot = s.owed[key];
    if (slot < id) slot = id;
  };

  for (size_t i = 0; i < history.size(); ++i) {
    const CausalRecordedOp& op = history[i];
    SessionState& s = sessions[op.session];
    if (op.kind == CausalRecordedOp::Kind::kWrite) {
      // The home datacenter applies the write synchronously: the session
      // must subsequently read its own write (or newer) — and everything
      // the write depended on stays owed.
      owe(s, op.key, op.id);
      for (const causal::Dependency& dep : op.deps) owe(s, dep.key, dep.id);
      causal::WriteId& seen = s.seen[op.key];
      if (seen < op.id) seen = op.id;
      continue;
    }

    const causal::WriteId observed = op.found ? op.id : causal::WriteId{};
    // Monotonicity: never observe an older id than this session already saw.
    auto seen_it = s.seen.find(op.key);
    if (seen_it != s.seen.end() && observed < seen_it->second &&
        op.found) {
      ++result.monotonic_violations;
      note("session " + std::to_string(op.session) + " op#" +
           std::to_string(i) + " key '" + op.key + "' went backwards: " +
           observed.ToString() + " after " + seen_it->second.ToString());
    }
    // Dependency visibility.
    auto owed_it = s.owed.find(op.key);
    if (owed_it != s.owed.end()) {
      if (!op.found) {
        ++result.not_found_violations;
        note("session " + std::to_string(op.session) + " op#" +
             std::to_string(i) + " key '" + op.key +
             "' not found but owes " + owed_it->second.ToString());
      } else if (observed < owed_it->second) {
        ++result.dependency_violations;
        note("session " + std::to_string(op.session) + " op#" +
             std::to_string(i) + " key '" + op.key + "' observed " +
             observed.ToString() + " but owes " + owed_it->second.ToString());
      }
    }
    if (op.found) {
      causal::WriteId& seen = s.seen[op.key];
      if (seen < observed) seen = observed;
      // The observed write's dependencies become owed from now on.
      for (const causal::Dependency& dep : op.deps) owe(s, dep.key, dep.id);
      owe(s, op.key, observed);
    }
  }
  return result;
}

}  // namespace evc::verify
