// Linearizability checker for single-register histories (Wing & Gong).
//
// The taxonomy's strongest level claims more than "reads see the latest
// write" — it claims every concurrent history is equivalent to some
// sequential one that respects real-time order. This module checks that
// property for recorded histories: tests replay concurrent client
// histories against the Paxos store (must always pass) and against the
// R=W=1 eventual store (must fail once a stale read is observed), turning
// the tutorial's strong-vs-eventual distinction into a machine-checked
// predicate.

#ifndef EVC_VERIFY_LINEARIZABILITY_H_
#define EVC_VERIFY_LINEARIZABILITY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace evc::verify {

/// One completed client operation on a single register.
struct Operation {
  enum class Type { kWrite, kRead };
  Type type = Type::kRead;
  /// Write: the value written. Read: the value returned (meaningful only
  /// when `found`).
  std::string value;
  /// Reads: false when the read observed "no value".
  bool found = true;
  /// Real-time interval (any monotonic unit, e.g. virtual microseconds).
  int64_t invoke = 0;
  int64_t response = 0;
};

/// Builders for readable test histories.
Operation Write(std::string value, int64_t invoke, int64_t response);
Operation Read(std::string value, int64_t invoke, int64_t response);
Operation ReadNotFound(int64_t invoke, int64_t response);

struct CheckOptions {
  /// Initial register state ("not found" when `initial_present` is false).
  std::string initial_value;
  bool initial_present = false;
  /// Search budget: states explored before giving up (histories beyond the
  /// budget report Unknown=false via `exhausted`). 1M default handles the
  /// ~20-op histories the tests produce instantly.
  uint64_t max_states = 1u << 20;
};

struct CheckResult {
  bool linearizable = false;
  bool exhausted = false;  ///< budget ran out (result inconclusive)
  uint64_t states_explored = 0;
};

/// Decides whether `history` has a linearization: a total order of all
/// operations, consistent with real-time precedence (op A wholly before op
/// B stays before B), under which every read returns the most recently
/// written value. Complete operations only (crashed/in-flight ops should
/// be dropped or closed at +infinity by the caller).
[[nodiscard]] CheckResult CheckLinearizable(
    const std::vector<Operation>& history, const CheckOptions& options = {});

}  // namespace evc::verify

#endif  // EVC_VERIFY_LINEARIZABILITY_H_
