// Minimal leveled logging. Off by default so benchmarks and tests stay
// quiet; enable with EVC_SET_LOG_LEVEL or the EVC_LOG_LEVEL env var.

#ifndef EVC_COMMON_LOGGING_H_
#define EVC_COMMON_LOGGING_H_

#include <cstdarg>
#include <cstdio>

namespace evc {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
  kOff = -1,
};

/// Global log level (atomic; safe to read from Runtime threads, normally set
/// once at startup).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// printf-style log emission; filtered by the global level.
void LogImpl(LogLevel level, const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));

}  // namespace evc

#define EVC_LOG(level, ...) \
  ::evc::LogImpl((level), __FILE__, __LINE__, __VA_ARGS__)
#define EVC_LOG_ERROR(...) EVC_LOG(::evc::LogLevel::kError, __VA_ARGS__)
#define EVC_LOG_WARN(...) EVC_LOG(::evc::LogLevel::kWarn, __VA_ARGS__)
#define EVC_LOG_INFO(...) EVC_LOG(::evc::LogLevel::kInfo, __VA_ARGS__)
#define EVC_LOG_DEBUG(...) EVC_LOG(::evc::LogLevel::kDebug, __VA_ARGS__)

#endif  // EVC_COMMON_LOGGING_H_
