// Non-cryptographic hashing utilities: FNV-1a for byte strings, a 64-bit
// finalizer-style mixer, and hash combination. Used for consistent hashing,
// Merkle trees, and key scrambling. Stable across platforms and runs (never
// keyed by ASLR), because replicas must agree on hash placement.

#ifndef EVC_COMMON_HASH_H_
#define EVC_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace evc {

/// 64-bit FNV-1a over arbitrary bytes.
inline uint64_t Fnv1a64(std::string_view data,
                        uint64_t seed = 0xcbf29ce484222325ULL) {
  uint64_t h = seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Strong 64-bit mixer (SplitMix64 finalizer). Bijective.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Order-dependent combination of two 64-bit hashes.
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// CRC32 (Castagnoli polynomial, software table implementation) for WAL
/// record integrity checking.
uint32_t Crc32c(std::string_view data);

}  // namespace evc

#endif  // EVC_COMMON_HASH_H_
