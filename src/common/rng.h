// Deterministic pseudo-random number generation.
//
// All randomized components in evc (workloads, latency models, gossip peer
// selection, Monte-Carlo staleness estimation) draw from an explicitly seeded
// Rng so that every experiment is bit-reproducible. We use xoshiro256**,
// seeded through SplitMix64 as its authors recommend.

#ifndef EVC_COMMON_RNG_H_
#define EVC_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

#include "common/status.h"

namespace evc {

/// SplitMix64 step: used for seeding and as a cheap stateless mixer.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** deterministic PRNG. Not cryptographic; fast and high quality
/// for simulation purposes.
class Rng {
 public:
  /// Seeds the generator; two Rng instances with the same seed produce
  /// identical streams.
  explicit Rng(uint64_t seed = 0xdecafbadULL) { Seed(seed); }

  /// Re-seeds the generator deterministically from `seed`.
  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  /// Returns the next 64 uniformly distributed bits.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound) {
    EVC_CHECK(bound > 0);
    // Lemire-style: threshold below which we must reject.
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const uint64_t r = NextU64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    EVC_CHECK(lo <= hi);
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    // span == 0 means the whole 64-bit range.
    const uint64_t r = (span == 0) ? NextU64() : NextBounded(span);
    return lo + static_cast<int64_t>(r);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool NextBool(double p) { return NextDouble() < p; }

  /// Exponentially distributed double with the given mean (> 0).
  double NextExponential(double mean) {
    EVC_CHECK(mean > 0);
    double u;
    do {
      u = NextDouble();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  /// Standard normal via Box–Muller (one value per call; the pair's second
  /// value is discarded to keep the state machine simple and deterministic).
  double NextGaussian(double mean = 0.0, double stddev = 1.0) {
    double u1;
    do {
      u1 = NextDouble();
    } while (u1 <= 1e-12);
    const double u2 = NextDouble();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    return mean + stddev * z;
  }

  /// Log-normal sample parameterized by the underlying normal's mu/sigma.
  double NextLogNormal(double mu, double sigma) {
    return std::exp(NextGaussian(mu, sigma));
  }

  /// Forks an independent child generator whose stream is a pure function of
  /// this generator's current state and `stream_id`. Used to give each
  /// simulated node its own stream without cross-coupling.
  Rng Fork(uint64_t stream_id) {
    uint64_t mix = NextU64() ^ (stream_id * 0x9e3779b97f4a7c15ULL);
    return Rng(mix);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace evc

#endif  // EVC_COMMON_RNG_H_
