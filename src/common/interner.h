// String interning: map recurring names (workload keys, message types, RPC
// methods, span names) to dense small integers once, then pass the integer.
//
// The hot paths that used to hash or copy a std::string per operation —
// per-message type lookups, per-call method dispatch, per-op workload key
// construction — intern the string once and index flat vectors afterwards.
//
// Determinism: ids are assigned in first-intern order, so for a fixed seed
// the id of every name is identical across runs (pinned by interner_test).
// Ids are injective per table by construction: a name maps to exactly one
// id and an id to exactly one name for the table's lifetime.
//
// The reverse index is an unordered_map used for LOOKUP ONLY — the table is
// never iterated, so hash order can never leak into execution order or
// exports. evc_lint's unordered-iteration check stays armed for this file;
// tests/lint_test.cc audits that iterating a KeyInterner's index would still
// be flagged (the exemption is "lookup-only", not "this container is safe").

#ifndef EVC_COMMON_INTERNER_H_
#define EVC_COMMON_INTERNER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/status.h"

namespace evc {

/// Dense id for an interned string. Ids start at 0 and are assigned in
/// first-intern order.
using KeyId = uint32_t;

constexpr KeyId kInvalidKeyId = UINT32_MAX;

class KeyInterner {
 public:
  KeyInterner() = default;
  KeyInterner(const KeyInterner&) = delete;
  KeyInterner& operator=(const KeyInterner&) = delete;

  /// Returns the id for `name`, assigning the next dense id on first sight.
  KeyId Intern(std::string_view name) {
    auto it = index_.find(name);
    if (it != index_.end()) return it->second;
    const KeyId id = static_cast<KeyId>(names_.size());
    names_.emplace_back(name);
    index_.emplace(names_.back(), id);
    return id;
  }

  /// The id of `name` if already interned, else kInvalidKeyId. Never assigns.
  KeyId Lookup(std::string_view name) const {
    auto it = index_.find(name);
    return it == index_.end() ? kInvalidKeyId : it->second;
  }

  /// The canonical string for `id`. The view is stable for the interner's
  /// lifetime (names live in a deque; they never move).
  std::string_view NameOf(KeyId id) const {
    EVC_CHECK(id < names_.size());
    return names_[id];
  }

  size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

 private:
  // Heterogeneous lookup so Intern/Lookup take string_view without building
  // a temporary std::string.
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  // Stable storage for the canonical strings, in id order. deque: grows
  // without moving existing strings, so string_views into it stay valid.
  std::deque<std::string> names_;
  // Lookup-only reverse index (never iterated; see file comment).
  std::unordered_map<std::string_view, KeyId, Hash, Eq> index_;
};

}  // namespace evc

#endif  // EVC_COMMON_INTERNER_H_
