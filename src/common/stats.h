// Measurement primitives for experiments: streaming mean/variance, and a
// log-bucketed latency histogram with percentile queries (HdrHistogram-lite).

#ifndef EVC_COMMON_STATS_H_
#define EVC_COMMON_STATS_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace evc {

/// Welford streaming mean / variance / min / max.
class OnlineStats {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
    sum_ += x;
  }

  uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Histogram over non-negative values with geometric buckets: exact counts
/// for small values, ~2% relative error on percentiles for large ones.
class Histogram {
 public:
  Histogram();

  /// Records one sample (negative samples clamp to 0).
  void Add(double value);

  /// Merges another histogram's samples into this one.
  void Merge(const Histogram& other);

  uint64_t count() const { return count_; }
  double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  double max() const { return max_; }
  double min() const { return count_ ? min_ : 0.0; }

  /// Value at quantile q in [0,1] (linear interpolation within a bucket).
  double Percentile(double q) const;

  /// One-line summary: count/mean/p50/p95/p99/max.
  std::string Summary() const;

  // Bucket geometry, exposed for exporters and boundary tests. Bucket 0 is
  // [0, 1); bucket i >= 1 covers [BucketLower(i), BucketUpper(i)) with
  // BucketLower(i) == 2^((i-1)/16).
  static constexpr int kBucketCount = 512;
  static int BucketFor(double value);
  static double BucketLower(int bucket);
  static double BucketUpper(int bucket);

 private:
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace evc

#endif  // EVC_COMMON_STATS_H_
