#include "common/distributions.h"

#include <cmath>

#include "common/hash.h"

namespace evc {

UniformDistribution::UniformDistribution(uint64_t item_count)
    : item_count_(item_count) {
  EVC_CHECK(item_count > 0);
}

uint64_t UniformDistribution::Next(Rng& rng) {
  return rng.NextBounded(item_count_);
}

ZipfianDistribution::ZipfianDistribution(uint64_t item_count, double theta)
    : item_count_(item_count), theta_(theta) {
  EVC_CHECK(item_count > 0);
  EVC_CHECK(theta > 0.0 && theta < 1.0);
  alpha_ = 1.0 / (1.0 - theta_);
  zetan_ = Zeta(item_count_, theta_);
  const double zeta2 = Zeta(2, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(item_count_),
                         1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

double ZipfianDistribution::Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfianDistribution::Next(Rng& rng) {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(item_count_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= item_count_ ? item_count_ - 1 : rank;
}

ScrambledZipfianDistribution::ScrambledZipfianDistribution(uint64_t item_count,
                                                           double theta)
    : zipf_(item_count, theta), item_count_(item_count) {}

uint64_t ScrambledZipfianDistribution::Next(Rng& rng) {
  const uint64_t rank = zipf_.Next(rng);
  return Mix64(rank) % item_count_;
}

LatestDistribution::LatestDistribution(uint64_t initial_item_count,
                                       double theta)
    : item_count_(initial_item_count), zipf_(initial_item_count, theta) {
  EVC_CHECK(initial_item_count > 0);
}

uint64_t LatestDistribution::Next(Rng& rng) {
  // Distance back from the most recent item, folded into the live range.
  const uint64_t back = zipf_.Next(rng) % item_count_;
  return item_count_ - 1 - back;
}

HotspotDistribution::HotspotDistribution(uint64_t item_count,
                                         double hot_set_fraction,
                                         double hot_draw_fraction)
    : item_count_(item_count),
      hot_count_(static_cast<uint64_t>(
          static_cast<double>(item_count) * hot_set_fraction)),
      hot_draw_fraction_(hot_draw_fraction) {
  EVC_CHECK(item_count > 0);
  if (hot_count_ == 0) hot_count_ = 1;
  if (hot_count_ > item_count_) hot_count_ = item_count_;
}

uint64_t HotspotDistribution::Next(Rng& rng) {
  if (rng.NextBool(hot_draw_fraction_)) {
    return rng.NextBounded(hot_count_);
  }
  if (hot_count_ == item_count_) return rng.NextBounded(item_count_);
  return hot_count_ + rng.NextBounded(item_count_ - hot_count_);
}

}  // namespace evc
