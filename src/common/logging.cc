#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace evc {
namespace {

LogLevel InitialLevel() {
  const char* env = std::getenv("EVC_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kOff;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kOff;
}

// Process-wide filter threshold. Atomic so a Runtime-thread log call racing
// a startup SetLogLevel is a benign relaxed load, never UB; the level only
// filters output and is invisible to replay-checked state.
// evc-lint: allow(thread-hostile) reason=process-wide log filter, atomic relaxed, no replay-visible state
std::atomic<LogLevel> g_level{InitialLevel()};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
    default:
      return "?";
  }
}

}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void LogImpl(LogLevel level, const char* file, int line, const char* fmt,
             ...) {
  if (static_cast<int>(level) >
      static_cast<int>(g_level.load(std::memory_order_relaxed))) {
    return;
  }
  const char* base = std::strrchr(file, '/');
  base = base ? base + 1 : file;
  std::fprintf(stderr, "[%s %s:%d] ", LevelName(level), base, line);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace evc
