#include "common/slab.h"

#include <new>

namespace evc {

Slab::~Slab() {
  // Chunks are released wholesale; individual blocks need no bookkeeping.
  // Large blocks are freed eagerly in Free(), so nothing to do for them:
  // a Slab dying with live large blocks would leak, which EVC_CHECK guards
  // against in debug-heavy test runs via the accounting counters.
}

void* Slab::Alloc(size_t size) {
  ++allocs_;
  if (size == 0) size = 1;
  if (size > kMaxSmall) {
    ++large_allocs_;
    return ::operator new(size, std::align_val_t(kAlign));
  }
  const size_t cls = ClassOf(size);
  if (free_lists_[cls] == nullptr) Refill(cls);
  FreeBlock* block = free_lists_[cls];
  free_lists_[cls] = block->next;
  return block;
}

void Slab::Free(void* p, size_t size) {
  EVC_CHECK(p != nullptr);
  ++frees_;
  if (size == 0) size = 1;
  if (size > kMaxSmall) {
    ::operator delete(p, std::align_val_t(kAlign));
    return;
  }
  const size_t cls = ClassOf(size);
  auto* block = static_cast<FreeBlock*>(p);
  block->next = free_lists_[cls];
  free_lists_[cls] = block;
}

void Slab::Refill(size_t cls) {
  const size_t block_bytes = ClassBytes(cls);
  auto chunk = std::make_unique<char[]>(kChunkBytes);
  char* base = chunk.get();
  // make_unique<char[]> comes from operator new[], aligned to
  // __STDCPP_DEFAULT_NEW_ALIGNMENT__ (>= 16 on all supported targets), and
  // block_bytes is a multiple of kAlign, so every block stays aligned.
  const size_t count = kChunkBytes / block_bytes;
  EVC_CHECK(count > 0);
  // Thread blocks so the lowest address pops first (deterministic order).
  for (size_t i = count; i > 0; --i) {
    auto* block = reinterpret_cast<FreeBlock*>(base + (i - 1) * block_bytes);
    block->next = free_lists_[cls];
    free_lists_[cls] = block;
  }
  chunks_.push_back(std::move(chunk));
}

}  // namespace evc
