// Key-popularity distributions for workload generation (YCSB-style).

#ifndef EVC_COMMON_DISTRIBUTIONS_H_
#define EVC_COMMON_DISTRIBUTIONS_H_

#include <cstdint>
#include <memory>

#include "common/rng.h"

namespace evc {

/// Draws item indices in [0, item_count) according to some popularity law.
class KeyDistribution {
 public:
  virtual ~KeyDistribution() = default;
  /// Returns the next sampled item index in [0, item_count()).
  virtual uint64_t Next(Rng& rng) = 0;
  /// Number of distinct items this distribution draws from.
  virtual uint64_t item_count() const = 0;
};

/// Every item equally likely.
class UniformDistribution : public KeyDistribution {
 public:
  explicit UniformDistribution(uint64_t item_count);
  uint64_t Next(Rng& rng) override;
  uint64_t item_count() const override { return item_count_; }

 private:
  uint64_t item_count_;
};

/// Zipfian distribution over [0, n) with exponent theta, using the
/// rejection-inversion-free method of Gray et al. ("Quickly generating
/// billion-record synthetic databases", SIGMOD '94) as popularized by YCSB.
/// Item 0 is the most popular.
class ZipfianDistribution : public KeyDistribution {
 public:
  /// `theta` in (0, 1); YCSB default is 0.99. Larger theta = more skew.
  ZipfianDistribution(uint64_t item_count, double theta = 0.99);
  uint64_t Next(Rng& rng) override;
  uint64_t item_count() const override { return item_count_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t item_count_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

/// Zipfian with the popular items scattered across the key space (YCSB's
/// "scrambled zipfian"): preserves the frequency law while decorrelating
/// popularity from key order, which matters for range-partitioned stores.
class ScrambledZipfianDistribution : public KeyDistribution {
 public:
  ScrambledZipfianDistribution(uint64_t item_count, double theta = 0.99);
  uint64_t Next(Rng& rng) override;
  uint64_t item_count() const override { return item_count_; }

 private:
  ZipfianDistribution zipf_;
  uint64_t item_count_;
};

/// "Latest" distribution: recently inserted items are most popular. The
/// caller advances `max_item` as inserts happen; draws are Zipfian distances
/// back from the newest item.
class LatestDistribution : public KeyDistribution {
 public:
  explicit LatestDistribution(uint64_t initial_item_count,
                              double theta = 0.99);
  uint64_t Next(Rng& rng) override;
  uint64_t item_count() const override { return item_count_; }
  /// Records that a new item was appended; it becomes the most popular.
  void AdvanceItemCount() { ++item_count_; }

 private:
  uint64_t item_count_;
  ZipfianDistribution zipf_;
};

/// Hotspot distribution: `hot_fraction` of draws hit the first
/// `hot_set_fraction * n` items uniformly; the rest hit the cold set.
class HotspotDistribution : public KeyDistribution {
 public:
  HotspotDistribution(uint64_t item_count, double hot_set_fraction,
                      double hot_draw_fraction);
  uint64_t Next(Rng& rng) override;
  uint64_t item_count() const override { return item_count_; }

 private:
  uint64_t item_count_;
  uint64_t hot_count_;
  double hot_draw_fraction_;
};

}  // namespace evc

#endif  // EVC_COMMON_DISTRIBUTIONS_H_
