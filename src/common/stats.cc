#include "common/stats.h"

#include <algorithm>
#include <cstdio>

namespace evc {

Histogram::Histogram() : buckets_(kBucketCount, 0) {}

// Geometric buckets: bucket i >= 1 covers [2^((i-1)/16), 2^(i/16)) and
// sub-1.0 values land in bucket 0. 512 buckets cover up to ~2^32.
int Histogram::BucketFor(double value) {
  if (value < 1.0) return 0;
  int b = static_cast<int>(std::log2(value) * 16.0) + 1;
  if (b >= kBucketCount) return kBucketCount - 1;
  // log2's rounding error can land values at or near a bucket boundary one
  // bucket off in either direction (e.g. log2(2^(1/16)) * 16 truncates to 0,
  // and values one ulp below a boundary round up onto it), skewing
  // percentiles. Settle boundaries against the buckets' own exp2-defined
  // edges instead of trusting the truncated logarithm.
  if (value >= BucketUpper(b)) {
    ++b;
  } else if (value < BucketLower(b)) {
    --b;
  }
  if (b < 1) b = 1;  // value >= 1.0 always belongs at or above bucket 1
  if (b >= kBucketCount) b = kBucketCount - 1;
  return b;
}

double Histogram::BucketLower(int bucket) {
  if (bucket <= 0) return 0.0;
  return std::exp2(static_cast<double>(bucket - 1) / 16.0);
}

double Histogram::BucketUpper(int bucket) {
  return std::exp2(static_cast<double>(bucket) / 16.0);
}

void Histogram::Add(double value) {
  if (value < 0) value = 0;
  ++buckets_[static_cast<size_t>(BucketFor(value))];
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  sum_ += value;
  ++count_;
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  sum_ += other.sum_;
  count_ += other.count_;
}

double Histogram::Percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  uint64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    if (buckets_[i] == 0) continue;
    const uint64_t next = seen + buckets_[i];
    if (static_cast<double>(next) >= target) {
      // Interpolate within the bucket.
      const double frac =
          buckets_[i] == 0
              ? 0.0
              : (target - static_cast<double>(seen)) /
                    static_cast<double>(buckets_[i]);
      const double lo = BucketLower(i);
      const double hi = std::min(BucketUpper(i), max_);
      double v = lo + frac * (hi - lo);
      return std::clamp(v, min_, max_);
    }
    seen = next;
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f",
                static_cast<unsigned long long>(count_), mean(),
                Percentile(0.50), Percentile(0.95), Percentile(0.99), max());
  return buf;
}

}  // namespace evc
