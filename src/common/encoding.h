// Binary encoding helpers: little-endian fixed-width integers, LEB128-style
// varints, and length-prefixed strings, plus streaming Encoder/Decoder
// wrappers. Used by the WAL, Merkle tree, message serialization, and CRDT
// state snapshots. Decoding is fully validated: a truncated or malformed
// buffer yields Status::Corruption, never UB.

#ifndef EVC_COMMON_ENCODING_H_
#define EVC_COMMON_ENCODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"

namespace evc {

/// Appends a 32-bit little-endian integer to `dst`.
inline void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(value >> (8 * i));
  dst->append(buf, 4);
}

/// Appends a 64-bit little-endian integer to `dst`.
inline void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(value >> (8 * i));
  dst->append(buf, 8);
}

/// Appends an unsigned LEB128 varint.
inline void PutVarint64(std::string* dst, uint64_t value) {
  while (value >= 0x80) {
    dst->push_back(static_cast<char>(value | 0x80));
    value >>= 7;
  }
  dst->push_back(static_cast<char>(value));
}

/// Appends a varint length followed by the raw bytes of `value`.
inline void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

/// Streaming decoder over a borrowed buffer. All Get* methods return
/// Corruption on truncation and advance the cursor only on success.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  /// Bytes not yet consumed.
  size_t remaining() const { return data_.size() - pos_; }
  bool Done() const { return pos_ == data_.size(); }

  Status GetFixed32(uint32_t* out) {
    if (remaining() < 4) return Status::Corruption("truncated fixed32");
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) | static_cast<unsigned char>(data_[pos_ + i]);
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  Status GetFixed64(uint64_t* out) {
    if (remaining() < 8) return Status::Corruption("truncated fixed64");
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | static_cast<unsigned char>(data_[pos_ + i]);
    }
    pos_ += 8;
    *out = v;
    return Status::OK();
  }

  Status GetVarint64(uint64_t* out) {
    uint64_t v = 0;
    int shift = 0;
    size_t p = pos_;
    while (p < data_.size() && shift <= 63) {
      const unsigned char byte = static_cast<unsigned char>(data_[p++]);
      v |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        pos_ = p;
        *out = v;
        return Status::OK();
      }
      shift += 7;
    }
    return Status::Corruption("truncated or overlong varint");
  }

  Status GetLengthPrefixed(std::string* out) {
    uint64_t len = 0;
    const size_t saved = pos_;
    EVC_RETURN_IF_ERROR(GetVarint64(&len));
    if (len > remaining()) {
      pos_ = saved;
      return Status::Corruption("length-prefixed value truncated");
    }
    out->assign(data_.data() + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  Status GetBytes(size_t n, std::string* out) {
    if (n > remaining()) return Status::Corruption("raw bytes truncated");
    out->assign(data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace evc

#endif  // EVC_COMMON_ENCODING_H_
