// Status / Result error-handling primitives for the evc library.
//
// The public API of evc never throws across module boundaries: fallible
// operations return `Status` (or `Result<T>` when they also produce a value),
// following the Arrow / RocksDB idiom. Logic errors (programming bugs) abort
// via EVC_CHECK.

#ifndef EVC_COMMON_STATUS_H_
#define EVC_COMMON_STATUS_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace evc {

/// Machine-readable classification of an error. Mirrors the subset of the
/// RocksDB / absl status space that a replicated store actually produces.
enum class StatusCode : uint8_t {
  kOk = 0,
  kNotFound = 1,            ///< Key or entity does not exist.
  kAlreadyExists = 2,       ///< Uniqueness violated (e.g. duplicate register).
  kInvalidArgument = 3,     ///< Caller passed a malformed argument.
  kCorruption = 4,          ///< Stored bytes failed validation (CRC, decode).
  kTimedOut = 5,            ///< Operation deadline elapsed.
  kUnavailable = 6,         ///< Quorum / leader unreachable; retry may help.
  kAborted = 7,             ///< Concurrency conflict; caller should retry.
  kFailedPrecondition = 8,  ///< System state forbids the operation.
  kOutOfRange = 9,          ///< Index or offset beyond valid range.
  kNotSupported = 10,       ///< Feature not implemented for this config.
  kInternal = 11,           ///< Invariant violated inside the library.
  kDeadlineExceeded = 12,   ///< Caller's overall budget elapsed (vs kTimedOut,
                            ///< which is a single attempt timing out).
  kResourceExhausted = 13,  ///< Server shed the request under overload;
                            ///< retry after backing off (admission control).
};

/// Returns a stable human-readable name for `code` (e.g. "NotFound").
const char* StatusCodeToString(StatusCode code);

/// Value-semantic error carrier. Cheap to copy in the OK case (no message
/// allocation); carries a code + message otherwise.
///
/// The type itself is [[nodiscard]]: any call that returns a Status must
/// consume it (check it, propagate it, or EVC_CHECK_OK it). Silently dropping
/// an error is a compile error under -Werror, and the `discarded-status`
/// evc-lint check provides a redundant belt for builds without warnings.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status TimedOut(std::string msg = "") {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg = "") {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg = "") {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg = "") {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg = "") {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "Code: message" (or "OK").
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  StatusCode code_;
  std::string message_;
};

/// A Status or a value of type T. Modeled after arrow::Result: exactly one of
/// the two is present; accessing the value of an errored Result aborts.
/// [[nodiscard]] for the same reason as Status: a dropped Result silently
/// swallows the error it carries.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value (the common success path).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from error status. Aborts if `status.ok()` — an OK Result must
  /// carry a value.
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      std::fprintf(stderr, "Result constructed from OK status without value\n");
      std::abort();
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; aborts if this Result holds an error.
  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T& value() & {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckHasValue() const {
    if (!value_.has_value()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace evc

/// Propagates a non-OK Status to the caller.
#define EVC_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::evc::Status _evc_st = (expr);          \
    if (!_evc_st.ok()) return _evc_st;       \
  } while (0)

#define EVC_CONCAT_IMPL(a, b) a##b
#define EVC_CONCAT(a, b) EVC_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T>), propagating error status to the caller,
/// otherwise assigning the value to `lhs`.
#define EVC_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  auto EVC_CONCAT(_evc_res_, __LINE__) = (rexpr);               \
  if (!EVC_CONCAT(_evc_res_, __LINE__).ok())                    \
    return EVC_CONCAT(_evc_res_, __LINE__).status();            \
  lhs = std::move(EVC_CONCAT(_evc_res_, __LINE__)).value()

/// Aborts on violated invariants (programming errors), never recoverable.
#define EVC_CHECK(cond)                                                      \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "EVC_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define EVC_CHECK_OK(expr)                                                   \
  do {                                                                       \
    ::evc::Status _evc_st = (expr);                                          \
    if (!_evc_st.ok()) {                                                     \
      std::fprintf(stderr, "EVC_CHECK_OK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, _evc_st.ToString().c_str());                    \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#endif  // EVC_COMMON_STATUS_H_
