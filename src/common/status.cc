#include "common/status.h"

namespace evc {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace evc
