#include "common/hash.h"

#include <array>

namespace evc {
namespace {

std::array<uint32_t, 256> BuildCrc32cTable() {
  std::array<uint32_t, 256> table{};
  constexpr uint32_t kPoly = 0x82f63b78u;  // reflected Castagnoli
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : (crc >> 1);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32c(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = BuildCrc32cTable();
  uint32_t crc = 0xffffffffu;
  for (unsigned char c : data) {
    crc = kTable[(crc ^ c) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace evc
