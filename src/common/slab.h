// Size-class slab allocator for short-lived simulator objects.
//
// The simulator hot path allocates and frees one small object per scheduled
// event (the closure) and one per in-flight message (the payload box).
// Routing those through malloc costs a lock-free-but-slow global allocator
// round-trip each time; the slab turns both into a pointer pop/push on a
// per-size-class freelist backed by large chunks that are never returned
// until the slab dies.
//
// Properties:
//   * Size classes in kAlign steps up to kMaxSmall; larger requests fall
//     back to operator new (counted, so benches can verify the hot path
//     stays under kMaxSmall).
//   * LIFO freelists: the most recently freed block is the next allocated,
//     so the hot path stays cache-warm and reuse order is deterministic for
//     a deterministic alloc/free sequence (no address-order dependence).
//   * Single-threaded by design, like the simulator that owns it.

#ifndef EVC_COMMON_SLAB_H_
#define EVC_COMMON_SLAB_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"

namespace evc {

class Slab {
 public:
  /// Block alignment and size-class step. Every block can hold any object
  /// with alignment <= kAlign (covers all event closures and payloads).
  static constexpr size_t kAlign = 16;
  /// Largest slab-served request; bigger ones go to operator new.
  static constexpr size_t kMaxSmall = 1024;
  /// Bytes carved per chunk.
  static constexpr size_t kChunkBytes = 64 * 1024;

  Slab() = default;
  Slab(const Slab&) = delete;
  Slab& operator=(const Slab&) = delete;
  ~Slab();

  /// Returns a block of at least `size` bytes, aligned to kAlign.
  void* Alloc(size_t size);

  /// Returns a block obtained from Alloc(size) with the same `size`.
  void Free(void* p, size_t size);

  // --- accounting (diagnostics and tests) ----------------------------------
  uint64_t allocs() const { return allocs_; }
  uint64_t frees() const { return frees_; }
  uint64_t live() const { return allocs_ - frees_; }
  /// Allocations that exceeded kMaxSmall and hit operator new.
  uint64_t large_allocs() const { return large_allocs_; }
  /// Total bytes reserved in chunks (high-water mark; never shrinks).
  uint64_t reserved_bytes() const { return chunks_.size() * kChunkBytes; }

 private:
  struct FreeBlock {
    FreeBlock* next;
  };

  static constexpr size_t kNumClasses = kMaxSmall / kAlign;

  static size_t ClassOf(size_t size) { return (size + kAlign - 1) / kAlign - 1; }
  static size_t ClassBytes(size_t cls) { return (cls + 1) * kAlign; }

  /// Carves a fresh chunk into blocks of class `cls` and threads them onto
  /// its freelist.
  void Refill(size_t cls);

  FreeBlock* free_lists_[kNumClasses] = {};
  std::vector<std::unique_ptr<char[]>> chunks_;
  uint64_t allocs_ = 0;
  uint64_t frees_ = 0;
  uint64_t large_allocs_ = 0;
};

}  // namespace evc

#endif  // EVC_COMMON_SLAB_H_
