#include "storage/dvv_store.h"

#include <algorithm>

#include "common/status.h"

namespace evc {

Dot DvvStore::Put(const std::string& key, std::string value,
                  const VersionVector& context) {
  Entry& entry = map_[key];
  // Advance past anything the context or container has seen from us, so
  // the new dot is genuinely fresh.
  counter_ = std::max({counter_, context.Get(replica_id_),
                       entry.context.Get(replica_id_)}) +
             1;
  const Dot dot{replica_id_, counter_};

  // Prune exactly the siblings the writer observed (covered by context).
  entry.siblings.erase(
      std::remove_if(entry.siblings.begin(), entry.siblings.end(),
                     [&context](const DvvSibling& s) {
                       return Covered(s.dot, context);
                     }),
      entry.siblings.end());

  DvvSibling sibling;
  sibling.value = std::move(value);
  sibling.dot = dot;
  entry.siblings.push_back(std::move(sibling));
  entry.context.MergeWith(context);
  entry.context.Set(replica_id_,
                    std::max(entry.context.Get(replica_id_), dot.counter));
  return dot;
}

Dot DvvStore::Delete(const std::string& key, const VersionVector& context) {
  Entry& entry = map_[key];
  counter_ = std::max({counter_, context.Get(replica_id_),
                       entry.context.Get(replica_id_)}) +
             1;
  const Dot dot{replica_id_, counter_};
  entry.siblings.erase(
      std::remove_if(entry.siblings.begin(), entry.siblings.end(),
                     [&context](const DvvSibling& s) {
                       return Covered(s.dot, context);
                     }),
      entry.siblings.end());
  DvvSibling sibling;
  sibling.dot = dot;
  sibling.tombstone = true;
  entry.siblings.push_back(std::move(sibling));
  entry.context.MergeWith(context);
  entry.context.Set(replica_id_,
                    std::max(entry.context.Get(replica_id_), dot.counter));
  return dot;
}

DvvReadResult DvvStore::Get(const std::string& key) const {
  DvvReadResult result;
  auto it = map_.find(key);
  if (it == map_.end()) return result;
  for (const DvvSibling& s : it->second.siblings) {
    if (!s.tombstone) result.siblings.push_back(s);
  }
  result.context = it->second.context;
  return result;
}

DvvStore::Container DvvStore::GetContainer(const std::string& key) const {
  Container out;
  auto it = map_.find(key);
  if (it == map_.end()) return out;
  out.siblings = it->second.siblings;
  out.context = it->second.context;
  return out;
}

bool DvvStore::MergeRemote(const std::string& key, const Container& remote) {
  if (remote.siblings.empty() && remote.context.empty()) return false;
  Entry& entry = map_[key];

  // DVV container join: keep a sibling iff the other side either also has
  // its dot, or has never observed it.
  auto has_dot = [](const std::vector<DvvSibling>& siblings, const Dot& dot) {
    return std::any_of(
        siblings.begin(), siblings.end(),
        [&dot](const DvvSibling& s) { return s.dot == dot; });
  };

  std::vector<DvvSibling> merged;
  bool changed = false;
  for (const DvvSibling& mine : entry.siblings) {
    if (has_dot(remote.siblings, mine.dot) ||
        !Covered(mine.dot, remote.context)) {
      merged.push_back(mine);
    } else {
      changed = true;  // remote observed and removed this sibling
    }
  }
  for (const DvvSibling& theirs : remote.siblings) {
    if (has_dot(entry.siblings, theirs.dot)) continue;
    if (!Covered(theirs.dot, entry.context)) {
      merged.push_back(theirs);
      changed = true;
    }
  }

  const VersionVector joined =
      VersionVector::Merge(entry.context, remote.context);
  if (!(joined == entry.context)) changed = true;
  entry.siblings = std::move(merged);
  entry.context = joined;
  if (entry.siblings.empty() && entry.context.empty()) map_.erase(key);
  return changed;
}

size_t DvvStore::sibling_count(const std::string& key) const {
  auto it = map_.find(key);
  return it == map_.end() ? 0 : it->second.siblings.size();
}

bool DvvStore::Identical(const DvvStore& a, const DvvStore& b,
                         const std::string& key) {
  const Container ca = a.GetContainer(key);
  const Container cb = b.GetContainer(key);
  if (!(ca.context == cb.context)) return false;
  if (ca.siblings.size() != cb.siblings.size()) return false;
  for (const DvvSibling& s : ca.siblings) {
    const bool found = std::any_of(
        cb.siblings.begin(), cb.siblings.end(), [&s](const DvvSibling& o) {
          return o.dot == s.dot && o.value == s.value &&
                 o.tombstone == s.tombstone;
        });
    if (!found) return false;
  }
  return true;
}

}  // namespace evc
