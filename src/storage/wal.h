// Write-ahead log with CRC-validated records.
//
// Each replica journals its accepted writes so that a crashed replica can
// recover its pre-crash state — the tutorial's availability arguments assume
// replicas rejoin with durable state and then anti-entropy fills the gap.
// The log is a byte buffer (simulated durable medium) that can also be
// persisted to a real file. Record framing: [crc32c(4)][len varint][payload];
// recovery stops cleanly at the first torn/corrupt record.

#ifndef EVC_STORAGE_WAL_H_
#define EVC_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace evc {

/// Append-only write-ahead log over an owned byte buffer.
class WriteAheadLog {
 public:
  WriteAheadLog() = default;

  /// Appends one record; returns its starting offset.
  uint64_t Append(std::string_view record);

  /// Reads every valid record from the head of the log. On encountering a
  /// torn or corrupt record, stops and reports how many bytes were valid via
  /// `valid_prefix` (recovery truncates there) — this is not an error, it is
  /// the normal crash case. Corrupt-in-the-middle is indistinguishable from
  /// torn-at-tail and handled the same way.
  Status ReadAll(std::vector<std::string>* records,
                 uint64_t* valid_prefix = nullptr) const;

  /// Truncates the log to `size` bytes (used after recovery).
  void TruncateTo(uint64_t size);

  /// Drops all contents (e.g. after a checkpoint).
  void Reset() { buffer_.clear(); }

  uint64_t size_bytes() const { return buffer_.size(); }
  const std::string& buffer() const { return buffer_; }
  /// Test hook: corrupts the byte at `offset` (simulated media fault).
  void CorruptByteAt(uint64_t offset);

  /// Persists the raw log to a file / loads it back.
  Status SaveToFile(const std::string& path) const;
  Status LoadFromFile(const std::string& path);

 private:
  std::string buffer_;
};

}  // namespace evc

#endif  // EVC_STORAGE_WAL_H_
