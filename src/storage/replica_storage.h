// Durable per-replica storage: VersionedStore + write-ahead log + Merkle
// tree, with crash recovery.
//
// Every state change (local put/delete, remote merge) is journaled before it
// is applied, and the Merkle tree is maintained incrementally so anti-entropy
// can diff replicas cheaply. After a simulated crash, RecoverFromLog()
// rebuilds exactly the pre-crash state (minus any torn tail record).

#ifndef EVC_STORAGE_REPLICA_STORAGE_H_
#define EVC_STORAGE_REPLICA_STORAGE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/merkle.h"
#include "storage/versioned_store.h"
#include "storage/wal.h"

namespace evc {

struct ReplicaStorageOptions {
  VersionedStoreOptions store;
  int merkle_depth = 10;
  /// When false, skips journaling (pure in-memory replica; faster sweeps).
  bool durable = true;
};

/// Storage engine for one replica.
class ReplicaStorage {
 public:
  explicit ReplicaStorage(uint32_t replica_id,
                          ReplicaStorageOptions options = {});

  uint32_t replica_id() const { return store_.replica_id(); }

  /// Writes a value (journals, applies, updates Merkle). See
  /// VersionedStore::Put for version-vector semantics.
  Version Put(const std::string& key, std::string value,
              const VersionVector& context, LamportTimestamp ts);

  /// Writes a tombstone.
  Version Delete(const std::string& key, const VersionVector& context,
                 LamportTimestamp ts);

  /// Live (non-tombstone) siblings.
  std::vector<Version> Get(const std::string& key) const {
    return store_.Get(key);
  }
  /// All siblings including tombstones.
  std::vector<Version> GetRaw(const std::string& key) const {
    return store_.GetRaw(key);
  }
  VersionVector ContextFor(const std::string& key) const {
    return store_.ContextFor(key);
  }

  /// Merges versions received from a peer; journals if anything changed.
  /// Returns true on change.
  bool MergeRemote(const std::string& key,
                   const std::vector<Version>& remote_versions);

  const VersionedStore& store() const { return store_; }
  VersionedStore* mutable_store() { return &store_; }
  const MerkleTree& merkle() const { return merkle_; }
  WriteAheadLog* wal() { return &wal_; }

  size_t key_count() const { return store_.key_count(); }
  size_t version_count() const { return store_.version_count(); }

  /// Simulates a crash: discards all volatile state, then replays the WAL.
  /// Returns the number of records replayed.
  Result<size_t> CrashAndRecover();

  /// Rebuilds volatile state from an arbitrary log (e.g. a copied log in
  /// recovery tests). Truncates the log's torn tail if any.
  Result<size_t> RecoverFromLog(WriteAheadLog* wal);

  /// Checkpoints: rewrites the WAL as one record per live key (the current
  /// sibling sets), discarding the superseded history. Recovery after a
  /// checkpoint replays exactly key_count() records. Returns the bytes
  /// reclaimed (old log size - new log size; 0 if the log grew).
  uint64_t Checkpoint();

 private:
  void JournalVersions(const std::string& key,
                       const std::vector<Version>& versions);
  void SyncMerkle(const std::string& key, uint64_t old_digest);

  ReplicaStorageOptions options_;
  VersionedStore store_;
  MerkleTree merkle_;
  WriteAheadLog wal_;
};

}  // namespace evc

#endif  // EVC_STORAGE_REPLICA_STORAGE_H_
