#include "storage/wal.h"

#include <cstdio>

#include "common/encoding.h"
#include "common/hash.h"

namespace evc {

uint64_t WriteAheadLog::Append(std::string_view record) {
  const uint64_t offset = buffer_.size();
  PutFixed32(&buffer_, Crc32c(record));
  PutVarint64(&buffer_, record.size());
  buffer_.append(record.data(), record.size());
  return offset;
}

Status WriteAheadLog::ReadAll(std::vector<std::string>* records,
                              uint64_t* valid_prefix) const {
  records->clear();
  Decoder dec(buffer_);
  uint64_t consumed = 0;
  while (!dec.Done()) {
    uint32_t crc = 0;
    uint64_t len = 0;
    std::string payload;
    if (!dec.GetFixed32(&crc).ok() || !dec.GetVarint64(&len).ok() ||
        !dec.GetBytes(len, &payload).ok()) {
      break;  // torn tail
    }
    if (Crc32c(payload) != crc) {
      break;  // corrupt record: stop recovery here
    }
    records->push_back(std::move(payload));
    consumed = buffer_.size() - dec.remaining();
  }
  if (valid_prefix != nullptr) *valid_prefix = consumed;
  return Status::OK();
}

void WriteAheadLog::TruncateTo(uint64_t size) {
  if (size < buffer_.size()) buffer_.resize(size);
}

void WriteAheadLog::CorruptByteAt(uint64_t offset) {
  if (offset < buffer_.size()) buffer_[offset] ^= 0x5a;
}

Status WriteAheadLog::SaveToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::InvalidArgument("cannot open " + path);
  const size_t written = std::fwrite(buffer_.data(), 1, buffer_.size(), f);
  std::fclose(f);
  if (written != buffer_.size()) {
    return Status::Corruption("short write to " + path);
  }
  return Status::OK();
}

Status WriteAheadLog::LoadFromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  buffer_.clear();
  char chunk[4096];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    buffer_.append(chunk, n);
  }
  std::fclose(f);
  return Status::OK();
}

}  // namespace evc
