#include "storage/merkle.h"

#include "common/hash.h"

namespace evc {

MerkleTree::MerkleTree(int depth)
    : depth_(depth), leaf_count_(size_t{1} << depth) {
  EVC_CHECK(depth >= 1 && depth <= 24);
  nodes_.assign(2 * leaf_count_, 0);
  // Canonicalize internal nodes so that "all leaves zero" always produces
  // the same digests, whether reached by construction or by reverting
  // updates (HashCombine(0,0) != 0).
  for (size_t node = leaf_count_ - 1; node >= 1; --node) {
    nodes_[node] = HashCombine(nodes_[2 * node], nodes_[2 * node + 1]);
  }
}

size_t MerkleTree::BucketFor(const std::string& key) const {
  return Fnv1a64(key) & (leaf_count_ - 1);
}

void MerkleTree::UpdateKey(const std::string& key, uint64_t old_digest,
                           uint64_t new_digest) {
  const size_t bucket = BucketFor(key);
  const uint64_t key_hash = Fnv1a64(key);
  uint64_t delta = 0;
  if (old_digest != 0) delta ^= Mix64(key_hash ^ old_digest);
  if (new_digest != 0) delta ^= Mix64(key_hash ^ new_digest);
  if (delta == 0) return;
  nodes_[leaf_count_ + bucket] ^= delta;
  PropagateUp(leaf_count_ + bucket);
}

void MerkleTree::PropagateUp(size_t node) {
  node /= 2;
  while (node >= 1) {
    // Parent digest must depend on child *order*, so combine rather than XOR.
    nodes_[node] = HashCombine(nodes_[2 * node], nodes_[2 * node + 1]);
    node /= 2;
  }
}

uint64_t MerkleTree::RootDigest() const { return nodes_[1]; }

uint64_t MerkleTree::LeafDigest(size_t bucket) const {
  EVC_CHECK(bucket < leaf_count_);
  return nodes_[leaf_count_ + bucket];
}

std::vector<size_t> MerkleTree::DiffLeaves(const MerkleTree& a,
                                           const MerkleTree& b,
                                           uint64_t* digests_compared) {
  EVC_CHECK(a.depth_ == b.depth_);
  std::vector<size_t> out;
  uint64_t compared = 0;
  // Iterative descent from the root, expanding only differing subtrees.
  std::vector<size_t> stack;
  stack.push_back(1);
  while (!stack.empty()) {
    const size_t node = stack.back();
    stack.pop_back();
    ++compared;
    if (a.nodes_[node] == b.nodes_[node]) continue;
    if (node >= a.leaf_count_) {
      out.push_back(node - a.leaf_count_);
    } else {
      stack.push_back(2 * node + 1);
      stack.push_back(2 * node);
    }
  }
  if (digests_compared != nullptr) *digests_compared = compared;
  return out;
}

}  // namespace evc
