// Merkle tree over a hashed key space, for efficient anti-entropy.
//
// Replicas exchange O(log n) digests to locate the buckets in which they
// differ, then exchange only those keys — sync cost proportional to the
// divergence, not the database size (the claim Fig. 3 quantifies). Keys are
// placed into 2^depth leaf buckets by key hash; bucket digests are
// order-independent XOR accumulators so point updates are O(depth).

#ifndef EVC_STORAGE_MERKLE_H_
#define EVC_STORAGE_MERKLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace evc {

/// Incrementally maintained Merkle tree with XOR-accumulator leaves.
class MerkleTree {
 public:
  /// `depth` >= 1; the tree has 2^depth leaves. depth=10 (1024 buckets) is a
  /// reasonable default for up to ~1M keys.
  explicit MerkleTree(int depth = 10);

  int depth() const { return depth_; }
  size_t leaf_count() const { return leaf_count_; }

  /// Reflects a change to `key`'s digest: pass 0 for old_digest when the key
  /// is new, 0 for new_digest when the key is removed. Digests must be the
  /// store's KeyDigest values (never 0 for a live key; callers guard this).
  void UpdateKey(const std::string& key, uint64_t old_digest,
                 uint64_t new_digest);

  /// Root digest; equal roots <=> (with overwhelming probability) equal
  /// contents.
  uint64_t RootDigest() const;

  /// Leaf bucket index for a key.
  size_t BucketFor(const std::string& key) const;

  uint64_t LeafDigest(size_t bucket) const;

  /// Indices of leaf buckets whose digests differ between the two trees.
  /// `digests_compared` (optional) counts internal+leaf digest comparisons —
  /// the "bytes on the wire" proxy for an interactive Merkle descent.
  static std::vector<size_t> DiffLeaves(const MerkleTree& a,
                                        const MerkleTree& b,
                                        uint64_t* digests_compared = nullptr);

 private:
  // Heap layout: node 1 is the root, children of i are 2i and 2i+1; leaves
  // occupy [leaf_count_, 2*leaf_count_).
  void PropagateUp(size_t leaf_index);

  int depth_;
  size_t leaf_count_;
  std::vector<uint64_t> nodes_;
};

}  // namespace evc

#endif  // EVC_STORAGE_MERKLE_H_
