#include "storage/versioned_store.h"

#include <algorithm>

#include "common/encoding.h"
#include "common/hash.h"

namespace evc {

uint64_t Version::Digest() const {
  std::string buf;
  PutLengthPrefixed(&buf, value);
  vv.EncodeTo(&buf);
  PutVarint64(&buf, lww_ts.counter);
  PutVarint64(&buf, lww_ts.node);
  buf.push_back(tombstone ? 1 : 0);
  return Fnv1a64(buf);
}

void Version::EncodeTo(std::string* dst) const {
  PutLengthPrefixed(dst, value);
  std::string vv_bytes;
  vv.EncodeTo(&vv_bytes);
  PutLengthPrefixed(dst, vv_bytes);
  PutVarint64(dst, lww_ts.counter);
  PutVarint64(dst, lww_ts.node);
  dst->push_back(tombstone ? 1 : 0);
}

Result<Version> Version::DecodeFrom(Decoder* dec) {
  Version v;
  EVC_RETURN_IF_ERROR(dec->GetLengthPrefixed(&v.value));
  std::string vv_bytes;
  EVC_RETURN_IF_ERROR(dec->GetLengthPrefixed(&vv_bytes));
  EVC_ASSIGN_OR_RETURN(v.vv, VersionVector::Decode(vv_bytes));
  uint64_t counter = 0, node = 0;
  EVC_RETURN_IF_ERROR(dec->GetVarint64(&counter));
  EVC_RETURN_IF_ERROR(dec->GetVarint64(&node));
  if (node > UINT32_MAX) return Status::Corruption("lww node out of range");
  v.lww_ts = LamportTimestamp{counter, static_cast<uint32_t>(node)};
  std::string flag;
  EVC_RETURN_IF_ERROR(dec->GetBytes(1, &flag));
  v.tombstone = flag[0] != 0;
  return v;
}

std::string Version::ToString() const {
  std::string out = tombstone ? "<tombstone>" : ("\"" + value + "\"");
  out += " vv=" + vv.ToString() + " ts=" + lww_ts.ToString();
  return out;
}

VersionedStore::VersionedStore(uint32_t replica_id,
                               VersionedStoreOptions options)
    : replica_id_(replica_id), options_(options) {}

Version VersionedStore::Put(const std::string& key, std::string value,
                            const VersionVector& context, LamportTimestamp ts) {
  Version v;
  v.value = std::move(value);
  v.vv = context;
  // The new write's own-replica slot must exceed both our counter and any
  // own-replica event already in the context, or the write would fail to
  // dominate a version it causally follows.
  write_counter_ = std::max(write_counter_, context.Get(replica_id_)) + 1;
  v.vv.Set(replica_id_, write_counter_);
  v.lww_ts = ts;
  v.tombstone = false;

  auto& siblings = map_[key];
  InsertIntoSiblingSet(&siblings, v);
  ApplyConflictPolicy(&siblings);
  return v;
}

Version VersionedStore::Delete(const std::string& key,
                               const VersionVector& context,
                               LamportTimestamp ts) {
  Version v;
  v.vv = context;
  write_counter_ = std::max(write_counter_, context.Get(replica_id_)) + 1;
  v.vv.Set(replica_id_, write_counter_);
  v.lww_ts = ts;
  v.tombstone = true;

  auto& siblings = map_[key];
  InsertIntoSiblingSet(&siblings, v);
  ApplyConflictPolicy(&siblings);
  return v;
}

std::vector<Version> VersionedStore::Get(const std::string& key) const {
  std::vector<Version> out;
  auto it = map_.find(key);
  if (it == map_.end()) return out;
  for (const auto& v : it->second) {
    if (!v.tombstone) out.push_back(v);
  }
  return out;
}

std::vector<Version> VersionedStore::GetRaw(const std::string& key) const {
  auto it = map_.find(key);
  return it == map_.end() ? std::vector<Version>{} : it->second;
}

VersionVector VersionedStore::ContextFor(const std::string& key) const {
  VersionVector ctx;
  auto it = map_.find(key);
  if (it == map_.end()) return ctx;
  for (const auto& v : it->second) ctx.MergeWith(v.vv);
  return ctx;
}

bool InsertIntoSiblingSet(std::vector<Version>* siblings, const Version& v) {
  // Drop the insert if an existing sibling dominates or equals it.
  for (const auto& existing : *siblings) {
    const CausalOrder order = existing.vv.Compare(v.vv);
    if (order == CausalOrder::kAfter || order == CausalOrder::kEqual) {
      return false;
    }
  }
  // Remove existing siblings dominated by the new version.
  siblings->erase(
      std::remove_if(siblings->begin(), siblings->end(),
                     [&v](const Version& existing) {
                       return v.vv.Dominates(existing.vv);
                     }),
      siblings->end());
  siblings->push_back(v);
  return true;
}

std::vector<Version> MergeSiblingSets(
    const std::vector<std::vector<Version>>& sets) {
  std::vector<Version> out;
  for (const auto& set : sets) {
    for (const auto& v : set) InsertIntoSiblingSet(&out, v);
  }
  return out;
}

void VersionedStore::ApplyConflictPolicy(std::vector<Version>* siblings) {
  if (options_.conflict_policy != ConflictPolicy::kLastWriterWins) return;
  if (siblings->size() <= 1) return;
  auto winner = std::max_element(
      siblings->begin(), siblings->end(),
      [](const Version& a, const Version& b) { return a.lww_ts < b.lww_ts; });
  Version keep = *winner;
  // LWW collapses history: the survivor's vector absorbs the losers' so the
  // collapse propagates (otherwise losers would resurrect via anti-entropy).
  for (const auto& v : *siblings) keep.vv.MergeWith(v.vv);
  siblings->clear();
  siblings->push_back(std::move(keep));
}

bool VersionedStore::MergeRemote(const std::string& key,
                                 const std::vector<Version>& remote_versions) {
  if (remote_versions.empty()) return false;
  auto& siblings = map_[key];
  bool changed = false;
  for (const auto& rv : remote_versions) {
    changed |= InsertIntoSiblingSet(&siblings, rv);
  }
  if (changed) ApplyConflictPolicy(&siblings);
  if (siblings.empty()) map_.erase(key);
  return changed;
}

size_t VersionedStore::version_count() const {
  size_t n = 0;
  for (const auto& [key, siblings] : map_) n += siblings.size();
  return n;
}

uint64_t VersionedStore::KeyDigest(const std::string& key) const {
  auto it = map_.find(key);
  if (it == map_.end()) return 0;
  // Order-independent: XOR of per-version digests mixed with the key hash.
  const uint64_t key_hash = Fnv1a64(key);
  uint64_t acc = 0;
  for (const auto& v : it->second) {
    acc ^= Mix64(key_hash ^ v.Digest());
  }
  return acc;
}

void VersionedStore::ForEachKey(
    const std::function<void(const std::string&, const std::vector<Version>&)>&
        fn) const {
  for (const auto& [key, siblings] : map_) fn(key, siblings);
}

size_t VersionedStore::PurgeTombstones() {
  size_t removed = 0;
  for (auto it = map_.begin(); it != map_.end();) {
    const bool all_tombstones =
        std::all_of(it->second.begin(), it->second.end(),
                    [](const Version& v) { return v.tombstone; });
    if (all_tombstones) {
      it = map_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace evc
