// Dotted-version-vector key-value store.
//
// VersionedStore tags writes with plain server-id version vectors, which
// exhibits the classic *false overwrite*: two clients writing blindly
// through the SAME coordinator produce {r:1} then {r:2}, so the second
// "dominates" the first even though the clients were concurrent (see
// VersionedStoreTest.BlindWritesSameCoordinatorFalselyOverwrite). Dotted
// version vectors (Preguiça, Baquero et al. 2012) repair this: each stored
// sibling is tagged with one *dot* (a single new event) plus the causal
// context the client actually read; concurrency is decided against the
// context, not the coordinator's counter, so concurrent same-coordinator
// writes correctly coexist as siblings while causal overwrites still prune.
//
// This is the storage model Riak adopted; the tests contrast it with the
// plain-VV store on the exact anomaly.

#ifndef EVC_STORAGE_DVV_STORE_H_
#define EVC_STORAGE_DVV_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "clock/version_vector.h"

namespace evc {

/// One stored sibling: value + the dot that created it. The per-key causal
/// context is kept once for the whole sibling set (the "dotted causal
/// container" layout), not per sibling.
struct DvvSibling {
  std::string value;
  Dot dot;
  bool tombstone = false;
};

/// The client-visible state of a key: its siblings and the causal context
/// to pass back on the next write.
struct DvvReadResult {
  std::vector<DvvSibling> siblings;  ///< live (non-tombstone) siblings
  VersionVector context;             ///< pass into Put to supersede reads
};

/// Per-replica DVV store (single coordinator id per instance).
class DvvStore {
 public:
  explicit DvvStore(uint32_t replica_id) : replica_id_(replica_id) {}

  uint32_t replica_id() const { return replica_id_; }

  /// Writes `value` with the client's read `context`. Siblings covered by
  /// the context are pruned; siblings the client had NOT seen survive —
  /// even if this same coordinator wrote them. Returns the new dot.
  Dot Put(const std::string& key, std::string value,
          const VersionVector& context);

  /// Tombstone write with the same semantics.
  Dot Delete(const std::string& key, const VersionVector& context);

  /// Live siblings + context.
  DvvReadResult Get(const std::string& key) const;

  /// All siblings including tombstones plus the container context
  /// (replication payload).
  struct Container {
    std::vector<DvvSibling> siblings;
    VersionVector context;
  };
  Container GetContainer(const std::string& key) const;

  /// Merges a remote container (anti-entropy / replica sync). Returns true
  /// if local state changed.
  bool MergeRemote(const std::string& key, const Container& remote);

  size_t key_count() const { return map_.size(); }
  size_t sibling_count(const std::string& key) const;

  /// True if both stores hold identical containers for `key`.
  static bool Identical(const DvvStore& a, const DvvStore& b,
                        const std::string& key);

 private:
  struct Entry {
    std::vector<DvvSibling> siblings;
    VersionVector context;  // summarizes every event this container saw
  };

  /// True if `dot` is covered by `context` (the event was seen).
  static bool Covered(const Dot& dot, const VersionVector& context) {
    return context.Get(dot.replica) >= dot.counter;
  }

  uint32_t replica_id_;
  uint64_t counter_ = 0;
  std::map<std::string, Entry> map_;
};

}  // namespace evc

#endif  // EVC_STORAGE_DVV_STORE_H_
