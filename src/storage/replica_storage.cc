#include "storage/replica_storage.h"

#include "common/encoding.h"

namespace evc {

ReplicaStorage::ReplicaStorage(uint32_t replica_id,
                               ReplicaStorageOptions options)
    : options_(options),
      store_(replica_id, options.store),
      merkle_(options.merkle_depth) {}

void ReplicaStorage::JournalVersions(const std::string& key,
                                     const std::vector<Version>& versions) {
  if (!options_.durable || versions.empty()) return;
  std::string record;
  PutLengthPrefixed(&record, key);
  PutVarint64(&record, versions.size());
  for (const auto& v : versions) v.EncodeTo(&record);
  wal_.Append(record);
}

void ReplicaStorage::SyncMerkle(const std::string& key, uint64_t old_digest) {
  merkle_.UpdateKey(key, old_digest, store_.KeyDigest(key));
}

Version ReplicaStorage::Put(const std::string& key, std::string value,
                            const VersionVector& context, LamportTimestamp ts) {
  const uint64_t old_digest = store_.KeyDigest(key);
  Version v = store_.Put(key, std::move(value), context, ts);
  JournalVersions(key, {v});
  SyncMerkle(key, old_digest);
  return v;
}

Version ReplicaStorage::Delete(const std::string& key,
                               const VersionVector& context,
                               LamportTimestamp ts) {
  const uint64_t old_digest = store_.KeyDigest(key);
  Version v = store_.Delete(key, context, ts);
  JournalVersions(key, {v});
  SyncMerkle(key, old_digest);
  return v;
}

bool ReplicaStorage::MergeRemote(const std::string& key,
                                 const std::vector<Version>& remote_versions) {
  const uint64_t old_digest = store_.KeyDigest(key);
  const bool changed = store_.MergeRemote(key, remote_versions);
  if (changed) {
    JournalVersions(key, remote_versions);
    SyncMerkle(key, old_digest);
  }
  return changed;
}

Result<size_t> ReplicaStorage::CrashAndRecover() {
  return RecoverFromLog(&wal_);
}

uint64_t ReplicaStorage::Checkpoint() {
  const uint64_t before = wal_.size_bytes();
  wal_.Reset();
  if (options_.durable) {
    store_.ForEachKey(
        [this](const std::string& key, const std::vector<Version>& versions) {
          JournalVersions(key, versions);
        });
  }
  const uint64_t after = wal_.size_bytes();
  return before > after ? before - after : 0;
}

Result<size_t> ReplicaStorage::RecoverFromLog(WriteAheadLog* wal) {
  // Discard volatile state.
  store_ = VersionedStore(store_.replica_id(), options_.store);
  merkle_ = MerkleTree(options_.merkle_depth);

  std::vector<std::string> records;
  uint64_t valid_prefix = 0;
  EVC_RETURN_IF_ERROR(wal->ReadAll(&records, &valid_prefix));
  wal->TruncateTo(valid_prefix);

  uint64_t max_own_counter = 0;
  size_t replayed = 0;
  for (const auto& record : records) {
    Decoder dec(record);
    std::string key;
    EVC_RETURN_IF_ERROR(dec.GetLengthPrefixed(&key));
    uint64_t n = 0;
    EVC_RETURN_IF_ERROR(dec.GetVarint64(&n));
    std::vector<Version> versions;
    versions.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      EVC_ASSIGN_OR_RETURN(Version v, Version::DecodeFrom(&dec));
      const uint64_t own = v.vv.Get(store_.replica_id());
      if (own > max_own_counter) max_own_counter = own;
      versions.push_back(std::move(v));
    }
    const uint64_t old_digest = store_.KeyDigest(key);
    if (store_.MergeRemote(key, versions)) {
      SyncMerkle(key, old_digest);
    }
    ++replayed;
  }
  store_.RestoreCounterFloor(max_own_counter);
  return replayed;
}

}  // namespace evc
