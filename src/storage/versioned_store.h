// Per-replica versioned key-value storage.
//
// Each key holds a set of sibling versions tagged with version vectors, the
// structure beneath Dynamo-style multi-value stores. A configurable conflict
// policy decides what happens when concurrent versions meet:
//   * kSiblings — keep all concurrent versions (clients merge); no update is
//     ever silently lost.
//   * kLastWriterWins — keep only the version with the largest (Lamport)
//     timestamp; concurrent losers are discarded, which is exactly the
//     lost-update anomaly the tutorial warns about (quantified in Fig. 5).
// Deletes are tombstone versions so that removal survives anti-entropy.

#ifndef EVC_STORAGE_VERSIONED_STORE_H_
#define EVC_STORAGE_VERSIONED_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "clock/lamport.h"
#include "clock/version_vector.h"
#include "common/status.h"

namespace evc {

/// One stored version of a key.
struct Version {
  std::string value;
  VersionVector vv;          ///< causal tag of this version
  LamportTimestamp lww_ts;   ///< total-order timestamp for LWW policy
  bool tombstone = false;    ///< true if this version is a delete marker

  /// Deterministic digest of this version (for Merkle sync).
  uint64_t Digest() const;

  /// Binary serialization (WAL records, snapshot transfer).
  void EncodeTo(std::string* dst) const;
  static Result<Version> DecodeFrom(class Decoder* dec);

  std::string ToString() const;
};

/// Inserts `v` into a sibling set, maintaining the invariant that no version
/// in the set causally dominates another: dominated existing siblings are
/// removed, and the insert is dropped when an existing sibling dominates or
/// equals it. Returns true if the set changed. (Shared by VersionedStore and
/// by protocol coordinators that merge read replies.)
bool InsertIntoSiblingSet(std::vector<Version>* siblings, const Version& v);

/// Merges several replicas' sibling sets for a key into the minimal
/// conflict-free set (union minus dominated versions).
std::vector<Version> MergeSiblingSets(
    const std::vector<std::vector<Version>>& sets);

/// Conflict policy applied when merging concurrent versions of one key.
enum class ConflictPolicy {
  kSiblings,        ///< retain all concurrent versions
  kLastWriterWins,  ///< retain only the max-timestamp version
};

struct VersionedStoreOptions {
  ConflictPolicy conflict_policy = ConflictPolicy::kSiblings;
};

/// In-memory versioned KV map for a single replica. Not thread-safe (the
/// simulator is single-threaded).
class VersionedStore {
 public:
  explicit VersionedStore(uint32_t replica_id,
                          VersionedStoreOptions options = {});

  uint32_t replica_id() const { return replica_id_; }
  const VersionedStoreOptions& options() const { return options_; }

  /// Writes a new version. `context` is the causal context the writer read
  /// (its version vector); the new version's vv is context ⊔ {replica: next}.
  /// Siblings causally dominated by the new version are discarded. Returns
  /// the stored version.
  Version Put(const std::string& key, std::string value,
              const VersionVector& context, LamportTimestamp ts);

  /// Writes a tombstone with the same rules as Put.
  Version Delete(const std::string& key, const VersionVector& context,
                 LamportTimestamp ts);

  /// Returns the live (non-tombstone) sibling versions of `key`.
  /// Empty if unknown or fully deleted.
  std::vector<Version> Get(const std::string& key) const;

  /// Returns all sibling versions including tombstones (for replication).
  std::vector<Version> GetRaw(const std::string& key) const;

  /// The merged causal context of all siblings of `key` (pass back into Put
  /// to supersede what was read).
  VersionVector ContextFor(const std::string& key) const;

  /// Merges a remote sibling set into the local one (anti-entropy / replica
  /// sync / read repair). Keeps the union minus dominated versions, then
  /// applies the conflict policy. Returns true if local state changed.
  bool MergeRemote(const std::string& key,
                   const std::vector<Version>& remote_versions);

  /// Number of keys with at least one version (including tombstone-only).
  size_t key_count() const { return map_.size(); }

  /// Total sibling versions across all keys (state-size metric).
  size_t version_count() const;

  /// Digest of the full sibling set of `key` (order-independent).
  uint64_t KeyDigest(const std::string& key) const;

  /// Iterates all keys in order.
  void ForEachKey(
      const std::function<void(const std::string& key,
                               const std::vector<Version>&)>& fn) const;

  /// Removes keys whose every sibling is a tombstone. Returns count removed.
  /// (Safe only once all replicas have seen the tombstone; experiments call
  /// this after convergence.)
  size_t PurgeTombstones();

  /// Raises the internal write counter to at least `floor`. Called during
  /// crash recovery so post-recovery writes never reuse a version-vector
  /// slot that was already handed out before the crash.
  void RestoreCounterFloor(uint64_t floor) {
    if (floor > write_counter_) write_counter_ = floor;
  }

 private:
  void ApplyConflictPolicy(std::vector<Version>* siblings);

  uint32_t replica_id_;
  VersionedStoreOptions options_;
  uint64_t write_counter_ = 0;  // per-replica monotonic counter for vv
  std::map<std::string, std::vector<Version>> map_;
};

}  // namespace evc

#endif  // EVC_STORAGE_VERSIONED_STORE_H_
