#include "causal/causal_store.h"

#include "common/encoding.h"

namespace evc::causal {

namespace {
constexpr char kPut[] = "cc.put";
constexpr char kGet[] = "cc.get";
constexpr char kReplicate[] = "cc.replicate";
}  // namespace

CausalCluster::CausalCluster(sim::Rpc* rpc, CausalOptions options)
    : rpc_(rpc), options_(options) {
  EVC_CHECK(rpc_ != nullptr);
  m_put_ = rpc_->InternMethod(kPut);
  m_get_ = rpc_->InternMethod(kGet);
  t_replicate_ = rpc_->network()->InternType(kReplicate);
}

CausalCluster::~CausalCluster() = default;

sim::NodeId CausalCluster::AddDatacenter() {
  auto dc = std::make_unique<Datacenter>();
  dc->node = rpc_->network()->AddNode();
  dc->index = static_cast<uint32_t>(dcs_.size());
  RegisterHandlers(dc.get());
  by_node_[dc->node] = dc.get();
  if (options_.crash_amnesia) {
    crash_registrar_.Register(rpc_->simulator(), dc->node, this);
  }
  dcs_.push_back(std::move(dc));
  return dcs_.back()->node;
}

std::vector<sim::NodeId> CausalCluster::AddDatacenters(int count) {
  std::vector<sim::NodeId> nodes;
  for (int i = 0; i < count; ++i) nodes.push_back(AddDatacenter());
  return nodes;
}

CausalCluster::Datacenter* CausalCluster::FindDc(sim::NodeId node) {
  auto it = by_node_.find(node);
  return it == by_node_.end() ? nullptr : it->second;
}
const CausalCluster::Datacenter* CausalCluster::FindDc(
    sim::NodeId node) const {
  auto it = by_node_.find(node);
  return it == by_node_.end() ? nullptr : it->second;
}

obs::MetricsRegistry& CausalCluster::Obs() {
  return rpc_->simulator()->metrics().global();
}

bool CausalCluster::DepsSatisfied(const Datacenter& dc,
                                  const std::vector<Dependency>& deps) const {
  for (const Dependency& dep : deps) {
    auto it = dc.data.find(dep.key);
    if (it == dc.data.end() || it->second.id < dep.id) return false;
  }
  return true;
}

void CausalCluster::ApplyWrite(Datacenter* dc, const ReplicatedWrite& write,
                               bool replaying) {
  // Lamport clock advance so local writes order after everything applied.
  if (write.id.lamport > dc->lamport) dc->lamport = write.id.lamport;
  Record& rec = dc->data[write.key];
  // Convergent conflict handling: total order on (lamport, dc).
  if (rec.id < write.id) {
    rec.value = write.value;
    rec.id = write.id;
    rec.deps = write.deps;
    // Retain in the bounded version history (for get-transactions).
    auto& hist = dc->history[write.key];
    hist.push_back(rec);
    while (hist.size() > kHistoryDepth) hist.pop_front();
    if (options_.durable && !replaying) {
      std::string raw;
      PutLengthPrefixed(&raw, write.key);
      PutLengthPrefixed(&raw, write.value);
      PutVarint64(&raw, write.id.lamport);
      PutVarint64(&raw, write.id.dc);
      PutVarint64(&raw, write.deps.size());
      for (const Dependency& dep : write.deps) {
        PutLengthPrefixed(&raw, dep.key);
        PutVarint64(&raw, dep.id.lamport);
        PutVarint64(&raw, dep.id.dc);
      }
      dc->wal.Append(raw);
    }
  }
}

void CausalCluster::DrainPending(Datacenter* dc) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = dc->pending.begin(); it != dc->pending.end(); ++it) {
      if (!DepsSatisfied(*dc, it->deps)) continue;
      ReplicatedWrite write = std::move(*it);
      dc->pending.erase(it);
      const double waited = static_cast<double>(
          rpc_->simulator()->Now() - write.arrived_at);
      stats_.dep_wait_us.Add(waited);
      Obs().HistogramFor("causal.dep_wait_us").Add(waited);
      ApplyWrite(dc, write);
      progress = true;
      break;  // iterator invalidated; rescan
    }
  }
}

void CausalCluster::RegisterHandlers(Datacenter* dc) {
  rpc_->RegisterHandler(
      dc->node, m_put_,
      [this, dc](sim::NodeId, sim::Payload req, sim::RpcResponder respond) {
        auto put = std::move(req).Take<PutReq>();
        // A local put's dependencies are always satisfied locally: the
        // client read them from this very datacenter.
        ++stats_.writes;
        Obs().CounterFor("causal.writes").Inc();
        const WriteId id{++dc->lamport, dc->index};
        ReplicatedWrite write;
        write.key = put.key;
        write.value = std::move(put.value);
        write.id = id;
        write.deps = std::move(put.deps);
        ApplyWrite(dc, write);
        DrainPending(dc);
        // Asynchronous geo-replication with dependency metadata.
        for (auto& peer : dcs_) {
          if (peer->node == dc->node) continue;
          rpc_->network()->Send(dc->node, peer->node, t_replicate_, write);
        }
        respond(id);
      });

  rpc_->network()->RegisterHandler(
      dc->node, t_replicate_, [this, dc](sim::Message msg) {
        auto write = std::move(msg.payload).Take<ReplicatedWrite>();
        write.arrived_at = rpc_->simulator()->Now();
        if (DepsSatisfied(*dc, write.deps)) {
          ++stats_.remote_applied_immediately;
          Obs().CounterFor("causal.remote_applied_immediately").Inc();
          ApplyWrite(dc, write);
          DrainPending(dc);
        } else {
          ++stats_.remote_deferred;
          Obs().CounterFor("causal.remote_deferred").Inc();
          dc->pending.push_back(std::move(write));
        }
      });

  rpc_->RegisterHandler(
      dc->node, m_get_,
      [dc](sim::NodeId, sim::Payload req, sim::RpcResponder respond) {
        auto get = std::move(req).Take<GetReq>();
        CausalRead result;
        if (!get.min_id.IsNull()) {
          // GT round 2: the oldest retained version satisfying min_id.
          auto hist_it = dc->history.find(get.key);
          if (hist_it != dc->history.end()) {
            for (const Record& rec : hist_it->second) {
              if (!(rec.id < get.min_id)) {
                result.found = true;
                result.value = rec.value;
                result.id = rec.id;
                result.deps = rec.deps;
                break;
              }
            }
          }
          respond(std::move(result));
          return;
        }
        auto it = dc->data.find(get.key);
        if (it != dc->data.end()) {
          result.found = true;
          result.value = it->second.value;
          result.id = it->second.id;
          result.deps = it->second.deps;
        }
        respond(std::move(result));
      });
}

void CausalCluster::Put(sim::NodeId client, sim::NodeId dc,
                        const std::string& key, std::string value,
                        std::vector<Dependency> deps, PutCallback done) {
  PutReq req;
  req.key = key;
  req.value = std::move(value);
  req.deps = std::move(deps);
  rpc_->Call(client, dc, m_put_, std::move(req), options_.rpc_timeout,
             [done](Result<sim::Payload> r) {
               if (!r.ok()) {
                 done(r.status());
               } else {
                 done(std::move(r).value().Take<WriteId>());
               }
             });
}

void CausalCluster::Get(sim::NodeId client, sim::NodeId dc,
                        const std::string& key, GetCallback done) {
  GetReq req{key, WriteId{}};
  rpc_->Call(client, dc, m_get_, std::move(req), options_.rpc_timeout,
             [done](Result<sim::Payload> r) {
               if (!r.ok()) {
                 done(r.status());
               } else {
                 done(std::move(r).value().Take<CausalRead>());
               }
             });
}

void CausalCluster::GetTransaction(sim::NodeId client, sim::NodeId dc,
                                   std::vector<std::string> keys,
                                   GetTransactionCallback done) {
  struct GtState {
    std::vector<std::string> keys;
    std::vector<CausalRead> results;
    int outstanding = 0;
    bool failed = false;
  };
  auto state = std::make_shared<GtState>();
  state->keys = std::move(keys);
  state->results.resize(state->keys.size());
  state->outstanding = static_cast<int>(state->keys.size());
  if (state->keys.empty()) {
    done(std::vector<CausalRead>{});
    return;
  }

  auto round2 = [this, client, dc, state, done]() {
    // Ceiling per requested key: the newest version any returned
    // dependency names.
    std::map<std::string, WriteId> required;
    for (size_t i = 0; i < state->keys.size(); ++i) {
      required[state->keys[i]] = WriteId{};
    }
    for (const CausalRead& r : state->results) {
      if (!r.found) continue;
      for (const Dependency& dep : r.deps) {
        auto it = required.find(dep.key);
        if (it != required.end() && it->second < dep.id) {
          it->second = dep.id;
        }
      }
    }
    struct R2State {
      int outstanding = 0;
      bool failed = false;
    };
    auto r2 = std::make_shared<R2State>();
    std::vector<size_t> refetch;
    for (size_t i = 0; i < state->keys.size(); ++i) {
      const WriteId need = required[state->keys[i]];
      if (!need.IsNull() && state->results[i].id < need) {
        refetch.push_back(i);
      }
    }
    if (refetch.empty()) {
      done(std::move(state->results));
      return;
    }
    r2->outstanding = static_cast<int>(refetch.size());
    for (const size_t i : refetch) {
      GetReq req{state->keys[i], required[state->keys[i]]};
      rpc_->Call(client, dc, m_get_, std::move(req), options_.rpc_timeout,
                 [state, r2, i, done](Result<sim::Payload> r) {
                   if (!r.ok()) {
                     r2->failed = true;
                   } else {
                     state->results[i] =
                         std::move(r).value().Take<CausalRead>();
                   }
                   if (--r2->outstanding == 0) {
                     if (r2->failed) {
                       done(Status::Unavailable("get-transaction round 2"));
                     } else {
                       done(std::move(state->results));
                     }
                   }
                 });
    }
  };

  for (size_t i = 0; i < state->keys.size(); ++i) {
    GetReq req{state->keys[i], WriteId{}};
    rpc_->Call(client, dc, m_get_, std::move(req), options_.rpc_timeout,
               [state, i, done, round2](Result<sim::Payload> r) {
                 if (!r.ok()) {
                   state->failed = true;
                 } else {
                   state->results[i] =
                       std::move(r).value().Take<CausalRead>();
                 }
                 if (--state->outstanding == 0) {
                   if (state->failed) {
                     done(Status::Unavailable("get-transaction round 1"));
                   } else {
                     round2();
                   }
                 }
               });
  }
}

void CausalCluster::OnCrash(uint32_t node) {
  Datacenter* dc = FindDc(node);
  EVC_CHECK(dc != nullptr);
  // Deferred remote writes die with the buffer; their origin DC already
  // applied them, so this is a real (counted) replication gap until the
  // writer's side re-converges the key some other way.
  stats_.pending_dropped += dc->pending.size();
  Obs().CounterFor("causal.pending_dropped").Inc(dc->pending.size());
  uint64_t dropped = 0;
  for (const auto& [key, rec] : dc->data) {
    dropped += key.size() + rec.value.size();
  }
  for (const ReplicatedWrite& w : dc->pending) {
    dropped += w.key.size() + w.value.size();
  }
  Obs().CounterFor("crash.state_dropped_bytes").Inc(dropped);
  dc->data.clear();
  dc->history.clear();
  dc->pending.clear();
  dc->lamport = 0;
}

void CausalCluster::OnRestart(uint32_t node) {
  Datacenter* dc = FindDc(node);
  EVC_CHECK(dc != nullptr);
  std::vector<std::string> records;
  uint64_t valid_prefix = 0;
  EVC_CHECK(dc->wal.ReadAll(&records, &valid_prefix).ok());
  dc->wal.TruncateTo(valid_prefix);
  for (const std::string& raw : records) {
    Decoder dec(raw);
    ReplicatedWrite write;
    uint64_t dc_id = 0;
    uint64_t dep_count = 0;
    EVC_CHECK(dec.GetLengthPrefixed(&write.key).ok());
    EVC_CHECK(dec.GetLengthPrefixed(&write.value).ok());
    EVC_CHECK(dec.GetVarint64(&write.id.lamport).ok());
    EVC_CHECK(dec.GetVarint64(&dc_id).ok());
    write.id.dc = static_cast<uint32_t>(dc_id);
    EVC_CHECK(dec.GetVarint64(&dep_count).ok());
    for (uint64_t i = 0; i < dep_count; ++i) {
      Dependency dep;
      uint64_t dep_dc = 0;
      EVC_CHECK(dec.GetLengthPrefixed(&dep.key).ok());
      EVC_CHECK(dec.GetVarint64(&dep.id.lamport).ok());
      EVC_CHECK(dec.GetVarint64(&dep_dc).ok());
      dep.id.dc = static_cast<uint32_t>(dep_dc);
      write.deps.push_back(std::move(dep));
    }
    // Replay restores data, history, and the Lamport clock (the advance in
    // ApplyWrite); the journal holds applied writes only, so dependency
    // checks are unnecessary here.
    ApplyWrite(dc, write, /*replaying=*/true);
  }
  Obs().CounterFor("wal.replayed_records").Inc(records.size());
}

CausalRead CausalCluster::LocalRead(sim::NodeId dc,
                                    const std::string& key) const {
  const Datacenter* d = FindDc(dc);
  EVC_CHECK(d != nullptr);
  CausalRead result;
  auto it = d->data.find(key);
  if (it != d->data.end()) {
    result.found = true;
    result.value = it->second.value;
    result.id = it->second.id;
    result.deps = it->second.deps;
  }
  return result;
}

size_t CausalCluster::PendingAt(sim::NodeId dc) const {
  const Datacenter* d = FindDc(dc);
  EVC_CHECK(d != nullptr);
  return d->pending.size();
}

bool CausalCluster::Converged(const std::string& key) const {
  WriteId id;
  bool first = true;
  for (const auto& dc : dcs_) {
    auto it = dc->data.find(key);
    const WriteId here = it == dc->data.end() ? WriteId{} : it->second.id;
    if (first) {
      id = here;
      first = false;
    } else if (!(here == id)) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// CausalClient
// ---------------------------------------------------------------------------

void CausalClient::Put(const std::string& key, std::string value,
                       CausalCluster::PutCallback done) {
  std::vector<Dependency> deps;
  deps.reserve(context_.size());
  for (const auto& [dep_key, id] : context_) {
    deps.push_back(Dependency{dep_key, id});
  }
  cluster_->Put(client_node_, local_dc_, key, std::move(value),
                std::move(deps), [this, key, done](Result<WriteId> r) {
                  if (r.ok()) {
                    // Nearest-dependency collapse: the new write transitively
                    // dominates everything in the old context.
                    context_.clear();
                    context_[key] = *r;
                  }
                  done(std::move(r));
                });
}

void CausalClient::Get(const std::string& key,
                       CausalCluster::GetCallback done) {
  cluster_->Get(client_node_, local_dc_, key,
                [this, key, done](Result<CausalRead> r) {
                  if (r.ok() && r->found) {
                    auto it = context_.find(key);
                    if (it == context_.end() || it->second < r->id) {
                      context_[key] = r->id;
                    }
                  }
                  done(std::move(r));
                });
}

}  // namespace evc::causal
