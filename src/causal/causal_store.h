// Causal+ consistency across datacenters, COPS-style.
//
// Each datacenter holds a full replica served locally (reads never cross the
// WAN). A write commits locally and immediately, then replicates
// asynchronously carrying its *dependencies* — the versions the writing
// client had observed. A remote datacenter applies a replicated write only
// after every dependency is locally visible, so no reader anywhere can see
// an effect before its causes (the "comment appears before the photo"
// anomaly is impossible). Convergent conflict handling: concurrent writes to
// one key resolve by last-writer-wins on (lamport, dc) — causal+.
//
// Client context tracking uses COPS's nearest-dependency optimization: after
// a write, the context collapses to just that write (it transitively
// dominates everything read before).

#ifndef EVC_CAUSAL_CAUSAL_STORE_H_
#define EVC_CAUSAL_CAUSAL_STORE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "sim/rpc.h"
#include "storage/wal.h"

namespace evc::causal {

/// Globally unique, totally ordered write id: (lamport, datacenter).
struct WriteId {
  uint64_t lamport = 0;
  uint32_t dc = 0;

  auto operator<=>(const WriteId&) const = default;
  bool IsNull() const { return lamport == 0; }
  std::string ToString() const {
    return std::to_string(lamport) + "@dc" + std::to_string(dc);
  }
};

/// A dependency: "key must be at least at version id".
struct Dependency {
  std::string key;
  WriteId id;
};

/// Client-visible result of a read.
struct CausalRead {
  bool found = false;
  std::string value;
  WriteId id;
  /// The dependencies the write carried (needed by get-transactions).
  std::vector<Dependency> deps;
};

struct CausalOptions {
  sim::Time rpc_timeout = 500 * sim::kMillisecond;
  /// Journal applied writes per datacenter so a crashed replica recovers
  /// its applied prefix (the Lamport clock recovers with it).
  bool durable = true;
  /// Register datacenters as simulator CrashParticipants (sim/nemesis.h).
  bool crash_amnesia = true;
};

struct CausalStats {
  uint64_t writes = 0;
  uint64_t remote_applied_immediately = 0;  ///< dep check passed on arrival
  uint64_t remote_deferred = 0;             ///< buffered awaiting deps
  /// Dep-waiting remote writes lost to a crash before they could apply.
  /// The origin DC already applied them, so convergence for those keys
  /// depends on re-replication — a crash-window the checkers must excuse.
  uint64_t pending_dropped = 0;
  OnlineStats dep_wait_us;                  ///< buffering time of deferred writes
};

/// One logical datacenter = one server node holding a full replica.
class CausalCluster : private sim::CrashParticipant {
 public:
  CausalCluster(sim::Rpc* rpc, CausalOptions options);
  ~CausalCluster();

  /// Adds a datacenter replica; returns its node id.
  sim::NodeId AddDatacenter();
  std::vector<sim::NodeId> AddDatacenters(int count);
  size_t datacenter_count() const { return dcs_.size(); }

  using PutCallback = std::function<void(Result<WriteId>)>;
  using GetCallback = std::function<void(Result<CausalRead>)>;

  /// Client write via its local datacenter `dc`. `deps` is the client's
  /// causal context (see CausalClient). Commits locally, replicates async.
  void Put(sim::NodeId client, sim::NodeId dc, const std::string& key,
           std::string value, std::vector<Dependency> deps, PutCallback done);

  /// Client read from its local datacenter. Never blocks on remote state.
  void Get(sim::NodeId client, sim::NodeId dc, const std::string& key,
           GetCallback done);

  using GetTransactionCallback =
      std::function<void(Result<std::vector<CausalRead>>)>;

  /// COPS-GT style get-transaction: returns one value per requested key
  /// such that the whole set is **causally consistent** — if any returned
  /// value depends on another requested key, the returned version of that
  /// key is at least the depended-on version. Two rounds, both local to
  /// the datacenter: round 1 reads latest; round 2 re-fetches (by minimum
  /// version, served from a bounded per-key version history) exactly the
  /// keys whose round-1 versions are older than some returned dependency.
  /// Plain per-key Gets do NOT have this property: interleaving with
  /// replication can return a comment alongside a pre-update photo.
  void GetTransaction(sim::NodeId client, sim::NodeId dc,
                      std::vector<std::string> keys,
                      GetTransactionCallback done);

  const CausalStats& stats() const { return stats_; }

  /// Test hooks.
  CausalRead LocalRead(sim::NodeId dc, const std::string& key) const;
  size_t PendingAt(sim::NodeId dc) const;
  bool Converged(const std::string& key) const;

 private:
  /// Versions retained per key for get-transaction round-2 fetches.
  static constexpr size_t kHistoryDepth = 32;

  struct Record {
    std::string value;
    WriteId id;
    std::vector<Dependency> deps;
  };
  struct ReplicatedWrite {
    std::string key;
    std::string value;
    WriteId id;
    std::vector<Dependency> deps;
    sim::Time arrived_at = 0;
  };
  struct Datacenter {
    sim::NodeId node = 0;
    uint32_t index = 0;
    uint64_t lamport = 0;
    std::map<std::string, Record> data;
    // Bounded multi-version history, oldest first (GT round-2 fetches).
    std::map<std::string, std::deque<Record>> history;
    std::deque<ReplicatedWrite> pending;  // dep-unsatisfied remote writes
    // Applied-write journal, replayed on restart (empty when !durable).
    WriteAheadLog wal;
  };
  struct PutReq {
    std::string key;
    std::string value;
    std::vector<Dependency> deps;
  };
  struct GetReq {
    std::string key;
    /// GT round 2: serve the oldest retained version with id >= min_id
    /// (WriteId{} = just the latest).
    WriteId min_id;
  };

  Datacenter* FindDc(sim::NodeId node);
  const Datacenter* FindDc(sim::NodeId node) const;
  void RegisterHandlers(Datacenter* dc);
  /// Global metrics registry of the owning simulator (causal.* instruments).
  obs::MetricsRegistry& Obs();
  bool DepsSatisfied(const Datacenter& dc,
                     const std::vector<Dependency>& deps) const;
  /// Applies a write (LWW by id) and drains any newly-unblocked pending.
  /// Journals applied writes unless `replaying` (WAL replay must not
  /// re-append what it reads).
  void ApplyWrite(Datacenter* dc, const ReplicatedWrite& write,
                  bool replaying = false);
  void DrainPending(Datacenter* dc);

  // CrashParticipant: crash drops data/history/pending (deferred writes are
  // counted in pending_dropped — they were never applied); restart replays
  // the applied-write journal, which also restores the Lamport clock.
  void OnCrash(uint32_t node) override;
  void OnRestart(uint32_t node) override;

  sim::Rpc* rpc_;
  // Pre-interned RPC methods / message types (resolved in the ctor).
  sim::MethodId m_put_ = 0;
  sim::MethodId m_get_ = 0;
  sim::MsgType t_replicate_ = 0;
  CausalOptions options_;
  std::vector<std::unique_ptr<Datacenter>> dcs_;
  std::map<sim::NodeId, Datacenter*> by_node_;
  CausalStats stats_;
  sim::CrashRegistrar crash_registrar_;
};

/// Client-side causal context: tracks nearest dependencies.
class CausalClient {
 public:
  CausalClient(CausalCluster* cluster, sim::NodeId client_node,
               sim::NodeId local_dc)
      : cluster_(cluster), client_node_(client_node), local_dc_(local_dc) {}

  void Put(const std::string& key, std::string value,
           CausalCluster::PutCallback done);
  void Get(const std::string& key, CausalCluster::GetCallback done);

  /// Current nearest-dependency set (exposed for tests).
  const std::map<std::string, WriteId>& context() const { return context_; }

 private:
  CausalCluster* cluster_;
  sim::NodeId client_node_;
  sim::NodeId local_dc_;
  std::map<std::string, WriteId> context_;
};

}  // namespace evc::causal

#endif  // EVC_CAUSAL_CAUSAL_STORE_H_
