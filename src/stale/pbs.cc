#include "stale/pbs.h"

#include <algorithm>
#include <cmath>

namespace evc::stale {

LatencySampler ShiftedExponential(double base_us, double tail_mean_us) {
  return [base_us, tail_mean_us](Rng& rng) {
    return base_us +
           (tail_mean_us > 0 ? rng.NextExponential(tail_mean_us) : 0.0);
  };
}

PbsEstimator::PbsEstimator(PbsConfig config, uint64_t seed)
    : config_(std::move(config)), rng_(seed) {
  EVC_CHECK(config_.n >= 1);
  EVC_CHECK(config_.r >= 1 && config_.r <= config_.n);
  EVC_CHECK(config_.w >= 1 && config_.w <= config_.n);
}

void PbsEstimator::SampleWrite(std::vector<double>* replica_has_at,
                               double* commit_at) {
  const int n = config_.n;
  replica_has_at->resize(n);
  std::vector<double> ack_at(n);
  for (int i = 0; i < n; ++i) {
    const double w = config_.w_latency(rng_);
    const double a = config_.a_latency(rng_);
    (*replica_has_at)[i] = w;       // replica holds the version once W lands
    ack_at[i] = w + a;              // coordinator hears back after A more
  }
  std::nth_element(ack_at.begin(), ack_at.begin() + (config_.w - 1),
                   ack_at.end());
  *commit_at = ack_at[config_.w - 1];
}

bool PbsEstimator::SampleRead(const std::vector<double>& replica_has_at,
                              double read_at) {
  const int n = config_.n;
  scratch_responses_.clear();
  scratch_responses_.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double request_arrives = read_at + config_.r_latency(rng_);
    const double response_arrives = request_arrives + config_.s_latency(rng_);
    // The replica answers with the version iff it already had it when the
    // read request arrived.
    const bool fresh = replica_has_at[i] <= request_arrives;
    scratch_responses_.emplace_back(response_arrives, fresh ? 1 : 0);
  }
  std::sort(scratch_responses_.begin(), scratch_responses_.end());
  for (int i = 0; i < config_.r; ++i) {
    if (scratch_responses_[i].second) return true;
  }
  return false;
}

double PbsEstimator::ProbConsistent(double t_after_commit_us, int iterations) {
  int consistent = 0;
  for (int it = 0; it < iterations; ++it) {
    double commit_at = 0;
    SampleWrite(&scratch_has_at_, &commit_at);
    if (SampleRead(scratch_has_at_, commit_at + t_after_commit_us)) {
      ++consistent;
    }
  }
  return static_cast<double>(consistent) / iterations;
}

double PbsEstimator::TVisibility(double target_prob, double max_t_us,
                                 int probes, int iterations) {
  // Geometric probe ladder: staleness curves are log-shaped.
  double lo = 0;
  for (int p = 0; p <= probes; ++p) {
    const double t =
        p == 0 ? 0 : max_t_us * std::pow(2.0, p - probes);  // 2^-probes..1
    if (ProbConsistent(t, iterations) >= target_prob) return t;
    lo = t;
  }
  return lo;  // not reached within max_t
}

double PbsEstimator::ProbKStaleness(int k, double write_interval_us,
                                    int iterations) {
  EVC_CHECK(k >= 1);
  // Versions v_0 (newest) .. v_{k-1}: the read is stale beyond k only if it
  // sees none of the k newest. Version v_j was written j*interval before
  // the newest; a replica holds "one of the k newest" if it received any of
  // their W messages by read time.
  int within_k = 0;
  std::vector<double> newest_has_at;
  for (int it = 0; it < iterations; ++it) {
    // For each replica, earliest time (relative to the NEWEST write's
    // issue) at which it holds any of the k newest versions.
    std::vector<double> has_any(config_.n, 1e300);
    double newest_commit = 0;
    for (int j = 0; j < k; ++j) {
      double commit_at = 0;
      SampleWrite(&newest_has_at, &commit_at);
      for (int i = 0; i < config_.n; ++i) {
        // Write j was issued j*interval earlier.
        const double t = newest_has_at[i] - j * write_interval_us;
        has_any[i] = std::min(has_any[i], t);
      }
      if (j == 0) newest_commit = commit_at;
    }
    if (SampleRead(has_any, newest_commit)) ++within_k;
  }
  return static_cast<double>(within_k) / iterations;
}

}  // namespace evc::stale
