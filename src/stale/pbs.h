// Probabilistically Bounded Staleness (Bailis et al., VLDB 2012).
//
// For partial quorums (R + W <= N) the tutorial's answer to "how eventual is
// eventual?" is PBS: a Monte-Carlo model over the WARS latency decomposition
//   W — coordinator -> replica write propagation,
//   A — replica -> coordinator write acknowledgement,
//   R — coordinator -> replica read request,
//   S — replica -> coordinator read response,
// computing
//   * t-visibility: P(a read issued t after a write commits sees it), and
//   * k-staleness: P(a read returns one of the k newest versions).
// Fig. 2 reproduces the paper's headline curves (Dynamo-style defaults are
// "mostly consistent" within tens of milliseconds).

#ifndef EVC_STALE_PBS_H_
#define EVC_STALE_PBS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"

namespace evc::stale {

/// One-way latency sampler in microseconds.
using LatencySampler = std::function<double(Rng&)>;

/// Makes a shifted-exponential sampler (base + Exp(mean_tail)): the family
/// the PBS paper fits to production Cassandra/Dynamo traces.
LatencySampler ShiftedExponential(double base_us, double tail_mean_us);

struct PbsConfig {
  int n = 3;
  int r = 1;
  int w = 1;
  /// WARS samplers. Defaults model a LAN deployment: ~0.5 ms base one-way
  /// with millisecond-scale exponential tails.
  LatencySampler w_latency = ShiftedExponential(500, 2000);
  LatencySampler a_latency = ShiftedExponential(500, 2000);
  LatencySampler r_latency = ShiftedExponential(500, 500);
  LatencySampler s_latency = ShiftedExponential(500, 500);
};

/// Monte-Carlo PBS estimator.
class PbsEstimator {
 public:
  PbsEstimator(PbsConfig config, uint64_t seed = 42);

  /// P(read issued `t_after_commit_us` after the write commits returns the
  /// written version or newer). One write, one read, no concurrent writes —
  /// the standard PBS setting.
  double ProbConsistent(double t_after_commit_us, int iterations = 20000);

  /// Expected t-visibility quantile: the smallest t (searched over `probe`
  /// points between 0 and max_t) with ProbConsistent(t) >= target.
  double TVisibility(double target_prob, double max_t_us = 1e6,
                     int probes = 64, int iterations = 8000);

  /// P(read returns a version among the `k` newest, with writes arriving
  /// every `write_interval_us` and the read issued immediately after the
  /// latest commit).
  double ProbKStaleness(int k, double write_interval_us,
                        int iterations = 20000);

  const PbsConfig& config() const { return config_; }

 private:
  /// Samples one write round: per-replica time (after write issue) at which
  /// the replica holds the version, plus the commit time (Wth ack).
  void SampleWrite(std::vector<double>* replica_has_at, double* commit_at);

  /// Samples one read at absolute time `read_at` (write issued at 0):
  /// true if the R-quorum assembled from the fastest responders contains a
  /// replica that had the version when the read request reached it.
  bool SampleRead(const std::vector<double>& replica_has_at, double read_at);

  PbsConfig config_;
  Rng rng_;
  std::vector<double> scratch_has_at_;
  std::vector<std::pair<double, int>> scratch_responses_;
};

}  // namespace evc::stale

#endif  // EVC_STALE_PBS_H_
