#include "cache/edge_cache.h"

#include <algorithm>
#include <utility>

#include "sim/simulator.h"

namespace evc::cache {

// ---------------------------------------------------------------------------
// EdgeCacheClient

EdgeCacheClient::EdgeCacheClient(EdgeCacheTier* tier, sim::NodeId node)
    : tier_(tier), node_(node) {}

void EdgeCacheClient::Get(const std::string& key, uint64_t min_seqno,
                          GetCallback done) {
  const sim::Time now = tier_->rpc_->simulator()->Now();
  auto it = cache_.find(key);
  if (it != cache_.end() && it->second.expiry <= now) {
    // Lease ran out; the copy may not outlive it.
    cache_.erase(it);
    it = cache_.end();
  }
  if (it != cache_.end() && it->second.seqno >= min_seqno) {
    const Entry& e = it->second;
    ++tier_->stats_.hits;
    tier_->c_hits_->Inc();
    tier_->h_hit_age_us_->Add(static_cast<double>(now - e.fetched_at));
    CachedRead out;
    out.found = e.found;
    out.value = e.value;
    out.seqno = e.seqno;
    out.from_cache = true;
    out.fetched_at = e.fetched_at;
    done(std::move(out));
    return;
  }
  if (it != cache_.end()) {
    // Live lease, but below the caller's freshness floor.
    ++tier_->stats_.bypasses;
  } else {
    ++tier_->stats_.misses;
    tier_->c_misses_->Inc();
  }
  const sim::NodeId master = tier_->cluster_->MasterOf(key);
  tier_->rpc_->Call(
      node_, master, tier_->m_read_,
      EdgeCacheTier::CacheReadReq{key, min_seqno}, tier_->options_.read_timeout,
      [this, key, done = std::move(done)](Result<sim::Payload> r) {
        if (!r.ok()) {
          done(r.status());
          return;
        }
        auto reply = std::move(*r).Take<EdgeCacheTier::CacheReadReply>();
        const sim::Time now = tier_->rpc_->simulator()->Now();
        if (reply.granted) {
          // A reply whose lease id is at or below the revoked floor was
          // overtaken in flight by a revoke: return its value, never cache
          // it (the revoking write may already have acked).
          auto fit = revoked_floor_.find(key);
          const uint64_t floor =
              fit == revoked_floor_.end() ? 0 : fit->second;
          if (reply.lease.id > floor) {
            Entry e;
            e.found = reply.found;
            e.value = reply.value;
            e.seqno = reply.seqno;
            e.lease_id = reply.lease.id;
            e.expiry = reply.lease.expiry;
            e.fetched_at = now;
            cache_[key] = std::move(e);
          }
        }
        CachedRead out;
        out.found = reply.found;
        out.value = std::move(reply.value);
        out.seqno = reply.seqno;
        out.from_cache = false;
        out.fetched_at = now;
        out.min_seqno_unmet = reply.min_seqno_unmet;
        done(std::move(out));
      });
}

void EdgeCacheClient::Put(const std::string& key, std::string value,
                          repl::TimelineCluster::WriteCallback done) {
  tier_->cluster_->Write(
      node_, key, std::move(value),
      [this, key, done = std::move(done)](Result<uint64_t> r) {
        if (r.ok()) {
          // Belt over the revoke path: never keep a copy older than a write
          // this same client saw acked (read-your-writes from the cache).
          auto it = cache_.find(key);
          if (it != cache_.end() && it->second.seqno < *r) cache_.erase(it);
        }
        done(std::move(r));
      });
}

void EdgeCacheClient::HandleRevoke(const std::string& key, uint64_t lease_id) {
  ++tier_->stats_.revokes_received;
  uint64_t& floor = revoked_floor_[key];
  floor = std::max(floor, lease_id);
  auto it = cache_.find(key);
  if (it != cache_.end() && it->second.lease_id <= lease_id) cache_.erase(it);
}

uint64_t EdgeCacheClient::CachedSeqno(const std::string& key) const {
  auto it = cache_.find(key);
  if (it == cache_.end()) return 0;
  if (it->second.expiry <= tier_->rpc_->simulator()->Now()) return 0;
  return it->second.seqno;
}

// ---------------------------------------------------------------------------
// EdgeCacheTier

EdgeCacheTier::EdgeCacheTier(sim::Rpc* rpc, repl::TimelineCluster* cluster,
                             EdgeCacheOptions options)
    : rpc_(rpc), cluster_(cluster), options_(options) {
  EVC_CHECK(rpc_ != nullptr);
  EVC_CHECK(cluster_ != nullptr);
  EVC_CHECK(options_.lease_ttl > 0);
  m_read_ = rpc_->InternMethod("cache.read");
  m_revoke_ = rpc_->InternMethod("cache.revoke");
  obs::MetricsRegistry& g = rpc_->simulator()->metrics().global();
  c_hits_ = &g.CounterFor("cache.hits");
  c_misses_ = &g.CounterFor("cache.misses");
  c_grants_ = &g.CounterFor("cache.grants");
  c_revokes_sent_ = &g.CounterFor("cache.revokes_sent");
  c_revokes_expired_ = &g.CounterFor("cache.revokes_expired");
  c_writes_gated_ = &g.CounterFor("cache.writes_gated");
  c_writes_fenced_ = &g.CounterFor("cache.writes_fenced");
  c_master_move_fences_ = &g.CounterFor("cache.master_move_fences");
  h_hit_age_us_ = &g.HistogramFor("cache.hit_age_us");
  for (sim::NodeId node : cluster_->Servers()) AttachServer(node);
  cluster_->SetWriteGate([this](sim::NodeId master, const std::string& key,
                                std::function<void(Status)> release) {
    GateWrite(master, key, std::move(release));
  });
  cluster_->SetMasterMoveHook([this](const std::string& key,
                                     sim::NodeId old_master,
                                     sim::NodeId new_master) {
    OnMasterMove(key, old_master, new_master);
  });
}

EdgeCacheTier::~EdgeCacheTier() {
  cluster_->SetWriteGate(nullptr);
  cluster_->SetMasterMoveHook(nullptr);
}

void EdgeCacheTier::OnMasterMove(const std::string& key,
                                 sim::NodeId old_master,
                                 sim::NodeId new_master) {
  if (!options_.fence_on_master_move) return;
  // The old master's book for this key stops being the book of record. Its
  // entries must not linger: a later move BACK would treat them as live
  // holders and revoke ghosts.
  if (ServerState* old_st = FindServer(old_master)) {
    old_st->registry.DropKey(key);
  }
  // The holders themselves keep serving until expiry, and the new master
  // has no record of them — so it may not ack a write on the key until one
  // full ttl has passed (crash-recovery discipline, key-scoped). The fence
  // is unconditional: when the old master is crashed or partitioned its
  // registry is not a trustworthy census of outstanding leases.
  if (ServerState* new_st = FindServer(new_master)) {
    const sim::Time until = rpc_->simulator()->Now() + options_.lease_ttl;
    sim::Time& fence = new_st->key_fence_until[key];
    fence = std::max(fence, until);
    ++stats_.master_move_fences;
    c_master_move_fences_->Inc();
  }
}

void EdgeCacheTier::AttachServer(sim::NodeId node) {
  auto st = std::make_unique<ServerState>(options_.lease_ttl);
  st->node = node;
  // Deterministic per-node jitter stream for the revoke fan-out.
  const uint64_t seed =
      0x1ea5e5ULL ^ (uint64_t{node} + 1) * 0x9e3779b97f4a7c15ULL;
  st->resilient = std::make_unique<resilience::ResilientRpc>(
      rpc_, node, options_.resilience, seed);
  ServerState* raw = st.get();
  rpc_->RegisterHandler(
      node, m_read_,
      [this, raw](sim::NodeId from, sim::Payload req,
                  sim::RpcResponder respond) {
        HandleCacheRead(raw, from, std::move(req).Take<CacheReadReq>(),
                        std::move(respond));
      });
  if (options_.crash_amnesia) {
    crash_registrar_.Register(rpc_->simulator(), node, this);
  }
  servers_[node] = std::move(st);
}

EdgeCacheClient* EdgeCacheTier::AddClient(sim::NodeId node) {
  EVC_CHECK(servers_.find(node) == servers_.end());
  EVC_CHECK(clients_.find(node) == clients_.end());
  auto client = std::unique_ptr<EdgeCacheClient>(
      new EdgeCacheClient(this, node));
  EdgeCacheClient* raw = client.get();
  rpc_->RegisterHandler(
      node, m_revoke_,
      [this, raw](sim::NodeId, sim::Payload req, sim::RpcResponder respond) {
        RevokeReq r = std::move(req).Take<RevokeReq>();
        raw->HandleRevoke(r.key, r.lease_id);
        // Always ack: revoking an absent entry is an idempotent no-op.
        respond(uint64_t{1});
      });
  if (options_.crash_amnesia) {
    crash_registrar_.Register(rpc_->simulator(), node, this);
  }
  clients_[node] = std::move(client);
  return raw;
}

EdgeCacheTier::ServerState* EdgeCacheTier::FindServer(sim::NodeId node) {
  auto it = servers_.find(node);
  return it == servers_.end() ? nullptr : it->second.get();
}

size_t EdgeCacheTier::OutstandingLeases(sim::NodeId server) {
  ServerState* st = FindServer(server);
  EVC_CHECK(st != nullptr);
  return st->registry.size();
}

sim::Time EdgeCacheTier::FenceUntil(sim::NodeId server) {
  ServerState* st = FindServer(server);
  EVC_CHECK(st != nullptr);
  return st->fence_until;
}

void EdgeCacheTier::HandleCacheRead(ServerState* st, sim::NodeId from,
                                    CacheReadReq req,
                                    sim::RpcResponder respond) {
  if (cluster_->MasterOf(req.key) != st->node) {
    // Only the write-serializing replica may grant leases: a non-master
    // grant could not be revoked by a write it never sees.
    respond(Status::FailedPrecondition("not the lease master"));
    return;
  }
  const repl::TimelineRead local = cluster_->LocalRecord(st->node, req.key);
  CacheReadReply reply;
  reply.found = local.found;
  reply.value = local.value;
  reply.seqno = local.seqno;
  reply.min_seqno_unmet = req.min_seqno > local.seqno;
  if (st->writes_pending.find(req.key) != st->writes_pending.end()) {
    // A write's revocation is in flight on this key: serve lease-less so no
    // grant can slip in behind the revoke snapshot (writer liveness).
    ++stats_.grants_suppressed;
  } else {
    reply.granted = true;
    reply.lease =
        st->registry.Grant(req.key, from, rpc_->simulator()->Now());
    ++stats_.grants;
    c_grants_->Inc();
  }
  respond(std::move(reply));
}

void EdgeCacheTier::GateWrite(sim::NodeId master, const std::string& key,
                              std::function<void(Status)> release) {
  ServerState* st = FindServer(master);
  EVC_CHECK(st != nullptr);
  sim::Simulator* sim = rpc_->simulator();
  const sim::Time now = sim->Now();
  if (st->fence_until > now) {
    // Crash-recovery fence: the restarted master forgot its lease table, so
    // it may not ack a write until every pre-crash lease has expired.
    ++stats_.writes_fenced;
    c_writes_fenced_->Inc();
    sim->ScheduleAt(st->fence_until, [this, master, key,
                                      release = std::move(release)]() mutable {
      GateWrite(master, key, std::move(release));
    });
    return;
  }
  auto kf = st->key_fence_until.find(key);
  if (kf != st->key_fence_until.end()) {
    if (kf->second > now) {
      // Master-move fence: leases the previous master granted on this key
      // are invisible to us; wait them out before acking (see OnMasterMove).
      ++stats_.writes_fenced;
      c_writes_fenced_->Inc();
      sim->ScheduleAt(kf->second, [this, master, key,
                                   release = std::move(release)]() mutable {
        GateWrite(master, key, std::move(release));
      });
      return;
    }
    st->key_fence_until.erase(kf);
  }
  auto batch = std::make_shared<RevokeBatch>();
  batch->holders = st->registry.Outstanding(key, now);
  if (batch->holders.empty()) {
    release(Status::OK());
    return;
  }
  ++stats_.writes_gated;
  c_writes_gated_->Inc();
  // Suppress grants until release; survives a master crash (see ServerState).
  ++st->writes_pending[key];
  batch->release = std::move(release);
  Pump(st, key, batch);
}

void EdgeCacheTier::Pump(ServerState* st, const std::string& key,
                         const std::shared_ptr<RevokeBatch>& batch) {
  while (batch->next < batch->holders.size() &&
         batch->inflight < options_.max_revoke_fanout) {
    const LeaseHolder holder = batch->holders[batch->next++];
    ++batch->inflight;
    RevokeOne(st, key, holder, batch);
  }
}

void EdgeCacheTier::RevokeOne(ServerState* st, const std::string& key,
                              LeaseHolder holder,
                              std::shared_ptr<RevokeBatch> batch) {
  ++stats_.revokes_sent;
  c_revokes_sent_->Inc();
  resilience::CallOptions co;
  co.attempt_timeout = options_.revoke_timeout;
  co.max_attempts = options_.revoke_attempts;
  // Past the lease's own expiry there is nothing left to revoke.
  co.deadline = holder.lease.expiry;
  st->resilient->Call(
      holder.holder, m_revoke_, RevokeReq{key, holder.lease.id}, co,
      [this, st, key, holder,
       batch = std::move(batch)](Result<sim::Payload> r) {
        --batch->inflight;
        Pump(st, key, batch);
        if (r.ok()) {
          ++stats_.revokes_acked;
          st->registry.Release(key, holder.holder, holder.lease.id);
          Complete(st, key, batch);
          return;
        }
        // Unreachable holder (partition, gray degradation, crash): it
        // cannot serve the entry past its expiry, so waiting the TTL out
        // is as good as an ack.
        ++stats_.revokes_expired;
        c_revokes_expired_->Inc();
        sim::Simulator* sim = rpc_->simulator();
        const sim::Time at = std::max(holder.lease.expiry, sim->Now());
        sim->ScheduleAt(at,
                        [this, st, key, batch] { Complete(st, key, batch); });
      });
}

void EdgeCacheTier::Complete(ServerState* st, const std::string& key,
                             const std::shared_ptr<RevokeBatch>& batch) {
  ++batch->completed;
  if (batch->completed < batch->holders.size()) return;
  auto it = st->writes_pending.find(key);
  EVC_CHECK(it != st->writes_pending.end());
  if (--it->second == 0) st->writes_pending.erase(it);
  batch->release(Status::OK());
}

void EdgeCacheTier::OnCrash(uint32_t node) {
  if (ServerState* st = FindServer(node); st != nullptr) {
    // The lease table is volatile; writes_pending deliberately survives (a
    // pre-crash gate batch still completing must keep grants suppressed).
    st->registry.DropAll();
    return;
  }
  auto it = clients_.find(node);
  if (it != clients_.end()) it->second->cache_.clear();
}

void EdgeCacheTier::OnRestart(uint32_t node) {
  ServerState* st = FindServer(node);
  if (st == nullptr) return;
  // Conservative amnesia rule: every lease granted before the crash expires
  // within one TTL of the crash, which is within one TTL of now.
  st->fence_until =
      std::max(st->fence_until, rpc_->simulator()->Now() + options_.lease_ttl);
}

}  // namespace evc::cache
