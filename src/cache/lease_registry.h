// Server-side per-key lease registry for the edge-cache tier.
//
// The master of a record hands out read leases (Gray & Cheriton): a client
// holding an unexpired lease may serve its cached copy locally; a write to
// the key must first revoke (or wait out) every outstanding lease. The
// registry is the master's book of record for that protocol: who holds a
// lease on which key, under which id, until when.
//
// Lease ids are minted from one per-registry monotone counter. That makes
// the revoke race resolvable entirely client-side: a client that sees
// revoke(id=L) drops any entry with lease_id <= L and remembers L as a
// floor, so a read reply still in flight when the revoke landed (its grant
// necessarily has id <= L, since grants are suppressed once the write's
// revocation starts) can never re-install the revoked entry.
//
// The registry is VOLATILE by design — leases are a performance contract,
// not durable state. Crash recovery does not reconstruct the table; it
// drops it and the owner conservatively fences writes for one full TTL (see
// EdgeCacheTier::OnRestart), by which time every pre-crash lease has
// expired on its own.

#ifndef EVC_CACHE_LEASE_REGISTRY_H_
#define EVC_CACHE_LEASE_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/network.h"

namespace evc::cache {

/// One outstanding lease as the registry sees it.
struct Lease {
  uint64_t id = 0;
  sim::Time expiry = 0;  ///< absolute sim time; holder stops serving at it
};

/// A granted-or-renewed lease plus its holder (revoke fan-out unit).
struct LeaseHolder {
  sim::NodeId holder = 0;
  Lease lease;
};

class LeaseRegistry {
 public:
  explicit LeaseRegistry(sim::Time ttl) : ttl_(ttl) {}

  sim::Time ttl() const { return ttl_; }

  /// Grants (or renews) `holder`'s lease on `key`, expiring at now + ttl.
  /// Renewal mints a fresh id; one (key, holder) pair holds at most one
  /// lease at a time.
  Lease Grant(const std::string& key, sim::NodeId holder, sim::Time now);

  /// Every unexpired lease on `key` as of `now`, in holder order. Expired
  /// entries are dropped as a side effect (lazy GC).
  std::vector<LeaseHolder> Outstanding(const std::string& key, sim::Time now);

  /// Removes `holder`'s lease on `key` iff it still carries `id` (a renewal
  /// minted after the caller's snapshot must survive). Returns true when an
  /// entry was removed.
  bool Release(const std::string& key, sim::NodeId holder, uint64_t id);

  /// Crash amnesia: forget every lease. (The owner must fence writes for a
  /// TTL afterwards; see file comment.)
  void DropAll() { leases_.clear(); }

  /// Forgets every lease on one key: the owner stopped being the key's
  /// master, so its book for the key is no longer the book of record. The
  /// holders still serve until expiry — the NEW master must fence writes on
  /// the key for a TTL, exactly like crash recovery but key-scoped. Returns
  /// the number of entries dropped.
  size_t DropKey(const std::string& key) {
    auto it = leases_.find(key);
    if (it == leases_.end()) return 0;
    const size_t n = it->second.size();
    leases_.erase(it);
    return n;
  }

  /// Outstanding (possibly expired-but-uncollected) entries, all keys.
  size_t size() const;

 private:
  sim::Time ttl_;
  uint64_t next_id_ = 1;
  // key -> holder -> lease. Ordered: Outstanding() iterates.
  std::map<std::string, std::map<sim::NodeId, Lease>> leases_;
};

}  // namespace evc::cache

#endif  // EVC_CACHE_LEASE_REGISTRY_H_
