#include "cache/lease_registry.h"

namespace evc::cache {

Lease LeaseRegistry::Grant(const std::string& key, sim::NodeId holder,
                           sim::Time now) {
  Lease lease;
  lease.id = next_id_++;
  lease.expiry = now + ttl_;
  leases_[key][holder] = lease;
  return lease;
}

std::vector<LeaseHolder> LeaseRegistry::Outstanding(const std::string& key,
                                                    sim::Time now) {
  std::vector<LeaseHolder> out;
  auto kit = leases_.find(key);
  if (kit == leases_.end()) return out;
  auto& holders = kit->second;
  for (auto it = holders.begin(); it != holders.end();) {
    if (it->second.expiry <= now) {
      it = holders.erase(it);
      continue;
    }
    out.push_back({it->first, it->second});
    ++it;
  }
  if (holders.empty()) leases_.erase(kit);
  return out;
}

bool LeaseRegistry::Release(const std::string& key, sim::NodeId holder,
                            uint64_t id) {
  auto kit = leases_.find(key);
  if (kit == leases_.end()) return false;
  auto hit = kit->second.find(holder);
  if (hit == kit->second.end() || hit->second.id != id) return false;
  kit->second.erase(hit);
  if (kit->second.empty()) leases_.erase(kit);
  return true;
}

size_t LeaseRegistry::size() const {
  size_t n = 0;
  for (const auto& [key, holders] : leases_) n += holders.size();
  return n;
}

}  // namespace evc::cache
