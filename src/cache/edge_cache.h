// Edge cache tier over the timeline store, with lease-based invalidation.
//
// ROADMAP item 3: at millions of clients, most reads must never reach a
// replica — but a cache that silently serves revoked data breaks the very
// session guarantees (RYW/MR) the rest of this repo exists to verify. This
// tier keeps them with the classic Gray & Cheriton lease-callback protocol:
//
//   * read-through with piggybacked grant — a cache miss RPCs the key's
//     MASTER (the one serializing writes), which answers with its record
//     plus a lease {id, expiry = now + ttl}; the client serves subsequent
//     reads from its copy while the lease is unexpired;
//   * revoke-on-write — a write entering the master is held by a write gate
//     (TimelineCluster::SetWriteGate) until every outstanding lease on the
//     key is revoked (client acks a cache.revoke callback and drops the
//     entry) or has expired. Revokes fan out through ResilientRpc with a
//     bounded number in flight, retrying with backoff under an absolute
//     deadline of the lease's own expiry — a partitioned or gray-degraded
//     holder simply runs out its TTL clock while it provably cannot serve
//     the entry past expiry;
//   * grant suppression — while a write is gated on a key, reads are served
//     lease-less (no new lease can slip in behind the revoke snapshot), so
//     writers cannot be live-locked by a read flash crowd;
//   * crash amnesia — the lease table is volatile. A master restart drops
//     it and FENCES writes for one full TTL: every lease granted before the
//     crash has expired by the time the fence lifts, so forgotten holders
//     are still never served stale acks.
//
// The payoff is strong: because a write acks only after every lease on its
// key is dead, a served cache entry is never behind an acked write — cached
// reads preserve all four Bayou session guarantees, and the edge-cache fuzz
// profile (verify/fuzz.h kEdgeCache) checks exactly that under crash + gray
// schedules. "Staleness" of a hit is therefore pure entry AGE (now -
// fetched_at), bounded by the lease TTL; the fig10 bench sweeps that bound.
//
// Simulator-only caveat: clients and masters share the simulator's one
// clock. A real deployment must shave bounded clock skew off the client's
// expiry check (serve only until expiry - max_skew).

#ifndef EVC_CACHE_EDGE_CACHE_H_
#define EVC_CACHE_EDGE_CACHE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/lease_registry.h"
#include "replication/timeline_store.h"
#include "resilience/resilient_rpc.h"
#include "sim/rpc.h"

namespace evc::cache {

struct EdgeCacheOptions {
  /// Lease lifetime. Longer = higher hit ratio and staleness bound, slower
  /// writes to contended keys (a dead holder is waited out for up to ttl).
  sim::Time lease_ttl = 500 * sim::kMillisecond;
  /// Per-attempt timeout and attempt cap for one revoke callback; attempts
  /// stop early at the lease's own expiry (deadline propagation).
  sim::Time revoke_timeout = 100 * sim::kMillisecond;
  int revoke_attempts = 4;
  /// Revoke RPCs in flight at once per gated write (fan-out bound).
  int max_revoke_fanout = 8;
  /// Client-side timeout for a read-through to the master.
  sim::Time read_timeout = 500 * sim::kMillisecond;
  /// Register servers and clients as simulator CrashParticipants: a master
  /// crash drops its lease table and fences writes for one ttl on restart;
  /// a client crash drops its cache.
  bool crash_amnesia = true;
  /// When a record's mastership moves (TimelineCluster::MigrateMaster), the
  /// NEW master has no record of leases the OLD one granted, so it fences
  /// writes on that key for one ttl — the key-scoped version of the crash
  /// fence. Without it a post-move write acks while old-epoch holders still
  /// serve the overwritten value (the bug this option's regression test
  /// reproduces by turning it off).
  bool fence_on_master_move = true;
  /// Retry/backoff tuning for the revoke fan-out ResilientRpc instances.
  resilience::ResilienceOptions resilience;
};

/// Tier-wide monotonic counters (client + server side pooled).
struct CacheStats {
  uint64_t hits = 0;      ///< served from a live lease
  uint64_t misses = 0;    ///< no entry, or lease expired
  uint64_t bypasses = 0;  ///< live entry below the caller's min_seqno floor
  uint64_t grants = 0;
  uint64_t grants_suppressed = 0;  ///< read served lease-less (write gated)
  uint64_t revokes_sent = 0;
  uint64_t revokes_acked = 0;
  uint64_t revokes_expired = 0;  ///< holder unreachable; TTL waited out
  uint64_t revokes_received = 0;
  uint64_t writes_gated = 0;   ///< writes that met >=1 outstanding lease
  uint64_t writes_fenced = 0;  ///< writes delayed by a crash-recovery fence
  uint64_t master_move_fences = 0;  ///< key fences installed on master moves
};

/// A read served by the cache tier.
struct CachedRead {
  bool found = false;
  std::string value;
  uint64_t seqno = 0;
  bool from_cache = false;    ///< served locally under a live lease
  sim::Time fetched_at = 0;   ///< when the serving copy left the master
  bool min_seqno_unmet = false;  ///< master-authoritative, still below floor
};

class EdgeCacheTier;

/// One client's cache handle. Created via EdgeCacheTier::AddClient (which
/// owns it); all calls must come from events on the owning simulator.
class EdgeCacheClient {
 public:
  using GetCallback = std::function<void(Result<CachedRead>)>;

  /// Serves `key` from the local cache when a live lease covers it and its
  /// seqno is >= `min_seqno` (a session freshness floor; 0 = none), else
  /// reads through to the key's master, installing the piggybacked lease.
  /// A cache hit invokes `done` synchronously.
  void Get(const std::string& key, uint64_t min_seqno, GetCallback done);

  /// Write-through to the master (full revoke-on-write path). On ack, a
  /// cached copy older than the new seqno is dropped.
  void Put(const std::string& key, std::string value,
           repl::TimelineCluster::WriteCallback done);

  sim::NodeId node() const { return node_; }
  size_t entries() const { return cache_.size(); }
  /// Test hook: the seqno cached for `key` under a live lease, 0 if none.
  uint64_t CachedSeqno(const std::string& key) const;

 private:
  friend class EdgeCacheTier;
  struct Entry {
    bool found = false;
    std::string value;
    uint64_t seqno = 0;
    uint64_t lease_id = 0;
    sim::Time expiry = 0;
    sim::Time fetched_at = 0;
  };

  EdgeCacheClient(EdgeCacheTier* tier, sim::NodeId node);
  void HandleRevoke(const std::string& key, uint64_t lease_id);

  EdgeCacheTier* tier_;
  sim::NodeId node_;
  std::map<std::string, Entry> cache_;
  /// Highest revoked lease id per key: an in-flight read reply carrying a
  /// lease at or below the floor arrived after its revoke and must not be
  /// installed (its value is still returned, just not cached).
  std::map<std::string, uint64_t> revoked_floor_;
};

/// The whole tier for one TimelineCluster: per-master lease registries +
/// revoke fan-out on the server side, cache handles on the client side.
/// Construct AFTER the cluster's servers are added; destroy before the
/// cluster (the destructor uninstalls the write gate).
class EdgeCacheTier : private sim::CrashParticipant {
 public:
  EdgeCacheTier(sim::Rpc* rpc, repl::TimelineCluster* cluster,
                EdgeCacheOptions options);
  ~EdgeCacheTier() override;

  EdgeCacheTier(const EdgeCacheTier&) = delete;
  EdgeCacheTier& operator=(const EdgeCacheTier&) = delete;

  /// Registers `node` (a non-server client node) and returns its cache
  /// handle, owned by the tier.
  EdgeCacheClient* AddClient(sim::NodeId node);

  const EdgeCacheOptions& options() const { return options_; }
  const CacheStats& stats() const { return stats_; }

  /// Test hooks.
  size_t OutstandingLeases(sim::NodeId server);
  sim::Time FenceUntil(sim::NodeId server);

 private:
  friend class EdgeCacheClient;

  struct CacheReadReq {
    std::string key;
    uint64_t min_seqno = 0;
  };
  struct CacheReadReply {
    bool found = false;
    std::string value;
    uint64_t seqno = 0;
    bool min_seqno_unmet = false;
    bool granted = false;
    Lease lease;
  };
  struct RevokeReq {
    std::string key;
    uint64_t lease_id = 0;
  };

  struct ServerState {
    sim::NodeId node = 0;
    LeaseRegistry registry;
    /// Gated writes in flight per key; grants are suppressed while > 0.
    /// Deliberately NOT cleared on crash: a pre-crash gate still completing
    /// after restart must keep new grants out until it applies.
    std::map<std::string, int> writes_pending;
    sim::Time fence_until = 0;
    /// Key-scoped fences installed when this server BECOMES a key's master
    /// (leases granted by the previous master are invisible to us and must
    /// expire before we may ack a write). Entries are erased lazily once
    /// past due.
    std::map<std::string, sim::Time> key_fence_until;
    std::unique_ptr<resilience::ResilientRpc> resilient;

    explicit ServerState(sim::Time ttl) : registry(ttl) {}
  };

  /// One gated write's revoke fan-out.
  struct RevokeBatch {
    std::vector<LeaseHolder> holders;
    size_t next = 0;       ///< next holder to revoke
    size_t completed = 0;  ///< holders acked or expired
    int inflight = 0;
    std::function<void(Status)> release;
  };

  void AttachServer(sim::NodeId node);
  ServerState* FindServer(sim::NodeId node);
  /// MasterMoveHook body: drop the old master's now-obsolete book for the
  /// key and fence the new master for one ttl.
  void OnMasterMove(const std::string& key, sim::NodeId old_master,
                    sim::NodeId new_master);
  void HandleCacheRead(ServerState* st, sim::NodeId from, CacheReadReq req,
                       sim::RpcResponder respond);
  void GateWrite(sim::NodeId master, const std::string& key,
                 std::function<void(Status)> release);
  void Pump(ServerState* st, const std::string& key,
            const std::shared_ptr<RevokeBatch>& batch);
  void RevokeOne(ServerState* st, const std::string& key, LeaseHolder holder,
                 std::shared_ptr<RevokeBatch> batch);
  void Complete(ServerState* st, const std::string& key,
                const std::shared_ptr<RevokeBatch>& batch);

  // CrashParticipant: a server drops its (volatile) lease table, a client
  // its cache; a restarted server fences writes for one ttl.
  void OnCrash(uint32_t node) override;
  void OnRestart(uint32_t node) override;

  sim::Rpc* rpc_;
  repl::TimelineCluster* cluster_;
  EdgeCacheOptions options_;
  sim::MethodId m_read_ = 0;
  sim::MethodId m_revoke_ = 0;
  std::map<sim::NodeId, std::unique_ptr<ServerState>> servers_;
  std::map<sim::NodeId, std::unique_ptr<EdgeCacheClient>> clients_;
  CacheStats stats_;
  // Cached cache.* instruments (global registry).
  obs::Counter* c_hits_ = nullptr;
  obs::Counter* c_misses_ = nullptr;
  obs::Counter* c_grants_ = nullptr;
  obs::Counter* c_revokes_sent_ = nullptr;
  obs::Counter* c_revokes_expired_ = nullptr;
  obs::Counter* c_writes_gated_ = nullptr;
  obs::Counter* c_writes_fenced_ = nullptr;
  obs::Counter* c_master_move_fences_ = nullptr;
  Histogram* h_hit_age_us_ = nullptr;
  sim::CrashRegistrar crash_registrar_;
};

}  // namespace evc::cache

#endif  // EVC_CACHE_EDGE_CACHE_H_
