// Server-side admission control: the overload half of the resilience layer.
//
// Every node role (quorum coordinator, replica, timeline master, cache
// origin) can install an AdmissionQueue as its sim::RequestGate. Inbound
// RPCs then pass through a bounded, priority-classed queue in front of a
// fixed pool of service slots:
//
//   - kControl   (heartbeats/pings) bypasses the queue entirely: overload
//                must not read as death, or breakers/detectors amplify it.
//   - kForeground (client ops and their quorum legs) is served first.
//   - kBackground (hints, anti-entropy, migration streaming) is served only
//                when no foreground work waits, from a smaller queue.
//
// Two shedding mechanisms bound the queueing delay rather than the queue
// alone (an unbounded-delay queue is how metastable failures sustain
// themselves — see DESIGN.md §4.5):
//
//   1. Enqueue rejection: a full class queue rejects immediately with
//      kResourceExhausted carrying a retry-after hint.
//   2. CoDel-style sojourn drop: a request dequeued after waiting longer
//      than `sojourn_target` is shed instead of served — work that waited
//      that long is likely already abandoned by its caller, and serving it
//      steals capacity from requests that can still succeed.
//
// The queue also answers RequestGate::LoadPercent, which sim::Rpc
// piggybacks on every reply; background senders poll Rpc::PeerLoad and
// yield before adding traffic to a node that reports pressure.

#ifndef EVC_RESILIENCE_ADMISSION_H_
#define EVC_RESILIENCE_ADMISSION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "sim/rpc.h"

namespace evc::resilience {

enum class AdmissionPriority : uint8_t {
  kControl = 0,     ///< failure-detector probes: never queued, never shed
  kForeground = 1,  ///< client-facing ops and their replica legs
  kBackground = 2,  ///< hints, anti-entropy, migration streaming
};

struct AdmissionOptions {
  /// Concurrent service slots (the node's capacity model: throughput is
  /// max_concurrent / service_time requests per unit time).
  int max_concurrent = 4;
  /// How long a request holds its slot. Simulated handlers complete
  /// instantly, so this is what makes "too many requests" mean anything.
  sim::Time service_time = 1 * sim::kMillisecond;
  size_t foreground_queue_limit = 64;
  /// Background queue is deliberately small: deferred background work is
  /// retried by its own subsystem, so queueing it deeply only adds load.
  size_t background_queue_limit = 16;
  /// Dequeue-time sojourn bound (CoDel-style): a request that waited
  /// longer is shed, not served. 0 disables the drop (used by the
  /// defenses-off arm of bench_fig12_overload).
  sim::Time sojourn_target = 20 * sim::kMillisecond;
  /// Retry-after hint attached to every kResourceExhausted rejection.
  sim::Time retry_after = 50 * sim::kMillisecond;
};

struct AdmissionStats {
  uint64_t admitted = 0;            ///< dispatched to a handler
  uint64_t rejected_queue_full = 0; ///< shed at enqueue (bounded queue)
  uint64_t shed_sojourn = 0;        ///< shed at dequeue (sojourn > target)
  uint64_t shed_foreground = 0;     ///< all sheds, by class
  uint64_t shed_background = 0;
  uint64_t total_shed() const { return rejected_queue_full + shed_sojourn; }
};

/// Builds the kResourceExhausted rejection a gate returns, encoding the
/// retry-after hint machine-readably in the message.
Status ResourceExhaustedWithRetryAfter(sim::Time retry_after);
/// Extracts the retry-after hint from a rejection; 0 when absent or the
/// status is not kResourceExhausted.
sim::Time RetryAfterHint(const Status& status);

class AdmissionQueue : public sim::RequestGate {
 public:
  /// Gates requests addressed to `node`. Registers itself with `rpc` and as
  /// a crash participant (a crash drops the queue: the node must not serve
  /// or answer requests it logically lost). The destructor unhooks both.
  AdmissionQueue(sim::Rpc* rpc, sim::NodeId node, AdmissionOptions options);
  ~AdmissionQueue() override;

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Classifies `method`; unregistered methods default to kForeground.
  void SetPriority(sim::MethodId method, AdmissionPriority priority);

  // sim::RequestGate:
  void Admit(sim::MethodId method, std::function<void()> dispatch,
             sim::RpcResponder respond) override;
  uint32_t LoadPercent() const override;

  const AdmissionStats& stats() const { return stats_; }
  size_t queue_depth() const { return foreground_.size() + background_.size(); }
  const AdmissionOptions& options() const { return options_; }

 private:
  struct QueuedRequest {
    std::function<void()> dispatch;
    sim::RpcResponder respond;
    sim::Time enqueued_at = 0;
    AdmissionPriority priority = AdmissionPriority::kForeground;
  };

  struct CrashHook : sim::CrashParticipant {
    AdmissionQueue* owner = nullptr;
    void OnCrash(uint32_t node) override;
    void OnRestart(uint32_t node) override;
  };

  AdmissionPriority PriorityOf(sim::MethodId method) const;
  void Reject(const QueuedRequest& request, bool at_enqueue);
  void RunOne(QueuedRequest request);
  void PumpQueues();
  void UpdateDepthGauge();

  sim::Rpc* rpc_;
  sim::NodeId node_;
  AdmissionOptions options_;
  std::vector<AdmissionPriority> priority_of_;  // indexed by MethodId
  std::deque<QueuedRequest> foreground_;
  std::deque<QueuedRequest> background_;
  int active_ = 0;
  /// Bumped on crash so in-flight slot-release timers from the previous
  /// incarnation cannot free slots of the next one.
  uint64_t epoch_ = 0;
  AdmissionStats stats_;
  CrashHook crash_hook_;

  // Cached per-node instruments.
  obs::Counter* c_admitted_ = nullptr;
  obs::Counter* c_rejected_full_ = nullptr;
  obs::Counter* c_shed_sojourn_ = nullptr;
  obs::Counter* c_shed_foreground_ = nullptr;
  obs::Counter* c_shed_background_ = nullptr;
  obs::Gauge* g_queue_depth_ = nullptr;
  Histogram* h_sojourn_us_ = nullptr;
};

}  // namespace evc::resilience

#endif  // EVC_RESILIENCE_ADMISSION_H_
