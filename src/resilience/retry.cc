#include "resilience/retry.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace evc::resilience {

RetryPolicy::RetryPolicy(RetryOptions options, uint64_t seed)
    : options_(options), rng_(seed) {
  EVC_CHECK(options_.max_attempts >= 1);
  EVC_CHECK(options_.initial_backoff > 0);
  EVC_CHECK(options_.max_backoff >= options_.initial_backoff);
  EVC_CHECK(options_.multiplier >= 1.0);
  EVC_CHECK(options_.jitter >= 0.0 && options_.jitter < 1.0);
}

sim::Time RetryPolicy::BackoffBefore(int retry) {
  EVC_CHECK(retry >= 1);
  double backoff = static_cast<double>(options_.initial_backoff) *
                   std::pow(options_.multiplier, retry - 1);
  backoff = std::min(backoff, static_cast<double>(options_.max_backoff));
  // jitter == 0 has always meant "exact nominal backoff"; call sites that
  // assert precise timing rely on it, so it wins over the mode.
  if (options_.jitter > 0.0) {
    switch (options_.jitter_mode) {
      case JitterMode::kFull:
        // Uniform in (0, capped]: a cohort of clients that failed on the
        // same event spreads its re-arrivals over the whole window instead
        // of a +/-jitter band around one instant.
        backoff *= rng_.NextDouble();
        break;
      case JitterMode::kEqual:
        backoff *= 1.0 + options_.jitter * (2.0 * rng_.NextDouble() - 1.0);
        break;
      case JitterMode::kNone:
        break;
    }
  }
  return std::max<sim::Time>(1, static_cast<sim::Time>(backoff));
}

}  // namespace evc::resilience
