// Client-side resilience facade over sim::Rpc.
//
// One ResilientRpc instance belongs to one node (`self`) and composes the
// three client-side mechanisms real systems use against partial failure:
//
//   * retries  — capped exponential backoff with seeded jitter (retry.h),
//     with per-call deadline propagation: a retry whose backoff would sleep
//     past the caller's absolute deadline fails fast with DeadlineExceeded
//     instead of burning budget it no longer has;
//   * hedging  — after a latency-percentile delay, a second copy of the
//     request goes to an alternate destination; the first definitive reply
//     wins, the loser's reply is ignored (distinct rpc call ids make that
//     duplicate-safe), and the pending hedge timer is cancelled on a win
//     ("The Tail at Scale", CACM 2013);
//   * failure detection — heartbeat probes feed a per-destination
//     phi-accrual detector (detector.h); every attempt outcome feeds its
//     consecutive-failure fallback and a circuit breaker (breaker.h);
//     PeerUsable() is the client-side, implementable replacement for the
//     Network::CanCommunicate oracle.
//
// Detector honesty is measured, not assumed: on every not-suspected ->
// suspected edge the layer consults the simulator's ground truth and counts
// a false positive (resilience.detector.false_positives) when the oracle
// says the peer was actually reachable.
//
// Determinism: all jitter and phase staggering comes from an Rng seeded at
// construction; no wall-clock anywhere. Two same-seed runs issue identical
// schedules of attempts, hedges, and probes.

#ifndef EVC_RESILIENCE_RESILIENT_RPC_H_
#define EVC_RESILIENCE_RESILIENT_RPC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "resilience/breaker.h"
#include "resilience/detector.h"
#include "resilience/retry.h"
#include "sim/rpc.h"

namespace evc::resilience {

/// Hedged-request policy: when to issue the second attempt.
struct HedgeOptions {
  /// Hedge after the observed latency at this percentile (of this node's
  /// successful attempts) has elapsed without a reply.
  double percentile = 0.95;
  /// Samples required before the percentile is trusted.
  size_t min_samples = 16;
  /// Hedge delay used until enough samples exist.
  sim::Time default_delay = 50 * sim::kMillisecond;
  sim::Time min_delay = 1 * sim::kMillisecond;
};

/// Per-destination retry budget (gRPC-style token bucket). Every successful
/// first-class reply refills `token_ratio` tokens; every retry AND every
/// hedge debits `retry_cost`. An exhausted budget fails the call fast with
/// the last error instead of amplifying: under overload, N clients retrying
/// M times turn offered load L into L*(1+M) — the budget caps sustained
/// amplification at 1 + token_ratio.
struct RetryBudgetOptions {
  bool enabled = false;
  double initial_tokens = 10.0;
  double max_tokens = 10.0;
  /// Tokens credited per successful reply: 0.1 sustains one retry per ten
  /// successes.
  double token_ratio = 0.1;
  /// Tokens a retry or hedge costs.
  double retry_cost = 1.0;
};

/// AIMD adaptive concurrency limit per destination: successes grow the
/// limit additively (+1 per `limit` successes), overload signals (attempt
/// timeout or kResourceExhausted rejection) shrink it multiplicatively.
/// Calls over the limit fail fast (then back off through the normal retry
/// path), so a client's offered concurrency tracks what the destination
/// can actually absorb.
struct AimdOptions {
  bool enabled = false;
  double initial_limit = 16.0;
  double min_limit = 1.0;
  double max_limit = 256.0;
  /// Multiplicative decrease factor on an overload signal.
  double backoff_ratio = 0.7;
};

struct ResilienceOptions {
  RetryOptions retry;
  DetectorOptions detector;
  BreakerOptions breaker;
  HedgeOptions hedge;
  RetryBudgetOptions retry_budget;
  AimdOptions aimd;
  bool breaker_enabled = true;
  /// Heartbeat probing (StartHeartbeats): period and per-probe timeout.
  sim::Time heartbeat_interval = 100 * sim::kMillisecond;
  sim::Time heartbeat_timeout = 150 * sim::kMillisecond;
};

/// Per-call knobs. The per-attempt timeout is the sim::Rpc timeout; the
/// deadline is an absolute sim-time budget across ALL attempts and backoffs.
struct CallOptions {
  sim::Time attempt_timeout = 250 * sim::kMillisecond;
  /// Absolute deadline (sim time); 0 = no deadline.
  sim::Time deadline = 0;
  /// Total attempts (hedges don't count). 1 = no retries.
  int max_attempts = 1;
  /// Issue a hedged second copy of slow attempts.
  bool hedge = false;
  /// Destination of the hedged copy; kSameDestination re-sends to `to`.
  sim::NodeId hedge_to = kSameDestination;
  /// Feed attempt outcomes into the detector/breaker.
  bool record_outcome = true;
  /// Reject attempts the breaker holds open (failing fast with Unavailable).
  bool respect_breaker = true;
  /// Subject this call to the retry budget and AIMD concurrency limit.
  /// Quorum fan-out legs set false: the coordinator's quorum math already
  /// bounds them, and starving legs would turn overload into quorum loss.
  bool respect_limits = true;

  static constexpr sim::NodeId kSameDestination = UINT32_MAX;
};

struct ResilienceStats {
  uint64_t attempts = 0;
  uint64_t retries = 0;
  uint64_t hedges_issued = 0;
  uint64_t hedges_won = 0;   ///< hedge leg answered first
  uint64_t hedges_lost = 0;  ///< primary answered first, hedge wasted
  uint64_t breaker_rejects = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t suspect_transitions = 0;
  uint64_t false_positives = 0;  ///< suspected while oracle said reachable
  uint64_t heartbeats_sent = 0;
  uint64_t budget_exhausted = 0;  ///< retries failed fast: no budget tokens
  uint64_t limit_rejects = 0;     ///< attempts over the AIMD limit
  uint64_t hedges_suppressed_breaker = 0;  ///< hedge skipped: breaker open
  uint64_t hedges_suppressed_budget = 0;   ///< hedge skipped: no tokens
  uint64_t resource_exhausted_replies = 0; ///< kResourceExhausted rejections
};

class ResilientRpc {
 public:
  /// `self` is the node this instance issues calls from. `seed` drives all
  /// jitter; derive it deterministically (e.g. from the node id).
  ResilientRpc(sim::Rpc* rpc, sim::NodeId self, ResilienceOptions options,
               uint64_t seed);

  ResilientRpc(const ResilientRpc&) = delete;
  ResilientRpc& operator=(const ResilientRpc&) = delete;

  /// Issues `method` to `to` with retries/hedging per `options`. `cb` fires
  /// exactly once: with the first definitive reply, DeadlineExceeded when
  /// the budget ran out, Unavailable when the breaker rejected the final
  /// attempt, or the last attempt's error.
  void Call(sim::NodeId to, sim::MethodId method, sim::Payload request,
            const CallOptions& options, sim::RpcCallback cb);

  /// Convenience: boxes `request` into the simulator's slab and calls.
  template <typename T,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<T>, sim::Payload>>>
  void Call(sim::NodeId to, sim::MethodId method, T&& request,
            const CallOptions& options, sim::RpcCallback cb) {
    Call(to, method,
         sim::Payload(&rpc_->simulator()->slab(), std::forward<T>(request)),
         options, std::move(cb));
  }

  /// Convenience (tests, cold paths): interns `method` on every call.
  template <typename T>
  void Call(sim::NodeId to, std::string_view method, T&& request,
            const CallOptions& options, sim::RpcCallback cb) {
    Call(to, rpc_->InternMethod(method), std::forward<T>(request), options,
         std::move(cb));
  }

  /// Starts periodic ping probes to `peers`, phase-staggered. Probes feed
  /// the detector/breaker exactly like real attempt outcomes. Peers answer
  /// via their own ResilientRpc (the ping handler registers in the ctor).
  void StartHeartbeats(std::vector<sim::NodeId> peers);

  /// Client-side liveness verdict for `peer`: not suspected by the detector
  /// and not held open by the breaker. Non-mutating. Phi (silence-based)
  /// suspicion applies only while heartbeats run — without a heartbeat
  /// stream, silence is workload, not death, and only the
  /// consecutive-failure fallback and the breaker convict.
  bool PeerUsable(sim::NodeId peer) const;

  /// Feeds an externally observed outcome (e.g. a fan-out RPC issued
  /// through the raw sim::Rpc) into the detector/breaker. Only heartbeat
  /// outcomes (`heartbeat = true`) enter the phi interval window; request
  /// outcomes touch the consecutive-failure fallback and the breaker.
  void RecordOutcome(sim::NodeId peer, bool success, bool heartbeat = false);

  PhiAccrualDetector& detector() { return detector_; }
  const PhiAccrualDetector& detector() const { return detector_; }
  CircuitBreaker& breaker() { return breaker_; }
  const ResilienceStats& stats() const { return stats_; }
  sim::NodeId self() const { return self_; }
  sim::Rpc* rpc() { return rpc_; }

  /// Diagnostic peeks at the per-destination overload defenses.
  double budget_tokens(sim::NodeId dest) const;
  double concurrency_limit(sim::NodeId dest) const;

 private:
  struct CallState;

  /// Per-destination overload-defense state, created on first use.
  struct DestState {
    double budget_tokens = 0.0;
    double aimd_limit = 0.0;
    int inflight = 0;  ///< legs currently in flight to this destination
  };

  void Attempt(const std::shared_ptr<CallState>& state, int attempt);
  void IssueLeg(const std::shared_ptr<CallState>& state, int attempt,
                sim::NodeId dest, bool is_hedge, sim::Time timeout);
  void OnLegDone(const std::shared_ptr<CallState>& state, int attempt,
                 sim::NodeId dest, bool is_hedge, sim::Time leg_started,
                 Result<sim::Payload> r);
  void RetryOrFail(const std::shared_ptr<CallState>& state, int attempt);
  void Complete(const std::shared_ptr<CallState>& state, Result<sim::Payload> r);
  void FailDeadline(const std::shared_ptr<CallState>& state);
  sim::Time HedgeDelay() const;
  DestState& DestFor(sim::NodeId dest);
  bool SuspectedNow(sim::NodeId peer, sim::Time now) const;
  void NoteSuspicionEdge(sim::NodeId peer);
  void HeartbeatTick(sim::NodeId peer);
  obs::MetricsRegistry& Obs() const;

  sim::Rpc* rpc_;
  sim::NodeId self_;
  sim::MethodId ping_method_ = 0;
  ResilienceOptions options_;
  RetryPolicy retry_;
  PhiAccrualDetector detector_;
  CircuitBreaker breaker_;
  Rng rng_;
  ResilienceStats stats_;
  Histogram attempt_latency_us_;  ///< successful attempts, feeds HedgeDelay
  std::unordered_map<sim::NodeId, bool> suspected_;  ///< last published edge
  std::unordered_map<sim::NodeId, DestState> dests_;  ///< lookup-only
  bool heartbeats_started_ = false;
};

}  // namespace evc::resilience

#endif  // EVC_RESILIENCE_RESILIENT_RPC_H_
