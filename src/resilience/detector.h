// Phi-accrual failure detector (Hayashibara et al., SRDS 2004).
//
// Instead of a boolean alive/dead verdict, the detector outputs a suspicion
// level phi = -log10(P(a heartbeat later than the observed silence)) from
// the history of inter-arrival times per peer. phi grows continuously with
// silence, so callers pick the alive/suspect threshold that matches their
// cost of a false positive. This is the *implementable* detector the
// resilience layer substitutes for the simulator's CanCommunicate oracle:
// it sees exactly what a real client sees (replies and their timing), so it
// is honest about gray failures — a slow or flaky link raises phi even
// though the oracle still reports the link as fine.
//
// Only heartbeat replies enter the interval distribution — request
// interarrivals are workload-shaped, not clock-shaped, and mixing them in
// would convict every peer the client merely stopped talking to. Request
// outcomes feed the side channels instead: a success clears the
// consecutive-failure fallback (OnAlive), a timeout increments it
// (OnFailure). Callers that run no heartbeat stream should consult only
// the fallback (ConsecutiveFailuresExceeded), never the phi verdict.

#ifndef EVC_RESILIENCE_DETECTOR_H_
#define EVC_RESILIENCE_DETECTOR_H_

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "sim/simulator.h"

namespace evc::resilience {

struct DetectorOptions {
  /// Suspect a peer once phi reaches this level. 8 means "the chance that
  /// this silence is ordinary is one in 10^8" (the Akka default).
  double suspect_threshold = 8.0;
  /// Inter-arrival samples kept per peer (sliding window).
  size_t window = 100;
  /// Floor on the interval standard deviation, so a metronome-regular
  /// heartbeat stream does not make phi explode on the first hiccup.
  sim::Time min_std = 20 * sim::kMillisecond;
  /// Assumed mean interval while fewer than two samples exist.
  sim::Time first_interval_estimate = 500 * sim::kMillisecond;
  /// Fallback: suspect after this many consecutive failed attempts even if
  /// the interval history is too thin for a meaningful phi.
  int consecutive_failures_to_suspect = 3;
};

class PhiAccrualDetector {
 public:
  explicit PhiAccrualDetector(DetectorOptions options = {});

  /// Records a heartbeat reply from `peer`: enters the interval window.
  void OnArrival(uint32_t peer, sim::Time now);

  /// Records a non-heartbeat sign of life (any successful request): clears
  /// the consecutive-failure fallback without touching the interval window.
  void OnAlive(uint32_t peer);

  /// Records a failed attempt against `peer` (timeout). Failures do not
  /// enter the interval window — silence already raises phi — but they feed
  /// the consecutive-failure fallback.
  void OnFailure(uint32_t peer, sim::Time now);

  /// Current suspicion level for `peer`. 0 for a peer never heard from
  /// (optimism: an unknown peer is not suspected; the breaker and attempt
  /// timeouts bound the cost of that optimism).
  double Phi(uint32_t peer, sim::Time now) const;

  /// phi >= threshold, or the consecutive-failure fallback fired. Only
  /// meaningful when a heartbeat stream feeds OnArrival — without one,
  /// silence is workload, not death; use ConsecutiveFailuresExceeded.
  bool IsSuspected(uint32_t peer, sim::Time now) const;

  /// True when the consecutive-failure fallback alone convicts `peer`.
  bool ConsecutiveFailuresExceeded(uint32_t peer) const;

  /// Drops all history for `peer` (e.g. after it was replaced).
  void Forget(uint32_t peer);

  const DetectorOptions& options() const { return options_; }

 private:
  struct PeerHistory {
    std::deque<sim::Time> intervals;
    double sum = 0.0;
    double sum_sq = 0.0;
    sim::Time last_arrival = 0;
    bool has_arrival = false;
    int consecutive_failures = 0;
  };

  DetectorOptions options_;
  std::unordered_map<uint32_t, PeerHistory> peers_;
};

}  // namespace evc::resilience

#endif  // EVC_RESILIENCE_DETECTOR_H_
