#include "resilience/resilient_rpc.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "resilience/admission.h"

namespace evc::resilience {

namespace {
constexpr char kPingMethod[] = "rsl.ping";
struct PingReq {};
}  // namespace

struct ResilientRpc::CallState {
  sim::NodeId to = 0;
  sim::MethodId method = 0;
  sim::Payload request;  // prototype; each leg sends a clone
  CallOptions opts;
  sim::RpcCallback cb;
  bool completed = false;
  int legs_inflight = 0;
  bool hedge_issued = false;
  bool hedge_timer_armed = false;
  sim::EventId hedge_timer = 0;
  Status last_error = Status::Unavailable("no attempt issued");
};

ResilientRpc::ResilientRpc(sim::Rpc* rpc, sim::NodeId self,
                           ResilienceOptions options, uint64_t seed)
    : rpc_(rpc),
      self_(self),
      options_(options),
      retry_(options.retry, seed ^ 0x52455452ULL),  // "RETR"
      detector_(options.detector),
      breaker_(options.breaker),
      rng_(seed) {
  EVC_CHECK(rpc_ != nullptr);
  ping_method_ = rpc_->InternMethod(kPingMethod);
  // Answer other nodes' heartbeat probes.
  rpc_->RegisterHandler(
      self_, ping_method_,
      [](sim::NodeId, sim::Payload, sim::RpcResponder respond) {
        respond(true);
      });
}

obs::MetricsRegistry& ResilientRpc::Obs() const {
  return rpc_->simulator()->metrics().global();
}

ResilientRpc::DestState& ResilientRpc::DestFor(sim::NodeId dest) {
  auto [it, inserted] = dests_.try_emplace(dest);
  if (inserted) {
    it->second.budget_tokens = options_.retry_budget.initial_tokens;
    it->second.aimd_limit = options_.aimd.initial_limit;
  }
  return it->second;
}

double ResilientRpc::budget_tokens(sim::NodeId dest) const {
  const auto it = dests_.find(dest);
  return it == dests_.end() ? options_.retry_budget.initial_tokens
                            : it->second.budget_tokens;
}

double ResilientRpc::concurrency_limit(sim::NodeId dest) const {
  const auto it = dests_.find(dest);
  return it == dests_.end() ? options_.aimd.initial_limit
                            : it->second.aimd_limit;
}

void ResilientRpc::Call(sim::NodeId to, sim::MethodId method,
                        sim::Payload request, const CallOptions& options,
                        sim::RpcCallback cb) {
  EVC_CHECK(options.max_attempts >= 1);
  EVC_CHECK(options.attempt_timeout > 0);
  auto state = std::make_shared<CallState>();
  state->to = to;
  state->method = method;
  state->request = std::move(request);
  state->opts = options;
  state->cb = std::move(cb);
  Attempt(state, 0);
}

void ResilientRpc::Attempt(const std::shared_ptr<CallState>& state,
                           int attempt) {
  sim::Simulator* sim = rpc_->simulator();
  const sim::Time now = sim->Now();
  sim::Time timeout = state->opts.attempt_timeout;
  if (state->opts.deadline > 0) {
    const sim::Time remaining = state->opts.deadline - now;
    if (remaining <= 0) {
      FailDeadline(state);
      return;
    }
    timeout = std::min(timeout, remaining);
  }
  if (state->opts.respect_breaker && options_.breaker_enabled &&
      !breaker_.AllowRequest(state->to, now)) {
    ++stats_.breaker_rejects;
    Obs().CounterFor("resilience.breaker_rejects").Inc();
    state->last_error = Status::Unavailable("circuit breaker open");
    RetryOrFail(state, attempt);
    return;
  }
  if (state->opts.respect_limits && options_.aimd.enabled) {
    const DestState& dest = DestFor(state->to);
    if (static_cast<double>(dest.inflight) + 1.0 > dest.aimd_limit) {
      // Over the adaptive limit: fail fast into the retry path, which backs
      // off and re-checks. Pushing the attempt through anyway is exactly
      // the unbounded concurrency that sustains a metastable collapse.
      ++stats_.limit_rejects;
      Obs().CounterFor("resilience.limit_rejects").Inc();
      state->last_error = Status::Unavailable("adaptive concurrency limit");
      RetryOrFail(state, attempt);
      return;
    }
  }

  ++stats_.attempts;
  Obs().CounterFor("resilience.attempts").Inc();
  state->legs_inflight = 0;
  state->hedge_issued = false;
  state->hedge_timer_armed = false;
  IssueLeg(state, attempt, state->to, /*is_hedge=*/false, timeout);

  if (state->opts.hedge) {
    const sim::NodeId hedge_to =
        state->opts.hedge_to == CallOptions::kSameDestination
            ? state->to
            : state->opts.hedge_to;
    const sim::Time delay = HedgeDelay();
    if (delay < timeout) {
      state->hedge_timer_armed = true;
      state->hedge_timer = sim->ScheduleAfter(
          delay, [this, state, attempt, hedge_to, timeout] {
            if (state->completed || !state->hedge_timer_armed) return;
            state->hedge_timer_armed = false;
            sim::Time hedge_timeout = timeout;
            if (state->opts.deadline > 0) {
              const sim::Time rem =
                  state->opts.deadline - rpc_->simulator()->Now();
              if (rem <= 0) return;
              hedge_timeout = std::min(hedge_timeout, rem);
            }
            // A hedge is an extra request: it must respect the breaker at
            // its destination (an open breaker means "stop adding load
            // here" — hedges were sneaking past it) ...
            if (state->opts.respect_breaker && options_.breaker_enabled &&
                breaker_.StateOf(hedge_to, rpc_->simulator()->Now()) ==
                    CircuitBreaker::State::kOpen) {
              ++stats_.hedges_suppressed_breaker;
              Obs().CounterFor("resilience.hedges_suppressed_breaker").Inc();
              return;
            }
            // ... and it costs retry-budget tokens exactly like a retry:
            // under overload, hedges are retries that didn't even wait for
            // the failure.
            if (state->opts.respect_limits &&
                options_.retry_budget.enabled) {
              DestState& dest = DestFor(hedge_to);
              if (dest.budget_tokens < options_.retry_budget.retry_cost) {
                ++stats_.hedges_suppressed_budget;
                Obs().CounterFor("resilience.hedges_suppressed_budget")
                    .Inc();
                return;
              }
              dest.budget_tokens -= options_.retry_budget.retry_cost;
            }
            state->hedge_issued = true;
            ++stats_.hedges_issued;
            Obs().CounterFor("resilience.hedges_issued").Inc();
            IssueLeg(state, attempt, hedge_to, /*is_hedge=*/true,
                     hedge_timeout);
          });
    }
  }
}

void ResilientRpc::IssueLeg(const std::shared_ptr<CallState>& state,
                            int attempt, sim::NodeId dest, bool is_hedge,
                            sim::Time timeout) {
  ++state->legs_inflight;
  ++DestFor(dest).inflight;
  const sim::Time started = rpc_->simulator()->Now();
  // Retries/hedges re-send a clone; the prototype stays with the call.
  rpc_->Call(self_, dest, state->method, state->request.Clone(), timeout,
             [this, state, attempt, dest, is_hedge,
              started](Result<sim::Payload> r) {
               OnLegDone(state, attempt, dest, is_hedge, started,
                         std::move(r));
             });
}

void ResilientRpc::OnLegDone(const std::shared_ptr<CallState>& state,
                             int attempt, sim::NodeId dest, bool is_hedge,
                             sim::Time leg_started, Result<sim::Payload> r) {
  --state->legs_inflight;
  DestState& dest_state = DestFor(dest);
  --dest_state.inflight;
  // A reply — even an application error — proves the peer is alive; only a
  // timeout counts against it. A kResourceExhausted shed in particular is a
  // LIVE peer telling us to back off: convicting it in the detector or
  // breaker would convert overload into apparent death and move the herd
  // onto the next victim.
  const bool alive = r.ok() || !r.status().IsTimedOut();
  if (state->opts.record_outcome) RecordOutcome(dest, alive);

  // Overload-defense feedback. Successes refill the retry budget and grow
  // the AIMD limit additively; overload signals (attempt timeout or an
  // explicit shed) shrink the limit multiplicatively. Heartbeats never pass
  // through here, so probe traffic cannot refill budgets during overload.
  const bool overload_signal =
      !r.ok() &&
      (r.status().IsTimedOut() || r.status().IsResourceExhausted());
  if (r.ok()) {
    if (options_.retry_budget.enabled) {
      dest_state.budget_tokens =
          std::min(options_.retry_budget.max_tokens,
                   dest_state.budget_tokens + options_.retry_budget.token_ratio);
    }
    if (options_.aimd.enabled) {
      dest_state.aimd_limit =
          std::min(options_.aimd.max_limit,
                   dest_state.aimd_limit +
                       1.0 / std::max(1.0, dest_state.aimd_limit));
    }
  } else if (overload_signal && options_.aimd.enabled) {
    dest_state.aimd_limit =
        std::max(options_.aimd.min_limit,
                 dest_state.aimd_limit * options_.aimd.backoff_ratio);
  }
  if (!r.ok() && r.status().IsResourceExhausted()) {
    ++stats_.resource_exhausted_replies;
    Obs().CounterFor("resilience.resource_exhausted_replies").Inc();
  }

  // Retryable = the attempt may be re-issued: timeouts (no verdict) and
  // explicit sheds (the server asked us to come back later). Every other
  // reply — success or application error — is definitive.
  const bool definitive = !overload_signal;

  // First definitive reply wins; the loser's reply lands here after
  // `completed` is set and is dropped (each leg has its own rpc call id, so
  // there is no cross-talk in sim::Rpc either).
  if (state->completed) return;

  if (definitive) {
    if (state->hedge_issued) {
      if (is_hedge) {
        ++stats_.hedges_won;
        Obs().CounterFor("resilience.hedges_won").Inc();
      } else {
        ++stats_.hedges_lost;
        Obs().CounterFor("resilience.hedges_lost").Inc();
      }
    }
    if (state->hedge_timer_armed) {
      state->hedge_timer_armed = false;
      rpc_->simulator()->Cancel(state->hedge_timer);
    }
    if (r.ok()) {
      attempt_latency_us_.Add(
          static_cast<double>(rpc_->simulator()->Now() - leg_started));
    }
    Complete(state, std::move(r));
    return;
  }

  state->last_error = r.status();
  if (state->legs_inflight > 0) return;  // other leg still racing
  if (state->hedge_timer_armed) {
    state->hedge_timer_armed = false;
    rpc_->simulator()->Cancel(state->hedge_timer);
  }
  RetryOrFail(state, attempt);
}

void ResilientRpc::RetryOrFail(const std::shared_ptr<CallState>& state,
                               int attempt) {
  if (attempt + 1 >= state->opts.max_attempts) {
    Complete(state, state->last_error.ok()
                        ? Status::Unavailable("attempts exhausted")
                        : state->last_error);
    return;
  }
  // Retry budget: an exhausted bucket fails fast with the last error. This
  // is the storm breaker — when a destination is rejecting or timing out
  // broadly, per-call retry counts stop mattering and the per-destination
  // budget caps total amplification.
  if (state->opts.respect_limits && options_.retry_budget.enabled) {
    DestState& dest = DestFor(state->to);
    if (dest.budget_tokens < options_.retry_budget.retry_cost) {
      ++stats_.budget_exhausted;
      Obs().CounterFor("resilience.budget_exhausted").Inc();
      Complete(state, state->last_error.ok()
                          ? Status::Unavailable("retry budget exhausted")
                          : state->last_error);
      return;
    }
    dest.budget_tokens -= options_.retry_budget.retry_cost;
  }
  sim::Time backoff = retry_.BackoffBefore(attempt + 1);
  // An overloaded server's retry-after hint dominates the local policy:
  // the server knows its own drain rate better than our exponential guess.
  backoff = std::max(backoff, RetryAfterHint(state->last_error));
  const sim::Time now = rpc_->simulator()->Now();
  // Deadline propagation: when the remaining budget cannot even cover the
  // backoff sleep, fail fast instead of sleeping past the deadline.
  if (state->opts.deadline > 0 && now + backoff >= state->opts.deadline) {
    FailDeadline(state);
    return;
  }
  ++stats_.retries;
  Obs().CounterFor("resilience.retries").Inc();
  rpc_->simulator()->ScheduleAfter(
      backoff, [this, state, attempt] { Attempt(state, attempt + 1); });
}

void ResilientRpc::Complete(const std::shared_ptr<CallState>& state,
                            Result<sim::Payload> r) {
  if (state->completed) return;
  state->completed = true;
  state->cb(std::move(r));
}

void ResilientRpc::FailDeadline(const std::shared_ptr<CallState>& state) {
  ++stats_.deadline_exceeded;
  Obs().CounterFor("resilience.deadline_exceeded").Inc();
  Complete(state, Status::DeadlineExceeded("call budget exhausted"));
}

sim::Time ResilientRpc::HedgeDelay() const {
  const HedgeOptions& h = options_.hedge;
  if (attempt_latency_us_.count() < h.min_samples) {
    return std::max(h.min_delay, h.default_delay);
  }
  const auto p =
      static_cast<sim::Time>(attempt_latency_us_.Percentile(h.percentile));
  return std::max(h.min_delay, p);
}

void ResilientRpc::RecordOutcome(sim::NodeId peer, bool success,
                                 bool heartbeat) {
  const sim::Time now = rpc_->simulator()->Now();
  if (success) {
    // Only heartbeat replies enter the phi interval window: request
    // interarrivals follow the workload, not a clock, and feeding them in
    // would convict every peer the client merely stopped talking to.
    if (heartbeat) {
      detector_.OnArrival(peer, now);
    } else {
      detector_.OnAlive(peer);
    }
  } else {
    detector_.OnFailure(peer, now);
  }
  if (options_.breaker_enabled) {
    if (success) {
      breaker_.OnSuccess(peer);
    } else {
      breaker_.OnFailure(peer, now);
    }
  }
  NoteSuspicionEdge(peer);
}

bool ResilientRpc::SuspectedNow(sim::NodeId peer, sim::Time now) const {
  // The silence-based phi verdict assumes a regular arrival stream; with no
  // heartbeats running, only repeated explicit failures convict.
  if (heartbeats_started_) return detector_.IsSuspected(peer, now);
  return detector_.ConsecutiveFailuresExceeded(peer);
}

void ResilientRpc::NoteSuspicionEdge(sim::NodeId peer) {
  const sim::Time now = rpc_->simulator()->Now();
  const bool suspected = SuspectedNow(peer, now);
  bool& prev = suspected_[peer];
  if (suspected && !prev) {
    ++stats_.suspect_transitions;
    Obs().CounterFor("resilience.detector.suspects").Inc();
    // Honesty accounting: if the omniscient oracle says the peer was
    // reachable at the moment suspicion was raised, this was a false alarm.
    // (Gray failures are deliberately NOT false positives: the oracle still
    // reports a flaky link as reachable, but suspecting it is the point.)
    if (rpc_->network()->CanCommunicate(self_, peer)) {
      ++stats_.false_positives;
      Obs().CounterFor("resilience.detector.false_positives").Inc();
    }
  }
  prev = suspected;
}

bool ResilientRpc::PeerUsable(sim::NodeId peer) const {
  const sim::Time now = rpc_->simulator()->Now();
  if (SuspectedNow(peer, now)) return false;
  if (options_.breaker_enabled &&
      breaker_.StateOf(peer, now) == CircuitBreaker::State::kOpen) {
    return false;
  }
  return true;
}

void ResilientRpc::StartHeartbeats(std::vector<sim::NodeId> peers) {
  if (heartbeats_started_) return;
  heartbeats_started_ = true;
  sim::Simulator* sim = rpc_->simulator();
  for (sim::NodeId peer : peers) {
    if (peer == self_) continue;
    // Phase-stagger first probes so a cluster of detectors doesn't fire in
    // lockstep.
    const sim::Time phase = static_cast<sim::Time>(rng_.NextBounded(
                                static_cast<uint64_t>(
                                    options_.heartbeat_interval))) +
                            1;
    sim->ScheduleAfter(phase, [this, peer] { HeartbeatTick(peer); });
  }
}

void ResilientRpc::HeartbeatTick(sim::NodeId peer) {
  sim::Simulator* sim = rpc_->simulator();
  sim->ScheduleAfter(options_.heartbeat_interval,
                     [this, peer] { HeartbeatTick(peer); });
  // A crashed process runs no detector; probing resumes after restart.
  if (!rpc_->network()->IsNodeUp(self_)) return;
  ++stats_.heartbeats_sent;
  Obs().CounterFor("resilience.heartbeats_sent").Inc();
  // Probes bypass the breaker on purpose: a healed peer's successful probe
  // is what closes its breaker again.
  rpc_->Call(self_, peer, ping_method_, PingReq{},
             options_.heartbeat_timeout, [this, peer](Result<sim::Payload> r) {
               RecordOutcome(peer, r.ok(), /*heartbeat=*/true);
             });
}

}  // namespace evc::resilience
