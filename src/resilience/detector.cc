#include "resilience/detector.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace evc::resilience {

PhiAccrualDetector::PhiAccrualDetector(DetectorOptions options)
    : options_(options) {
  EVC_CHECK(options_.suspect_threshold > 0.0);
  EVC_CHECK(options_.window >= 2);
  EVC_CHECK(options_.min_std > 0);
  EVC_CHECK(options_.first_interval_estimate > 0);
}

void PhiAccrualDetector::OnArrival(uint32_t peer, sim::Time now) {
  PeerHistory& h = peers_[peer];
  h.consecutive_failures = 0;
  if (h.has_arrival && now >= h.last_arrival) {
    const sim::Time interval = now - h.last_arrival;
    h.intervals.push_back(interval);
    const double x = static_cast<double>(interval);
    h.sum += x;
    h.sum_sq += x * x;
    if (h.intervals.size() > options_.window) {
      const double old = static_cast<double>(h.intervals.front());
      h.intervals.pop_front();
      h.sum -= old;
      h.sum_sq -= old * old;
    }
  }
  h.last_arrival = now;
  h.has_arrival = true;
}

void PhiAccrualDetector::OnAlive(uint32_t peer) {
  auto it = peers_.find(peer);
  if (it != peers_.end()) it->second.consecutive_failures = 0;
}

void PhiAccrualDetector::OnFailure(uint32_t peer, sim::Time) {
  ++peers_[peer].consecutive_failures;
}

double PhiAccrualDetector::Phi(uint32_t peer, sim::Time now) const {
  auto it = peers_.find(peer);
  if (it == peers_.end() || !it->second.has_arrival) return 0.0;
  const PeerHistory& h = it->second;

  double mean;
  double std_dev;
  if (h.intervals.size() < 2) {
    mean = static_cast<double>(options_.first_interval_estimate);
    std_dev = mean / 4.0;
  } else {
    const double n = static_cast<double>(h.intervals.size());
    mean = h.sum / n;
    const double var = std::max(0.0, h.sum_sq / n - mean * mean);
    std_dev = std::sqrt(var);
  }
  std_dev = std::max(std_dev, static_cast<double>(options_.min_std));

  const double t = static_cast<double>(std::max<sim::Time>(0, now - h.last_arrival));
  // Logistic approximation to the normal tail (as in Akka's implementation):
  // P(interval > t) ~ e / (1 + e) with e = exp(-y (1.5976 + 0.070566 y^2)).
  const double y = (t - mean) / std_dev;
  const double e = std::exp(-y * (1.5976 + 0.070566 * y * y));
  const double p_later =
      t > mean ? e / (1.0 + e) : 1.0 - 1.0 / (1.0 + e);
  if (p_later <= 0.0) return 40.0;  // beyond double precision: certainly dead
  return -std::log10(p_later);
}

bool PhiAccrualDetector::IsSuspected(uint32_t peer, sim::Time now) const {
  if (ConsecutiveFailuresExceeded(peer)) return true;
  return Phi(peer, now) >= options_.suspect_threshold;
}

bool PhiAccrualDetector::ConsecutiveFailuresExceeded(uint32_t peer) const {
  auto it = peers_.find(peer);
  return it != peers_.end() && options_.consecutive_failures_to_suspect > 0 &&
         it->second.consecutive_failures >=
             options_.consecutive_failures_to_suspect;
}

void PhiAccrualDetector::Forget(uint32_t peer) { peers_.erase(peer); }

}  // namespace evc::resilience
