#include "resilience/admission.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace evc::resilience {

namespace {
constexpr char kRetryAfterTag[] = "retry_after_us=";
}  // namespace

Status ResourceExhaustedWithRetryAfter(sim::Time retry_after) {
  return Status::ResourceExhausted(
      std::string("overloaded; ") + kRetryAfterTag +
      std::to_string(retry_after));
}

sim::Time RetryAfterHint(const Status& status) {
  if (!status.IsResourceExhausted()) return 0;
  const std::string& msg = status.message();
  const size_t pos = msg.find(kRetryAfterTag);
  if (pos == std::string::npos) return 0;
  const char* digits = msg.c_str() + pos + sizeof(kRetryAfterTag) - 1;
  char* end = nullptr;
  const long long parsed = std::strtoll(digits, &end, 10);
  if (end == digits || parsed <= 0) return 0;
  return static_cast<sim::Time>(parsed);
}

void AdmissionQueue::CrashHook::OnCrash(uint32_t /*node*/) {
  // Queued requests and occupied slots are volatile state: the node must
  // neither serve nor answer them after losing power. Dropped silently —
  // the callers' RPC timeouts are the correct failure signal.
  owner->foreground_.clear();
  owner->background_.clear();
  owner->active_ = 0;
  ++owner->epoch_;  // void the previous incarnation's slot-release timers
  owner->UpdateDepthGauge();
}

void AdmissionQueue::CrashHook::OnRestart(uint32_t /*node*/) {}

AdmissionQueue::AdmissionQueue(sim::Rpc* rpc, sim::NodeId node,
                               AdmissionOptions options)
    : rpc_(rpc), node_(node), options_(options) {
  EVC_CHECK(rpc_ != nullptr);
  EVC_CHECK(options_.max_concurrent >= 1);
  EVC_CHECK(options_.service_time >= 1);
  obs::MetricsRegistry& reg = rpc_->simulator()->metrics().node(node_);
  c_admitted_ = &reg.CounterFor("admission.admitted");
  c_rejected_full_ = &reg.CounterFor("admission.rejected_queue_full");
  c_shed_sojourn_ = &reg.CounterFor("admission.shed_sojourn");
  c_shed_foreground_ = &reg.CounterFor("admission.shed_foreground");
  c_shed_background_ = &reg.CounterFor("admission.shed_background");
  g_queue_depth_ = &reg.GaugeFor("admission.queue_depth");
  h_sojourn_us_ = &reg.HistogramFor("admission.sojourn_us");
  crash_hook_.owner = this;
  rpc_->simulator()->RegisterCrashParticipant(node_, &crash_hook_);
  rpc_->SetRequestGate(node_, this);
}

AdmissionQueue::~AdmissionQueue() {
  rpc_->SetRequestGate(node_, nullptr);
  rpc_->simulator()->UnregisterCrashParticipant(&crash_hook_);
}

void AdmissionQueue::SetPriority(sim::MethodId method,
                                 AdmissionPriority priority) {
  if (priority_of_.size() <= method) {
    priority_of_.resize(method + 1, AdmissionPriority::kForeground);
  }
  priority_of_[method] = priority;
}

AdmissionPriority AdmissionQueue::PriorityOf(sim::MethodId method) const {
  if (method < priority_of_.size()) return priority_of_[method];
  return AdmissionPriority::kForeground;
}

void AdmissionQueue::Admit(sim::MethodId method,
                           std::function<void()> dispatch,
                           sim::RpcResponder respond) {
  const AdmissionPriority priority = PriorityOf(method);
  // Control traffic is never queued: an overloaded node that stops
  // answering pings looks dead, trips breakers, and converts overload into
  // (apparent) failure — the amplification this subsystem exists to stop.
  if (priority == AdmissionPriority::kControl) {
    ++stats_.admitted;
    c_admitted_->Inc();
    dispatch();
    return;
  }

  QueuedRequest request{std::move(dispatch), std::move(respond),
                        rpc_->simulator()->Now(), priority};
  std::deque<QueuedRequest>& queue =
      priority == AdmissionPriority::kBackground ? background_ : foreground_;
  const size_t limit = priority == AdmissionPriority::kBackground
                           ? options_.background_queue_limit
                           : options_.foreground_queue_limit;
  if (queue.size() >= limit) {
    ++stats_.rejected_queue_full;
    c_rejected_full_->Inc();
    Reject(request, /*at_enqueue=*/true);
    return;
  }
  queue.push_back(std::move(request));
  PumpQueues();
}

void AdmissionQueue::Reject(const QueuedRequest& request, bool /*at_enqueue*/) {
  if (request.priority == AdmissionPriority::kBackground) {
    ++stats_.shed_background;
    c_shed_background_->Inc();
  } else {
    ++stats_.shed_foreground;
    c_shed_foreground_->Inc();
  }
  request.respond(ResourceExhaustedWithRetryAfter(options_.retry_after));
}

void AdmissionQueue::RunOne(QueuedRequest request) {
  ++active_;
  ++stats_.admitted;
  c_admitted_->Inc();
  request.dispatch();
  const uint64_t epoch = epoch_;
  rpc_->simulator()->ScheduleAfter(options_.service_time, [this, epoch] {
    if (epoch != epoch_) return;  // crashed since: slot no longer exists
    --active_;
    PumpQueues();
  });
}

void AdmissionQueue::PumpQueues() {
  while (active_ < options_.max_concurrent) {
    std::deque<QueuedRequest>* queue = nullptr;
    if (!foreground_.empty()) {
      queue = &foreground_;
    } else if (!background_.empty()) {
      queue = &background_;
    } else {
      break;
    }
    QueuedRequest request = std::move(queue->front());
    queue->pop_front();
    const sim::Time sojourn =
        rpc_->simulator()->Now() - request.enqueued_at;
    h_sojourn_us_->Add(static_cast<double>(sojourn));
    if (options_.sojourn_target > 0 && sojourn > options_.sojourn_target) {
      // CoDel-style drop: by the time this request reached the front it
      // had already waited past the delay bound; its caller has likely
      // timed out or retried, so serving it now is pure wasted capacity.
      ++stats_.shed_sojourn;
      c_shed_sojourn_->Inc();
      Reject(request, /*at_enqueue=*/false);
      continue;
    }
    RunOne(std::move(request));
  }
  UpdateDepthGauge();
}

void AdmissionQueue::UpdateDepthGauge() {
  g_queue_depth_->Set(static_cast<double>(queue_depth()));
}

uint32_t AdmissionQueue::LoadPercent() const {
  // 0..50: service slots filling up. 50..100: queues filling up. Monotone
  // in pressure, so background callers can yield on a simple threshold.
  const size_t queued = queue_depth();
  double load;
  if (queued == 0) {
    load = 50.0 * static_cast<double>(active_) /
           static_cast<double>(options_.max_concurrent);
  } else {
    const size_t capacity =
        options_.foreground_queue_limit + options_.background_queue_limit;
    load = 50.0 + 50.0 * static_cast<double>(queued) /
                      static_cast<double>(std::max<size_t>(1, capacity));
  }
  return static_cast<uint32_t>(std::clamp(load, 0.0, 100.0));
}

}  // namespace evc::resilience
