// Per-peer circuit breaker: closed -> open -> half-open -> closed.
//
// The breaker complements the phi-accrual detector (detector.h): the
// detector ranks peers for *selection* (who should I even try), the breaker
// gates *admission* (stop hammering a peer that keeps failing, then let one
// probe through after a cool-down). Counting consecutive failures keeps it
// deliberately simple — the interesting statistics live in the detector.

#ifndef EVC_RESILIENCE_BREAKER_H_
#define EVC_RESILIENCE_BREAKER_H_

#include <cstdint>
#include <unordered_map>

#include "sim/simulator.h"

namespace evc::resilience {

struct BreakerOptions {
  /// Consecutive failures that trip a closed breaker open.
  int failure_threshold = 5;
  /// Time an open breaker waits before letting a half-open probe through.
  sim::Time open_duration = 2 * sim::kSecond;
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(BreakerOptions options = {});

  /// True if a request to `peer` may be issued now. Mutating: an open
  /// breaker whose cool-down elapsed transitions to half-open and grants
  /// exactly one probe slot; further requests are rejected until the probe
  /// resolves via OnSuccess/OnFailure.
  bool AllowRequest(uint32_t peer, sim::Time now);

  void OnSuccess(uint32_t peer);
  void OnFailure(uint32_t peer, sim::Time now);

  /// Non-mutating peek (used by PeerUsable-style selection predicates):
  /// reports what AllowRequest would decide without claiming a probe slot.
  State StateOf(uint32_t peer, sim::Time now) const;

  uint64_t trips() const { return trips_; }
  uint64_t rejects() const { return rejects_; }

  const BreakerOptions& options() const { return options_; }

 private:
  struct PeerBreaker {
    State state = State::kClosed;
    int consecutive_failures = 0;
    sim::Time opened_at = 0;
    bool probe_in_flight = false;
  };

  BreakerOptions options_;
  std::unordered_map<uint32_t, PeerBreaker> peers_;
  uint64_t trips_ = 0;
  uint64_t rejects_ = 0;
};

}  // namespace evc::resilience

#endif  // EVC_RESILIENCE_BREAKER_H_
