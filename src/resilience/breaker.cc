#include "resilience/breaker.h"

#include "common/status.h"

namespace evc::resilience {

CircuitBreaker::CircuitBreaker(BreakerOptions options) : options_(options) {
  EVC_CHECK(options_.failure_threshold >= 1);
  EVC_CHECK(options_.open_duration > 0);
}

bool CircuitBreaker::AllowRequest(uint32_t peer, sim::Time now) {
  PeerBreaker& b = peers_[peer];
  switch (b.state) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now - b.opened_at >= options_.open_duration) {
        b.state = State::kHalfOpen;
        b.probe_in_flight = true;  // this caller gets the probe slot
        return true;
      }
      ++rejects_;
      return false;
    case State::kHalfOpen:
      if (!b.probe_in_flight) {
        b.probe_in_flight = true;
        return true;
      }
      ++rejects_;
      return false;
  }
  return true;
}

void CircuitBreaker::OnSuccess(uint32_t peer) {
  auto it = peers_.find(peer);
  if (it == peers_.end()) return;
  it->second.state = State::kClosed;
  it->second.consecutive_failures = 0;
  it->second.probe_in_flight = false;
}

void CircuitBreaker::OnFailure(uint32_t peer, sim::Time now) {
  PeerBreaker& b = peers_[peer];
  ++b.consecutive_failures;
  switch (b.state) {
    case State::kClosed:
      if (b.consecutive_failures >= options_.failure_threshold) {
        b.state = State::kOpen;
        b.opened_at = now;
        ++trips_;
      }
      break;
    case State::kHalfOpen:
      // Probe failed: back to open, restart the cool-down.
      b.state = State::kOpen;
      b.opened_at = now;
      b.probe_in_flight = false;
      ++trips_;
      break;
    case State::kOpen:
      // A straggling failure from before the trip; stay open.
      break;
  }
}

CircuitBreaker::State CircuitBreaker::StateOf(uint32_t peer,
                                              sim::Time now) const {
  auto it = peers_.find(peer);
  if (it == peers_.end()) return State::kClosed;
  const PeerBreaker& b = it->second;
  if (b.state == State::kOpen && now - b.opened_at >= options_.open_duration) {
    return State::kHalfOpen;
  }
  return b.state;
}

}  // namespace evc::resilience
