// Capped exponential backoff with deterministic seeded jitter.
//
// The client half of the resilience layer (see resilient_rpc.h): every
// retried attempt backs off exponentially from `initial_backoff` up to
// `max_backoff`, with jitter drawn from a seeded Rng so that (a) retry
// storms decorrelate across clients and (b) a whole schedule of retries is
// still a pure function of the seed.
//
// Jitter mode matters for storm behavior: the historical +/-20% band keeps
// N clients that failed together re-arriving together (a 40%-wide burst
// window), which is exactly the synchronized wave that feeds a metastable
// collapse. The default is therefore FULL jitter (AWS architecture-blog
// style): each sleep is uniform in (0, capped_backoff], spreading the wave
// over the whole window.

#ifndef EVC_RESILIENCE_RETRY_H_
#define EVC_RESILIENCE_RETRY_H_

#include "common/rng.h"
#include "sim/simulator.h"

namespace evc::resilience {

enum class JitterMode : uint8_t {
  /// Uniform in (0, capped_backoff]. Decorrelates synchronized failures:
  /// the re-arrival spread equals the full backoff window.
  kFull,
  /// Legacy +/-`jitter` multiplicative band around the nominal backoff.
  /// Kept for the regression test that shows why it is not the default.
  kEqual,
  /// Exact nominal backoff (tests that assert precise timing).
  kNone,
};

struct RetryOptions {
  /// Total attempts (first try + retries) a policy-driven call may make.
  int max_attempts = 3;
  sim::Time initial_backoff = 25 * sim::kMillisecond;
  sim::Time max_backoff = 2 * sim::kSecond;
  double multiplier = 2.0;
  /// kEqual only: multiplicative jitter fraction, scaling each backoff by a
  /// uniform draw in [1-jitter, 1+jitter]. 0 behaves like kNone. Ignored
  /// under kFull (the draw already spans the whole window); retained so the
  /// historical `opts.retry.jitter = 0.0` idiom keeps disabling jitter.
  double jitter = 0.2;
  JitterMode jitter_mode = JitterMode::kFull;
};

class RetryPolicy {
 public:
  RetryPolicy(RetryOptions options, uint64_t seed);

  /// Backoff to sleep before retry number `retry` (1-based: 1 precedes the
  /// second attempt). Consumes one jittered draw, so calls must happen in
  /// schedule order to stay deterministic.
  sim::Time BackoffBefore(int retry);

  const RetryOptions& options() const { return options_; }

 private:
  RetryOptions options_;
  Rng rng_;
};

}  // namespace evc::resilience

#endif  // EVC_RESILIENCE_RETRY_H_
