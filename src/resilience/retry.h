// Capped exponential backoff with deterministic seeded jitter.
//
// The client half of the resilience layer (see resilient_rpc.h): every
// retried attempt backs off exponentially from `initial_backoff` up to
// `max_backoff`, with +/-`jitter` multiplicative noise drawn from a seeded
// Rng so that (a) retry storms decorrelate across clients and (b) a whole
// schedule of retries is still a pure function of the seed.

#ifndef EVC_RESILIENCE_RETRY_H_
#define EVC_RESILIENCE_RETRY_H_

#include "common/rng.h"
#include "sim/simulator.h"

namespace evc::resilience {

struct RetryOptions {
  /// Total attempts (first try + retries) a policy-driven call may make.
  int max_attempts = 3;
  sim::Time initial_backoff = 25 * sim::kMillisecond;
  sim::Time max_backoff = 2 * sim::kSecond;
  double multiplier = 2.0;
  /// Multiplicative jitter fraction: each backoff is scaled by a uniform
  /// draw in [1-jitter, 1+jitter]. 0 disables jitter.
  double jitter = 0.2;
};

class RetryPolicy {
 public:
  RetryPolicy(RetryOptions options, uint64_t seed);

  /// Backoff to sleep before retry number `retry` (1-based: 1 precedes the
  /// second attempt). Consumes one jittered draw, so calls must happen in
  /// schedule order to stay deterministic.
  sim::Time BackoffBefore(int retry);

  const RetryOptions& options() const { return options_; }

 private:
  RetryOptions options_;
  Rng rng_;
};

}  // namespace evc::resilience

#endif  // EVC_RESILIENCE_RETRY_H_
