#include "replication/quorum_store.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace evc::repl {

namespace {
constexpr char kClientPut[] = "dyn.put";
constexpr char kClientGet[] = "dyn.get";
constexpr char kStore[] = "dyn.store";
constexpr char kRead[] = "dyn.read";
constexpr char kMigrate[] = "dyn.migrate";
constexpr char kHint[] = "dyn.hint";
// Must match the ResilientRpc heartbeat method so admission classifies ping
// probes as control traffic (never queued: overload must not read as death).
constexpr char kPing[] = "rsl.ping";
// Sentinel for "no hinted handoff target" (NodeId 0 is a valid node).
constexpr sim::NodeId kNoHint = UINT32_MAX;
// Keys per migration-stream RPC: small enough to interleave with traffic,
// large enough that catch-up converges in a few round trips.
constexpr size_t kMigrateChunkKeys = 16;
// Retry pause for failed migration chunks and unacked catch-up reports.
constexpr sim::Time kMigrateRetryPause = 500 * sim::kMillisecond;

bool Contains(const std::vector<sim::NodeId>& nodes, sim::NodeId node) {
  return std::find(nodes.begin(), nodes.end(), node) != nodes.end();
}

// Seed stream for per-node ResilientRpc instances. Derived from the node id
// (not the simulator rng) so adding the resilience layer does not perturb
// any pre-existing component's random stream.
uint64_t ResilienceSeed(sim::NodeId node) {
  return 0xd06f00dULL ^ (uint64_t{node} + 1) * 0x9e3779b97f4a7c15ULL;
}
}  // namespace

DynamoCluster::DynamoCluster(sim::Rpc* rpc, QuorumConfig config)
    : rpc_(rpc), config_(config), ring_(config.ring_vnodes) {
  EVC_CHECK(rpc_ != nullptr);
  m_client_put_ = rpc_->InternMethod(kClientPut);
  m_client_get_ = rpc_->InternMethod(kClientGet);
  m_store_ = rpc_->InternMethod(kStore);
  m_read_ = rpc_->InternMethod(kRead);
  m_migrate_ = rpc_->InternMethod(kMigrate);
  m_hint_ = rpc_->InternMethod(kHint);
  EVC_CHECK(config_.replication_factor >= 1);
  EVC_CHECK(config_.read_quorum >= 1 &&
            config_.read_quorum <= config_.replication_factor);
  EVC_CHECK(config_.write_quorum >= 1 &&
            config_.write_quorum <= config_.replication_factor);
}

DynamoCluster::~DynamoCluster() = default;

DynamoCluster::Server* DynamoCluster::CreateServer(bool on_static_ring) {
  auto server = std::make_unique<Server>();
  server->node = rpc_->network()->AddNode();
  if (on_static_ring) {
    ring_.AddServer(server->node);
    // Membership changed: every cached static ring walk is stale.
    for (auto& walk : walk_of_key_) walk.clear();
  }
  server->replica_id = static_cast<uint32_t>(servers_.size());
  server->storage = std::make_unique<ReplicaStorage>(server->replica_id,
                                                     config_.storage);
  server->clock = LamportClock(server->replica_id);
  server->resilient = std::make_unique<resilience::ResilientRpc>(
      rpc_, server->node, config_.resilience, ResilienceSeed(server->node));
  if (config_.admission_enabled) {
    server->admission = std::make_unique<resilience::AdmissionQueue>(
        rpc_, server->node, config_.admission);
    server->admission->SetPriority(rpc_->InternMethod(kPing),
                                   resilience::AdmissionPriority::kControl);
    server->admission->SetPriority(m_hint_,
                                   resilience::AdmissionPriority::kBackground);
    server->admission->SetPriority(m_migrate_,
                                   resilience::AdmissionPriority::kBackground);
    // Everything else (client ops, store/read quorum legs) defaults to
    // foreground.
  }
  obs::MetricsRegistry& node_obs =
      rpc_->simulator()->metrics().node(server->node);
  server->c_coordinated_gets = &node_obs.CounterFor("dyn.coordinated_gets");
  server->c_coordinated_puts = &node_obs.CounterFor("dyn.coordinated_puts");
  RegisterHandlers(server.get());
  by_node_[server->node] = server.get();
  ResolveInstruments();
  if (config_.crash_amnesia) {
    crash_registrar_.Register(rpc_->simulator(), server->node, this);
  }
  servers_.push_back(std::move(server));
  return servers_.back().get();
}

sim::NodeId DynamoCluster::AddServer() {
  // Static membership only: once elastic, joins go through the config
  // service so every node agrees on the epoch the change happens in.
  EVC_CHECK(config_service_ == nullptr);
  return CreateServer(/*on_static_ring=*/true)->node;
}

std::vector<sim::NodeId> DynamoCluster::AddServers(int count) {
  std::vector<sim::NodeId> nodes;
  nodes.reserve(count);
  for (int i = 0; i < count; ++i) nodes.push_back(AddServer());
  return nodes;
}

DynamoCluster::Server* DynamoCluster::FindServer(sim::NodeId node) {
  auto it = by_node_.find(node);
  return it == by_node_.end() ? nullptr : it->second;
}

obs::MetricsRegistry& DynamoCluster::Obs() {
  return rpc_->simulator()->metrics().global();
}

void DynamoCluster::ResolveInstruments() {
  if (c_puts_ok_ != nullptr) return;
  obs::MetricsRegistry& obs = Obs();
  c_sloppy_diversions_ = &obs.CounterFor("dyn.sloppy_diversions");
  c_hints_stored_ = &obs.CounterFor("dyn.hints_stored");
  c_hints_delivered_ = &obs.CounterFor("dyn.hints_delivered");
  c_hints_lost_ = &obs.CounterFor("dyn.hints_lost");
  c_puts_unavailable_ = &obs.CounterFor("dyn.puts_unavailable");
  c_gets_ok_ = &obs.CounterFor("dyn.gets_ok");
  c_gets_unavailable_ = &obs.CounterFor("dyn.gets_unavailable");
  c_read_repairs_ = &obs.CounterFor("dyn.read_repairs");
  c_stale_epoch_rejects_ = &obs.CounterFor("dyn.stale_epoch_rejects");
  c_view_refreshes_ = &obs.CounterFor("dyn.view_refreshes");
  c_hints_redirected_ = &obs.CounterFor("dyn.hints_redirected");
  c_keys_migrated_ = &obs.CounterFor("dyn.keys_migrated");
  h_put_latency_us_ = &obs.HistogramFor("dyn.put_latency_us");
  h_get_latency_us_ = &obs.HistogramFor("dyn.get_latency_us");
  c_puts_ok_ = &obs.CounterFor("dyn.puts_ok");  // sentinel: assign last
}

ReplicaStorage* DynamoCluster::storage(sim::NodeId server) {
  Server* s = FindServer(server);
  EVC_CHECK(s != nullptr);
  return s->storage.get();
}

resilience::ResilientRpc* DynamoCluster::resilient(sim::NodeId server) {
  Server* s = FindServer(server);
  EVC_CHECK(s != nullptr);
  return s->resilient.get();
}

resilience::AdmissionQueue* DynamoCluster::admission(sim::NodeId server) {
  Server* s = FindServer(server);
  EVC_CHECK(s != nullptr);
  return s->admission.get();
}

bool DynamoCluster::TargetUsable(Server* coordinator,
                                 sim::NodeId candidate) const {
  if (config_.use_oracle_detector) {
    return rpc_->network()->CanCommunicate(coordinator->node, candidate);
  }
  return coordinator->resilient->PeerUsable(candidate);
}

bool DynamoCluster::PeerUsable(sim::NodeId server, sim::NodeId peer) const {
  if (config_.use_oracle_detector) return true;
  auto it = by_node_.find(server);
  if (it == by_node_.end()) return true;
  return it->second->resilient->PeerUsable(peer);
}

void DynamoCluster::StartFailureDetection() {
  if (config_.use_oracle_detector) return;
  std::vector<sim::NodeId> nodes;
  nodes.reserve(servers_.size());
  for (const auto& server : servers_) nodes.push_back(server->node);
  for (auto& server : servers_) server->resilient->StartHeartbeats(nodes);
}

resilience::ResilientRpc* DynamoCluster::ClientRpc(sim::NodeId client) {
  if (Server* s = FindServer(client)) return s->resilient.get();
  auto it = client_rpcs_.find(client);
  if (it == client_rpcs_.end()) {
    it = client_rpcs_
             .emplace(client, std::make_unique<resilience::ResilientRpc>(
                                  rpc_, client, config_.resilience,
                                  ResilienceSeed(client)))
             .first;
  }
  return it->second.get();
}

const std::vector<sim::NodeId>& DynamoCluster::RingWalk(
    const std::string& key) const {
  EVC_CHECK(!servers_.empty());
  const KeyId id = keys_.Intern(key);
  if (walk_of_key_.size() <= id) walk_of_key_.resize(id + 1);
  std::vector<sim::NodeId>& out = walk_of_key_[id];
  if (!out.empty()) return out;  // cache hit (membership unchanged)
  if (config_.use_hash_ring) {
    out = ring_.PreferenceList(key, servers_.size());
    return out;
  }
  const size_t start = Fnv1a64(key) % servers_.size();
  out.reserve(servers_.size());
  for (size_t i = 0; i < servers_.size(); ++i) {
    out.push_back(servers_[(start + i) % servers_.size()]->node);
  }
  return out;
}

std::vector<sim::NodeId> DynamoCluster::PreferenceList(
    const std::string& key) const {
  if (elastic()) {
    return PreferenceListAt(config_service_->committed().epoch, key);
  }
  const std::vector<sim::NodeId>& walk = RingWalk(key);
  std::vector<sim::NodeId> out(
      walk.begin(),
      walk.begin() + std::min<size_t>(config_.replication_factor,
                                      walk.size()));
  return out;
}

const std::vector<sim::NodeId>& DynamoCluster::MembersOfEpoch(
    uint64_t epoch) const {
  auto it = members_of_epoch_.find(epoch);
  EVC_CHECK(it != members_of_epoch_.end());
  return it->second;
}

const std::vector<sim::NodeId>& DynamoCluster::RingWalkAt(
    uint64_t epoch, const std::string& key) const {
  const std::vector<sim::NodeId>& members = MembersOfEpoch(epoch);
  auto ring_it = ring_of_epoch_.find(epoch);
  if (ring_it == ring_of_epoch_.end()) {
    // Placement under an epoch is a pure function of its sorted member
    // list: every node builds the identical ring independently.
    ring_it = ring_of_epoch_.try_emplace(epoch, config_.ring_vnodes).first;
    for (sim::NodeId m : members) ring_it->second.AddServer(m);
  }
  const KeyId id = keys_.Intern(key);
  std::vector<std::vector<sim::NodeId>>& walks = walks_of_epoch_[epoch];
  if (walks.size() <= id) walks.resize(id + 1);
  std::vector<sim::NodeId>& out = walks[id];
  if (out.empty()) {
    out = ring_it->second.PreferenceList(key, members.size());
  }
  return out;
}

std::vector<sim::NodeId> DynamoCluster::PreferenceListAt(
    uint64_t epoch, const std::string& key) const {
  const std::vector<sim::NodeId>& walk = RingWalkAt(epoch, key);
  return std::vector<sim::NodeId>(
      walk.begin(),
      walk.begin() +
          std::min<size_t>(config_.replication_factor, walk.size()));
}

void DynamoCluster::WriteTargets(Server* coordinator, const std::string& key,
                                 std::vector<sim::NodeId>* targets,
                                 std::vector<sim::NodeId>* intended) {
  // Elastic coordinators place under their own committed epoch; receivers
  // fence legs whose epoch differs, so a stale placement can never count
  // toward a quorum.
  const std::vector<sim::NodeId> preferred =
      elastic() ? PreferenceListAt(coordinator->epoch, key)
                : PreferenceList(key);
  targets->clear();
  intended->clear();
  if (!config_.sloppy) {
    *targets = preferred;
    intended->assign(preferred.size(), kNoHint);
    return;
  }
  // Sloppy quorum: walk the ring; replace unreachable preferred nodes with
  // the next reachable nodes, carrying a hint naming the intended home.
  // Reachability is the coordinator's own failure detector (phi-accrual over
  // observed replies) unless use_oracle_detector opts back into the
  // omniscient network oracle.
  const std::vector<sim::NodeId>& ring_walk =
      elastic() ? RingWalkAt(coordinator->epoch, key) : RingWalk(key);
  size_t walk = 0;
  size_t preferred_idx = 0;
  while (targets->size() < preferred.size() && walk < ring_walk.size()) {
    const sim::NodeId candidate = ring_walk[walk];
    ++walk;
    if (std::find(targets->begin(), targets->end(), candidate) !=
        targets->end()) {
      continue;
    }
    if (!TargetUsable(coordinator, candidate)) continue;
    // Is this candidate one of the preferred homes, or a fallback?
    const bool is_preferred =
        std::find(preferred.begin(), preferred.end(), candidate) !=
        preferred.end();
    if (is_preferred) {
      targets->push_back(candidate);
      intended->push_back(kNoHint);
    } else {
      // Fallback substitutes for the next still-missing preferred node.
      while (preferred_idx < preferred.size() &&
             TargetUsable(coordinator, preferred[preferred_idx])) {
        ++preferred_idx;
      }
      if (preferred_idx >= preferred.size()) break;
      targets->push_back(candidate);
      intended->push_back(preferred[preferred_idx]);
      ++preferred_idx;
      ++stats_.sloppy_diversions;
      c_sloppy_diversions_->Inc();
    }
  }
}

void DynamoCluster::RegisterHandlers(Server* server) {
  const sim::NodeId node = server->node;

  rpc_->RegisterHandler(
      node, m_client_put_,
      [this, server](sim::NodeId, sim::Payload req, sim::RpcResponder respond) {
        auto put = std::move(req).Take<ClientPutReq>();
        if (elastic()) {
          // A coordinator that is behind the client's committed epoch must
          // not serve: its placement could ack a quorum the new epoch's
          // readers never intersect. Refresh and make the client retry.
          // (A coordinator AHEAD of the request epoch serves fine — its
          // placement is fresher than the client's routing snapshot.)
          if (put.epoch > server->epoch) {
            ++stats_.stale_epoch_rejects;
            c_stale_epoch_rejects_->Inc();
            RefreshView(server);
            respond(Status::FailedPrecondition("coordinator view is stale"));
            return;
          }
          if (server->needs_refresh || server->departed) {
            respond(Status::Unavailable("coordinator not serving"));
            return;
          }
        }
        CoordinatePut(server, std::move(put),
                      [respond](Result<Version> r) mutable {
                        if (r.ok()) {
                          respond(std::move(r).value());
                        } else {
                          respond(r.status());
                        }
                      });
      });

  rpc_->RegisterHandler(
      node, m_client_get_,
      [this, server](sim::NodeId, sim::Payload req, sim::RpcResponder respond) {
        auto get = std::move(req).Take<ClientGetReq>();
        if (elastic()) {
          if (get.epoch > server->epoch) {
            ++stats_.stale_epoch_rejects;
            c_stale_epoch_rejects_->Inc();
            RefreshView(server);
            respond(Status::FailedPrecondition("coordinator view is stale"));
            return;
          }
          if (server->needs_refresh || server->departed) {
            respond(Status::Unavailable("coordinator not serving"));
            return;
          }
        }
        CoordinateGet(server, std::move(get.key),
                      [respond](Result<ReadResult> r) mutable {
                        if (r.ok()) {
                          respond(std::move(r).value());
                        } else {
                          respond(r.status());
                        }
                      });
      });

  // Shared by m_store_ (quorum legs, read repair) and m_hint_ (handoff
  // delivery): identical semantics, distinct method ids so the admission
  // gate can classify handoffs as background.
  auto store_handler =
      [this, server](sim::NodeId, sim::Payload req, sim::RpcResponder respond) {
        auto store = std::move(req).Take<StoreReq>();
        if (elastic() && !store.cross_epoch && store.epoch != server->epoch) {
          // Quorum-counted leg from a different epoch: fence it. Either the
          // sender is stale (its retry re-places under the new view) or we
          // are (refresh below); accepting would let two epochs' quorums
          // miss each other.
          ++stats_.stale_epoch_rejects;
          c_stale_epoch_rejects_->Inc();
          if (store.epoch > server->epoch) RefreshView(server);
          respond(Status::FailedPrecondition("epoch mismatch"));
          return;
        }
        if (store.has_hint && store.intended != server->node) {
          // We are a fallback home: buffer for handoff AND serve reads from
          // local storage in the meantime. Merge into any hint already
          // buffered for this (intended, key) — counting a re-divert as a
          // fresh stored hint would unbalance the stored/delivered/lost
          // ledger, since delivery is per (intended, key) entry.
          auto& slot = server->hints[store.intended][store.key];
          if (slot.empty()) {
            ++stats_.hints_stored;
            c_hints_stored_->Inc();
            slot = store.versions;
          } else {
            slot = MergeSiblingSets({slot, store.versions});
          }
        }
        server->storage->MergeRemote(store.key, store.versions);
        respond(StoreAck{server->storage->store().KeyDigest(store.key)});
      };
  rpc_->RegisterHandler(node, m_store_, store_handler);
  rpc_->RegisterHandler(node, m_hint_, store_handler);

  rpc_->RegisterHandler(
      node, m_read_,
      [this, server](sim::NodeId, sim::Payload req, sim::RpcResponder respond) {
        auto read = std::move(req).Take<ReadReq>();
        if (elastic() && read.epoch != server->epoch) {
          // A stale replica must not contribute to a fresh read quorum (it
          // may have missed writes placed under the new epoch), and a fresh
          // replica must not serve a stale coordinator.
          ++stats_.stale_epoch_rejects;
          c_stale_epoch_rejects_->Inc();
          if (read.epoch > server->epoch) RefreshView(server);
          respond(Status::FailedPrecondition("epoch mismatch"));
          return;
        }
        ReadReply reply;
        reply.versions = server->storage->GetRaw(read.key);
        reply.digest = server->storage->store().KeyDigest(read.key);
        respond(std::move(reply));
      });

  rpc_->RegisterHandler(
      node, m_migrate_,
      [this, server](sim::NodeId, sim::Payload req, sim::RpcResponder respond) {
        // Inbound migration stream: merge every entry. Version sets are
        // CRDTs, so replaying a chunk (sender retry) is harmless, and the
        // merge is valid at either side of the epoch boundary.
        auto chunk = std::move(req).Take<MigrateChunk>();
        for (const auto& [key, versions] : chunk.entries) {
          server->storage->MergeRemote(key, versions);
        }
        respond(StoreAck{0});
      });
}

// Client calls keep the seed's overall 4*rpc_timeout budget, but spend it as
// two resilient attempts (2*rpc_timeout each, backoff between) under an
// absolute deadline instead of one long-shot RPC. A retried put is safe: the
// coordinator mints a fresh version whose vector dominates the first mint's
// (same context, higher coordinator counter), so re-execution converges to a
// single sibling rather than duplicating state.
resilience::CallOptions DynamoCluster::ClientCallOptions() const {
  resilience::CallOptions opts;
  opts.attempt_timeout = 2 * config_.rpc_timeout;
  opts.deadline = rpc_->simulator()->Now() +
                  config_.client_deadline_budget * config_.rpc_timeout;
  opts.max_attempts = config_.client_attempts;
  return opts;
}

void DynamoCluster::Put(sim::NodeId client, sim::NodeId coordinator,
                        const std::string& key, std::string value,
                        const VersionVector& context, PutCallback done) {
  ClientPutReq req;
  req.key = key;
  req.value = std::move(value);
  req.context = context;
  req.is_delete = false;
  if (elastic()) req.epoch = config_service_->committed().epoch;
  ClientRpc(client)->Call(coordinator, m_client_put_, std::move(req),
                          ClientCallOptions(), [done](Result<sim::Payload> r) {
                            if (!r.ok()) {
                              done(r.status());
                            } else {
                              done(std::move(r).value().Take<Version>());
                            }
                          });
}

void DynamoCluster::Delete(sim::NodeId client, sim::NodeId coordinator,
                           const std::string& key,
                           const VersionVector& context, PutCallback done) {
  ClientPutReq req;
  req.key = key;
  req.context = context;
  req.is_delete = true;
  if (elastic()) req.epoch = config_service_->committed().epoch;
  ClientRpc(client)->Call(coordinator, m_client_put_, std::move(req),
                          ClientCallOptions(), [done](Result<sim::Payload> r) {
                            if (!r.ok()) {
                              done(r.status());
                            } else {
                              done(std::move(r).value().Take<Version>());
                            }
                          });
}

void DynamoCluster::Get(sim::NodeId client, sim::NodeId coordinator,
                        const std::string& key, GetCallback done) {
  ClientGetReq req{key};
  if (elastic()) req.epoch = config_service_->committed().epoch;
  resilience::CallOptions opts = ClientCallOptions();
  if (config_.hedge_reads && servers_.size() > 1) {
    // Race a slow coordinator against the next server; reads are idempotent
    // and both coordinators merge the same replica set, so either reply is
    // a valid quorum read.
    opts.hedge = true;
    for (size_t i = 0; i < servers_.size(); ++i) {
      if (servers_[i]->node == coordinator) {
        opts.hedge_to = servers_[(i + 1) % servers_.size()]->node;
        break;
      }
    }
  }
  ClientRpc(client)->Call(coordinator, m_client_get_, std::move(req), opts,
                          [done](Result<sim::Payload> r) {
                            if (!r.ok()) {
                              done(r.status());
                            } else {
                              done(std::move(r).value().Take<ReadResult>());
                            }
                          });
}

void DynamoCluster::CoordinatePut(Server* coordinator, ClientPutReq req,
                                  std::function<void(Result<Version>)> done) {
  const sim::Time started = rpc_->simulator()->Now();
  coordinator->c_coordinated_puts->Inc();
  // Mint the new version once; every replica stores the identical bytes.
  Version version;
  version.value = std::move(req.value);
  version.tombstone = req.is_delete;
  version.vv = req.context;
  coordinator->coord_counter =
      std::max(coordinator->coord_counter,
               req.context.Get(coordinator->replica_id)) +
      1;
  version.vv.Set(coordinator->replica_id, coordinator->coord_counter);
  version.lww_ts = coordinator->clock.Tick();

  std::vector<sim::NodeId> targets;
  std::vector<sim::NodeId> intended;
  WriteTargets(coordinator, req.key, &targets, &intended);

  // During a prepared (uncommitted) reconfiguration the key's NEW owners
  // must also see every write: once the epoch commits, fresh read quorums
  // draw only from them. These delta legs are required — a leg that fails
  // falls back to a hint for its target, which blocks this server's
  // catch-up report (and therefore the commit) until delivered.
  std::vector<sim::NodeId> extra;
  if (elastic() && coordinator->prepared.has_value()) {
    for (sim::NodeId n :
         PreferenceListAt(coordinator->prepared->epoch, req.key)) {
      if (!Contains(targets, n)) extra.push_back(n);
    }
  }

  struct PutState {
    int acks = 0;
    int completed = 0;
    int total = 0;
    int required = 0;
    int extra_done = 0;
    int extra_total = 0;
    bool done_fired = false;
  };
  auto state = std::make_shared<PutState>();
  state->total = static_cast<int>(targets.size());
  state->required = std::min(config_.write_quorum, state->total);
  state->extra_total = static_cast<int>(extra.size());

  if (state->total == 0) {
    ++stats_.puts_unavailable;
    c_puts_unavailable_->Inc();
    done(Status::Unavailable("no reachable replicas"));
    return;
  }

  auto maybe_finish = [this, state, done, version, started] {
    if (state->done_fired) return;
    if (state->acks >= state->required &&
        state->extra_done == state->extra_total) {
      state->done_fired = true;
      ++stats_.puts_ok;
      c_puts_ok_->Inc();
      (*h_put_latency_us_)
          .Add(static_cast<double>(rpc_->simulator()->Now() - started));
      done(version);
    } else if (state->completed == state->total &&
               state->acks < state->required) {
      state->done_fired = true;
      ++stats_.puts_unavailable;
      c_puts_unavailable_->Inc();
      done(Status::Unavailable("write quorum not met"));
    }
  };
  auto on_complete = [state, maybe_finish](bool ok) {
    if (ok) ++state->acks;
    ++state->completed;
    maybe_finish();
  };

  // Fan-out legs feed the coordinator's detector/breaker (record_outcome)
  // in both modes; single attempt, breaker not consulted — the quorum math
  // already tolerates missing acks, and WriteTargets skipped unusable
  // peers up front.
  resilience::CallOptions leg;
  leg.attempt_timeout = config_.rpc_timeout;
  leg.max_attempts = 1;
  leg.respect_breaker = false;
  // The quorum math already bounds fan-out; starving a leg on the retry
  // budget or AIMD limit would turn overload into quorum loss.
  leg.respect_limits = false;
  for (size_t i = 0; i < targets.size(); ++i) {
    StoreReq store;
    store.key = req.key;
    store.versions = {version};
    store.has_hint = intended[i] != kNoHint;
    store.intended = intended[i];
    store.epoch = coordinator->epoch;
    coordinator->resilient->Call(
        targets[i], m_store_, std::move(store), leg,
        [on_complete](Result<sim::Payload> r) { on_complete(r.ok()); });
  }
  for (size_t i = 0; i < extra.size(); ++i) {
    const sim::NodeId target = extra[i];
    StoreReq store;
    store.key = req.key;
    store.versions = {version};
    store.epoch = coordinator->epoch;
    // Valid at either epoch: the receiver may learn of the commit before
    // this leg lands, and the merge stays correct regardless.
    store.cross_epoch = true;
    const std::string key = req.key;
    coordinator->resilient->Call(
        target, m_store_, std::move(store), leg,
        [this, state, maybe_finish, coordinator, target, key,
         version](Result<sim::Payload> r) {
          if (!r.ok()) {
            // Hinted handoff to the NEW owner: the write stays available
            // and the data reaches the owner before the epoch commits
            // (TryReportCatchUp holds the report while this hint pends).
            auto& slot = coordinator->hints[target][key];
            if (slot.empty()) {
              ++stats_.hints_stored;
              c_hints_stored_->Inc();
              slot = {version};
            } else {
              slot = MergeSiblingSets({slot, {version}});
            }
          }
          ++state->extra_done;
          maybe_finish();
        });
  }
}

void DynamoCluster::CoordinateGet(
    Server* coordinator, std::string key,
    std::function<void(Result<ReadResult>)> done) {
  const sim::Time started = rpc_->simulator()->Now();
  coordinator->c_coordinated_gets->Inc();
  // Elastic coordinators read under their own committed epoch; replicas at
  // a different epoch fence the leg, so the quorum only counts replicas
  // that agree on placement.
  const std::vector<sim::NodeId> preferred =
      elastic() ? PreferenceListAt(coordinator->epoch, key)
                : PreferenceList(key);

  struct GetState {
    std::vector<std::vector<Version>> replies;
    std::vector<std::pair<sim::NodeId, uint64_t>> replier_digests;
    int completed = 0;
    int total = 0;
    int required = 0;
    bool done_fired = false;
    std::string key;
  };
  auto state = std::make_shared<GetState>();
  state->total = static_cast<int>(preferred.size());
  state->required = std::min(config_.read_quorum, state->total);
  state->key = key;

  auto finish = [this, state, coordinator, done, started]() {
    // Merge sibling sets from all repliers.
    std::vector<Version> merged = MergeSiblingSets(state->replies);
    ReadResult result;
    result.replies = static_cast<int>(state->replies.size());
    for (const auto& v : merged) {
      result.context.MergeWith(v.vv);
      if (!v.tombstone) result.versions.push_back(v);
    }
    // Read repair: push the merged set to any replier whose digest differs.
    if (config_.read_repair && !merged.empty()) {
      // Compute the digest a converged replica would report (same formula
      // as VersionedStore::KeyDigest over the merged sibling set).
      const uint64_t key_hash = Fnv1a64(state->key);
      uint64_t want = 0;
      for (const auto& v : merged) want ^= Mix64(key_hash ^ v.Digest());
      for (const auto& [node, digest] : state->replier_digests) {
        if (digest == want) continue;
        StoreReq repair;
        repair.key = state->key;
        repair.versions = merged;
        repair.epoch = coordinator->epoch;
        // Repair is an idempotent version-set merge — valid even if the
        // target's epoch flips while the push is in flight.
        repair.cross_epoch = true;
        rpc_->Call(coordinator->node, node, m_store_, std::move(repair),
                   config_.rpc_timeout, [](Result<sim::Payload>) {});
        ++stats_.read_repairs;
        c_read_repairs_->Inc();
        result.repaired = true;
      }
    }
    ++stats_.gets_ok;
    c_gets_ok_->Inc();
    (*h_get_latency_us_)
        .Add(static_cast<double>(rpc_->simulator()->Now() - started));
    done(std::move(result));
  };

  auto on_reply = [this, state, finish,
                   done](sim::NodeId from, Result<sim::Payload> r) {
    ++state->completed;
    if (state->done_fired) return;
    if (r.ok()) {
      auto reply = std::move(r).value().Take<ReadReply>();
      state->replies.push_back(std::move(reply.versions));
      state->replier_digests.emplace_back(from, reply.digest);
    }
    if (static_cast<int>(state->replies.size()) >= state->required) {
      state->done_fired = true;
      finish();
    } else if (state->completed == state->total) {
      state->done_fired = true;
      ++stats_.gets_unavailable;
      c_gets_unavailable_->Inc();
      done(Status::Unavailable("read quorum not met"));
    }
  };

  resilience::CallOptions leg;
  leg.attempt_timeout = config_.rpc_timeout;
  leg.max_attempts = 1;
  leg.respect_breaker = false;
  leg.respect_limits = false;  // see CoordinatePut
  for (const sim::NodeId target : preferred) {
    ReadReq read{key, coordinator->epoch};
    coordinator->resilient->Call(target, m_read_, std::move(read), leg,
                                 [on_reply, target](Result<sim::Payload> r) {
                                   on_reply(target, std::move(r));
                                 });
  }
}

void DynamoCluster::StartHintDelivery(sim::Time interval) {
  hint_interval_ = interval;  // live-added servers get the same cadence
  for (auto& server : servers_) ScheduleHintTick(server.get(), interval);
}

void DynamoCluster::ScheduleHintTick(Server* server, sim::Time interval) {
  rpc_->simulator()->ScheduleAfter(interval, [this, server, interval] {
    DeliverHints(server);
    ScheduleHintTick(server, interval);
  });
}

void DynamoCluster::DeliverHints(Server* server) {
  sim::Network* net = rpc_->network();
  if (!net->IsNodeUp(server->node)) return;
  for (auto it = server->hints.begin(); it != server->hints.end();) {
    const sim::NodeId intended = it->first;
    // Hold the hint while the intended home still looks down — to the
    // holder's own detector in detector mode, to the oracle otherwise.
    const bool reachable = config_.use_oracle_detector
                               ? net->CanCommunicate(server->node, intended)
                               : server->resilient->PeerUsable(intended);
    if (!reachable) {
      ++it;
      continue;
    }
    // Backpressure: hold the batch while the intended home reports load
    // (piggybacked on its replies). Hints are best-effort background work;
    // adding them to an overloaded node's queue only deepens the overload.
    if (rpc_->PeerLoad(server->node, intended) >=
        config_.background_yield_load) {
      ++stats_.hints_deferred;
      ++it;
      continue;
    }
    resilience::CallOptions leg;
    leg.attempt_timeout = config_.rpc_timeout;
    leg.max_attempts = 1;
    leg.respect_breaker = false;
    leg.respect_limits = false;  // see CoordinatePut
    for (const auto& [key, versions] : it->second) {
      StoreReq store;
      store.key = key;
      store.versions = versions;
      store.epoch = server->epoch;
      // Handoff is an idempotent merge of versions the intended home was
      // always meant to hold — exempt from the epoch fence.
      store.cross_epoch = true;
      server->resilient->Call(intended, m_hint_, std::move(store), leg,
                              [this](Result<sim::Payload> r) {
                   if (r.ok()) {
                     ++stats_.hints_delivered;
                     c_hints_delivered_->Inc();
                   } else {
                     // The hint was already dropped from the buffer
                     // (optimistic erase below); account the loss so the
                     // handoff ledger still balances. Anti-entropy repairs
                     // the data itself.
                     ++stats_.hints_lost;
                     c_hints_lost_->Inc();
                   }
                 });
    }
    // Optimistic: drop the hint once sent; a lost handoff is later fixed by
    // anti-entropy (mirrors Dynamo's at-least-once handoff semantics).
    it = server->hints.erase(it);
  }
  // Draining hints may have unblocked a held catch-up report (reports wait
  // while hints to prepared-view members pend).
  if (elastic()) TryReportCatchUp(server);
}

void DynamoCluster::OnCrash(uint32_t node) {
  Server* server = FindServer(node);
  EVC_CHECK(server != nullptr);
  // Hints are volatile by design: count and drop them.
  uint64_t dropped = 0;
  uint64_t lost_hints = 0;
  for (const auto& [intended, keys] : server->hints) {
    lost_hints += keys.size();
    for (const auto& [key, versions] : keys) {
      dropped += key.size();
      for (const Version& v : versions) dropped += v.value.size();
    }
  }
  stats_.hints_lost += lost_hints;
  c_hints_lost_->Inc(lost_hints);
  server->hints.clear();
  // Non-durable storage has no WAL to replay: the whole store evaporates.
  if (!config_.storage.durable) {
    server->storage->store().ForEachKey(
        [&dropped](const std::string& key,
                   const std::vector<Version>& versions) {
          dropped += key.size();
          for (const Version& v : versions) dropped += v.value.size();
        });
  }
  Obs().CounterFor("crash.state_dropped_bytes").Inc(dropped);
  server->coord_counter = 0;
  server->clock = LamportClock(server->replica_id);
  // Migration progress is volatile: the restart refresh rebuilds the task
  // from durable storage if the prepared view is still pending.
  server->migration.reset();
}

void DynamoCluster::OnRestart(uint32_t node) {
  Server* server = FindServer(node);
  EVC_CHECK(server != nullptr);
  // Replay the storage WAL (empty buffer for non-durable storage, so this
  // doubles as the state drop). RestoreCounterFloor inside recovery keeps
  // VersionedStore's internal write counter monotonic.
  auto replayed = server->storage->CrashAndRecover();
  EVC_CHECK(replayed.ok());
  Obs().CounterFor("wal.replayed_records").Inc(*replayed);
  // Restore the coordinator's minting counter and Lamport clock from the
  // recovered versions, so post-restart puts never reuse a version-vector
  // slot or LWW timestamp already handed out before the crash.
  uint64_t counter_floor = 0;
  LamportTimestamp max_ts;
  server->storage->store().ForEachKey(
      [&](const std::string&, const std::vector<Version>& versions) {
        for (const Version& v : versions) {
          counter_floor =
              std::max(counter_floor, v.vv.Get(server->replica_id));
          if (max_ts < v.lww_ts) max_ts = v.lww_ts;
        }
      });
  server->coord_counter = counter_floor;
  server->clock.Observe(max_ts);
  if (elastic()) {
    // The view may have moved while we were down (we missed the pushes):
    // do not coordinate until a fresh pull confirms the epoch.
    server->needs_refresh = true;
    server->refresh_inflight = false;
    server->prepared.reset();
    rpc_->simulator()->ScheduleAfter(1, [this, server] {
      RefreshView(server);
    });
  }
}

bool DynamoCluster::ReplicasConverged(const std::string& key) {
  const std::vector<sim::NodeId> preferred = PreferenceList(key);
  uint64_t digest = 0;
  bool first = true;
  for (const sim::NodeId node : preferred) {
    Server* s = FindServer(node);
    const uint64_t d = s->storage->store().KeyDigest(key);
    if (first) {
      digest = d;
      first = false;
    } else if (d != digest) {
      return false;
    }
  }
  return true;
}

size_t DynamoCluster::pending_hints() const {
  size_t n = 0;
  for (const auto& server : servers_) {
    for (const auto& [intended, keys] : server->hints) n += keys.size();
  }
  return n;
}

// --- Elastic membership ---

void DynamoCluster::EnableElastic(membership::ConfigService* config) {
  EVC_CHECK(config_service_ == nullptr);
  EVC_CHECK(config_.use_hash_ring);  // per-epoch rings are vnode-based
  EVC_CHECK(config != nullptr);
  config_service_ = config;
  const membership::MembershipView& committed = config->committed();
  EVC_CHECK(committed.epoch >= 1);  // must be bootstrapped
  EVC_CHECK(committed.members.size() == servers_.size());
  members_of_epoch_.try_emplace(committed.epoch, committed.members);
  announced_epoch_ = committed.epoch;
  for (auto& server : servers_) {
    EVC_CHECK(committed.Contains(server->node));
    server->epoch = committed.epoch;
    server->members = committed.members;
    server->departed = false;
    SubscribeServer(server.get());
    ScheduleRefreshTick(server.get());
  }
}

void DynamoCluster::SubscribeServer(Server* server) {
  config_service_->Subscribe(
      server->node,
      [this, server](
          const membership::MembershipView& committed,
          const std::optional<membership::MembershipView>& prepared) {
        ApplyView(server, committed, prepared);
      });
}

void DynamoCluster::ApplyView(
    Server* server, const membership::MembershipView& committed,
    const std::optional<membership::MembershipView>& prepared) {
  if (committed.epoch > server->epoch) {
    members_of_epoch_.try_emplace(committed.epoch, committed.members);
    server->epoch = committed.epoch;
    server->members = committed.members;
    server->departed = !committed.Contains(server->node);
    server->needs_refresh = false;
    if (server->migration != nullptr &&
        server->migration->epoch <= committed.epoch) {
      server->migration.reset();  // that epoch is settled
    }
    RedirectHints(server);
    if (commit_cb_ && committed.epoch > announced_epoch_) {
      announced_epoch_ = committed.epoch;
      commit_cb_(committed);
    }
  } else if (committed.epoch == server->epoch) {
    // A same-epoch confirmation is what ends a restarted server's
    // "no coordination until synced" quarantine.
    server->needs_refresh = false;
  }
  if (prepared.has_value() && prepared->epoch > server->epoch) {
    members_of_epoch_.try_emplace(prepared->epoch, prepared->members);
    server->prepared = *prepared;
    if (server->migration == nullptr ||
        server->migration->epoch != prepared->epoch) {
      StartCatchUp(server);
    }
  } else {
    server->prepared.reset();
  }
}

void DynamoCluster::RefreshView(Server* server) {
  if (!elastic() || server->refresh_inflight) return;
  if (!rpc_->network()->IsNodeUp(server->node)) return;
  server->refresh_inflight = true;
  config_service_->Fetch(
      server->node, [this, server](Result<membership::ViewState> r) {
        server->refresh_inflight = false;
        if (!r.ok()) return;  // the periodic tick retries
        ++stats_.view_refreshes;
        c_view_refreshes_->Inc();
        std::optional<membership::MembershipView> prepared;
        if (r->has_prepared) prepared = std::move(r->prepared);
        ApplyView(server, r->committed, prepared);
      });
}

void DynamoCluster::ScheduleRefreshTick(Server* server) {
  rpc_->simulator()->ScheduleAfter(config_.view_refresh_interval,
                                   [this, server] {
                                     RefreshView(server);
                                     ScheduleRefreshTick(server);
                                   });
}

void DynamoCluster::StartCatchUp(Server* server) {
  EVC_CHECK(server->prepared.has_value());
  const uint64_t new_epoch = server->prepared->epoch;
  auto task = std::make_unique<MigrationTask>();
  task->epoch = new_epoch;
  // Stream every key we own under the committed epoch to owners it GAINS
  // under the prepared one. Only old owners send (new owners have nothing
  // to say yet), so the stream count stays proportional to moved ranges.
  server->storage->store().ForEachKey(
      [&](const std::string& key, const std::vector<Version>& versions) {
        const std::vector<sim::NodeId> old_pref =
            PreferenceListAt(server->epoch, key);
        if (!Contains(old_pref, server->node)) return;
        for (sim::NodeId n : PreferenceListAt(new_epoch, key)) {
          if (!Contains(old_pref, n)) {
            task->outgoing[n].emplace_back(key, versions);
          }
        }
      });
  task->streaming_done = task->outgoing.empty();
  server->migration = std::move(task);
  ++stats_.migrations_started;
  if (server->migration->streaming_done) {
    TryReportCatchUp(server);
  } else {
    StreamNextChunk(server);
  }
}

void DynamoCluster::StreamNextChunk(Server* server) {
  MigrationTask* task = server->migration.get();
  if (task == nullptr || task->streaming_done || task->chunk_inflight) return;
  if (!rpc_->network()->IsNodeUp(server->node)) return;
  if (task->outgoing.empty()) {
    task->streaming_done = true;
    TryReportCatchUp(server);
    return;
  }
  auto it = task->outgoing.begin();
  const sim::NodeId target = it->first;
  // Backpressure: migration streaming is background work; when the target
  // reports load, pause the stream and retry after the standard pause
  // instead of deepening its queue. Catch-up latency is the price of not
  // amplifying an overload.
  if (rpc_->PeerLoad(server->node, target) >= config_.background_yield_load) {
    ++stats_.migrate_deferred;
    const uint64_t deferred_epoch = task->epoch;
    rpc_->simulator()->ScheduleAfter(
        kMigrateRetryPause, [this, server, deferred_epoch] {
          MigrationTask* t2 = server->migration.get();
          if (t2 != nullptr && t2->epoch == deferred_epoch) {
            StreamNextChunk(server);
          }
        });
    return;
  }
  MigrateChunk chunk;
  chunk.epoch = task->epoch;
  const size_t n = std::min(kMigrateChunkKeys, it->second.size());
  chunk.entries.assign(it->second.end() - static_cast<ptrdiff_t>(n),
                       it->second.end());
  it->second.resize(it->second.size() - n);
  if (it->second.empty()) task->outgoing.erase(it);
  // Keep a copy for requeue on failure; chunks are idempotent merges, so a
  // duplicate delivery (late ack + requeue) is harmless.
  auto pending = std::make_shared<
      std::vector<std::pair<std::string, std::vector<Version>>>>(
      chunk.entries);
  task->chunk_inflight = true;
  const uint64_t epoch = task->epoch;
  resilience::CallOptions opts;
  opts.attempt_timeout = config_.rpc_timeout;
  opts.max_attempts = 3;
  server->resilient->Call(
      target, m_migrate_, std::move(chunk), opts,
      [this, server, target, pending, epoch](Result<sim::Payload> r) {
        MigrationTask* t = server->migration.get();
        if (t == nullptr || t->epoch != epoch) return;  // superseded
        t->chunk_inflight = false;
        if (r.ok()) {
          stats_.keys_migrated += pending->size();
          c_keys_migrated_->Inc(pending->size());
          StreamNextChunk(server);
          return;
        }
        auto& queue = t->outgoing[target];
        queue.insert(queue.end(), pending->begin(), pending->end());
        rpc_->simulator()->ScheduleAfter(
            kMigrateRetryPause, [this, server, epoch] {
              MigrationTask* t2 = server->migration.get();
              if (t2 != nullptr && t2->epoch == epoch) StreamNextChunk(server);
            });
      });
}

void DynamoCluster::TryReportCatchUp(Server* server) {
  MigrationTask* task = server->migration.get();
  if (task == nullptr || !task->streaming_done || task->reported ||
      task->report_inflight) {
    return;
  }
  if (!rpc_->network()->IsNodeUp(server->node)) return;
  // Hold the report while a hint addressed to a prepared-view member still
  // pends: the commit must not open the new epoch before its owners hold
  // the data those hints carry (DeliverHints re-tries us after draining).
  if (server->prepared.has_value()) {
    for (const auto& [intended, keys] : server->hints) {
      if (!keys.empty() && server->prepared->Contains(intended)) return;
    }
  }
  task->report_inflight = true;
  const uint64_t epoch = task->epoch;
  config_service_->ReportCatchUp(
      server->node, epoch, [this, server, epoch](Status s) {
        MigrationTask* t = server->migration.get();
        if (t == nullptr || t->epoch != epoch) return;
        t->report_inflight = false;
        if (s.ok()) {
          t->reported = true;
          ++stats_.migrations_completed;
          return;
        }
        rpc_->simulator()->ScheduleAfter(
            kMigrateRetryPause, [this, server, epoch] {
              MigrationTask* t2 = server->migration.get();
              if (t2 != nullptr && t2->epoch == epoch) {
                TryReportCatchUp(server);
              }
            });
      });
}

void DynamoCluster::RedirectHints(Server* server) {
  for (auto it = server->hints.begin(); it != server->hints.end();) {
    const sim::NodeId intended = it->first;
    if (Contains(server->members, intended)) {
      ++it;
      continue;
    }
    // The intended home left the committed view: waiting for it to come
    // back would pend forever (the static-membership bug this PR fixes).
    // Re-aim each hint at the key's new primary under the current epoch.
    resilience::CallOptions leg;
    leg.attempt_timeout = config_.rpc_timeout;
    leg.max_attempts = 1;
    leg.respect_breaker = false;
    leg.respect_limits = false;  // see CoordinatePut
    for (const auto& [key, versions] : it->second) {
      ++stats_.hints_redirected;
      c_hints_redirected_->Inc();
      const std::vector<sim::NodeId> pref =
          PreferenceListAt(server->epoch, key);
      const sim::NodeId target = pref.empty() ? server->node : pref.front();
      if (target == server->node) {
        // We are the new primary: the handoff is a local merge.
        server->storage->MergeRemote(key, versions);
        ++stats_.hints_delivered;
        c_hints_delivered_->Inc();
        continue;
      }
      StoreReq store;
      store.key = key;
      store.versions = versions;
      store.epoch = server->epoch;
      store.cross_epoch = true;
      server->resilient->Call(target, m_store_, std::move(store), leg,
                              [this](Result<sim::Payload> r) {
                                if (r.ok()) {
                                  ++stats_.hints_delivered;
                                  c_hints_delivered_->Inc();
                                } else {
                                  // Optimistic send, same ledger discipline
                                  // as DeliverHints: the entry is already
                                  // erased, so account the loss now.
                                  ++stats_.hints_lost;
                                  c_hints_lost_->Inc();
                                }
                              });
    }
    it = server->hints.erase(it);
  }
}

Result<sim::NodeId> DynamoCluster::AddServerLive(
    std::function<void(Status)> prepared) {
  EVC_CHECK(elastic());
  if (config_service_->ReconfigInProgress()) {
    return Status::FailedPrecondition("reconfiguration in flight");
  }
  Server* server = CreateServer(/*on_static_ring=*/false);
  // The newcomer serves nothing until it pulls a view; data still reaches
  // it meanwhile via cross-epoch migration chunks and extra write legs.
  server->needs_refresh = true;
  SubscribeServer(server);
  ScheduleRefreshTick(server);
  if (hint_interval_ > 0) ScheduleHintTick(server, hint_interval_);
  if (!config_.use_oracle_detector) {
    std::vector<sim::NodeId> nodes;
    nodes.reserve(servers_.size());
    for (const auto& s : servers_) nodes.push_back(s->node);
    server->resilient->StartHeartbeats(nodes);
  }
  if (server_created_cb_) {
    server_created_cb_(server->node, server->storage.get());
  }
  RefreshView(server);
  const sim::NodeId node = server->node;
  EVC_RETURN_IF_ERROR(config_service_->ProposeJoin(node, std::move(prepared)));
  return node;
}

Status DynamoCluster::RemoveServerLive(sim::NodeId node,
                                       std::function<void(Status)> prepared) {
  EVC_CHECK(elastic());
  if (FindServer(node) == nullptr) {
    return Status::InvalidArgument("unknown server");
  }
  if (config_service_->ReconfigInProgress()) {
    return Status::FailedPrecondition("reconfiguration in flight");
  }
  if (static_cast<int>(config_service_->committed().members.size()) <=
      config_.min_members) {
    return Status::FailedPrecondition("member floor reached");
  }
  return config_service_->ProposeLeave(node, std::move(prepared));
}

std::vector<sim::NodeId> DynamoCluster::CommittedMembers() const {
  EVC_CHECK(elastic());
  return config_service_->committed().members;
}

uint64_t DynamoCluster::committed_epoch() const {
  EVC_CHECK(elastic());
  return config_service_->committed().epoch;
}

bool DynamoCluster::Migrating() const {
  if (!elastic()) return false;
  if (config_service_->ReconfigInProgress()) return true;
  const uint64_t committed = config_service_->committed().epoch;
  for (const auto& server : servers_) {
    if (server->migration != nullptr && !server->migration->reported) {
      return true;
    }
    if (!server->departed && server->epoch != committed) return true;
  }
  return false;
}

}  // namespace evc::repl
