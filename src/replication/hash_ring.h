// Consistent hashing with virtual nodes (Dynamo's partitioning scheme).
//
// The naive "hash(key) mod n" placement the simple preference list uses has
// two classic problems the tutorial's partitioning discussion calls out:
// adding a server remaps nearly every key, and per-server load varies
// widely. A consistent-hash ring fixes remapping (only ~1/n of keys move)
// and virtual nodes fix balance (each server appears at `vnodes` positions,
// smoothing the arc lengths). Ablation 3 measures both effects.

#ifndef EVC_REPLICATION_HASH_RING_H_
#define EVC_REPLICATION_HASH_RING_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/latency.h"

namespace evc::repl {

/// Consistent-hash ring mapping keys to an ordered preference list of
/// distinct servers.
class HashRing {
 public:
  /// `vnodes` ring positions per server (1 = plain consistent hashing).
  /// `point_mask` narrows the point space (tests use it to force vnode
  /// collisions; production keeps the full 64-bit space).
  explicit HashRing(int vnodes = 64, uint64_t point_mask = ~0ull);

  /// Adds a server's vnodes to the ring. A vnode point that collides with
  /// one already owned by another server is re-probed to a free point, so
  /// no server ever silently overwrites (and later erases) another's arc.
  void AddServer(sim::NodeId node);
  /// Removes a server (its arcs fall to the successors).
  void RemoveServer(sim::NodeId node);

  size_t server_count() const { return servers_.size(); }
  int vnodes() const { return vnodes_; }
  /// Ring points currently placed; always server_count() * vnodes().
  size_t point_count() const { return ring_.size(); }

  /// The first `n` *distinct* servers clockwise from hash(key).
  std::vector<sim::NodeId> PreferenceList(const std::string& key,
                                          size_t n) const;

  /// The primary home of `key` (first entry of the preference list).
  sim::NodeId PrimaryFor(const std::string& key) const;

 private:
  static uint64_t PointFor(sim::NodeId node, int index);

  int vnodes_;
  uint64_t point_mask_;
  std::map<uint64_t, sim::NodeId> ring_;  // position -> server
  // Points actually placed per server: re-probed points differ from
  // PointFor(node, i), so removal must erase what AddServer recorded.
  std::map<sim::NodeId, std::vector<uint64_t>> points_;
  std::vector<sim::NodeId> servers_;
};

}  // namespace evc::repl

#endif  // EVC_REPLICATION_HASH_RING_H_
