#include "replication/timeline_store.h"

#include <algorithm>

#include "common/encoding.h"
#include "common/hash.h"

namespace evc::repl {

namespace {
constexpr char kWrite[] = "tl.write";
constexpr char kReplicate[] = "tl.replicate";
constexpr char kRead[] = "tl.read";
constexpr char kAdopt[] = "tl.adopt";
}  // namespace

TimelineCluster::TimelineCluster(sim::Rpc* rpc, TimelineOptions options)
    : rpc_(rpc), options_(options) {
  EVC_CHECK(rpc_ != nullptr);
  m_write_ = rpc_->InternMethod(kWrite);
  m_read_ = rpc_->InternMethod(kRead);
  m_adopt_ = rpc_->InternMethod(kAdopt);
  t_replicate_ = rpc_->network()->InternType(kReplicate);
  EVC_CHECK(options_.replication_factor >= 1);
}

TimelineCluster::~TimelineCluster() = default;

sim::NodeId TimelineCluster::AddServer() {
  auto server = std::make_unique<Server>();
  server->node = rpc_->network()->AddNode();
  RegisterHandlers(server.get());
  by_node_[server->node] = server.get();
  if (options_.crash_amnesia) {
    crash_registrar_.Register(rpc_->simulator(), server->node, this);
  }
  servers_.push_back(std::move(server));
  return servers_.back()->node;
}

std::vector<sim::NodeId> TimelineCluster::AddServers(int count) {
  std::vector<sim::NodeId> nodes;
  for (int i = 0; i < count; ++i) nodes.push_back(AddServer());
  return nodes;
}

std::vector<sim::NodeId> TimelineCluster::Servers() const {
  std::vector<sim::NodeId> nodes;
  nodes.reserve(servers_.size());
  for (const auto& server : servers_) nodes.push_back(server->node);
  return nodes;
}

TimelineRead TimelineCluster::LocalRecord(sim::NodeId server,
                                          const std::string& key) {
  Server* s = FindServer(server);
  EVC_CHECK(s != nullptr);
  TimelineRead result;
  auto it = s->data.find(key);
  if (it != s->data.end()) {
    result.found = true;
    result.value = it->second.value;
    result.seqno = it->second.seqno;
  }
  return result;
}

TimelineCluster::Server* TimelineCluster::FindServer(sim::NodeId node) {
  auto it = by_node_.find(node);
  return it == by_node_.end() ? nullptr : it->second;
}

obs::MetricsRegistry& TimelineCluster::Obs() {
  return rpc_->simulator()->metrics().global();
}

sim::NodeId TimelineCluster::DefaultMasterOf(const std::string& key) const {
  EVC_CHECK(!servers_.empty());
  return servers_[Fnv1a64(key) % servers_.size()]->node;
}

sim::NodeId TimelineCluster::MasterOf(const std::string& key) const {
  auto it = master_override_.find(key);
  if (it != master_override_.end()) return it->second;
  return DefaultMasterOf(key);
}

std::vector<sim::NodeId> TimelineCluster::ReplicasOf(
    const std::string& key) const {
  const size_t start = Fnv1a64(key) % servers_.size();
  const size_t n =
      std::min<size_t>(options_.replication_factor, servers_.size());
  std::vector<sim::NodeId> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(servers_[(start + i) % servers_.size()]->node);
  }
  // A migrated-to master outside the ring set joins the replica group.
  const sim::NodeId master = MasterOf(key);
  if (std::find(out.begin(), out.end(), master) == out.end()) {
    out.push_back(master);
  }
  return out;
}

void TimelineCluster::RegisterHandlers(Server* server) {
  rpc_->RegisterHandler(
      server->node, m_write_,
      [this, server](sim::NodeId, sim::Payload req, sim::RpcResponder respond) {
        auto write = std::move(req).Take<WriteReq>();
        // Only the master serializes writes; a misrouted write is rejected
        // so the client retries against the true master.
        if (MasterOf(write.key) != server->node) {
          respond(Status::FailedPrecondition("not the master"));
          return;
        }
        if (!write_gate_) {
          ApplyMasterWrite(server, write.key, std::move(write.value),
                           std::move(respond));
          return;
        }
        // The gate may release asynchronously (revoke fan-out, TTL waits,
        // crash-recovery fences), so re-validate the world at release time:
        // mastership can have migrated away, and a crashed master must not
        // apply or journal anything while down.
        write_gate_(
            server->node, write.key,
            [this, server, key = write.key, value = std::move(write.value),
             respond = std::move(respond)](Status st) mutable {
              if (!st.ok()) {
                respond(std::move(st));
                return;
              }
              if (MasterOf(key) != server->node) {
                respond(Status::FailedPrecondition("not the master"));
                return;
              }
              if (!rpc_->network()->IsNodeUp(server->node)) {
                respond(Status::Unavailable("master crashed"));
                return;
              }
              ApplyMasterWrite(server, key, std::move(value),
                               std::move(respond));
            });
      });

  rpc_->network()->RegisterHandler(
      server->node, t_replicate_, [this, server](sim::Message msg) {
        auto repl = std::move(msg.payload).Take<ReplicateMsg>();
        Record& rec = server->data[repl.key];
        // Timeline order: never apply an older update over a newer one.
        if (repl.seqno > rec.seqno) {
          rec.value = std::move(repl.value);
          rec.seqno = repl.seqno;
          JournalApply(server, repl.key, rec.value, rec.seqno);
        }
      });

  rpc_->RegisterHandler(
      server->node, m_read_,
      [this, server](sim::NodeId, sim::Payload req, sim::RpcResponder respond) {
        auto read = std::move(req).Take<ReadReq>();
        HandleRead(server, read, std::move(respond));
      });

  // Mastership adoption: install the shipped record (if newer than our
  // replica copy) and continue its timeline.
  rpc_->RegisterHandler(
      server->node, m_adopt_,
      [this, server](sim::NodeId, sim::Payload req, sim::RpcResponder respond) {
        auto adopt = std::move(req).Take<AdoptReq>();
        Record& rec = server->data[adopt.key];
        if (adopt.has_record && adopt.seqno > rec.seqno) {
          rec.value = std::move(adopt.value);
          rec.seqno = adopt.seqno;
          JournalApply(server, adopt.key, rec.value, rec.seqno);
        }
        respond(rec.seqno);
      });
}

void TimelineCluster::ApplyMasterWrite(Server* server, const std::string& key,
                                       std::string value,
                                       sim::RpcResponder respond) {
  Record& rec = server->data[key];
  rec.value = std::move(value);
  ++rec.seqno;
  JournalApply(server, key, rec.value, rec.seqno);
  ++stats_.writes_ok;
  Obs().CounterFor("tl.writes_ok").Inc();
  // Asynchronous in-order propagation to the other replicas. The
  // network may reorder; replicas apply only monotonically.
  for (const sim::NodeId replica : ReplicasOf(key)) {
    if (replica == server->node) continue;
    ReplicateMsg msg;
    msg.key = key;
    msg.value = rec.value;
    msg.seqno = rec.seqno;
    rpc_->network()->Send(server->node, replica, t_replicate_,
                          std::move(msg));
  }
  respond(rec.seqno);
}

void TimelineCluster::HandleRead(Server* server, const ReadReq& req,
                                 sim::RpcResponder respond) {
  const auto level = static_cast<TimelineReadLevel>(req.level);
  const sim::NodeId master = MasterOf(req.key);
  auto it = server->data.find(req.key);
  const uint64_t local_seqno = it == server->data.end() ? 0 : it->second.seqno;

  const bool need_forward =
      server->node != master &&
      (level == TimelineReadLevel::kCritical ||
       (level == TimelineReadLevel::kAtLeast && local_seqno < req.min_seqno));

  if (!need_forward) {
    TimelineRead result;
    if (it != server->data.end()) {
      result.found = true;
      result.value = it->second.value;
      result.seqno = it->second.seqno;
    }
    ++stats_.reads_local;
    Obs().CounterFor("tl.reads_local").Inc();
    // Staleness accounting: compare against the master's current seqno (an
    // omniscient-observer metric, not visible to the protocol itself). A
    // kAtLeast read satisfied locally (seqno >= min_seqno) can still lag
    // the master and is every bit as stale as a kAny read; the seed only
    // counted kAny, under-reporting staleness for freshness-floored reads.
    if (level == TimelineReadLevel::kAny ||
        level == TimelineReadLevel::kAtLeast) {
      Server* m = FindServer(master);
      auto mit = m->data.find(req.key);
      if (mit != m->data.end() && mit->second.seqno > local_seqno) {
        ++stats_.stale_reads_served;
        Obs().CounterFor("tl.stale_reads_served").Inc();
      }
    }
    // kAtLeast on the master with min_seqno beyond the master's own seqno:
    // nothing fresher exists, so serve what we have — but surface it.
    if (level == TimelineReadLevel::kAtLeast && server->node == master &&
        local_seqno < req.min_seqno) {
      result.min_seqno_unmet = true;
      ++stats_.atleast_unmet;
      Obs().CounterFor("tl.atleast_unmet").Inc();
    }
    respond(result);
    return;
  }

  // Forward to the master, preserving the requested level: the master then
  // evaluates (and if need be flags) the kAtLeast floor itself. The seed
  // downgraded forwards to kAny, which erased min_seqno before the master
  // could notice it was unmet.
  ++stats_.reads_forwarded;
  Obs().CounterFor("tl.reads_forwarded").Inc();
  ReadReq fwd = req;
  rpc_->Call(server->node, master, m_read_, std::move(fwd),
             options_.rpc_timeout, [respond](Result<sim::Payload> r) {
               if (r.ok()) {
                 respond(std::move(r).value());
               } else {
                 respond(r.status());
               }
             });
}

void TimelineCluster::Write(sim::NodeId client, const std::string& key,
                            std::string value, WriteCallback done) {
  WriteAttempt(client, key, std::move(value), /*attempts_left=*/6,
               std::move(done));
}

void TimelineCluster::WriteAttempt(sim::NodeId client, const std::string& key,
                                   std::string value, int attempts_left,
                                   WriteCallback done) {
  if (migrating_.count(key)) {
    // Mastership handoff in progress: back off and retry (PNUTS routers do
    // the same while a record's master is moving).
    if (attempts_left <= 0) {
      ++stats_.writes_unavailable;
      Obs().CounterFor("tl.writes_unavailable").Inc();
      done(Status::Unavailable("mastership migration in progress"));
      return;
    }
    rpc_->simulator()->ScheduleAfter(
        50 * sim::kMillisecond,
        [this, client, key, value = std::move(value), attempts_left,
         done]() mutable {
          WriteAttempt(client, key, std::move(value), attempts_left - 1,
                       std::move(done));
        });
    return;
  }
  WriteReq req;
  req.key = key;
  req.value = value;
  rpc_->Call(client, MasterOf(key), m_write_, std::move(req),
             options_.rpc_timeout,
             [this, client, key, value = std::move(value), attempts_left,
              done](Result<sim::Payload> r) mutable {
               if (r.ok()) {
                 done(std::move(r).value().Take<uint64_t>());
                 return;
               }
               // Retry misroutes (stale master view) and migration races.
               if (r.status().IsFailedPrecondition() && attempts_left > 0) {
                 WriteAttempt(client, key, std::move(value),
                              attempts_left - 1, std::move(done));
                 return;
               }
               ++stats_.writes_unavailable;
               Obs().CounterFor("tl.writes_unavailable").Inc();
               done(r.status());
             });
}

void TimelineCluster::MigrateMaster(const std::string& key,
                                    sim::NodeId new_master,
                                    MigrateCallback done) {
  EVC_CHECK(FindServer(new_master) != nullptr);
  const sim::NodeId old_master = MasterOf(key);
  if (old_master == new_master) {
    done(Status::OK());
    return;
  }
  if (!migrating_.insert(key).second) {
    done(Status::FailedPrecondition("migration already in progress"));
    return;
  }

  auto finish = [this, key, old_master, new_master, done](Status status) {
    migrating_.erase(key);
    if (status.ok()) {
      master_override_[key] = new_master;
      Obs().CounterFor("tl.migrations_ok").Inc();
      // Repoint first, then notify: the hook may consult MasterOf(key).
      if (master_move_hook_) master_move_hook_(key, old_master, new_master);
    }
    done(std::move(status));
  };

  // Fetch the old master's record (if reachable), ship it to the adopter.
  ReadReq fetch;
  fetch.key = key;
  fetch.level = static_cast<uint8_t>(TimelineReadLevel::kAny);
  rpc_->Call(new_master, old_master, m_read_, fetch, options_.rpc_timeout,
             [this, key, new_master, finish](Result<sim::Payload> r) {
               AdoptReq adopt;
               adopt.key = key;
               if (r.ok()) {
                 auto read =
                     std::move(r).value().Take<TimelineRead>();
                 adopt.has_record = read.found;
                 adopt.value = std::move(read.value);
                 adopt.seqno = read.seqno;
               }
               // Old master unreachable => failover: adopt from the new
               // master's own replica state (adopt.has_record stays false;
               // the handler keeps whatever it already has).
               rpc_->Call(new_master, new_master, m_adopt_, std::move(adopt),
                          options_.rpc_timeout,
                          [finish](Result<sim::Payload> adopted) {
                            finish(adopted.ok()
                                       ? Status::OK()
                                       : adopted.status());
                          });
             });
}

void TimelineCluster::Read(sim::NodeId client, sim::NodeId replica,
                           const std::string& key, TimelineReadLevel level,
                           uint64_t min_seqno, ReadCallback done) {
  ReadReq req;
  req.key = key;
  req.level = static_cast<uint8_t>(level);
  req.min_seqno = min_seqno;
  rpc_->Call(client, replica, m_read_, std::move(req), 2 * options_.rpc_timeout,
             [done](Result<sim::Payload> r) {
               if (!r.ok()) {
                 done(r.status());
               } else {
                 done(std::move(r).value().Take<TimelineRead>());
               }
             });
}

void TimelineCluster::JournalApply(Server* server, const std::string& key,
                                   const std::string& value, uint64_t seqno) {
  if (!options_.durable) return;
  std::string rec;
  PutLengthPrefixed(&rec, key);
  PutLengthPrefixed(&rec, value);
  PutVarint64(&rec, seqno);
  server->wal.Append(rec);
}

void TimelineCluster::OnCrash(uint32_t node) {
  Server* server = FindServer(node);
  EVC_CHECK(server != nullptr);
  uint64_t dropped = 0;
  for (const auto& [key, rec] : server->data) {
    dropped += key.size() + rec.value.size();
  }
  Obs().CounterFor("crash.state_dropped_bytes").Inc(dropped);
  server->data.clear();
}

void TimelineCluster::OnRestart(uint32_t node) {
  Server* server = FindServer(node);
  EVC_CHECK(server != nullptr);
  std::vector<std::string> records;
  uint64_t valid_prefix = 0;
  EVC_CHECK(server->wal.ReadAll(&records, &valid_prefix).ok());
  server->wal.TruncateTo(valid_prefix);
  for (const std::string& raw : records) {
    Decoder dec(raw);
    std::string key;
    std::string value;
    uint64_t seqno = 0;
    EVC_CHECK(dec.GetLengthPrefixed(&key).ok());
    EVC_CHECK(dec.GetLengthPrefixed(&value).ok());
    EVC_CHECK(dec.GetVarint64(&seqno).ok());
    Record& rec = server->data[key];
    // Same monotonicity rule as live replication.
    if (seqno > rec.seqno) {
      rec.value = std::move(value);
      rec.seqno = seqno;
    }
  }
  Obs().CounterFor("wal.replayed_records").Inc(records.size());
}

uint64_t TimelineCluster::VisibleSeqno(sim::NodeId server,
                                       const std::string& key) {
  Server* s = FindServer(server);
  EVC_CHECK(s != nullptr);
  auto it = s->data.find(key);
  return it == s->data.end() ? 0 : it->second.seqno;
}

}  // namespace evc::repl
