// Dynamo-style quorum-replicated key-value store on the simulated network.
//
// The mechanism centerpiece of the tutorial's "first generation" systems:
//   * a preference list of N replicas per key (ring walk from the key hash);
//   * writes ship a causally tagged version to all N and ack after W;
//   * reads query all N, return after R, and merge sibling sets;
//   * read repair pushes the merged result back to stale replicas;
//   * optional sloppy quorums divert writes to fallback nodes with a hint
//     (hinted handoff) so writes stay available through failures;
//   * R + W > N gives read-your-latest-write intersection; smaller R/W gives
//     lower latency and higher availability but stale/concurrent reads —
//     exactly the dial Figs. 1/2 and Table 4 sweep.

#ifndef EVC_REPLICATION_QUORUM_STORE_H_
#define EVC_REPLICATION_QUORUM_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "clock/lamport.h"
#include "common/interner.h"
#include "membership/config_service.h"
#include "replication/hash_ring.h"
#include "resilience/admission.h"
#include "resilience/resilient_rpc.h"
#include "sim/rpc.h"
#include "storage/replica_storage.h"

namespace evc::repl {

/// Quorum configuration (Dynamo's N/R/W).
struct QuorumConfig {
  int replication_factor = 3;  ///< N: replicas per key
  int read_quorum = 2;         ///< R: replies required for a read
  int write_quorum = 2;        ///< W: acks required for a write
  bool sloppy = true;          ///< divert to fallback nodes with hints
  bool read_repair = true;     ///< push merged versions to stale replicas
  sim::Time rpc_timeout = 250 * sim::kMillisecond;
  /// Placement: modulo ring walk (false) or consistent hashing with
  /// virtual nodes (true; see HashRing). Ablation 3 compares them.
  bool use_hash_ring = false;
  int ring_vnodes = 64;
  ReplicaStorageOptions storage;
  /// Register servers as simulator CrashParticipants: a nemesis crash drops
  /// the volatile hint buffers (counted in hints_lost) and restart replays
  /// the storage WAL. Hints are deliberately NOT journaled — Dynamo treats
  /// them as best-effort, with anti-entropy as the backstop.
  bool crash_amnesia = true;
  /// Opt-out: use the simulator's omniscient CanCommunicate oracle for
  /// sloppy-quorum target selection and hint-delivery gating instead of the
  /// default client-side phi-accrual detector. The oracle is blind to gray
  /// failures (slow/flaky links look "reachable"); the detector sees what a
  /// real coordinator sees. Kept for A/B experiments against the seed
  /// behavior.
  bool use_oracle_detector = false;
  /// Hedge client reads: a slow coordinator gets raced against the next
  /// server after a latency-percentile delay (first reply wins).
  bool hedge_reads = false;
  /// Elastic mode (EnableElastic): floor below which RemoveServerLive
  /// refuses to shrink the member set.
  int min_members = 3;
  /// Elastic mode: period of each server's view-refresh pull from the
  /// config service (push broadcasts cover the common case; the pull covers
  /// servers that were crashed or partitioned during the push).
  sim::Time view_refresh_interval = 2 * sim::kSecond;
  /// Retry/hedge/detector tuning shared by all servers and clients.
  resilience::ResilienceOptions resilience;
  /// Server-side admission control (overload defense, DESIGN.md §4.5):
  /// every server gets a bounded priority queue in front of its RPC
  /// handlers. Client ops and quorum legs are foreground; hint delivery and
  /// migration streaming are background; ping probes bypass the queue.
  bool admission_enabled = false;
  resilience::AdmissionOptions admission;
  /// Background senders (hint delivery, migration streaming) yield when the
  /// destination's piggybacked load signal reaches this percent (0..100;
  /// values above 50 mean its admission queue has started to fill).
  uint32_t background_yield_load = 75;
  /// Client-op shape: attempts and overall deadline (in rpc_timeout
  /// multiples) for the resilient client call. Defaults keep the historical
  /// two-attempts-in-4x-budget behavior.
  int client_attempts = 2;
  int client_deadline_budget = 4;
};

/// Result of a quorum read.
struct ReadResult {
  std::vector<Version> versions;  ///< live (non-tombstone) merged siblings
  VersionVector context;          ///< pass into the next Put to supersede
  int replies = 0;                ///< replicas that answered within the quorum
  bool repaired = false;          ///< read repair was triggered
};

using PutCallback = std::function<void(Result<Version>)>;
using GetCallback = std::function<void(Result<ReadResult>)>;

/// Operation statistics (monotonic counters for experiments).
struct DynamoStats {
  uint64_t puts_ok = 0;
  uint64_t puts_unavailable = 0;
  uint64_t gets_ok = 0;
  uint64_t gets_unavailable = 0;
  uint64_t read_repairs = 0;
  uint64_t hints_stored = 0;
  uint64_t hints_delivered = 0;
  /// Hints dropped without delivery: handoff RPC failed, or the holder
  /// crashed with hints buffered. Every stored hint is eventually delivered,
  /// lost, or still pending: hints_stored = hints_delivered + hints_lost +
  /// pending_hints() once no handoff RPC is in flight.
  uint64_t hints_lost = 0;
  uint64_t sloppy_diversions = 0;
  // Elastic membership (all zero for static clusters).
  uint64_t stale_epoch_rejects = 0;  ///< data-plane RPCs fenced by epoch
  uint64_t view_refreshes = 0;       ///< successful config pulls
  uint64_t hints_redirected = 0;     ///< hints re-aimed off departed nodes
  uint64_t keys_migrated = 0;        ///< keys streamed to new owners
  uint64_t migrations_started = 0;   ///< per-server catch-up tasks begun
  uint64_t migrations_completed = 0; ///< catch-up tasks acked by the config
  // Backpressure (all zero unless a destination reports load).
  uint64_t hints_deferred = 0;       ///< hint batches held: destination busy
  uint64_t migrate_deferred = 0;     ///< migration chunks held: dest busy
};

/// A cluster of Dynamo-style storage servers sharing one Rpc/network.
class DynamoCluster : private sim::CrashParticipant {
 public:
  DynamoCluster(sim::Rpc* rpc, QuorumConfig config);
  ~DynamoCluster();

  /// Adds a storage server; returns its network node id. All servers must be
  /// added before the first operation (and before EnableElastic; live
  /// topology changes go through AddServerLive / RemoveServerLive).
  sim::NodeId AddServer();
  /// Convenience: adds `count` servers.
  std::vector<sim::NodeId> AddServers(int count);

  /// Switches the cluster to live membership driven by `config`, which must
  /// already be bootstrapped with exactly the current server set. Requires
  /// use_hash_ring (epoch rings are vnode-based). Every data-plane RPC then
  /// carries the sender's committed epoch and is fenced on mismatch; see
  /// DESIGN.md §4.4.
  void EnableElastic(membership::ConfigService* config);
  bool elastic() const { return config_service_ != nullptr; }

  /// Creates a fresh server and proposes its join as epoch e+1. Returns the
  /// new node id immediately (clients may route to it only once the join
  /// commits); `prepared` fires when the view is prepared or the proposal
  /// fails. Fails fast when a reconfiguration is already in flight.
  [[nodiscard]] Result<sim::NodeId> AddServerLive(
      std::function<void(Status)> prepared);

  /// Proposes removing `node` as epoch e+1. The server object stays alive
  /// (it redirects its hints and streams moved ranges out during catch-up)
  /// but stops serving once the removal commits.
  [[nodiscard]] Status RemoveServerLive(sim::NodeId node,
                                        std::function<void(Status)> prepared);

  /// Elastic-mode introspection (test/harness hooks).
  std::vector<sim::NodeId> CommittedMembers() const;
  uint64_t committed_epoch() const;
  /// True while a reconfiguration (prepare → catch-up → commit) is in
  /// flight.
  bool Migrating() const;

  /// Fired once per committed epoch the cluster learns of (harnesses wire
  /// anti-entropy departures and routing updates here).
  using CommitCallback =
      std::function<void(const membership::MembershipView&)>;
  void SetCommitCallback(CommitCallback cb) { commit_cb_ = std::move(cb); }
  /// Fired when AddServerLive creates a server (harnesses wire the new
  /// node into anti-entropy before any data moves).
  using ServerCreatedCallback =
      std::function<void(sim::NodeId, ReplicaStorage*)>;
  void SetServerCreatedCallback(ServerCreatedCallback cb) {
    server_created_cb_ = std::move(cb);
  }

  size_t server_count() const { return servers_.size(); }
  const QuorumConfig& config() const { return config_; }

  /// Issues a put from `client` through coordinator `coordinator` (must be a
  /// server node). `context` is the causal context from a prior read (empty
  /// for blind writes). The callback fires with the stored Version or
  /// Unavailable/TimedOut.
  void Put(sim::NodeId client, sim::NodeId coordinator, const std::string& key,
           std::string value, const VersionVector& context, PutCallback done);

  /// Issues a tombstone write.
  void Delete(sim::NodeId client, sim::NodeId coordinator,
              const std::string& key, const VersionVector& context,
              PutCallback done);

  /// Issues a quorum read through `coordinator`.
  void Get(sim::NodeId client, sim::NodeId coordinator, const std::string& key,
           GetCallback done);

  /// The first N servers on the ring walk for `key` (ignoring liveness).
  std::vector<sim::NodeId> PreferenceList(const std::string& key) const;

  /// Starts periodic hinted-handoff delivery attempts on every server.
  void StartHintDelivery(sim::Time interval);

  /// Starts phi-accrual heartbeat probing between all servers. No-op in
  /// oracle mode (the oracle needs no evidence). Call after AddServers.
  void StartFailureDetection();

  /// `server`'s client-side liveness verdict on `peer`: detector + breaker
  /// in detector mode, always true in oracle mode (callers that want the
  /// oracle ask the Network directly). Used by anti-entropy peer selection.
  bool PeerUsable(sim::NodeId server, sim::NodeId peer) const;

  /// Resilience layer of a server (for assertions on detector state).
  resilience::ResilientRpc* resilient(sim::NodeId server);

  /// Admission gate of a server (null unless admission_enabled).
  resilience::AdmissionQueue* admission(sim::NodeId server);

  /// Storage engine of a server (for assertions / anti-entropy wiring).
  ReplicaStorage* storage(sim::NodeId server);
  const DynamoStats& stats() const { return stats_; }

  /// True if every server that is in `key`'s preference list stores an
  /// identical sibling set for `key`.
  bool ReplicasConverged(const std::string& key);

  /// Total undelivered hints across all servers.
  size_t pending_hints() const;

 private:
  /// One server's outbound side of a reconfiguration: the key ranges it
  /// owns under the old epoch that gained owners under the prepared one,
  /// streamed chunk-by-chunk, then reported caught-up to the config
  /// service. Volatile: a crash drops it and the restart refresh rebuilds
  /// it from durable storage.
  struct MigrationTask {
    uint64_t epoch = 0;  ///< the prepared epoch being caught up to
    // target -> (key, versions) entries still to stream. Ordered so the
    // stream order is deterministic.
    std::map<sim::NodeId,
             std::vector<std::pair<std::string, std::vector<Version>>>>
        outgoing;
    bool streaming_done = false;
    bool chunk_inflight = false;
    bool reported = false;
    bool report_inflight = false;
  };

  struct Server {
    sim::NodeId node = 0;
    uint32_t replica_id = 0;
    std::unique_ptr<ReplicaStorage> storage;
    LamportClock clock{0};
    uint64_t coord_counter = 0;  // for versions minted as coordinator
    // Hinted handoff buffer: intended server -> key -> versions.
    std::map<sim::NodeId, std::map<std::string, std::vector<Version>>> hints;
    // Client-side resilience: fan-out outcomes feed its detector/breaker in
    // both modes; only detector mode consults the verdicts.
    std::unique_ptr<resilience::ResilientRpc> resilient;
    // Server-side admission gate (null unless admission_enabled).
    std::unique_ptr<resilience::AdmissionQueue> admission;
    // Per-node routing observability (dyn.coordinated_gets/puts in this
    // node's registry): lets tests assert WHERE client traffic landed —
    // e.g. that a sticky session really re-polls one coordinator.
    obs::Counter* c_coordinated_gets = nullptr;
    obs::Counter* c_coordinated_puts = nullptr;
    // Elastic membership state (defaults are inert for static clusters).
    uint64_t epoch = 0;                      ///< committed epoch served under
    std::vector<sim::NodeId> members;        ///< member set at `epoch`
    std::optional<membership::MembershipView> prepared;  ///< successor view
    bool departed = false;       ///< self left the committed view
    bool needs_refresh = false;  ///< restarted: no coordination until synced
    bool refresh_inflight = false;
    std::unique_ptr<MigrationTask> migration;
  };

  // RPC payloads. In elastic mode every request carries the sender's
  // committed epoch; receivers fence on mismatch (except cross_epoch data
  // merges, which are CRDT-safe and must survive the commit race).
  struct ClientPutReq {
    std::string key;
    std::string value;
    VersionVector context;
    bool is_delete = false;
    uint64_t epoch = 0;  // client's view of the committed epoch
  };
  struct ClientGetReq {
    std::string key;
    uint64_t epoch = 0;
  };
  struct StoreReq {
    std::string key;
    std::vector<Version> versions;
    bool has_hint = false;
    sim::NodeId intended = 0;  // hinted handoff target
    uint64_t epoch = 0;        // coordinator's epoch (fenced on mismatch)
    // Exempt from the epoch fence: hint deliveries, read repair, and the
    // extra write legs to prepared-view owners merge idempotent version
    // sets and are valid at either epoch of the boundary they straddle.
    bool cross_epoch = false;
  };
  struct StoreAck {
    uint64_t digest = 0;
  };
  struct ReadReq {
    std::string key;
    uint64_t epoch = 0;
  };
  struct ReadReply {
    std::vector<Version> versions;  // raw, including tombstones
    uint64_t digest = 0;
  };
  struct MigrateChunk {
    uint64_t epoch = 0;  // prepared epoch the stream belongs to
    std::vector<std::pair<std::string, std::vector<Version>>> entries;
  };

  Server* FindServer(sim::NodeId node);
  /// Shared server construction; AddServer places the node on the static
  /// ring, AddServerLive leaves placement to the per-epoch rings.
  Server* CreateServer(bool on_static_ring);
  void RegisterHandlers(Server* server);

  // --- Elastic membership internals (no-ops for static clusters) ---
  /// Routes config-service pushes for `server` into ApplyView.
  void SubscribeServer(Server* server);
  /// Applies a learned (committed, prepared) pair: flips the served epoch,
  /// redirects hints off departed nodes, starts/aborts catch-up.
  void ApplyView(Server* server, const membership::MembershipView& committed,
                 const std::optional<membership::MembershipView>& prepared);
  /// Pulls the current views from the config service (single-flight).
  void RefreshView(Server* server);
  void ScheduleRefreshTick(Server* server);
  /// Members / ring / full walk under a specific epoch (built lazily from
  /// the sorted member list, so every node derives identical placement).
  const std::vector<sim::NodeId>& MembersOfEpoch(uint64_t epoch) const;
  const std::vector<sim::NodeId>& RingWalkAt(uint64_t epoch,
                                             const std::string& key) const;
  std::vector<sim::NodeId> PreferenceListAt(uint64_t epoch,
                                            const std::string& key) const;
  /// Builds `server`'s outbound migration task for its prepared view and
  /// starts streaming.
  void StartCatchUp(Server* server);
  void StreamNextChunk(Server* server);
  /// Reports catch-up once streaming finished AND no hint addressed to a
  /// prepared-view member is still buffered (commit must not open the new
  /// epoch before its owners hold the data).
  void TryReportCatchUp(Server* server);
  /// Re-aims buffered hints whose intended home left the committed view at
  /// the key's new primary (or merges locally when that is us).
  void RedirectHints(Server* server);
  /// Coordinator's liveness verdict on a fan-out candidate: oracle or
  /// detector per config (see QuorumConfig::use_oracle_detector).
  bool TargetUsable(Server* coordinator, sim::NodeId candidate) const;
  /// Lazily built per-client ResilientRpc (client retries + read hedging).
  /// Reuses the server's instance when `client` is also a server node.
  resilience::ResilientRpc* ClientRpc(sim::NodeId client);
  /// Per-call options for client ops: two attempts inside the same overall
  /// 4*rpc_timeout budget the seed spent on one long-shot RPC.
  resilience::CallOptions ClientCallOptions() const;
  /// Global metrics registry of the owning simulator (dyn.* instruments).
  obs::MetricsRegistry& Obs();

  /// Every server, in `key`'s placement order (preference list = first N).
  /// Cached per interned key; invalidated when membership changes.
  const std::vector<sim::NodeId>& RingWalk(const std::string& key) const;

  /// Write targets for a coordinator: the preference list, with unreachable
  /// entries replaced by ring-walk fallbacks when sloppy quorums are on.
  /// fallback_for[i] holds the intended node when targets[i] is a fallback.
  void WriteTargets(Server* coordinator, const std::string& key,
                    std::vector<sim::NodeId>* targets,
                    std::vector<sim::NodeId>* intended);

  void CoordinatePut(Server* coordinator, ClientPutReq req,
                     std::function<void(Result<Version>)> done);
  void CoordinateGet(Server* coordinator, std::string key,
                     std::function<void(Result<ReadResult>)> done);
  void DeliverHints(Server* server);
  void ScheduleHintTick(Server* server, sim::Time interval);

  // CrashParticipant: crash drops the hint buffer (and, for non-durable
  // storage, the whole store); restart replays the storage WAL and restores
  // the coordinator's version counter so minted versions never reuse a slot.
  void OnCrash(uint32_t node) override;
  void OnRestart(uint32_t node) override;

  sim::Rpc* rpc_;
  // Cached dyn.* instruments, resolved on first use (the registry lives on
  // the simulator; the seed re-looked each one up by string per operation).
  void ResolveInstruments();
  obs::Counter* c_sloppy_diversions_ = nullptr;
  obs::Counter* c_hints_stored_ = nullptr;
  obs::Counter* c_hints_delivered_ = nullptr;
  obs::Counter* c_hints_lost_ = nullptr;
  obs::Counter* c_puts_ok_ = nullptr;
  obs::Counter* c_puts_unavailable_ = nullptr;
  obs::Counter* c_gets_ok_ = nullptr;
  obs::Counter* c_gets_unavailable_ = nullptr;
  obs::Counter* c_read_repairs_ = nullptr;
  obs::Counter* c_stale_epoch_rejects_ = nullptr;
  obs::Counter* c_view_refreshes_ = nullptr;
  obs::Counter* c_hints_redirected_ = nullptr;
  obs::Counter* c_keys_migrated_ = nullptr;
  Histogram* h_put_latency_us_ = nullptr;
  Histogram* h_get_latency_us_ = nullptr;
  // Key placement cache: keys intern to dense ids and each key's full ring
  // walk is computed once. Membership changes (AddServer) clear the walks;
  // the ids stay stable for the cluster's lifetime.
  mutable KeyInterner keys_;
  mutable std::vector<std::vector<sim::NodeId>> walk_of_key_;
  // Pre-interned RPC methods / message types (resolved in the ctor).
  sim::MethodId m_client_put_ = 0;
  sim::MethodId m_client_get_ = 0;
  sim::MethodId m_store_ = 0;
  sim::MethodId m_read_ = 0;
  sim::MethodId m_migrate_ = 0;
  /// Same handler as m_store_, but a distinct method id so admission can
  /// classify hint handoffs as background while quorum legs stay foreground.
  sim::MethodId m_hint_ = 0;
  QuorumConfig config_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::map<sim::NodeId, Server*> by_node_;
  std::map<sim::NodeId, std::unique_ptr<resilience::ResilientRpc>>
      client_rpcs_;
  HashRing ring_;
  DynamoStats stats_;
  sim::CrashRegistrar crash_registrar_;
  // Elastic membership (null/empty for static clusters).
  membership::ConfigService* config_service_ = nullptr;
  sim::Time hint_interval_ = 0;   // remembered for live-added servers
  uint64_t announced_epoch_ = 0;  // highest epoch surfaced via commit_cb_
  CommitCallback commit_cb_;
  ServerCreatedCallback server_created_cb_;
  // Per-epoch placement caches, all pure functions of the epoch's sorted
  // member list: member sets, vnode rings, and interned-key full walks.
  mutable std::map<uint64_t, std::vector<sim::NodeId>> members_of_epoch_;
  mutable std::map<uint64_t, HashRing> ring_of_epoch_;
  mutable std::map<uint64_t, std::vector<std::vector<sim::NodeId>>>
      walks_of_epoch_;
};

}  // namespace evc::repl

#endif  // EVC_REPLICATION_QUORUM_STORE_H_
