// Dynamo-style quorum-replicated key-value store on the simulated network.
//
// The mechanism centerpiece of the tutorial's "first generation" systems:
//   * a preference list of N replicas per key (ring walk from the key hash);
//   * writes ship a causally tagged version to all N and ack after W;
//   * reads query all N, return after R, and merge sibling sets;
//   * read repair pushes the merged result back to stale replicas;
//   * optional sloppy quorums divert writes to fallback nodes with a hint
//     (hinted handoff) so writes stay available through failures;
//   * R + W > N gives read-your-latest-write intersection; smaller R/W gives
//     lower latency and higher availability but stale/concurrent reads —
//     exactly the dial Figs. 1/2 and Table 4 sweep.

#ifndef EVC_REPLICATION_QUORUM_STORE_H_
#define EVC_REPLICATION_QUORUM_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "clock/lamport.h"
#include "common/interner.h"
#include "replication/hash_ring.h"
#include "resilience/resilient_rpc.h"
#include "sim/rpc.h"
#include "storage/replica_storage.h"

namespace evc::repl {

/// Quorum configuration (Dynamo's N/R/W).
struct QuorumConfig {
  int replication_factor = 3;  ///< N: replicas per key
  int read_quorum = 2;         ///< R: replies required for a read
  int write_quorum = 2;        ///< W: acks required for a write
  bool sloppy = true;          ///< divert to fallback nodes with hints
  bool read_repair = true;     ///< push merged versions to stale replicas
  sim::Time rpc_timeout = 250 * sim::kMillisecond;
  /// Placement: modulo ring walk (false) or consistent hashing with
  /// virtual nodes (true; see HashRing). Ablation 3 compares them.
  bool use_hash_ring = false;
  int ring_vnodes = 64;
  ReplicaStorageOptions storage;
  /// Register servers as simulator CrashParticipants: a nemesis crash drops
  /// the volatile hint buffers (counted in hints_lost) and restart replays
  /// the storage WAL. Hints are deliberately NOT journaled — Dynamo treats
  /// them as best-effort, with anti-entropy as the backstop.
  bool crash_amnesia = true;
  /// Opt-out: use the simulator's omniscient CanCommunicate oracle for
  /// sloppy-quorum target selection and hint-delivery gating instead of the
  /// default client-side phi-accrual detector. The oracle is blind to gray
  /// failures (slow/flaky links look "reachable"); the detector sees what a
  /// real coordinator sees. Kept for A/B experiments against the seed
  /// behavior.
  bool use_oracle_detector = false;
  /// Hedge client reads: a slow coordinator gets raced against the next
  /// server after a latency-percentile delay (first reply wins).
  bool hedge_reads = false;
  /// Retry/hedge/detector tuning shared by all servers and clients.
  resilience::ResilienceOptions resilience;
};

/// Result of a quorum read.
struct ReadResult {
  std::vector<Version> versions;  ///< live (non-tombstone) merged siblings
  VersionVector context;          ///< pass into the next Put to supersede
  int replies = 0;                ///< replicas that answered within the quorum
  bool repaired = false;          ///< read repair was triggered
};

using PutCallback = std::function<void(Result<Version>)>;
using GetCallback = std::function<void(Result<ReadResult>)>;

/// Operation statistics (monotonic counters for experiments).
struct DynamoStats {
  uint64_t puts_ok = 0;
  uint64_t puts_unavailable = 0;
  uint64_t gets_ok = 0;
  uint64_t gets_unavailable = 0;
  uint64_t read_repairs = 0;
  uint64_t hints_stored = 0;
  uint64_t hints_delivered = 0;
  /// Hints dropped without delivery: handoff RPC failed, or the holder
  /// crashed with hints buffered. Every stored hint is eventually delivered,
  /// lost, or still pending: hints_stored = hints_delivered + hints_lost +
  /// pending_hints() once no handoff RPC is in flight.
  uint64_t hints_lost = 0;
  uint64_t sloppy_diversions = 0;
};

/// A cluster of Dynamo-style storage servers sharing one Rpc/network.
class DynamoCluster : private sim::CrashParticipant {
 public:
  DynamoCluster(sim::Rpc* rpc, QuorumConfig config);
  ~DynamoCluster();

  /// Adds a storage server; returns its network node id. All servers must be
  /// added before the first operation.
  sim::NodeId AddServer();
  /// Convenience: adds `count` servers.
  std::vector<sim::NodeId> AddServers(int count);

  size_t server_count() const { return servers_.size(); }
  const QuorumConfig& config() const { return config_; }

  /// Issues a put from `client` through coordinator `coordinator` (must be a
  /// server node). `context` is the causal context from a prior read (empty
  /// for blind writes). The callback fires with the stored Version or
  /// Unavailable/TimedOut.
  void Put(sim::NodeId client, sim::NodeId coordinator, const std::string& key,
           std::string value, const VersionVector& context, PutCallback done);

  /// Issues a tombstone write.
  void Delete(sim::NodeId client, sim::NodeId coordinator,
              const std::string& key, const VersionVector& context,
              PutCallback done);

  /// Issues a quorum read through `coordinator`.
  void Get(sim::NodeId client, sim::NodeId coordinator, const std::string& key,
           GetCallback done);

  /// The first N servers on the ring walk for `key` (ignoring liveness).
  std::vector<sim::NodeId> PreferenceList(const std::string& key) const;

  /// Starts periodic hinted-handoff delivery attempts on every server.
  void StartHintDelivery(sim::Time interval);

  /// Starts phi-accrual heartbeat probing between all servers. No-op in
  /// oracle mode (the oracle needs no evidence). Call after AddServers.
  void StartFailureDetection();

  /// `server`'s client-side liveness verdict on `peer`: detector + breaker
  /// in detector mode, always true in oracle mode (callers that want the
  /// oracle ask the Network directly). Used by anti-entropy peer selection.
  bool PeerUsable(sim::NodeId server, sim::NodeId peer) const;

  /// Resilience layer of a server (for assertions on detector state).
  resilience::ResilientRpc* resilient(sim::NodeId server);

  /// Storage engine of a server (for assertions / anti-entropy wiring).
  ReplicaStorage* storage(sim::NodeId server);
  const DynamoStats& stats() const { return stats_; }

  /// True if every server that is in `key`'s preference list stores an
  /// identical sibling set for `key`.
  bool ReplicasConverged(const std::string& key);

  /// Total undelivered hints across all servers.
  size_t pending_hints() const;

 private:
  struct Server {
    sim::NodeId node = 0;
    uint32_t replica_id = 0;
    std::unique_ptr<ReplicaStorage> storage;
    LamportClock clock{0};
    uint64_t coord_counter = 0;  // for versions minted as coordinator
    // Hinted handoff buffer: intended server -> key -> versions.
    std::map<sim::NodeId, std::map<std::string, std::vector<Version>>> hints;
    // Client-side resilience: fan-out outcomes feed its detector/breaker in
    // both modes; only detector mode consults the verdicts.
    std::unique_ptr<resilience::ResilientRpc> resilient;
    // Per-node routing observability (dyn.coordinated_gets/puts in this
    // node's registry): lets tests assert WHERE client traffic landed —
    // e.g. that a sticky session really re-polls one coordinator.
    obs::Counter* c_coordinated_gets = nullptr;
    obs::Counter* c_coordinated_puts = nullptr;
  };

  // RPC payloads.
  struct ClientPutReq {
    std::string key;
    std::string value;
    VersionVector context;
    bool is_delete = false;
  };
  struct ClientGetReq {
    std::string key;
  };
  struct StoreReq {
    std::string key;
    std::vector<Version> versions;
    bool has_hint = false;
    sim::NodeId intended = 0;  // hinted handoff target
  };
  struct StoreAck {
    uint64_t digest = 0;
  };
  struct ReadReq {
    std::string key;
  };
  struct ReadReply {
    std::vector<Version> versions;  // raw, including tombstones
    uint64_t digest = 0;
  };

  Server* FindServer(sim::NodeId node);
  void RegisterHandlers(Server* server);
  /// Coordinator's liveness verdict on a fan-out candidate: oracle or
  /// detector per config (see QuorumConfig::use_oracle_detector).
  bool TargetUsable(Server* coordinator, sim::NodeId candidate) const;
  /// Lazily built per-client ResilientRpc (client retries + read hedging).
  /// Reuses the server's instance when `client` is also a server node.
  resilience::ResilientRpc* ClientRpc(sim::NodeId client);
  /// Per-call options for client ops: two attempts inside the same overall
  /// 4*rpc_timeout budget the seed spent on one long-shot RPC.
  resilience::CallOptions ClientCallOptions() const;
  /// Global metrics registry of the owning simulator (dyn.* instruments).
  obs::MetricsRegistry& Obs();

  /// Every server, in `key`'s placement order (preference list = first N).
  /// Cached per interned key; invalidated when membership changes.
  const std::vector<sim::NodeId>& RingWalk(const std::string& key) const;

  /// Write targets for a coordinator: the preference list, with unreachable
  /// entries replaced by ring-walk fallbacks when sloppy quorums are on.
  /// fallback_for[i] holds the intended node when targets[i] is a fallback.
  void WriteTargets(Server* coordinator, const std::string& key,
                    std::vector<sim::NodeId>* targets,
                    std::vector<sim::NodeId>* intended);

  void CoordinatePut(Server* coordinator, ClientPutReq req,
                     std::function<void(Result<Version>)> done);
  void CoordinateGet(Server* coordinator, std::string key,
                     std::function<void(Result<ReadResult>)> done);
  void DeliverHints(Server* server);
  void ScheduleHintTick(Server* server, sim::Time interval);

  // CrashParticipant: crash drops the hint buffer (and, for non-durable
  // storage, the whole store); restart replays the storage WAL and restores
  // the coordinator's version counter so minted versions never reuse a slot.
  void OnCrash(uint32_t node) override;
  void OnRestart(uint32_t node) override;

  sim::Rpc* rpc_;
  // Cached dyn.* instruments, resolved on first use (the registry lives on
  // the simulator; the seed re-looked each one up by string per operation).
  void ResolveInstruments();
  obs::Counter* c_sloppy_diversions_ = nullptr;
  obs::Counter* c_hints_stored_ = nullptr;
  obs::Counter* c_hints_delivered_ = nullptr;
  obs::Counter* c_hints_lost_ = nullptr;
  obs::Counter* c_puts_ok_ = nullptr;
  obs::Counter* c_puts_unavailable_ = nullptr;
  obs::Counter* c_gets_ok_ = nullptr;
  obs::Counter* c_gets_unavailable_ = nullptr;
  obs::Counter* c_read_repairs_ = nullptr;
  Histogram* h_put_latency_us_ = nullptr;
  Histogram* h_get_latency_us_ = nullptr;
  // Key placement cache: keys intern to dense ids and each key's full ring
  // walk is computed once. Membership changes (AddServer) clear the walks;
  // the ids stay stable for the cluster's lifetime.
  mutable KeyInterner keys_;
  mutable std::vector<std::vector<sim::NodeId>> walk_of_key_;
  // Pre-interned RPC methods / message types (resolved in the ctor).
  sim::MethodId m_client_put_ = 0;
  sim::MethodId m_client_get_ = 0;
  sim::MethodId m_store_ = 0;
  sim::MethodId m_read_ = 0;
  QuorumConfig config_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::map<sim::NodeId, Server*> by_node_;
  std::map<sim::NodeId, std::unique_ptr<resilience::ResilientRpc>>
      client_rpcs_;
  HashRing ring_;
  DynamoStats stats_;
  sim::CrashRegistrar crash_registrar_;
};

}  // namespace evc::repl

#endif  // EVC_REPLICATION_QUORUM_STORE_H_
