#include "replication/anti_entropy.h"

#include "common/logging.h"

namespace evc::repl {

namespace {
constexpr char kSyncReq[] = "ae.sync";
constexpr char kSyncRsp[] = "ae.sync.reply";
constexpr char kPush[] = "ae.push";
}  // namespace

AntiEntropy::AntiEntropy(sim::Network* network, std::vector<sim::NodeId> nodes,
                         std::vector<ReplicaStorage*> storages,
                         AntiEntropyOptions options)
    : network_(network),
      nodes_(std::move(nodes)),
      storages_(std::move(storages)),
      options_(options),
      rng_(network->simulator()->rng().Fork(0xae0ae0)) {
  EVC_CHECK(nodes_.size() == storages_.size());
  EVC_CHECK(!nodes_.empty());
  t_sync_req_ = network_->InternType(kSyncReq);
  t_sync_rsp_ = network_->InternType(kSyncRsp);
  t_push_ = network_->InternType(kPush);
  departed_.assign(nodes_.size(), false);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    index_of_[nodes_[i]] = i;
    RegisterHandlers(i);
  }
}

void AntiEntropy::AddMember(sim::NodeId node, ReplicaStorage* storage) {
  EVC_CHECK(index_of_.count(node) == 0);
  const size_t index = nodes_.size();
  nodes_.push_back(node);
  storages_.push_back(storage);
  departed_.push_back(false);
  index_of_[node] = index;
  RegisterHandlers(index);
  if (started_) {
    const sim::Time phase =
        static_cast<sim::Time>(rng_.NextBounded(options_.interval) + 1);
    network_->simulator()->ScheduleAfter(phase,
                                         [this, index] { GossipTick(index); });
  }
}

void AntiEntropy::MarkDeparted(sim::NodeId node) {
  auto it = index_of_.find(node);
  EVC_CHECK(it != index_of_.end());
  departed_[it->second] = true;
}

obs::MetricsRegistry& AntiEntropy::Obs() {
  return network_->simulator()->metrics().global();
}

void AntiEntropy::RegisterHandlers(size_t index) {
  // Receiving a sync request: compare leaves, merge nothing yet (we do not
  // have the sender's keys), reply with our keys for divergent buckets and
  // the bucket list so the sender can push back.
  network_->RegisterHandler(
      nodes_[index], t_sync_req_, [this, index](sim::Message msg) {
        auto req = std::move(msg.payload).Take<SyncRequest>();
        ReplicaStorage* storage = storages_[index];
        SyncReply reply;
        if (req.root != storage->merkle().RootDigest()) {
          for (size_t b = 0; b < req.leaf_digests.size(); ++b) {
            if (storage->merkle().LeafDigest(b) != req.leaf_digests[b]) {
              reply.divergent_buckets.push_back(b);
            }
          }
          reply.keys = CollectBuckets(storage, reply.divergent_buckets);
          stats_.buckets_exchanged += reply.divergent_buckets.size();
          stats_.keys_shipped += reply.keys.size();
          Obs().CounterFor("ae.buckets_exchanged")
              .Inc(reply.divergent_buckets.size());
          Obs().CounterFor("ae.keys_shipped").Inc(reply.keys.size());
        }
        network_->Send(msg.to, msg.from, t_sync_rsp_, std::move(reply));
      });

  // Receiving the reply: merge the peer's keys, then (push-pull) send back
  // our versions for the divergent buckets.
  network_->RegisterHandler(
      nodes_[index], t_sync_rsp_, [this, index](sim::Message msg) {
        auto reply = std::move(msg.payload).Take<SyncReply>();
        ReplicaStorage* storage = storages_[index];
        for (const auto& [key, versions] : reply.keys) {
          storage->MergeRemote(key, versions);
        }
        if (options_.push_pull && !reply.divergent_buckets.empty()) {
          auto mine = CollectBuckets(storage, reply.divergent_buckets);
          stats_.keys_shipped += mine.size();
          Obs().CounterFor("ae.keys_shipped").Inc(mine.size());
          network_->Send(msg.to, msg.from, t_push_, std::move(mine));
        }
      });

  // Receiving pushed keys.
  network_->RegisterHandler(
      nodes_[index], t_push_, [this, index](sim::Message msg) {
        auto keys = std::move(msg.payload)
                        .Take<std::vector<
                            std::pair<std::string, std::vector<Version>>>>();
        for (const auto& [key, versions] : keys) {
          storages_[index]->MergeRemote(key, versions);
        }
      });
}

std::vector<std::pair<std::string, std::vector<Version>>>
AntiEntropy::CollectBuckets(ReplicaStorage* storage,
                            const std::vector<size_t>& buckets) {
  std::vector<std::pair<std::string, std::vector<Version>>> out;
  if (buckets.empty()) return out;
  std::vector<bool> wanted(storage->merkle().leaf_count(), false);
  for (size_t b : buckets) wanted[b] = true;
  storage->store().ForEachKey(
      [&](const std::string& key, const std::vector<Version>& versions) {
        if (wanted[storage->merkle().BucketFor(key)]) {
          out.emplace_back(key, versions);
        }
      });
  return out;
}

void AntiEntropy::GossipRound(size_t index) {
  if (!network_->IsNodeUp(nodes_[index])) return;
  // A departed member initiates no rounds: it is no longer responsible for
  // converging anyone, and pulling state back onto it would fight the
  // migration that just moved that state off.
  if (departed_[index]) return;
  ++stats_.rounds;
  Obs().CounterFor("ae.rounds").Inc();
  ReplicaStorage* storage = storages_[index];
  for (int f = 0; f < options_.fanout; ++f) {
    if (nodes_.size() < 2) return;
    // Draw a peer, re-drawing past self (as before). With a liveness filter
    // installed, also re-draw past unusable peers, but give up on the round
    // after a few rejections so a fully-suspect membership terminates.
    // Without a filter the rng consumption is identical to the original
    // draw-until-not-self loop.
    size_t peer = index;
    bool found = false;
    int rejected = 0;
    while (true) {
      const size_t candidate = rng_.NextBounded(nodes_.size());
      if (candidate == index) continue;
      // The seed bug this PR fixes: the peer pool was the construction-time
      // node list, so gossip kept hammering removed nodes forever. Departed
      // peers now count as skips, same as detector-suspect ones. (Static
      // runs have no departed entries — rng draw order is untouched.)
      if (departed_[candidate]) {
        ++stats_.peers_skipped;
        Obs().CounterFor("ae.peer_skips").Inc();
        if (++rejected >= 8) break;
        continue;
      }
      if (options_.peer_usable &&
          !options_.peer_usable(nodes_[index], nodes_[candidate])) {
        ++stats_.peers_skipped;
        Obs().CounterFor("ae.peer_skips").Inc();
        if (++rejected >= 8) break;
        continue;
      }
      // Backpressure: a peer advertising load (piggybacked on its recent
      // replies) gets left alone this round. Same redraw-skip discipline as
      // the liveness filter; unset hook = no rng perturbation.
      if (options_.load_of && options_.load_of(nodes_[index],
                                               nodes_[candidate]) >=
                                  options_.yield_load) {
        ++stats_.peers_yielded;
        Obs().CounterFor("ae.load_yields").Inc();
        if (++rejected >= 8) break;
        continue;
      }
      peer = candidate;
      found = true;
      break;
    }
    if (!found) continue;
    SyncRequest req;
    req.root = storage->merkle().RootDigest();
    const size_t leaves = storage->merkle().leaf_count();
    req.leaf_digests.reserve(leaves);
    for (size_t b = 0; b < leaves; ++b) {
      req.leaf_digests.push_back(storage->merkle().LeafDigest(b));
    }
    stats_.digests_shipped += leaves + 1;
    Obs().CounterFor("ae.digests_shipped").Inc(leaves + 1);
    network_->Send(nodes_[index], nodes_[peer], t_sync_req_, std::move(req));
  }
}

void AntiEntropy::Start() {
  started_ = true;
  sim::Simulator* sim = network_->simulator();
  for (size_t i = 0; i < nodes_.size(); ++i) {
    // Stagger the first round so all replicas don't fire simultaneously.
    const sim::Time phase =
        static_cast<sim::Time>(rng_.NextBounded(options_.interval) + 1);
    sim->ScheduleAfter(phase, [this, i] { GossipTick(i); });
  }
}

void AntiEntropy::GossipTick(size_t index) {
  GossipRound(index);
  network_->simulator()->ScheduleAfter(options_.interval,
                                       [this, index] { GossipTick(index); });
}

bool AntiEntropy::SyncPair(size_t a_index, size_t b_index) {
  ReplicaStorage* a = storages_[a_index];
  ReplicaStorage* b = storages_[b_index];
  ++stats_.rounds;
  Obs().CounterFor("ae.rounds").Inc();
  if (a->merkle().RootDigest() == b->merkle().RootDigest()) {
    ++stats_.syncs_skipped;
    Obs().CounterFor("ae.syncs_skipped").Inc();
    return false;
  }
  uint64_t compared = 0;
  std::vector<size_t> divergent =
      MerkleTree::DiffLeaves(a->merkle(), b->merkle(), &compared);
  stats_.digests_shipped += compared;
  stats_.buckets_exchanged += divergent.size();
  Obs().CounterFor("ae.digests_shipped").Inc(compared);
  Obs().CounterFor("ae.buckets_exchanged").Inc(divergent.size());
  auto from_a = CollectBuckets(a, divergent);
  auto from_b = CollectBuckets(b, divergent);
  stats_.keys_shipped += from_a.size() + from_b.size();
  Obs().CounterFor("ae.keys_shipped").Inc(from_a.size() + from_b.size());
  bool changed = false;
  for (const auto& [key, versions] : from_a) {
    changed |= b->MergeRemote(key, versions);
  }
  for (const auto& [key, versions] : from_b) {
    changed |= a->MergeRemote(key, versions);
  }
  return changed;
}

bool AntiEntropy::Converged() const {
  // Departed members are out of scope: nothing gossips toward them, so
  // their roots drift from the live set's by design.
  bool first = true;
  uint64_t root = 0;
  for (size_t i = 0; i < storages_.size(); ++i) {
    if (departed_[i]) continue;
    const uint64_t r = storages_[i]->merkle().RootDigest();
    if (first) {
      root = r;
      first = false;
    } else if (r != root) {
      return false;
    }
  }
  return true;
}

}  // namespace evc::repl
