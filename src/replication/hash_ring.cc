#include "replication/hash_ring.h"

#include <algorithm>

#include "common/hash.h"
#include "common/status.h"

namespace evc::repl {

HashRing::HashRing(int vnodes, uint64_t point_mask)
    : vnodes_(vnodes), point_mask_(point_mask) {
  EVC_CHECK(vnodes >= 1);
}

uint64_t HashRing::PointFor(sim::NodeId node, int index) {
  return Mix64((static_cast<uint64_t>(node) << 20) ^
               static_cast<uint64_t>(index) ^ 0x5ca1ab1eULL);
}

void HashRing::AddServer(sim::NodeId node) {
  EVC_CHECK(std::find(servers_.begin(), servers_.end(), node) ==
            servers_.end());
  // The masked point space must fit every vnode of every server.
  EVC_CHECK(point_mask_ >=
            (servers_.size() + 1) * static_cast<uint64_t>(vnodes_));
  servers_.push_back(node);
  std::vector<uint64_t>& points = points_[node];
  points.reserve(static_cast<size_t>(vnodes_));
  for (int i = 0; i < vnodes_; ++i) {
    uint64_t p = PointFor(node, i) & point_mask_;
    // Re-probe through the mixer on collision: overwriting would hand this
    // arc to `node` and, worse, RemoveServer(node) would then erase the
    // *other* server's surviving point.
    for (uint64_t probe = 1; ring_.count(p); ++probe) {
      p = Mix64(PointFor(node, i) + probe) & point_mask_;
    }
    ring_[p] = node;
    points.push_back(p);
  }
}

void HashRing::RemoveServer(sim::NodeId node) {
  auto it = std::find(servers_.begin(), servers_.end(), node);
  EVC_CHECK(it != servers_.end());
  servers_.erase(it);
  auto pts = points_.find(node);
  EVC_CHECK(pts != points_.end());
  for (uint64_t p : pts->second) ring_.erase(p);
  points_.erase(pts);
}

std::vector<sim::NodeId> HashRing::PreferenceList(const std::string& key,
                                                  size_t n) const {
  EVC_CHECK(!ring_.empty());
  n = std::min(n, servers_.size());
  std::vector<sim::NodeId> out;
  out.reserve(n);
  // FNV-1a alone is unusable as a ring position for short keys: an n-byte
  // input only reaches ~2^(40+lg n) of the 2^64 space (each byte contributes
  // one multiply by the 2^40-sized FNV prime), so every short key lands on
  // the same arc and placement degenerates to a single preference list.
  // Finalize with the bijective mixer to spread positions uniformly.
  auto it = ring_.lower_bound(Mix64(Fnv1a64(key)));
  for (size_t steps = 0; out.size() < n && steps < 2 * ring_.size();
       ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(out.begin(), out.end(), it->second) == out.end()) {
      out.push_back(it->second);
    }
    ++it;
  }
  return out;
}

sim::NodeId HashRing::PrimaryFor(const std::string& key) const {
  return PreferenceList(key, 1)[0];
}

}  // namespace evc::repl
