#include "replication/hash_ring.h"

#include <algorithm>

#include "common/hash.h"
#include "common/status.h"

namespace evc::repl {

HashRing::HashRing(int vnodes) : vnodes_(vnodes) {
  EVC_CHECK(vnodes >= 1);
}

uint64_t HashRing::PointFor(sim::NodeId node, int index) {
  return Mix64((static_cast<uint64_t>(node) << 20) ^
               static_cast<uint64_t>(index) ^ 0x5ca1ab1eULL);
}

void HashRing::AddServer(sim::NodeId node) {
  EVC_CHECK(std::find(servers_.begin(), servers_.end(), node) ==
            servers_.end());
  servers_.push_back(node);
  for (int i = 0; i < vnodes_; ++i) {
    ring_[PointFor(node, i)] = node;
  }
}

void HashRing::RemoveServer(sim::NodeId node) {
  auto it = std::find(servers_.begin(), servers_.end(), node);
  EVC_CHECK(it != servers_.end());
  servers_.erase(it);
  for (int i = 0; i < vnodes_; ++i) {
    ring_.erase(PointFor(node, i));
  }
}

std::vector<sim::NodeId> HashRing::PreferenceList(const std::string& key,
                                                  size_t n) const {
  EVC_CHECK(!ring_.empty());
  n = std::min(n, servers_.size());
  std::vector<sim::NodeId> out;
  out.reserve(n);
  auto it = ring_.lower_bound(Fnv1a64(key));
  for (size_t steps = 0; out.size() < n && steps < 2 * ring_.size();
       ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(out.begin(), out.end(), it->second) == out.end()) {
      out.push_back(it->second);
    }
    ++it;
  }
  return out;
}

sim::NodeId HashRing::PrimaryFor(const std::string& key) const {
  return PreferenceList(key, 1)[0];
}

}  // namespace evc::repl
