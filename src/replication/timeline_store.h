// Timeline (primary-copy) consistency, PNUTS-style.
//
// Every key has a master replica; all writes to the key are serialized
// through it, producing a per-key monotonically increasing sequence number —
// the record's "timeline". Replicas apply updates in timeline order, so a
// reader at any replica sees some *prefix-consistent* version (possibly
// stale, never out of order, never a fork). Read levels:
//   * kAny       — local replica's version (fast, possibly stale);
//   * kCritical  — forwarded to the master (read-your-latest, slower);
//   * kAtLeast   — local if fresh enough, else forwarded (the mechanism
//                  behind per-record session guarantees in PNUTS).
// Writes are unavailable when the master is unreachable: per-record CP.

#ifndef EVC_REPLICATION_TIMELINE_STORE_H_
#define EVC_REPLICATION_TIMELINE_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "sim/rpc.h"
#include "storage/wal.h"

namespace evc::repl {

struct TimelineOptions {
  int replication_factor = 3;
  sim::Time rpc_timeout = 250 * sim::kMillisecond;
  /// Journal applied (key, value, seqno) records per server so a crashed
  /// replica recovers its timeline prefix. A non-durable master that
  /// forgets its seqnos would re-mint them and fork the timeline.
  bool durable = true;
  /// Register servers as simulator CrashParticipants (see sim/nemesis.h).
  bool crash_amnesia = true;
};

/// A read result from the timeline store.
struct TimelineRead {
  bool found = false;
  std::string value;
  uint64_t seqno = 0;  ///< position on the record's timeline
  /// kAtLeast only: the MASTER itself served this read with a seqno below
  /// the requested min_seqno. The master is the freshest replica, so the
  /// store cannot do better — but silently returning older data would let a
  /// caller mistake it for a satisfied freshness floor (e.g. after a
  /// non-durable master lost a timeline suffix). Callers decide whether
  /// that is an error.
  bool min_seqno_unmet = false;
};

enum class TimelineReadLevel {
  kAny,       ///< any replica, possibly stale
  kCritical,  ///< up-to-date (served by the master)
  kAtLeast,   ///< any replica at least as fresh as min_seqno
};

struct TimelineStats {
  uint64_t writes_ok = 0;
  uint64_t writes_unavailable = 0;
  uint64_t reads_local = 0;
  uint64_t reads_forwarded = 0;
  /// Locally served reads (kAny, or kAtLeast satisfied by a non-master
  /// replica) older than the master's seqno at serve time. An omniscient-
  /// observer metric: a kAtLeast read at seqno >= min_seqno can still be
  /// behind the master, and the staleness benches must see it.
  uint64_t stale_reads_served = 0;
  uint64_t atleast_unmet = 0;  ///< kAtLeast served by a master below min_seqno
};

/// Cluster of timeline-consistent replicas.
class TimelineCluster : private sim::CrashParticipant {
 public:
  TimelineCluster(sim::Rpc* rpc, TimelineOptions options);
  ~TimelineCluster();

  sim::NodeId AddServer();
  std::vector<sim::NodeId> AddServers(int count);
  size_t server_count() const { return servers_.size(); }
  /// Node ids of every server, in add order.
  std::vector<sim::NodeId> Servers() const;

  /// The master replica for `key`: the migrated-to master if the record's
  /// mastership was moved, else the first server on its ring walk.
  sim::NodeId MasterOf(const std::string& key) const;
  /// All replicas holding `key`.
  std::vector<sim::NodeId> ReplicasOf(const std::string& key) const;

  using WriteCallback = std::function<void(Result<uint64_t>)>;
  using ReadCallback = std::function<void(Result<TimelineRead>)>;

  /// Writes through the record's master. Succeeds with the new seqno; fails
  /// Unavailable/TimedOut if the master is unreachable.
  void Write(sim::NodeId client, const std::string& key, std::string value,
             WriteCallback done);

  /// Reads from `replica` (a server the client talks to) at `level`.
  /// `min_seqno` applies to kAtLeast only.
  void Read(sim::NodeId client, sim::NodeId replica, const std::string& key,
            TimelineReadLevel level, uint64_t min_seqno, ReadCallback done);

  using MigrateCallback = std::function<void(Status)>;

  /// Migrates `key`'s mastership to `new_master` (PNUTS-style record-level
  /// master handoff). The protocol: the router marks the record as
  /// migrating (writes are rejected with FailedPrecondition and retried by
  /// the Write path), the old master ships its (value, seqno) to the new
  /// master, the new master adopts and continues the SAME timeline (seqno
  /// continuity), and the router repoints. Works as manual failover too:
  /// when the old master is unreachable, adoption proceeds from the new
  /// master's own replica state — any suffix of updates that existed only
  /// on the dead master is lost (the usual primary-copy failover caveat),
  /// but the timeline never forks.
  void MigrateMaster(const std::string& key, sim::NodeId new_master,
                     MigrateCallback done);

  const TimelineStats& stats() const { return stats_; }

  /// Write gate: invoked on the master, after the master check but BEFORE
  /// the write is applied/replicated/acked. The write proceeds when the gate
  /// calls `release(OK)`; any other status rejects it to the client. The
  /// edge-cache tier installs a gate that revokes (or waits out) every
  /// outstanding lease on the key, so no cached copy can outlive the value
  /// it caches.
  using WriteGate = std::function<void(
      sim::NodeId master, const std::string& key,
      std::function<void(Status)> release)>;
  /// At most one gate; installing replaces the previous one. Pass nullptr
  /// to remove.
  void SetWriteGate(WriteGate gate) { write_gate_ = std::move(gate); }

  /// Invoked after a successful MigrateMaster, once the router has
  /// repointed (so MasterOf(key) already answers new_master). The edge-cache
  /// tier installs a hook that fences the key for leases the OLD master
  /// granted and the NEW master has no record of.
  using MasterMoveHook = std::function<void(
      const std::string& key, sim::NodeId old_master, sim::NodeId new_master)>;
  /// At most one hook; nullptr removes.
  void SetMasterMoveHook(MasterMoveHook hook) {
    master_move_hook_ = std::move(hook);
  }

  /// Synchronous local lookup at `server` (no RPC, no stats): the read path
  /// for a server-side tier co-located with the replica (edge-cache lease
  /// handler). `server` must be a cluster member.
  TimelineRead LocalRecord(sim::NodeId server, const std::string& key);

  /// Test hook: the seqno currently visible for `key` at `server`.
  uint64_t VisibleSeqno(sim::NodeId server, const std::string& key);

 private:
  struct Record {
    std::string value;
    uint64_t seqno = 0;
  };
  struct Server {
    sim::NodeId node = 0;
    std::map<std::string, Record> data;
    // Applied-record journal, replayed on restart (empty when !durable).
    WriteAheadLog wal;
  };
  struct WriteReq {
    std::string key;
    std::string value;
  };
  struct ReplicateMsg {
    std::string key;
    std::string value;
    uint64_t seqno = 0;
  };
  struct ReadReq {
    std::string key;
    uint8_t level = 0;
    uint64_t min_seqno = 0;
  };
  struct AdoptReq {
    std::string key;
    std::string value;
    uint64_t seqno = 0;
    bool has_record = false;
  };

  Server* FindServer(sim::NodeId node);
  void RegisterHandlers(Server* server);
  /// Master-side apply: bump the seqno, journal, replicate, ack. Runs after
  /// the write gate (if any) releases the write.
  void ApplyMasterWrite(Server* server, const std::string& key,
                        std::string value, sim::RpcResponder respond);
  /// Global metrics registry of the owning simulator (tl.* instruments).
  obs::MetricsRegistry& Obs();
  void HandleRead(Server* server, const ReadReq& req,
                  sim::RpcResponder respond);
  void WriteAttempt(sim::NodeId client, const std::string& key,
                    std::string value, int attempts_left,
                    WriteCallback done);
  /// Ring-walk master, ignoring overrides.
  sim::NodeId DefaultMasterOf(const std::string& key) const;

  /// Journals one applied record; called after every data mutation.
  void JournalApply(Server* server, const std::string& key,
                    const std::string& value, uint64_t seqno);

  // CrashParticipant: crash drops the replica's data map; restart replays
  // the journal in append order (monotone per key, like kReplicate).
  void OnCrash(uint32_t node) override;
  void OnRestart(uint32_t node) override;

  sim::Rpc* rpc_;
  // Pre-interned RPC methods / message types (resolved in the ctor).
  sim::MethodId m_write_ = 0;
  sim::MethodId m_read_ = 0;
  sim::MethodId m_adopt_ = 0;
  sim::MsgType t_replicate_ = 0;
  TimelineOptions options_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::map<sim::NodeId, Server*> by_node_;
  // Router state: per-record master overrides and in-flight migrations.
  std::map<std::string, sim::NodeId> master_override_;
  std::set<std::string> migrating_;
  WriteGate write_gate_;
  MasterMoveHook master_move_hook_;
  TimelineStats stats_;
  sim::CrashRegistrar crash_registrar_;
};

}  // namespace evc::repl

#endif  // EVC_REPLICATION_TIMELINE_STORE_H_
