// Epidemic anti-entropy: periodic pairwise Merkle-tree synchronization.
//
// Each replica periodically picks `fanout` random peers and runs a push-pull
// sync: exchange Merkle root, then leaf digests, then only the keys in
// divergent buckets. Updates spread epidemically — expected convergence time
// grows logarithmically in cluster size — and sync cost is proportional to
// divergence rather than database size (Fig. 3 measures both claims).

#ifndef EVC_REPLICATION_ANTI_ENTROPY_H_
#define EVC_REPLICATION_ANTI_ENTROPY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/network.h"
#include "storage/replica_storage.h"

namespace evc::repl {

struct AntiEntropyOptions {
  sim::Time interval = 100 * sim::kMillisecond;  ///< gossip round period
  int fanout = 1;          ///< peers contacted per round
  bool push_pull = true;   ///< false = push only (slower convergence)
  /// Optional liveness filter for gossip peer selection (e.g. a node's
  /// phi-accrual verdict via DynamoCluster::PeerUsable). A round re-draws a
  /// few times past unusable peers rather than wasting its fanout on a
  /// suspect; unset = every peer is eligible (the seed behavior).
  std::function<bool(sim::NodeId self, sim::NodeId peer)> peer_usable;
  /// Optional load oracle (e.g. sim::Rpc::PeerLoad over the piggybacked
  /// reply signal): peers reporting at least `yield_load` percent are
  /// skipped this round (counted in peers_yielded). Anti-entropy is the
  /// definition of deferrable work — syncing an overloaded peer later is
  /// free; syncing it now deepens its queue.
  std::function<uint32_t(sim::NodeId self, sim::NodeId peer)> load_of;
  uint32_t yield_load = 75;
};

struct AntiEntropyStats {
  uint64_t rounds = 0;            ///< gossip rounds initiated
  uint64_t syncs_skipped = 0;     ///< roots matched, nothing to do
  uint64_t buckets_exchanged = 0; ///< divergent leaf buckets shipped
  uint64_t keys_shipped = 0;      ///< (key, sibling-set) payloads sent
  uint64_t digests_shipped = 0;   ///< leaf digests sent (root probes too)
  uint64_t peers_skipped = 0;     ///< draws rejected by peer_usable
  uint64_t peers_yielded = 0;     ///< draws skipped: peer reported load
};

/// Runs anti-entropy among a fixed membership of replicas. Each replica's
/// storage is owned by the caller (e.g. a DynamoCluster).
class AntiEntropy {
 public:
  /// `nodes[i]` is the network id whose storage is `storages[i]`. All
  /// storages must share the same Merkle depth.
  AntiEntropy(sim::Network* network, std::vector<sim::NodeId> nodes,
              std::vector<ReplicaStorage*> storages,
              AntiEntropyOptions options);

  /// Starts the periodic gossip timers (one per replica, phase-staggered).
  void Start();

  /// Live membership hooks (elastic clusters; static runs never call these
  /// and keep bit-identical rng draws). AddMember wires a newly joined
  /// node's storage into the gossip mesh — after Start it begins gossiping
  /// on its own staggered timer. MarkDeparted keeps the node's handlers
  /// registered (late pushes merge harmlessly) but excludes it from peer
  /// draws (counted in peers_skipped), round initiation, and Converged.
  void AddMember(sim::NodeId node, ReplicaStorage* storage);
  void MarkDeparted(sim::NodeId node);

  /// Runs one synchronous sync between two members *now* (test hook and
  /// convergence measurement without timers). Returns true if any state
  /// moved in either direction.
  bool SyncPair(size_t a_index, size_t b_index);

  const AntiEntropyStats& stats() const { return stats_; }

  /// True if every replica's Merkle root matches.
  bool Converged() const;

 private:
  struct SyncRequest {
    uint64_t root = 0;
    std::vector<uint64_t> leaf_digests;  // sender's leaves
  };
  struct SyncReply {
    // Keys + versions for buckets where the receiver differs, plus the list
    // of divergent buckets so the initiator can push back its versions.
    std::vector<std::pair<std::string, std::vector<Version>>> keys;
    std::vector<size_t> divergent_buckets;
  };

  void RegisterHandlers(size_t index);
  void GossipRound(size_t index);
  void GossipTick(size_t index);
  /// Global metrics registry of the owning simulator (ae.* instruments).
  obs::MetricsRegistry& Obs();
  /// Collects all (key, siblings) pairs of `storage` falling in `buckets`.
  static std::vector<std::pair<std::string, std::vector<Version>>>
  CollectBuckets(ReplicaStorage* storage, const std::vector<size_t>& buckets);

  sim::Network* network_;
  // Pre-interned RPC methods / message types (resolved in the ctor).
  sim::MsgType t_sync_req_ = 0;
  sim::MsgType t_sync_rsp_ = 0;
  sim::MsgType t_push_ = 0;
  std::vector<sim::NodeId> nodes_;
  std::vector<ReplicaStorage*> storages_;
  std::vector<bool> departed_;  // parallel to nodes_
  std::map<sim::NodeId, size_t> index_of_;
  bool started_ = false;
  AntiEntropyOptions options_;
  AntiEntropyStats stats_;
  Rng rng_;
};

}  // namespace evc::repl

#endif  // EVC_REPLICATION_ANTI_ENTROPY_H_
