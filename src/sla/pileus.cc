#include "sla/pileus.h"

#include <algorithm>

namespace evc::sla {

namespace {
constexpr char kPut[] = "pl.put";
constexpr char kGet[] = "pl.get";
constexpr char kSync[] = "pl.sync";
}  // namespace

const char* ReadConsistencyToString(ReadConsistency c) {
  switch (c) {
    case ReadConsistency::kStrong:
      return "strong";
    case ReadConsistency::kBounded:
      return "bounded";
    case ReadConsistency::kEventual:
      return "eventual";
  }
  return "?";
}

PileusCluster::PileusCluster(sim::Rpc* rpc, PileusOptions options)
    : rpc_(rpc), options_(options) {
  EVC_CHECK(rpc_ != nullptr);
  m_put_ = rpc_->InternMethod(kPut);
  m_get_ = rpc_->InternMethod(kGet);
  t_sync_ = rpc_->network()->InternType(kSync);
}

sim::NodeId PileusCluster::AddPrimary() {
  EVC_CHECK(servers_.empty());
  return AddServer(/*is_primary=*/true);
}

sim::NodeId PileusCluster::AddSecondary() {
  EVC_CHECK(!servers_.empty());
  return AddServer(/*is_primary=*/false);
}

sim::NodeId PileusCluster::AddServer(bool is_primary) {
  auto server = std::make_unique<Server>();
  server->node = rpc_->network()->AddNode();
  server->is_primary = is_primary;
  RegisterHandlers(server.get());
  by_node_[server->node] = server.get();
  nodes_.push_back(server->node);
  servers_.push_back(std::move(server));
  return servers_.back()->node;
}

void PileusCluster::RegisterHandlers(Server* server) {
  if (server->is_primary) {
    rpc_->RegisterHandler(
        server->node, m_put_,
        [this, server](sim::NodeId, sim::Payload req, sim::RpcResponder respond) {
          auto put = std::move(req).Take<PutReq>();
          Record& rec = server->data[put.key];
          rec.value = put.value;
          rec.seqno = server->next_seqno++;
          server->high_time = rpc_->simulator()->Now();
          pending_sync_.emplace_back(put.key, rec.value, rec.seqno);
          respond(rec.seqno);
        });
  }

  rpc_->RegisterHandler(
      server->node, m_get_,
      [this, server](sim::NodeId, sim::Payload req, sim::RpcResponder respond) {
        auto get = std::move(req).Take<GetReq>();
        RawRead result;
        auto it = server->data.find(get.key);
        if (it != server->data.end()) {
          result.found = true;
          result.value = it->second.value;
          result.seqno = it->second.seqno;
        }
        // The primary is always current.
        result.high_time = server->is_primary ? rpc_->simulator()->Now()
                                              : server->high_time;
        respond(std::move(result));
      });

  if (!server->is_primary) {
    rpc_->network()->RegisterHandler(
        server->node, t_sync_, [server](sim::Message msg) {
          auto batch = std::move(msg.payload).Take<SyncBatch>();
          for (const auto& [key, value, seqno] : batch.writes) {
            Record& rec = server->data[key];
            if (seqno > rec.seqno) {
              rec.value = value;
              rec.seqno = seqno;
            }
          }
          if (batch.through_time > server->high_time) {
            server->high_time = batch.through_time;
          }
        });
  }
}

void PileusCluster::ShipSync() {
  Server* primary_server = by_node_.at(primary());
  SyncBatch batch;
  batch.writes = std::move(pending_sync_);
  pending_sync_.clear();
  batch.through_time = rpc_->simulator()->Now();
  for (const auto& server : servers_) {
    if (server->is_primary) continue;
    rpc_->network()->Send(primary_server->node, server->node, t_sync_, batch);
  }
  rpc_->simulator()->ScheduleAfter(options_.sync_interval,
                                   [this] { ShipSync(); });
}

void PileusCluster::Start() {
  EVC_CHECK(!started_);
  started_ = true;
  rpc_->simulator()->ScheduleAfter(options_.sync_interval,
                                   [this] { ShipSync(); });
}

void PileusCluster::Put(sim::NodeId client, const std::string& key,
                        std::string value, WriteCallback done) {
  PutReq req{key, std::move(value)};
  rpc_->Call(client, primary(), m_put_, std::move(req), options_.rpc_timeout,
             [done](Result<sim::Payload> r) {
               if (!r.ok()) {
                 done(r.status());
               } else {
                 done(std::move(r).value().Take<uint64_t>());
               }
             });
}

void PileusCluster::RawGet(sim::NodeId client, sim::NodeId server,
                           const std::string& key, RawReadCallback done) {
  GetReq req{key};
  rpc_->Call(client, server, m_get_, std::move(req), options_.rpc_timeout,
             [done](Result<sim::Payload> r) {
               if (!r.ok()) {
                 done(r.status());
               } else {
                 done(std::move(r).value().Take<RawRead>());
               }
             });
}

sim::Time PileusCluster::HighTimeOf(sim::NodeId server) const {
  auto it = by_node_.find(server);
  EVC_CHECK(it != by_node_.end());
  return it->second->is_primary ? rpc_->simulator()->Now()
                                : it->second->high_time;
}

// ---------------------------------------------------------------------------
// PileusClient
// ---------------------------------------------------------------------------

PileusClient::PileusClient(PileusCluster* cluster, sim::Simulator* sim,
                           sim::NodeId client_node, Sla sla)
    : cluster_(cluster),
      sim_(sim),
      client_node_(client_node),
      sla_(std::move(sla)) {
  EVC_CHECK(!sla_.empty());
}

void PileusClient::UpdateMonitor(sim::NodeId node, sim::Time rtt,
                                 sim::Time high_time) {
  NodeMonitor& m = monitors_[node];
  const double r = static_cast<double>(rtt);
  m.rtt_ewma_us = m.rtt_ewma_us == 0 ? r : 0.7 * m.rtt_ewma_us + 0.3 * r;
  m.last_high_time = high_time;
  m.high_time_as_of = sim_->Now();
}

sim::Time PileusClient::RttEstimate(sim::NodeId node) const {
  auto it = monitors_.find(node);
  return it == monitors_.end()
             ? 0
             : static_cast<sim::Time>(it->second.rtt_ewma_us);
}

void PileusClient::Probe(const std::string& key, std::function<void()> done) {
  auto remaining = std::make_shared<int>(
      static_cast<int>(cluster_->nodes().size()));
  for (const sim::NodeId node : cluster_->nodes()) {
    const sim::Time start = sim_->Now();
    cluster_->RawGet(client_node_, node, key,
                     [this, node, start, remaining,
                      done](Result<PileusCluster::RawRead> r) {
                       if (r.ok()) {
                         UpdateMonitor(node, sim_->Now() - start,
                                       r->high_time);
                       }
                       if (--*remaining == 0) done();
                     });
  }
}

double PileusClient::ExpectedUtility(const SlaRow& row,
                                     sim::NodeId node) const {
  auto it = monitors_.find(node);
  if (it == monitors_.end() || it->second.rtt_ewma_us == 0) {
    return 0.0;  // unknown node: not a candidate until probed
  }
  const NodeMonitor& m = it->second;

  // Consistency feasibility.
  const bool is_primary = node == cluster_->primary();
  switch (row.consistency) {
    case ReadConsistency::kStrong:
      if (!is_primary) return 0.0;
      break;
    case ReadConsistency::kBounded: {
      if (!is_primary) {
        // Estimated staleness when the read will arrive: age of the last
        // known high time plus one more estimated half round trip.
        const sim::Time est_staleness =
            (sim_->Now() - m.last_high_time) +
            static_cast<sim::Time>(m.rtt_ewma_us / 2);
        if (est_staleness > row.staleness_bound) return 0.0;
      }
      break;
    }
    case ReadConsistency::kEventual:
      break;
  }

  // Latency probability model: treat the EWMA as the mean of a shifted
  // distribution; a simple smooth estimate P(rtt <= bound).
  const double ratio =
      static_cast<double>(row.latency_bound) / m.rtt_ewma_us;
  double p;
  if (ratio >= 2.0) {
    p = 1.0;
  } else if (ratio <= 0.5) {
    p = 0.0;
  } else {
    p = (ratio - 0.5) / 1.5;
  }
  return p * row.utility;
}

void PileusClient::Get(const std::string& key, ReadCallback done) {
  // Pick the (row, node) with the highest expected utility; ties prefer
  // earlier (higher-value) rows.
  double best_score = -1.0;
  double best_rtt = 0.0;
  int best_row = -1;
  sim::NodeId best_node = cluster_->primary();
  for (size_t row_idx = 0; row_idx < sla_.size(); ++row_idx) {
    for (const sim::NodeId node : cluster_->nodes()) {
      const double score = ExpectedUtility(sla_[row_idx], node);
      auto mon = monitors_.find(node);
      const double rtt =
          mon == monitors_.end() ? 1e18 : mon->second.rtt_ewma_us;
      // Strictly better utility wins; equal utility prefers the closer
      // replica (same expected payoff, lower latency).
      const bool better = score > best_score + 1e-12 ||
                          (score > best_score - 1e-12 && best_row >= 0 &&
                           rtt < best_rtt);
      if (better) {
        best_score = score;
        best_rtt = rtt;
        best_row = static_cast<int>(row_idx);
        best_node = node;
      }
    }
  }
  if (best_row < 0) {
    // No monitored data yet: fall back to the primary and the last row.
    best_row = static_cast<int>(sla_.size()) - 1;
  }

  const sim::Time start = sim_->Now();
  const int chosen_row = best_row;
  const sim::NodeId target = best_node;
  cluster_->RawGet(
      client_node_, target, key,
      [this, start, chosen_row, target,
       done](Result<PileusCluster::RawRead> r) {
        if (!r.ok()) {
          done(r.status());
          return;
        }
        const sim::Time rtt = sim_->Now() - start;
        UpdateMonitor(target, rtt, r->high_time);

        SlaReadResult result;
        result.found = r->found;
        result.value = r->value;
        result.seqno = r->seqno;
        result.observed_latency = rtt;
        result.chosen_row = chosen_row;
        // Which rows were actually satisfied? Deliver the best (earliest).
        const bool is_primary = target == cluster_->primary();
        const sim::Time staleness = sim_->Now() - r->high_time;
        for (size_t i = 0; i < sla_.size(); ++i) {
          const SlaRow& row = sla_[i];
          if (rtt > row.latency_bound) continue;
          if (row.consistency == ReadConsistency::kStrong && !is_primary) {
            continue;
          }
          if (row.consistency == ReadConsistency::kBounded && !is_primary &&
              staleness > row.staleness_bound) {
            continue;
          }
          result.delivered_row = static_cast<int>(i);
          result.delivered_utility = row.utility;
          break;
        }
        ++stats_.reads;
        stats_.delivered_utility.Add(result.delivered_utility);
        ++stats_.reads_per_row[result.delivered_row];
        done(std::move(result));
      });
}

}  // namespace evc::sla
