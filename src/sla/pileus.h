// Consistency-based SLAs, Pileus-style (Terry et al., SOSP 2013).
//
// The tutorial's closing argument: instead of one fixed consistency level,
// let each read carry an SLA — an ordered list of (latency bound,
// consistency floor, utility) rows — and have the client library pick, per
// read, the replica most likely to deliver the highest-utility row, based
// on monitored round-trip times and replica freshness. A London client with
// a far-away primary degrades gracefully to bounded-staleness or eventual
// reads; a client co-located with the primary gets strong reads at no cost
// (Table 3 sweeps client placement).
//
// Topology: one primary (all writes) and any number of read-only
// secondaries fed by asynchronous replication.

#ifndef EVC_SLA_PILEUS_H_
#define EVC_SLA_PILEUS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "sim/rpc.h"

namespace evc::sla {

/// Consistency choices a Pileus SLA row can name (subset of the paper's).
enum class ReadConsistency {
  kStrong,    ///< served by the primary
  kBounded,   ///< replica staleness <= staleness_bound
  kEventual,  ///< any replica
};

const char* ReadConsistencyToString(ReadConsistency c);

/// One SLA row: "I'd pay `utility` for a read within `latency_bound` at
/// `consistency` (with `staleness_bound` when bounded)".
struct SlaRow {
  sim::Time latency_bound = 0;
  ReadConsistency consistency = ReadConsistency::kEventual;
  sim::Time staleness_bound = 0;  ///< only for kBounded
  double utility = 0.0;
};

/// An SLA is a utility-descending list of rows; the last row should be a
/// catch-all (eventual, loose latency) so reads never fail outright.
using Sla = std::vector<SlaRow>;

/// Result of an SLA read.
struct SlaReadResult {
  bool found = false;
  std::string value;
  uint64_t seqno = 0;
  sim::Time observed_latency = 0;
  double delivered_utility = 0.0;  ///< utility of the best row actually met
  int chosen_row = -1;             ///< row the client targeted
  int delivered_row = -1;          ///< best row actually satisfied
};

struct PileusOptions {
  sim::Time rpc_timeout = 2 * sim::kSecond;
  /// Secondaries apply primary updates shipped every sync period.
  sim::Time sync_interval = 200 * sim::kMillisecond;
};

/// Primary + secondaries storage service.
class PileusCluster {
 public:
  PileusCluster(sim::Rpc* rpc, PileusOptions options);

  /// First server added is the primary.
  sim::NodeId AddPrimary();
  sim::NodeId AddSecondary();
  sim::NodeId primary() const { return nodes_.at(0); }
  const std::vector<sim::NodeId>& nodes() const { return nodes_; }

  /// Starts the periodic primary->secondary sync shipping.
  void Start();

  using WriteCallback = std::function<void(Result<uint64_t>)>;
  void Put(sim::NodeId client, const std::string& key, std::string value,
           WriteCallback done);

  struct RawRead {
    bool found = false;
    std::string value;
    uint64_t seqno = 0;
    /// Sim-time through which this replica has applied all primary writes;
    /// staleness(now) = now - high_time.
    sim::Time high_time = 0;
  };
  using RawReadCallback = std::function<void(Result<RawRead>)>;
  void RawGet(sim::NodeId client, sim::NodeId server, const std::string& key,
              RawReadCallback done);

  /// Test hook: replica's applied high time.
  sim::Time HighTimeOf(sim::NodeId server) const;

 private:
  struct Record {
    std::string value;
    uint64_t seqno = 0;
  };
  struct Server {
    sim::NodeId node = 0;
    bool is_primary = false;
    std::map<std::string, Record> data;
    sim::Time high_time = 0;
    uint64_t next_seqno = 1;  // primary only
  };
  struct SyncBatch {
    std::vector<std::tuple<std::string, std::string, uint64_t>> writes;
    sim::Time through_time = 0;
  };
  struct PutReq {
    std::string key;
    std::string value;
  };
  struct GetReq {
    std::string key;
  };

  sim::NodeId AddServer(bool is_primary);
  void RegisterHandlers(Server* server);
  void ShipSync();

  sim::Rpc* rpc_;
  // Pre-interned RPC methods / message types (resolved in the ctor).
  sim::MethodId m_put_ = 0;
  sim::MethodId m_get_ = 0;
  sim::MsgType t_sync_ = 0;
  PileusOptions options_;
  std::vector<sim::NodeId> nodes_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::map<sim::NodeId, Server*> by_node_;
  // Writes accumulated since the last sync shipment.
  std::vector<std::tuple<std::string, std::string, uint64_t>> pending_sync_;
  bool started_ = false;
};

struct PileusClientStats {
  uint64_t reads = 0;
  OnlineStats delivered_utility;
  std::map<int, uint64_t> reads_per_row;  ///< delivered_row -> count
};

/// Client library: monitors replicas, picks a target per read to maximize
/// expected utility, verifies which row was actually delivered.
class PileusClient {
 public:
  PileusClient(PileusCluster* cluster, sim::Simulator* sim,
               sim::NodeId client_node, Sla sla);

  /// Sends one probe read to every replica to seed the latency monitor.
  void Probe(const std::string& key, std::function<void()> done);

  using ReadCallback = std::function<void(Result<SlaReadResult>)>;
  void Get(const std::string& key, ReadCallback done);

  const PileusClientStats& stats() const { return stats_; }
  /// Monitored RTT estimate for a node (us); 0 if never measured.
  sim::Time RttEstimate(sim::NodeId node) const;

 private:
  struct NodeMonitor {
    double rtt_ewma_us = 0;  // 0 = unknown
    sim::Time last_high_time = 0;
    sim::Time high_time_as_of = 0;
  };

  void UpdateMonitor(sim::NodeId node, sim::Time rtt, sim::Time high_time);
  /// Probability-weighted utility of serving `row` from `node`, per the
  /// monitor's current estimates.
  double ExpectedUtility(const SlaRow& row, sim::NodeId node) const;

  PileusCluster* cluster_;
  sim::Simulator* sim_;
  sim::NodeId client_node_;
  Sla sla_;
  std::map<sim::NodeId, NodeMonitor> monitors_;
  PileusClientStats stats_;
};

}  // namespace evc::sla

#endif  // EVC_SLA_PILEUS_H_
