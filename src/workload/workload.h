// YCSB-style workload generation.
//
// The experiments drive every store through the same synthetic workloads the
// systems surveyed by the tutorial were evaluated with: a keyspace of
// `record_count` records, an operation mix (read / update / insert /
// read-modify-write), and a key-popularity distribution (uniform, Zipfian,
// latest, hotspot). Presets mirror the standard YCSB core workloads A-D/F.

#ifndef EVC_WORKLOAD_WORKLOAD_H_
#define EVC_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/distributions.h"
#include "common/interner.h"
#include "common/rng.h"

namespace evc::workload {

enum class OpType {
  kRead,
  kUpdate,
  kInsert,
  kReadModifyWrite,
};

const char* OpTypeToString(OpType type);

/// One generated operation. `key_id` is the key interned in the owning
/// generator's table (dense, first-draw order, deterministic per seed);
/// hot loops route by id and resolve the string only at store boundaries.
struct Op {
  OpType type = OpType::kRead;
  KeyId key_id = kInvalidKeyId;
  std::string key;
  std::string value;  // empty for reads
};

enum class KeyDistributionKind {
  kUniform,
  kZipfian,
  kLatest,
  kHotspot,
};

struct WorkloadConfig {
  uint64_t record_count = 1000;
  double read_proportion = 0.95;
  double update_proportion = 0.05;
  double insert_proportion = 0.0;
  double rmw_proportion = 0.0;
  KeyDistributionKind distribution = KeyDistributionKind::kZipfian;
  double zipf_theta = 0.99;
  double hotspot_set_fraction = 0.2;
  double hotspot_draw_fraction = 0.8;
  size_t value_size = 100;
  std::string key_prefix = "user";

  /// Standard YCSB presets.
  static WorkloadConfig YcsbA();  ///< 50/50 read/update, zipfian
  static WorkloadConfig YcsbB();  ///< 95/5 read/update, zipfian
  static WorkloadConfig YcsbC();  ///< read-only, zipfian
  static WorkloadConfig YcsbD();  ///< 95/5 read/insert, latest
  static WorkloadConfig YcsbF();  ///< 50/50 read/RMW, zipfian
};

/// Deterministic (seeded) operation stream.
class WorkloadGenerator {
 public:
  WorkloadGenerator(WorkloadConfig config, uint64_t seed);

  /// Next operation. Inserts extend the live keyspace.
  Op Next();

  /// The canonical key string for record index `i`.
  std::string KeyFor(uint64_t index) const;

  /// Deterministic value payload for a key (self-describing for checksum
  /// assertions: value embeds the key and a sequence number).
  std::string ValueFor(const std::string& key);

  uint64_t live_record_count() const { return live_records_; }
  const WorkloadConfig& config() const { return config_; }

  /// Resolves an Op::key_id back to its canonical key string.
  std::string_view KeyNameOf(KeyId id) const { return keys_.NameOf(id); }
  /// Keys interned so far (== distinct keys drawn this run).
  size_t interned_keys() const { return keys_.size(); }

 private:
  std::unique_ptr<KeyDistribution> MakeDistribution() const;
  /// Id for record `index`, interning its key string on first draw.
  KeyId InternIndex(uint64_t index);

  WorkloadConfig config_;
  Rng rng_;
  uint64_t live_records_;
  uint64_t value_seq_ = 0;
  std::unique_ptr<KeyDistribution> dist_;
  KeyInterner keys_;
  // Record index -> interned id; repeat draws of a hot key (the common case
  // under zipfian/latest skew) skip string construction entirely.
  std::vector<KeyId> id_of_index_;
};

}  // namespace evc::workload

#endif  // EVC_WORKLOAD_WORKLOAD_H_
