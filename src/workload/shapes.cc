#include "workload/shapes.h"

#include <algorithm>

#include "common/logging.h"

namespace evc::workload {

FlashCrowd::FlashCrowd(FlashCrowdConfig config) : config_(config) {
  EVC_CHECK(config_.base_multiplier > 0.0);
  EVC_CHECK(config_.spike_multiplier > 0.0);
  EVC_CHECK(config_.spike_duration >= 0);
  EVC_CHECK(config_.ramp >= 0);
}

double FlashCrowd::MultiplierAt(sim::Time now) const {
  const sim::Time start = config_.spike_start;
  const sim::Time end = start + config_.spike_duration;
  const double base = config_.base_multiplier;
  const double peak = config_.spike_multiplier;
  if (config_.ramp <= 0) {
    return (now >= start && now < end) ? peak : base;
  }
  // Ramped edges: base before start, linear up over [start, start+ramp),
  // peak until end, linear down over [end, end+ramp), base after.
  if (now < start) return base;
  if (now < start + config_.ramp) {
    const double f = static_cast<double>(now - start) /
                     static_cast<double>(config_.ramp);
    return base + (peak - base) * f;
  }
  if (now < end) return peak;
  if (now < end + config_.ramp) {
    const double f = static_cast<double>(now - end) /
                     static_cast<double>(config_.ramp);
    return peak + (base - peak) * f;
  }
  return base;
}

sim::Time FlashCrowd::GapAt(sim::Time now, sim::Time nominal_gap) const {
  const double multiplier = MultiplierAt(now);
  return std::max<sim::Time>(
      1, static_cast<sim::Time>(static_cast<double>(nominal_gap) / multiplier));
}

HotKeyShift::HotKeyShift(std::unique_ptr<KeyDistribution> inner, uint64_t seed)
    : inner_(std::move(inner)), rng_(seed) {
  EVC_CHECK(inner_ != nullptr);
}

uint64_t HotKeyShift::Next(Rng& rng) {
  const uint64_t n = inner_->item_count();
  return (inner_->Next(rng) + offset_) % n;
}

void HotKeyShift::Shift() {
  const uint64_t n = inner_->item_count();
  ++epoch_;
  if (n < 2) return;
  // Draw a nonzero delta so a shift always moves the hot set; the previous
  // hottest item can never remain hottest.
  offset_ = (offset_ + 1 + rng_.NextBounded(n - 1)) % n;
}

}  // namespace evc::workload
