#include "workload/workload.h"

namespace evc::workload {

const char* OpTypeToString(OpType type) {
  switch (type) {
    case OpType::kRead:
      return "read";
    case OpType::kUpdate:
      return "update";
    case OpType::kInsert:
      return "insert";
    case OpType::kReadModifyWrite:
      return "rmw";
  }
  return "?";
}

WorkloadConfig WorkloadConfig::YcsbA() {
  WorkloadConfig c;
  c.read_proportion = 0.5;
  c.update_proportion = 0.5;
  return c;
}

WorkloadConfig WorkloadConfig::YcsbB() {
  WorkloadConfig c;
  c.read_proportion = 0.95;
  c.update_proportion = 0.05;
  return c;
}

WorkloadConfig WorkloadConfig::YcsbC() {
  WorkloadConfig c;
  c.read_proportion = 1.0;
  c.update_proportion = 0.0;
  return c;
}

WorkloadConfig WorkloadConfig::YcsbD() {
  WorkloadConfig c;
  c.read_proportion = 0.95;
  c.update_proportion = 0.0;
  c.insert_proportion = 0.05;
  c.distribution = KeyDistributionKind::kLatest;
  return c;
}

WorkloadConfig WorkloadConfig::YcsbF() {
  WorkloadConfig c;
  c.read_proportion = 0.5;
  c.update_proportion = 0.0;
  c.rmw_proportion = 0.5;
  return c;
}

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config, uint64_t seed)
    : config_(std::move(config)),
      rng_(seed),
      live_records_(config_.record_count) {
  EVC_CHECK(config_.record_count > 0);
  dist_ = MakeDistribution();
}

std::unique_ptr<KeyDistribution> WorkloadGenerator::MakeDistribution() const {
  switch (config_.distribution) {
    case KeyDistributionKind::kUniform:
      return std::make_unique<UniformDistribution>(config_.record_count);
    case KeyDistributionKind::kZipfian:
      return std::make_unique<ScrambledZipfianDistribution>(
          config_.record_count, config_.zipf_theta);
    case KeyDistributionKind::kLatest:
      return std::make_unique<LatestDistribution>(config_.record_count,
                                                  config_.zipf_theta);
    case KeyDistributionKind::kHotspot:
      return std::make_unique<HotspotDistribution>(
          config_.record_count, config_.hotspot_set_fraction,
          config_.hotspot_draw_fraction);
  }
  return nullptr;
}

std::string WorkloadGenerator::KeyFor(uint64_t index) const {
  return config_.key_prefix + std::to_string(index);
}

std::string WorkloadGenerator::ValueFor(const std::string& key) {
  std::string value = key + "#" + std::to_string(++value_seq_) + "#";
  // Pad deterministically to the configured size.
  while (value.size() < config_.value_size) {
    value.push_back(static_cast<char>('a' + (value.size() % 26)));
  }
  value.resize(config_.value_size);
  return value;
}

KeyId WorkloadGenerator::InternIndex(uint64_t index) {
  if (id_of_index_.size() <= index) {
    id_of_index_.resize(index + 1, kInvalidKeyId);
  }
  KeyId& slot = id_of_index_[index];
  if (slot == kInvalidKeyId) slot = keys_.Intern(KeyFor(index));
  return slot;
}

Op WorkloadGenerator::Next() {
  Op op;
  const double dice = rng_.NextDouble();
  double acc = config_.read_proportion;
  if (dice < acc) {
    op.type = OpType::kRead;
  } else if (dice < (acc += config_.update_proportion)) {
    op.type = OpType::kUpdate;
  } else if (dice < (acc += config_.insert_proportion)) {
    op.type = OpType::kInsert;
  } else {
    op.type = OpType::kReadModifyWrite;
  }

  uint64_t index;
  if (op.type == OpType::kInsert) {
    index = live_records_++;
    if (config_.distribution == KeyDistributionKind::kLatest) {
      static_cast<LatestDistribution*>(dist_.get())->AdvanceItemCount();
    }
  } else {
    index = dist_->Next(rng_);
  }
  op.key_id = InternIndex(index);
  op.key = std::string(keys_.NameOf(op.key_id));
  if (op.type != OpType::kRead) {
    op.value = ValueFor(op.key);
  }
  return op;
}

}  // namespace evc::workload
