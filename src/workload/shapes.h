// Time-varying workload shapes for overload experiments.
//
// The YCSB-style generator (workload.h) answers "which op next?"; the shapes
// here answer "how fast, and aimed where?" as a function of simulated time.
// Both are pure functions of their config and seed, so an overload scenario
// replays bit-identically:
//
//   * FlashCrowd — a multiplicative load profile: nominal traffic, then a
//     spike_multiplier step (optionally ramped) over [spike_start,
//     spike_start + spike_duration), then nominal again. Closed over sim
//     time, so any producer can ask "what is the load factor right now?"
//     and scale its inter-arrival gaps by the inverse.
//
//   * HotKeyShift — wraps any KeyDistribution and rotates which physical
//     keys the popular ranks land on. Each Shift() re-aims the hot set at a
//     fresh region of the keyspace, which is how real incidents start:
//     traffic doesn't just grow, it moves (a viral item, a failover, a
//     redirected tenant), defeating caches warmed for the old hot set.
//
// bench_fig12_overload composes both: a 5x flash crowd whose spike also
// shifts the hot keys is the canonical metastable-failure trigger.

#ifndef EVC_WORKLOAD_SHAPES_H_
#define EVC_WORKLOAD_SHAPES_H_

#include <cstdint>
#include <memory>

#include "common/distributions.h"
#include "common/rng.h"
#include "sim/simulator.h"

namespace evc::workload {

struct FlashCrowdConfig {
  double base_multiplier = 1.0;
  double spike_multiplier = 5.0;
  sim::Time spike_start = 5 * sim::kSecond;
  sim::Time spike_duration = 5 * sim::kSecond;
  /// Linear ramp applied to both edges of the spike; 0 = instant step.
  sim::Time ramp = 0;
};

/// Deterministic load-multiplier profile over simulated time.
class FlashCrowd {
 public:
  explicit FlashCrowd(FlashCrowdConfig config);

  /// Offered-load multiplier at `now` (>= 0; base outside the spike).
  double MultiplierAt(sim::Time now) const;

  /// Scales a nominal mean inter-arrival gap by the inverse multiplier:
  /// doubled load means halved gaps. Never returns less than 1 tick.
  sim::Time GapAt(sim::Time now, sim::Time nominal_gap) const;

  const FlashCrowdConfig& config() const { return config_; }

 private:
  FlashCrowdConfig config_;
};

/// Wraps a KeyDistribution and rotates which physical keys are popular.
/// Rank r maps to item (r + offset) mod n; Shift() draws a fresh offset
/// from the shape's own seeded rng (guaranteed to actually move), so the
/// shift schedule is independent of how many draws the workload made.
class HotKeyShift : public KeyDistribution {
 public:
  /// `inner` supplies the popularity law (e.g. ZipfianDistribution).
  HotKeyShift(std::unique_ptr<KeyDistribution> inner, uint64_t seed);

  uint64_t Next(Rng& rng) override;
  uint64_t item_count() const override { return inner_->item_count(); }

  /// Re-aims the hot set at a fresh offset. Never a no-op for n >= 2.
  void Shift();

  uint64_t epoch() const { return epoch_; }
  uint64_t offset() const { return offset_; }

 private:
  std::unique_ptr<KeyDistribution> inner_;
  Rng rng_;  ///< drives offsets only, never draws — see class comment
  uint64_t offset_ = 0;
  uint64_t epoch_ = 0;
};

}  // namespace evc::workload

#endif  // EVC_WORKLOAD_SHAPES_H_
