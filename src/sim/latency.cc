#include "sim/latency.h"

namespace evc::sim {

WanMatrixLatency::WanMatrixLatency(std::vector<std::vector<Time>> base_us,
                                   double jitter_fraction)
    : base_us_(std::move(base_us)), jitter_fraction_(jitter_fraction) {
  EVC_CHECK(!base_us_.empty());
  for (const auto& row : base_us_) {
    EVC_CHECK(row.size() == base_us_.size());
  }
}

void WanMatrixLatency::AssignNode(NodeId node, uint32_t dc) {
  EVC_CHECK(dc < base_us_.size());
  if (node_dc_.size() <= node) node_dc_.resize(node + 1, kUnassigned);
  node_dc_[node] = dc;
}

uint32_t WanMatrixLatency::DatacenterOf(NodeId node) const {
  // An unassigned node is a topology misconfiguration; the old silent
  // DC-0 default gave such nodes intra-DC latency to US-East, corrupting
  // WAN experiments without any symptom. Fail loudly instead.
  EVC_CHECK(IsAssigned(node));
  return node_dc_[node];
}

bool WanMatrixLatency::IsAssigned(NodeId node) const {
  return node < node_dc_.size() && node_dc_[node] != kUnassigned;
}

Time WanMatrixLatency::Sample(NodeId from, NodeId to, Rng& rng) {
  const Time base = base_us_[DatacenterOf(from)][DatacenterOf(to)];
  if (jitter_fraction_ <= 0) return base;
  const double jitter = rng.NextExponential(jitter_fraction_);
  return base + static_cast<Time>(static_cast<double>(base) * jitter);
}

std::vector<std::vector<Time>> WanMatrixLatency::FiveRegionBaseUs() {
  // One-way latencies (us): US-East, US-West, EU-West, Asia-East, Australia.
  // Derived from public inter-region RTT tables (RTT/2), rounded.
  const Time e = 250;  // intra-DC one-way
  return {
      {e, 32000, 38000, 90000, 100000},
      {32000, e, 70000, 60000, 70000},
      {38000, 70000, e, 110000, 125000},
      {90000, 60000, 110000, e, 55000},
      {100000, 70000, 125000, 55000, e},
  };
}

std::vector<std::vector<Time>> WanMatrixLatency::ThreeRegionBaseUs() {
  const Time e = 250;
  return {
      {e, 38000, 90000},
      {38000, e, 110000},
      {90000, 110000, e},
  };
}

}  // namespace evc::sim
