// Deterministic discrete-event simulator.
//
// All protocol experiments in evc run on virtual time: events are closures
// scheduled at microsecond-granularity timestamps and executed in (time,
// insertion-order) sequence, so two runs with the same seed are bitwise
// identical. This replaces the real geo-distributed testbeds used by the
// systems the tutorial surveys (see DESIGN.md, substitution table).

#ifndef EVC_SIM_SIMULATOR_H_
#define EVC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace evc::sim {

/// Virtual time in microseconds since simulation start.
using Time = int64_t;

constexpr Time kMicrosecond = 1;
constexpr Time kMillisecond = 1000;
constexpr Time kSecond = 1000 * 1000;

/// Identifies a scheduled event so it can be cancelled (e.g. RPC timeout
/// timers cancelled when the reply arrives).
using EventId = uint64_t;

/// Single-threaded discrete-event executor with a virtual clock.
class Simulator {
 public:
  /// `seed` drives the simulator-owned RNG; forked per component.
  explicit Simulator(uint64_t seed = 1) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  Time Now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `when` (>= Now()).
  /// Returns an id usable with Cancel().
  EventId ScheduleAt(Time when, std::function<void()> fn);

  /// Schedules `fn` to run `delay` after Now().
  EventId ScheduleAfter(Time delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event. Returns true if the event had not yet run and
  /// was not already cancelled.
  bool Cancel(EventId id);

  /// Executes the next pending event, advancing the clock. Returns false if
  /// the queue is empty.
  bool Step();

  /// Runs until the event queue drains.
  void Run();

  /// Runs until the queue drains or the next event would exceed `deadline`.
  /// Events scheduled at exactly `deadline` execute, and the clock always
  /// ends at exactly `deadline` — even when the queue drains early — so
  /// consecutive RunFor(d) calls each advance the clock by exactly d.
  void RunUntil(Time deadline);

  /// Runs for `duration` more virtual time.
  void RunFor(Time duration) { RunUntil(now_ + duration); }

  /// Number of events executed so far (diagnostic).
  uint64_t events_executed() const { return events_executed_; }
  /// Number of events currently pending: scheduled, not yet executed, not
  /// cancelled. (Counted via `pending_ids_`, not `queue_.size() -
  /// cancelled_.size()`: the queue retains cancelled entries until they
  /// surface, so the naive subtraction could underflow.)
  size_t pending_events() const { return pending_ids_.size(); }

  /// Simulator-level RNG; components should Fork() their own stream.
  Rng& rng() { return rng_; }

  /// Sim-wide observability: metrics registries (global + per-node) and the
  /// trace-span recorder. Components instrument themselves through these;
  /// exporters (obs/export.h, bench/harness.h) serialize them after a run.
  obs::Metrics& metrics() { return metrics_; }
  const obs::Metrics& metrics() const { return metrics_; }
  obs::Tracer& tracer() { return tracer_; }
  const obs::Tracer& tracer() const { return tracer_; }

 private:
  struct Event {
    Time when;
    uint64_t seq;  // tie-break: FIFO among same-time events
    EventId id;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::unordered_set<EventId> cancelled_;
  // Ids scheduled but not yet executed or cancelled.
  std::unordered_set<EventId> pending_ids_;
  Rng rng_;
  obs::Metrics metrics_;
  obs::Tracer tracer_;
};

}  // namespace evc::sim

#endif  // EVC_SIM_SIMULATOR_H_
