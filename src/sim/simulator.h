// Deterministic discrete-event simulator.
//
// All protocol experiments in evc run on virtual time: events are closures
// scheduled at microsecond-granularity timestamps and executed in (time,
// insertion-order) sequence, so two runs with the same seed are bitwise
// identical. This replaces the real geo-distributed testbeds used by the
// systems the tutorial surveys (see DESIGN.md, substitution table).

#ifndef EVC_SIM_SIMULATOR_H_
#define EVC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace evc::sim {

/// Virtual time in microseconds since simulation start.
using Time = int64_t;

constexpr Time kMicrosecond = 1;
constexpr Time kMillisecond = 1000;
constexpr Time kSecond = 1000 * 1000;

/// Identifies a scheduled event so it can be cancelled (e.g. RPC timeout
/// timers cancelled when the reply arrives).
using EventId = uint64_t;

/// Interface for components that own per-node state with crash semantics.
/// When the fault layer crashes a node it calls OnCrash (drop everything
/// volatile: caches, buffers, in-memory indexes); when the node restarts it
/// calls OnRestart (rebuild state from whatever the component journaled —
/// e.g. WAL replay). A component registers once per node it hosts state for;
/// notifications arrive only for that node. Node ids are the raw uint32
/// underlying NodeId (the typedef lives in latency.h, above this header).
class CrashParticipant {
 public:
  virtual ~CrashParticipant() = default;
  /// The node lost power: volatile state is gone. Must not send messages.
  virtual void OnCrash(uint32_t node) = 0;
  /// The node restarted: recover from durable state. Runs before the
  /// network marks the node up, so recovery must not rely on messaging.
  virtual void OnRestart(uint32_t node) = 0;
};

/// Single-threaded discrete-event executor with a virtual clock.
class Simulator {
 public:
  /// `seed` drives the simulator-owned RNG; forked per component.
  explicit Simulator(uint64_t seed = 1) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  Time Now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `when` (>= Now()).
  /// Returns an id usable with Cancel().
  EventId ScheduleAt(Time when, std::function<void()> fn);

  /// Schedules `fn` to run `delay` after Now().
  EventId ScheduleAfter(Time delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event. Returns true if the event had not yet run and
  /// was not already cancelled.
  bool Cancel(EventId id);

  /// Executes the next pending event, advancing the clock. Returns false if
  /// the queue is empty.
  bool Step();

  /// Runs until the event queue drains.
  void Run();

  /// Runs until the queue drains or the next event would exceed `deadline`.
  /// Events scheduled at exactly `deadline` execute, and the clock always
  /// ends at exactly `deadline` — even when the queue drains early — so
  /// consecutive RunFor(d) calls each advance the clock by exactly d.
  void RunUntil(Time deadline);

  /// Runs for `duration` more virtual time.
  void RunFor(Time duration) { RunUntil(now_ + duration); }

  /// Number of events executed so far (diagnostic).
  uint64_t events_executed() const { return events_executed_; }
  /// Number of events currently pending: scheduled, not yet executed, not
  /// cancelled. (Counted via `pending_ids_`, not `queue_.size() -
  /// cancelled_.size()`: the queue retains cancelled entries until they
  /// surface, so the naive subtraction could underflow.)
  size_t pending_events() const { return pending_ids_.size(); }

  /// Simulator-level RNG; components should Fork() their own stream.
  Rng& rng() { return rng_; }

  /// Sim-wide observability: metrics registries (global + per-node) and the
  /// trace-span recorder. Components instrument themselves through these;
  /// exporters (obs/export.h, bench/harness.h) serialize them after a run.
  obs::Metrics& metrics() { return metrics_; }
  const obs::Metrics& metrics() const { return metrics_; }
  obs::Tracer& tracer() { return tracer_; }
  const obs::Tracer& tracer() const { return tracer_; }

  // --- crash participants --------------------------------------------------
  // The nemesis fault layer (sim/nemesis.h) drives these; a direct
  // Network::SetNodeUp remains a network-only fault (no state loss).

  /// Registers `p` to receive crash/restart notifications for `node`.
  /// Multiple participants per node run in registration order.
  void RegisterCrashParticipant(uint32_t node, CrashParticipant* p);
  /// Removes `p` from every node it was registered for (component teardown).
  void UnregisterCrashParticipant(CrashParticipant* p);
  /// Invokes OnCrash on every participant registered for `node`.
  void NotifyCrash(uint32_t node);
  /// Invokes OnRestart on every participant registered for `node` and bumps
  /// the global `crash.recoveries` counter when any participant recovered.
  void NotifyRestart(uint32_t node);

  /// Liveness token for participants whose destruction order relative to
  /// the simulator is not guaranteed (test fixtures commonly rebuild the
  /// simulator before the clusters that registered with it). Expired =>
  /// the simulator is gone and unregistration must be skipped.
  std::weak_ptr<void> liveness() const { return liveness_; }

 private:
  struct Event {
    Time when;
    uint64_t seq;  // tie-break: FIFO among same-time events
    EventId id;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::unordered_set<EventId> cancelled_;
  // Ids scheduled but not yet executed or cancelled.
  std::unordered_set<EventId> pending_ids_;
  Rng rng_;
  obs::Metrics metrics_;
  obs::Tracer tracer_;
  // Ordered map so notification order is deterministic across runs.
  std::map<uint32_t, std::vector<CrashParticipant*>> crash_participants_;
  std::shared_ptr<void> liveness_ = std::make_shared<int>(0);
};

/// RAII guard owning one participant's registrations. Unregisters on
/// destruction — but only if the simulator is still alive (checked via
/// Simulator::liveness()), so clusters and simulators may die in either
/// order.
class CrashRegistrar {
 public:
  CrashRegistrar() = default;
  CrashRegistrar(const CrashRegistrar&) = delete;
  CrashRegistrar& operator=(const CrashRegistrar&) = delete;
  ~CrashRegistrar() {
    if (sim_ != nullptr && !liveness_.expired()) {
      sim_->UnregisterCrashParticipant(participant_);
    }
  }

  /// Registers `p` for `node`. All calls on one registrar must pass the
  /// same simulator and participant.
  void Register(Simulator* sim, uint32_t node, CrashParticipant* p) {
    EVC_CHECK(sim_ == nullptr || (sim_ == sim && participant_ == p));
    sim_ = sim;
    participant_ = p;
    liveness_ = sim->liveness();
    sim->RegisterCrashParticipant(node, p);
  }

 private:
  Simulator* sim_ = nullptr;
  CrashParticipant* participant_ = nullptr;
  std::weak_ptr<void> liveness_;
};

}  // namespace evc::sim

#endif  // EVC_SIM_SIMULATOR_H_
