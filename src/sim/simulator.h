// Deterministic discrete-event simulator.
//
// All protocol experiments in evc run on virtual time: events are closures
// scheduled at microsecond-granularity timestamps and executed in (time,
// insertion-order) sequence, so two runs with the same seed are bitwise
// identical. This replaces the real geo-distributed testbeds used by the
// systems the tutorial surveys (see DESIGN.md, substitution table).
//
// Two interchangeable schedulers implement the same ordering contract:
//
//   * SchedulerKind::kCalendar (default): a calendar queue (bucketed timing
//     wheel + sorted overflow heap, sim/calendar_queue.h) with slab-backed
//     event closures. This is the hot path for 1000-node runs.
//   * SchedulerKind::kLegacyHeap: the seed scheduler — a binary heap of
//     per-event heap-allocated closures with hash-set cancellation
//     bookkeeping. Kept as the baseline for bench_perf_simcore and as the
//     reference implementation for the 25-seed differential harness
//     (tests/simcore_diff_test.cc), which asserts byte-identical metric and
//     trace exports across the two.
//
// Both run events in strict (when, seq) order with seq assigned at schedule
// time, so same-time events are FIFO. EventId values differ between the two
// schedulers (the calendar queue encodes slot/generation; the heap counts
// up) but are opaque to callers; both are nonzero, preserving callers'
// `id == 0` "no event" sentinels.

#ifndef EVC_SIM_SIMULATOR_H_
#define EVC_SIM_SIMULATOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <type_traits>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/slab.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/calendar_queue.h"
#include "sim/task.h"

namespace evc::sim {

/// Virtual time in microseconds since simulation start.
using Time = int64_t;

constexpr Time kMicrosecond = 1;
constexpr Time kMillisecond = 1000;
constexpr Time kSecond = 1000 * 1000;

/// Identifies a scheduled event so it can be cancelled (e.g. RPC timeout
/// timers cancelled when the reply arrives). Always nonzero; callers use 0
/// as a "no event" sentinel.
using EventId = uint64_t;

/// Event-scheduler implementation selector; see the file comment.
enum class SchedulerKind {
  kCalendar,    ///< timing wheel + slab closures (default, hot path)
  kLegacyHeap,  ///< seed binary heap + per-event heap allocation (baseline)
};

/// Minimal move-only closure for the legacy scheduler. Mirrors the seed
/// std::function cost profile — one heap allocation per event — while
/// accepting the move-only captures (Payload handles) std::function cannot
/// hold. The closure stays alive for the duration of operator() and is
/// destroyed when the LegacyFn is (i.e. after the event returns).
class LegacyFn {
 public:
  LegacyFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, LegacyFn>>>
  explicit LegacyFn(F&& fn) {
    using Fn = std::decay_t<F>;
    obj_ = new Fn(std::forward<F>(fn));
    invoke_ = [](void* obj) { (*static_cast<Fn*>(obj))(); };
    destroy_ = [](void* obj) { delete static_cast<Fn*>(obj); };
  }

  LegacyFn(LegacyFn&& other) noexcept { MoveFrom(other); }
  LegacyFn& operator=(LegacyFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  LegacyFn(const LegacyFn&) = delete;
  LegacyFn& operator=(const LegacyFn&) = delete;
  ~LegacyFn() { Reset(); }

  void operator()() {
    EVC_CHECK(obj_ != nullptr);
    invoke_(obj_);
  }

 private:
  void MoveFrom(LegacyFn& other) {
    obj_ = other.obj_;
    invoke_ = other.invoke_;
    destroy_ = other.destroy_;
    other.obj_ = nullptr;
  }
  void Reset() {
    if (obj_ != nullptr) {
      destroy_(obj_);
      obj_ = nullptr;
    }
  }

  void* obj_ = nullptr;
  void (*invoke_)(void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
};

/// Interface for components that own per-node state with crash semantics.
/// When the fault layer crashes a node it calls OnCrash (drop everything
/// volatile: caches, buffers, in-memory indexes); when the node restarts it
/// calls OnRestart (rebuild state from whatever the component journaled —
/// e.g. WAL replay). A component registers once per node it hosts state for;
/// notifications arrive only for that node. Node ids are the raw uint32
/// underlying NodeId (the typedef lives in latency.h, above this header).
class CrashParticipant {
 public:
  virtual ~CrashParticipant() = default;
  /// The node lost power: volatile state is gone. Must not send messages.
  virtual void OnCrash(uint32_t node) = 0;
  /// The node restarted: recover from durable state. Runs before the
  /// network marks the node up, so recovery must not rely on messaging.
  virtual void OnRestart(uint32_t node) = 0;
};

/// Single-threaded discrete-event executor with a virtual clock.
class Simulator {
 public:
  /// `seed` drives the simulator-owned RNG; forked per component.
  explicit Simulator(uint64_t seed = 1,
                     SchedulerKind scheduler = SchedulerKind::kCalendar)
      : sched_(scheduler), calq_(&slab_), rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  Time Now() const { return now_; }

  SchedulerKind scheduler() const { return sched_; }

  /// Schedules `fn` (any nullary callable, move-only captures allowed) to
  /// run at absolute virtual time `when` (>= Now()). Returns a nonzero id
  /// usable with Cancel().
  template <typename F>
  EventId ScheduleAt(Time when, F&& fn) {
    EVC_CHECK(when >= now_);
    if (sched_ == SchedulerKind::kCalendar) {
      return calq_.Push(when, Task(&slab_, std::forward<F>(fn)));
    }
    return ScheduleLegacy(when, LegacyFn(std::forward<F>(fn)));
  }

  /// Schedules `fn` to run `delay` after Now().
  template <typename F>
  EventId ScheduleAfter(Time delay, F&& fn) {
    return ScheduleAt(now_ + delay, std::forward<F>(fn));
  }

  /// Cancels a pending event. Returns true if the event had not yet run and
  /// was not already cancelled.
  bool Cancel(EventId id);

  /// Executes the next pending event, advancing the clock. Returns false if
  /// the queue is empty.
  bool Step();

  /// Runs until the event queue drains.
  void Run();

  /// Runs until the queue drains or the next event would exceed `deadline`.
  /// Events scheduled at exactly `deadline` execute, and the clock always
  /// ends at exactly `deadline` — even when the queue drains early — so
  /// consecutive RunFor(d) calls each advance the clock by exactly d.
  void RunUntil(Time deadline);

  /// Runs for `duration` more virtual time.
  void RunFor(Time duration) { RunUntil(now_ + duration); }

  /// Number of events executed so far (diagnostic).
  uint64_t events_executed() const { return events_executed_; }
  /// Number of events currently pending: scheduled, not yet executed, not
  /// cancelled. Exact in both schedulers (the calendar queue counts live
  /// slots; the legacy heap tracks ids in `pending_ids_`, not
  /// `queue size - tombstones`, which could undercount).
  size_t pending_events() const {
    return sched_ == SchedulerKind::kCalendar ? calq_.pending()
                                              : pending_ids_.size();
  }

  /// Event-closure and payload arena. Network/RPC box message payloads here;
  /// the allocator is freed wholesale when the simulator dies, so anything
  /// boxed must not outlive the simulation.
  Slab& slab() { return slab_; }

  /// Calendar-queue internals (adaptation counters), for tests and benches.
  const CalendarQueue::Stats& scheduler_stats() const { return calq_.stats(); }

  /// Simulator-level RNG; components should Fork() their own stream.
  Rng& rng() { return rng_; }

  /// Sim-wide observability: metrics registries (global + per-node) and the
  /// trace-span recorder. Components instrument themselves through these;
  /// exporters (obs/export.h, bench/harness.h) serialize them after a run.
  obs::Metrics& metrics() { return metrics_; }
  const obs::Metrics& metrics() const { return metrics_; }
  obs::Tracer& tracer() { return tracer_; }
  const obs::Tracer& tracer() const { return tracer_; }

  // --- crash participants --------------------------------------------------
  // The nemesis fault layer (sim/nemesis.h) drives these; a direct
  // Network::SetNodeUp remains a network-only fault (no state loss).

  /// Registers `p` to receive crash/restart notifications for `node`.
  /// Multiple participants per node run in registration order.
  void RegisterCrashParticipant(uint32_t node, CrashParticipant* p);
  /// Removes `p` from every node it was registered for (component teardown).
  void UnregisterCrashParticipant(CrashParticipant* p);
  /// Invokes OnCrash on every participant registered for `node`.
  void NotifyCrash(uint32_t node);
  /// Invokes OnRestart on every participant registered for `node` and bumps
  /// the global `crash.recoveries` counter when any participant recovered.
  void NotifyRestart(uint32_t node);

  /// Liveness token for participants whose destruction order relative to
  /// the simulator is not guaranteed (test fixtures commonly rebuild the
  /// simulator before the clusters that registered with it). Expired =>
  /// the simulator is gone and unregistration must be skipped.
  std::weak_ptr<void> liveness() const { return liveness_; }

 private:
  struct LegacyEvent {
    Time when;
    uint64_t seq;  // tie-break: FIFO among same-time events
    EventId id;
    LegacyFn fn;
  };
  // Heap comparator: "greater" keys sink, so std::pop_heap surfaces the
  // smallest (when, seq) — the same order the seed priority_queue produced.
  struct EventOrder {
    bool operator()(const LegacyEvent& a, const LegacyEvent& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  EventId ScheduleLegacy(Time when, LegacyFn fn);
  bool StepLegacy();

  SchedulerKind sched_;
  Time now_ = 0;
  uint64_t events_executed_ = 0;

  // Calendar scheduler. slab_ must outlive calq_ (declared first): pending
  // closures free into it when the queue destructs.
  Slab slab_;
  CalendarQueue calq_;

  // Legacy scheduler: a binary heap over heap_ via std::push_heap/pop_heap.
  // (The seed used std::priority_queue, whose const top() forced a
  // const_cast to move the closure out; an explicit heap pops mutably —
  // identical order, no cast.) Cancellation leaves a tombstone in
  // cancelled_; pending_ids_ keeps pending_events() exact.
  std::vector<LegacyEvent> heap_;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> pending_ids_;

  Rng rng_;
  obs::Metrics metrics_;
  obs::Tracer tracer_;
  // Ordered map so notification order is deterministic across runs.
  std::map<uint32_t, std::vector<CrashParticipant*>> crash_participants_;
  std::shared_ptr<void> liveness_ = std::make_shared<int>(0);
};

/// RAII guard owning one participant's registrations. Unregisters on
/// destruction — but only if the simulator is still alive (checked via
/// Simulator::liveness()), so clusters and simulators may die in either
/// order.
class CrashRegistrar {
 public:
  CrashRegistrar() = default;
  CrashRegistrar(const CrashRegistrar&) = delete;
  CrashRegistrar& operator=(const CrashRegistrar&) = delete;
  ~CrashRegistrar() {
    if (sim_ != nullptr && !liveness_.expired()) {
      sim_->UnregisterCrashParticipant(participant_);
    }
  }

  /// Registers `p` for `node`. All calls on one registrar must pass the
  /// same simulator and participant.
  void Register(Simulator* sim, uint32_t node, CrashParticipant* p) {
    EVC_CHECK(sim_ == nullptr || (sim_ == sim && participant_ == p));
    sim_ = sim;
    participant_ = p;
    liveness_ = sim->liveness();
    sim->RegisterCrashParticipant(node, p);
  }

 private:
  Simulator* sim_ = nullptr;
  CrashParticipant* participant_ = nullptr;
  std::weak_ptr<void> liveness_;
};

}  // namespace evc::sim

#endif  // EVC_SIM_SIMULATOR_H_
