// Request/response layer over the simulated network.
//
// Protocol coordinators (quorum reads, Paxos phases, dep-checks) are written
// against asynchronous RPC with timeouts: a lost request or reply, a crashed
// peer, or a partition all surface as Status::TimedOut at the caller.

#ifndef EVC_SIM_RPC_H_
#define EVC_SIM_RPC_H_

#include <any>
#include <functional>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "sim/network.h"

namespace evc::sim {

/// Completion callback for an RPC: either the peer's reply value or an error
/// (TimedOut for loss/crash/partition, or the application Status the server
/// handler returned).
using RpcCallback = std::function<void(Result<std::any>)>;

/// Replies to an in-flight RPC. May be invoked after the handler returns
/// (asynchronous servers); must be invoked at most once.
class RpcResponder {
 public:
  RpcResponder() = default;
  RpcResponder(std::function<void(Result<std::any>)> fn) : fn_(std::move(fn)) {}
  void operator()(Result<std::any> result) const {
    EVC_CHECK(fn_ != nullptr);
    fn_(std::move(result));
  }

 private:
  std::function<void(Result<std::any>)> fn_;
};

/// Server-side method handler: `request` is the caller's payload; call
/// `respond` (now or later) to complete the RPC.
using RpcHandler =
    std::function<void(NodeId from, std::any request, RpcResponder respond)>;

/// One Rpc instance serves a whole Network (it multiplexes by node id).
class Rpc {
 public:
  explicit Rpc(Network* network);

  /// Registers `handler` for calls of `method` addressed to `node`.
  void RegisterHandler(NodeId node, const std::string& method,
                       RpcHandler handler);

  /// Issues an asynchronous call. `cb` fires exactly once: with the reply,
  /// or with TimedOut after `timeout` elapses without one.
  void Call(NodeId from, NodeId to, const std::string& method,
            std::any request, Time timeout, RpcCallback cb);

  Network* network() { return network_; }
  Simulator* simulator() { return network_->simulator(); }

  /// Total RPCs issued (diagnostic).
  uint64_t calls_issued() const { return next_call_id_ - 1; }

 private:
  struct RequestEnvelope {
    uint64_t call_id;
    std::string method;
    std::any payload;
    uint64_t span = 0;  ///< caller's trace span (cross-node parenting)
  };
  struct ReplyEnvelope {
    uint64_t call_id;
    Status status;
    std::any payload;
  };
  struct Pending {
    RpcCallback cb;
    EventId timeout_event;
    uint64_t span = 0;        ///< client-side span of this call
    uint64_t span_parent = 0; ///< restored as ambient parent around `cb`
    Time started_at = 0;
  };

  void OnRequest(Message msg);
  void OnReply(Message msg);

  Network* network_;
  uint64_t next_call_id_ = 1;
  std::unordered_map<uint64_t, Pending> pending_;
  // handlers_[node][method]
  std::unordered_map<NodeId, std::unordered_map<std::string, RpcHandler>>
      handlers_;
};

}  // namespace evc::sim

#endif  // EVC_SIM_RPC_H_
