// Request/response layer over the simulated network.
//
// Protocol coordinators (quorum reads, Paxos phases, dep-checks) are written
// against asynchronous RPC with timeouts: a lost request or reply, a crashed
// peer, or a partition all surface as Status::TimedOut at the caller.
//
// Hot-path design mirrors the network layer: methods are interned to dense
// MethodId ids (with the client/server trace-span names precomputed at
// intern time, so no per-call string concatenation), dispatch indexes flat
// vectors, request/reply values ride slab-backed Payload boxes, and the
// metric instruments are resolved once in the constructor.

#ifndef EVC_SIM_RPC_H_
#define EVC_SIM_RPC_H_

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "sim/network.h"
#include "sim/payload.h"

namespace evc::sim {

/// Dense id for an interned RPC method name; see Rpc::InternMethod.
using MethodId = KeyId;

/// Completion callback for an RPC: either the peer's reply payload or an
/// error (TimedOut for loss/crash/partition, or the application Status the
/// server handler returned).
using RpcCallback = std::function<void(Result<Payload>)>;

/// Replies to an in-flight RPC. May be invoked after the handler returns
/// (asynchronous servers); must be invoked at most once.
class RpcResponder {
 public:
  RpcResponder() = default;
  RpcResponder(Slab* slab, std::function<void(Result<Payload>)> fn)
      : slab_(slab), fn_(std::move(fn)) {}
  void operator()(Result<Payload> result) const {
    EVC_CHECK(fn_ != nullptr);
    fn_(std::move(result));
  }
  /// Convenience: boxes a raw reply struct into the simulator's slab.
  template <typename T,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<T>, Result<Payload>> &&
                !std::is_same_v<std::decay_t<T>, Payload> &&
                !std::is_same_v<std::decay_t<T>, Status>>>
  void operator()(T&& value) const {
    EVC_CHECK(fn_ != nullptr);
    fn_(Payload(slab_, std::forward<T>(value)));
  }

 private:
  Slab* slab_ = nullptr;
  std::function<void(Result<Payload>)> fn_;
};

/// Server-side method handler: `request` is the caller's payload; call
/// `respond` (now or later) to complete the RPC.
using RpcHandler =
    std::function<void(NodeId from, Payload request, RpcResponder respond)>;

/// Server-side admission hook. When a gate is installed for a node, every
/// inbound request to that node is offered to the gate instead of running
/// its handler directly: the gate either runs `dispatch` (now or later — a
/// queued request keeps its responder alive), or rejects by invoking
/// `respond` with an error Status and dropping `dispatch`.
///
/// Declared here (not in resilience/) so sim stays dependency-free; the
/// production implementation is resilience::AdmissionQueue.
class RequestGate {
 public:
  virtual ~RequestGate() = default;
  /// Offers one inbound request. Exactly one of `dispatch` / `respond`
  /// must eventually be used.
  virtual void Admit(MethodId method, std::function<void()> dispatch,
                     RpcResponder respond) = 0;
  /// Instantaneous node load in [0, 100], piggybacked on every outgoing
  /// reply so callers can make background traffic yield (see PeerLoad).
  virtual uint32_t LoadPercent() const = 0;
};

/// One Rpc instance serves a whole Network (it multiplexes by node id).
class Rpc {
 public:
  explicit Rpc(Network* network);

  /// Interns an RPC method name, returning its dense id and precomputing
  /// the call's trace-span names. Components intern each method once at
  /// setup and call by id.
  MethodId InternMethod(std::string_view method);
  /// The canonical name for an interned method (diagnostics).
  std::string_view MethodName(MethodId method) const {
    return method_interner_.NameOf(method);
  }

  /// Registers `handler` for calls of `method` addressed to `node`.
  void RegisterHandler(NodeId node, MethodId method, RpcHandler handler);
  /// Convenience: interns `method` then registers.
  void RegisterHandler(NodeId node, std::string_view method,
                       RpcHandler handler) {
    RegisterHandler(node, InternMethod(method), std::move(handler));
  }

  /// Issues an asynchronous call. `cb` fires exactly once: with the reply,
  /// or with TimedOut after `timeout` elapses without one.
  void Call(NodeId from, NodeId to, MethodId method, Payload request,
            Time timeout, RpcCallback cb);

  /// Convenience: boxes `request` into the simulator's slab and calls.
  template <typename T,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<T>, Payload>>>
  void Call(NodeId from, NodeId to, MethodId method, T&& request,
            Time timeout, RpcCallback cb) {
    Call(from, to, method,
         Payload(&simulator()->slab(), std::forward<T>(request)), timeout,
         std::move(cb));
  }

  /// Convenience (tests, cold paths): interns `method` on every call.
  /// Hot paths intern once at setup and call by MethodId.
  template <typename T>
  void Call(NodeId from, NodeId to, std::string_view method, T&& request,
            Time timeout, RpcCallback cb) {
    Call(from, to, InternMethod(method), std::forward<T>(request), timeout,
         std::move(cb));
  }

  /// Installs (or clears, with nullptr) the admission gate for `node`.
  /// Not owned; the gate must outlive the Rpc or be cleared first.
  void SetRequestGate(NodeId node, RequestGate* gate);
  RequestGate* request_gate(NodeId node) const {
    return node < gates_.size() ? gates_[node] : nullptr;
  }

  /// The most recent load signal `observer` saw piggybacked on a reply from
  /// `peer` (0..100). Returns 0 when no reply arrived recently: a stale
  /// signal must not suppress background traffic forever, so samples expire
  /// after kLoadSignalTtl and the next probe refreshes them.
  uint32_t PeerLoad(NodeId observer, NodeId peer) const;

  /// How long a piggybacked load sample stays authoritative.
  static constexpr Time kLoadSignalTtl = 1 * kSecond;

  Network* network() { return network_; }
  Simulator* simulator() { return network_->simulator(); }

  /// Total RPCs issued (diagnostic).
  uint64_t calls_issued() const { return next_call_id_ - 1; }

 private:
  struct RequestEnvelope {
    uint64_t call_id;
    MethodId method;
    Payload payload;
    uint64_t span = 0;  ///< caller's trace span (cross-node parenting)

    RequestEnvelope Clone() const {  // duplicate-delivery fault support
      return RequestEnvelope{call_id, method, payload.Clone(), span};
    }
  };
  struct ReplyEnvelope {
    uint64_t call_id;
    Status status;
    Payload payload;
    uint32_t load = 0;  ///< replier's RequestGate::LoadPercent at send time

    ReplyEnvelope Clone() const {
      return ReplyEnvelope{call_id, status, payload.Clone(), load};
    }
  };
  struct Pending {
    RpcCallback cb;
    EventId timeout_event;
    uint64_t span = 0;        ///< client-side span of this call
    uint64_t span_parent = 0; ///< restored as ambient parent around `cb`
    Time started_at = 0;
  };

  void OnRequest(Message msg);
  void OnReply(Message msg);
  void HookRequests(NodeId node);
  void HookReplies(NodeId node);

  Network* network_;
  MsgType request_type_;
  MsgType reply_type_;
  uint64_t next_call_id_ = 1;
  // Lookup-only map (never iterated); keyed by monotonically growing call id.
  std::unordered_map<uint64_t, Pending> pending_;
  KeyInterner method_interner_;
  // Precomputed tracer name ids, indexed by MethodId
  // ("rpc.<m>"/"rpc.server.<m>"): opening a span never builds a string.
  std::vector<KeyId> client_span_names_;
  std::vector<KeyId> server_span_names_;
  KeyId outcome_ok_ = kInvalidKeyId;
  KeyId outcome_timeout_ = kInvalidKeyId;
  // handlers_[node][method]; empty std::function = unregistered.
  std::vector<std::vector<RpcHandler>> handlers_;
  // gates_[node]: admission gate, nullptr = dispatch directly (the default).
  std::vector<RequestGate*> gates_;
  // Last piggybacked load sample per (observer, peer) pair. Lookup-only map
  // (never iterated); keyed (observer << 32) | peer.
  struct LoadSample {
    uint32_t load = 0;
    Time at = 0;
  };
  std::unordered_map<uint64_t, LoadSample> peer_load_;
  // Which nodes have the rpc.request / rpc.reply network dispatchers
  // installed (the seed re-registered a fresh reply closure on every Call).
  std::vector<bool> req_hooked_;
  std::vector<bool> reply_hooked_;
  // Cached global instruments.
  obs::Counter* calls_ = nullptr;
  obs::Counter* timeouts_ = nullptr;
  obs::Counter* late_replies_ = nullptr;
  obs::Counter* app_errors_ = nullptr;
  Histogram* call_latency_us_ = nullptr;
};

}  // namespace evc::sim

#endif  // EVC_SIM_RPC_H_
