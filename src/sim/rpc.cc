#include "sim/rpc.h"

#include "common/logging.h"
#include "obs/trace.h"

namespace evc::sim {

namespace {
constexpr char kRequestType[] = "rpc.request";
constexpr char kReplyType[] = "rpc.reply";
}  // namespace

Rpc::Rpc(Network* network) : network_(network) {
  EVC_CHECK(network_ != nullptr);
  // Register dispatchers for all current and future nodes lazily: we hook
  // every node that gets a handler or makes a call.
}

void Rpc::RegisterHandler(NodeId node, const std::string& method,
                          RpcHandler handler) {
  if (handlers_.find(node) == handlers_.end()) {
    network_->RegisterHandler(
        node, kRequestType, [this](Message msg) { OnRequest(std::move(msg)); });
  }
  handlers_[node][method] = std::move(handler);
}

void Rpc::Call(NodeId from, NodeId to, const std::string& method,
               std::any request, Time timeout, RpcCallback cb) {
  // Ensure the caller can receive replies.
  network_->RegisterHandler(
      from, kReplyType, [this](Message msg) { OnReply(std::move(msg)); });

  const uint64_t call_id = next_call_id_++;
  Simulator* sim = network_->simulator();
  obs::Tracer& tracer = sim->tracer();
  obs::MetricsRegistry& g = sim->metrics().global();
  g.CounterFor("rpc.calls").Inc();

  // Client-side span for the whole call, parented to whatever span is
  // ambient (e.g. the server-side span of an enclosing coordinator RPC).
  const uint64_t span_parent = tracer.current();
  const uint64_t span = tracer.Begin(from, "rpc." + method, sim->Now());

  const EventId timeout_event = sim->ScheduleAfter(timeout, [this, call_id] {
    auto it = pending_.find(call_id);
    if (it == pending_.end()) return;
    Pending pending = std::move(it->second);
    pending_.erase(it);
    Simulator* s = network_->simulator();
    s->metrics().global().CounterFor("rpc.timeouts").Inc();
    s->tracer().End(pending.span, s->Now(), "timeout");
    // The callback logically continues the caller's work: restore its
    // ambient span so any retry RPC it issues stays on the same trace tree.
    obs::Tracer::Scope scope(&s->tracer(), pending.span_parent);
    pending.cb(Status::TimedOut("rpc timeout"));
  });
  pending_[call_id] =
      Pending{std::move(cb), timeout_event, span, span_parent, sim->Now()};

  RequestEnvelope env{call_id, method, std::move(request), span};
  network_->Send(from, to, kRequestType, std::move(env));
}

void Rpc::OnRequest(Message msg) {
  auto env = std::any_cast<RequestEnvelope>(std::move(msg.payload));
  const NodeId server = msg.to;
  const NodeId client = msg.from;

  auto node_it = handlers_.find(server);
  if (node_it == handlers_.end()) return;
  auto method_it = node_it->second.find(env.method);
  if (method_it == node_it->second.end()) {
    EVC_LOG_WARN("node %u: no rpc handler for method '%s'", server,
                 env.method.c_str());
    return;
  }

  const uint64_t call_id = env.call_id;
  Network* net = network_;
  Simulator* sim = network_->simulator();
  obs::Tracer& tracer = sim->tracer();
  // Server-side span, parented across the wire to the client's call span.
  const uint64_t srv_span = tracer.BeginChild(
      env.span, server, "rpc.server." + env.method, sim->Now());
  RpcResponder responder(
      [net, server, client, call_id, srv_span](Result<std::any> r) {
        Simulator* s = net->simulator();
        s->tracer().End(srv_span, s->Now(),
                        r.ok() ? "ok" : StatusCodeToString(r.status().code()));
        ReplyEnvelope reply{call_id,
                            r.ok() ? Status::OK() : r.status(),
                            r.ok() ? std::move(r).value() : std::any{}};
        net->Send(server, client, kReplyType, std::move(reply));
      });
  // Handlers run with the server span ambient, so RPCs they issue
  // synchronously (quorum fan-outs, Paxos phases) become its children.
  obs::Tracer::Scope scope(&tracer, srv_span);
  method_it->second(client, std::move(env.payload), std::move(responder));
}

void Rpc::OnReply(Message msg) {
  auto env = std::any_cast<ReplyEnvelope>(std::move(msg.payload));
  auto it = pending_.find(env.call_id);
  if (it == pending_.end()) {
    // Late reply after timeout (or a network duplicate of a reply already
    // consumed): ignored, but counted — hedging win/loss accounting needs
    // the number of replies that raced a timeout to balance.
    network_->simulator()->metrics().global()
        .CounterFor("rpc.late_replies").Inc();
    return;
  }
  Pending pending = std::move(it->second);
  Simulator* sim = network_->simulator();
  sim->Cancel(pending.timeout_event);
  pending_.erase(it);
  sim->metrics().global().HistogramFor("rpc.call_latency_us").Add(
      static_cast<double>(sim->Now() - pending.started_at));
  sim->tracer().End(pending.span, sim->Now(),
                    env.status.ok()
                        ? "ok"
                        : StatusCodeToString(env.status.code()));
  if (!env.status.ok()) {
    sim->metrics().global().CounterFor("rpc.app_errors").Inc();
  }
  obs::Tracer::Scope scope(&sim->tracer(), pending.span_parent);
  if (env.status.ok()) {
    pending.cb(std::move(env.payload));
  } else {
    pending.cb(env.status);
  }
}

}  // namespace evc::sim
