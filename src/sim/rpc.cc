#include "sim/rpc.h"

#include <memory>

#include "common/logging.h"
#include "obs/trace.h"

namespace evc::sim {

Rpc::Rpc(Network* network) : network_(network) {
  EVC_CHECK(network_ != nullptr);
  request_type_ = network_->InternType("rpc.request");
  reply_type_ = network_->InternType("rpc.reply");
  obs::MetricsRegistry& g = simulator()->metrics().global();
  calls_ = &g.CounterFor("rpc.calls");
  timeouts_ = &g.CounterFor("rpc.timeouts");
  late_replies_ = &g.CounterFor("rpc.late_replies");
  app_errors_ = &g.CounterFor("rpc.app_errors");
  call_latency_us_ = &g.HistogramFor("rpc.call_latency_us");
  obs::Tracer& tracer = simulator()->tracer();
  outcome_ok_ = tracer.InternName("ok");
  outcome_timeout_ = tracer.InternName("timeout");
}

MethodId Rpc::InternMethod(std::string_view method) {
  const MethodId id = method_interner_.Intern(method);
  if (id >= client_span_names_.size()) {
    obs::Tracer& tracer = simulator()->tracer();
    client_span_names_.push_back(
        tracer.InternName("rpc." + std::string(method)));
    server_span_names_.push_back(
        tracer.InternName("rpc.server." + std::string(method)));
  }
  return id;
}

void Rpc::HookRequests(NodeId node) {
  if (node < req_hooked_.size() && req_hooked_[node]) return;
  if (req_hooked_.size() <= node) req_hooked_.resize(node + 1, false);
  req_hooked_[node] = true;
  network_->RegisterHandler(node, request_type_,
                            [this](Message msg) { OnRequest(std::move(msg)); });
}

void Rpc::HookReplies(NodeId node) {
  if (node < reply_hooked_.size() && reply_hooked_[node]) return;
  if (reply_hooked_.size() <= node) reply_hooked_.resize(node + 1, false);
  reply_hooked_[node] = true;
  network_->RegisterHandler(node, reply_type_,
                            [this](Message msg) { OnReply(std::move(msg)); });
}

void Rpc::RegisterHandler(NodeId node, MethodId method, RpcHandler handler) {
  HookRequests(node);
  if (handlers_.size() <= node) handlers_.resize(node + 1);
  auto& node_handlers = handlers_[node];
  if (node_handlers.size() <= method) node_handlers.resize(method + 1);
  node_handlers[method] = std::move(handler);
}

void Rpc::SetRequestGate(NodeId node, RequestGate* gate) {
  if (gates_.size() <= node) gates_.resize(node + 1, nullptr);
  gates_[node] = gate;
}

uint32_t Rpc::PeerLoad(NodeId observer, NodeId peer) const {
  const auto it = peer_load_.find((uint64_t{observer} << 32) | peer);
  if (it == peer_load_.end()) return 0;
  if (network_->simulator()->Now() - it->second.at > kLoadSignalTtl) return 0;
  return it->second.load;
}

void Rpc::Call(NodeId from, NodeId to, MethodId method, Payload request,
               Time timeout, RpcCallback cb) {
  // Ensure the caller can receive replies.
  HookReplies(from);

  const uint64_t call_id = next_call_id_++;
  Simulator* sim = simulator();
  obs::Tracer& tracer = sim->tracer();
  calls_->Inc();

  // Client-side span for the whole call, parented to whatever span is
  // ambient (e.g. the server-side span of an enclosing coordinator RPC).
  const uint64_t span_parent = tracer.current();
  const uint64_t span =
      tracer.Begin(from, client_span_names_[method], sim->Now());

  const EventId timeout_event = sim->ScheduleAfter(timeout, [this, call_id] {
    auto it = pending_.find(call_id);
    if (it == pending_.end()) return;
    Pending pending = std::move(it->second);
    pending_.erase(it);
    Simulator* s = simulator();
    timeouts_->Inc();
    s->tracer().End(pending.span, s->Now(), outcome_timeout_);
    // The callback logically continues the caller's work: restore its
    // ambient span so any retry RPC it issues stays on the same trace tree.
    obs::Tracer::Scope scope(&s->tracer(), pending.span_parent);
    pending.cb(Status::TimedOut("rpc timeout"));
  });
  pending_[call_id] =
      Pending{std::move(cb), timeout_event, span, span_parent, sim->Now()};

  RequestEnvelope env{call_id, method, std::move(request), span};
  network_->Send(from, to, request_type_, std::move(env));
}

void Rpc::OnRequest(Message msg) {
  auto env = std::move(msg.payload).Take<RequestEnvelope>();
  const NodeId server = msg.to;
  const NodeId client = msg.from;

  const RpcHandler* handler = nullptr;
  if (server < handlers_.size() && env.method < handlers_[server].size() &&
      handlers_[server][env.method]) {
    handler = &handlers_[server][env.method];
  }
  if (handler == nullptr) {
    EVC_LOG_WARN("node %u: no rpc handler for method '%s'", server,
                 std::string(MethodName(env.method)).c_str());
    return;
  }

  const uint64_t call_id = env.call_id;
  Rpc* self = this;
  Simulator* sim = simulator();
  obs::Tracer& tracer = sim->tracer();
  // Server-side span, parented across the wire to the client's call span.
  // Begun at arrival, so queueing inside an admission gate shows up as
  // span duration.
  const uint64_t srv_span = tracer.BeginChild(
      env.span, server, server_span_names_[env.method], sim->Now());
  RpcResponder responder(
      &sim->slab(),
      [self, server, client, call_id, srv_span](Result<Payload> r) {
        Simulator* s = self->simulator();
        s->tracer().End(srv_span, s->Now(),
                        r.ok() ? self->outcome_ok_
                               : s->tracer().InternName(
                                     StatusCodeToString(r.status().code())));
        // Piggyback the node's current load on every reply — including
        // rejections, which is how an overloaded node tells background
        // callers to yield.
        const RequestGate* gate = self->request_gate(server);
        ReplyEnvelope reply{call_id,
                            r.ok() ? Status::OK() : r.status(),
                            r.ok() ? std::move(r).value() : Payload{},
                            gate != nullptr ? gate->LoadPercent() : 0};
        self->network_->Send(server, client, self->reply_type_,
                             std::move(reply));
      });

  RequestGate* gate = request_gate(server);
  if (gate == nullptr) {
    // Handlers run with the server span ambient, so RPCs they issue
    // synchronously (quorum fan-outs, Paxos phases) become its children.
    obs::Tracer::Scope scope(&tracer, srv_span);
    (*handler)(client, std::move(env.payload), std::move(responder));
    return;
  }

  // Gated dispatch: the payload moves into a shared box (std::function
  // requires copyable closures) and the handler is re-looked-up at run
  // time. A crash while queued voids the dispatch — the node must not
  // serve requests it logically lost.
  const MethodId method = env.method;
  auto payload = std::make_shared<Payload>(std::move(env.payload));
  std::function<void()> dispatch = [self, server, client, method, payload,
                                    responder, srv_span] {
    if (!self->network_->IsNodeUp(server)) return;
    const RpcHandler& h = self->handlers_[server][method];
    if (!h) return;
    obs::Tracer::Scope scope(&self->simulator()->tracer(), srv_span);
    h(client, std::move(*payload), responder);
  };
  gate->Admit(method, std::move(dispatch), std::move(responder));
}

void Rpc::OnReply(Message msg) {
  auto env = std::move(msg.payload).Take<ReplyEnvelope>();
  auto it = pending_.find(env.call_id);
  if (it == pending_.end()) {
    // Late reply after timeout (or a network duplicate of a reply already
    // consumed): ignored, but counted — hedging win/loss accounting needs
    // the number of replies that raced a timeout to balance.
    late_replies_->Inc();
    return;
  }
  Pending pending = std::move(it->second);
  Simulator* sim = simulator();
  sim->Cancel(pending.timeout_event);
  pending_.erase(it);
  // Remember the peer's piggybacked load for this (caller, replier) pair;
  // background subsystems poll it via PeerLoad before adding traffic.
  peer_load_[(uint64_t{msg.to} << 32) | msg.from] =
      LoadSample{env.load, sim->Now()};
  call_latency_us_->Add(static_cast<double>(sim->Now() - pending.started_at));
  sim->tracer().End(pending.span, sim->Now(),
                    env.status.ok()
                        ? outcome_ok_
                        : sim->tracer().InternName(
                              StatusCodeToString(env.status.code())));
  if (!env.status.ok()) {
    app_errors_->Inc();
  }
  obs::Tracer::Scope scope(&sim->tracer(), pending.span_parent);
  if (env.status.ok()) {
    pending.cb(std::move(env.payload));
  } else {
    pending.cb(env.status);
  }
}

}  // namespace evc::sim
