#include "sim/rpc.h"

#include "common/logging.h"

namespace evc::sim {

namespace {
constexpr char kRequestType[] = "rpc.request";
constexpr char kReplyType[] = "rpc.reply";
}  // namespace

Rpc::Rpc(Network* network) : network_(network) {
  EVC_CHECK(network_ != nullptr);
  // Register dispatchers for all current and future nodes lazily: we hook
  // every node that gets a handler or makes a call.
}

void Rpc::RegisterHandler(NodeId node, const std::string& method,
                          RpcHandler handler) {
  if (handlers_.find(node) == handlers_.end()) {
    network_->RegisterHandler(
        node, kRequestType, [this](Message msg) { OnRequest(std::move(msg)); });
  }
  handlers_[node][method] = std::move(handler);
}

void Rpc::Call(NodeId from, NodeId to, const std::string& method,
               std::any request, Time timeout, RpcCallback cb) {
  // Ensure the caller can receive replies.
  network_->RegisterHandler(
      from, kReplyType, [this](Message msg) { OnReply(std::move(msg)); });

  const uint64_t call_id = next_call_id_++;
  Simulator* sim = network_->simulator();
  const EventId timeout_event = sim->ScheduleAfter(timeout, [this, call_id] {
    auto it = pending_.find(call_id);
    if (it == pending_.end()) return;
    RpcCallback cb = std::move(it->second.cb);
    pending_.erase(it);
    cb(Status::TimedOut("rpc timeout"));
  });
  pending_[call_id] = Pending{std::move(cb), timeout_event};

  RequestEnvelope env{call_id, method, std::move(request)};
  network_->Send(from, to, kRequestType, std::move(env));
}

void Rpc::OnRequest(Message msg) {
  auto env = std::any_cast<RequestEnvelope>(std::move(msg.payload));
  const NodeId server = msg.to;
  const NodeId client = msg.from;

  auto node_it = handlers_.find(server);
  if (node_it == handlers_.end()) return;
  auto method_it = node_it->second.find(env.method);
  if (method_it == node_it->second.end()) {
    EVC_LOG_WARN("node %u: no rpc handler for method '%s'", server,
                 env.method.c_str());
    return;
  }

  const uint64_t call_id = env.call_id;
  Network* net = network_;
  RpcResponder responder([net, server, client, call_id](Result<std::any> r) {
    ReplyEnvelope reply{call_id,
                        r.ok() ? Status::OK() : r.status(),
                        r.ok() ? std::move(r).value() : std::any{}};
    net->Send(server, client, kReplyType, std::move(reply));
  });
  method_it->second(client, std::move(env.payload), std::move(responder));
}

void Rpc::OnReply(Message msg) {
  auto env = std::any_cast<ReplyEnvelope>(std::move(msg.payload));
  auto it = pending_.find(env.call_id);
  if (it == pending_.end()) return;  // late reply after timeout: ignore
  RpcCallback cb = std::move(it->second.cb);
  network_->simulator()->Cancel(it->second.timeout_event);
  pending_.erase(it);
  if (env.status.ok()) {
    cb(std::move(env.payload));
  } else {
    cb(env.status);
  }
}

}  // namespace evc::sim
