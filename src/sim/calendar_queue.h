// Calendar-queue event scheduler: a bucketed timing wheel with a sorted
// overflow heap.
//
// The simulator's former std::priority_queue scheduler paid O(log n)
// comparisons and ~56-byte element moves per push/pop, plus one hash-set
// insert/erase per event for pending-count bookkeeping and tombstone sets
// for cancellation. The calendar queue replaces all of that:
//
//   * Near-future events (within the wheel's current window) go straight
//     into per-time-slice buckets; in the common case a push is an O(1)
//     append (new events carry the largest (when, seq) key in their bucket)
//     and a pop is an O(1) read at the bucket cursor.
//   * Far-future events wait in a binary min-heap keyed on (when, seq) and
//     are redistributed bucket-ward one window at a time ("refill"); each
//     event passes through the heap at most once.
//   * Cancellation is O(1) and exact: event ids encode a (slot, generation)
//     pair into a flat slot table, so Cancel() finds the event without
//     hashing, never double-counts, and pending() is a plain counter.
//   * Extraction is mutable by construction (PopMin returns the event by
//     value), so the old const_cast move-out of priority_queue::top() —
//     UB-adjacent and flagged in review — is gone.
//
// Adaptivity: the bucket width is re-derived at every refill from the
// observed event rate of the previous window, and the bucket count doubles
// when a window would pack too many events per bucket. Both decisions are
// pure functions of the event history, so two same-seed runs resize at the
// same instants (calendar_queue_test pins resize behavior; the 25-seed
// differential harness in simcore_diff_test pins equivalence with the
// legacy heap on full protocol workloads).
//
// Ordering contract (identical to the legacy heap): strict (when, seq) order
// with seq assigned at push, i.e. FIFO among same-time events.

#ifndef EVC_SIM_CALENDAR_QUEUE_H_
#define EVC_SIM_CALENDAR_QUEUE_H_

#include <cstdint>
#include <vector>

#include "common/slab.h"
#include "common/status.h"
#include "sim/task.h"

namespace evc::sim {

class CalendarQueue {
 public:
  using Time = int64_t;
  using EventId = uint64_t;

  struct Stats {
    uint64_t refills = 0;        ///< wheel windows rebuilt from overflow
    uint64_t width_changes = 0;  ///< bucket width adaptations
    uint64_t grows = 0;          ///< bucket-count doublings
    uint64_t compactions = 0;    ///< overflow tombstone sweeps
  };

  /// `slab` outlives the queue; event closures are freed back into it.
  explicit CalendarQueue(Slab* slab);

  CalendarQueue(const CalendarQueue&) = delete;
  CalendarQueue& operator=(const CalendarQueue&) = delete;
  ~CalendarQueue();

  /// Enqueues `fn` at `when`. `when` must be >= the last popped time.
  /// Returns a nonzero id usable with Cancel().
  EventId Push(Time when, Task fn);

  /// Cancels a pending event. True iff `id` was pending (not yet popped,
  /// not already cancelled). Stale and foreign ids return false.
  bool Cancel(EventId id);

  /// Live (pending, uncancelled) events.
  size_t pending() const { return pending_; }
  bool empty() const { return pending_ == 0; }

  /// Time of the earliest live event. False when empty. May prune
  /// cancelled-event carcasses as a side effect.
  bool PeekWhen(Time* when);

  /// Extracts the earliest live event's closure; stores its time in `*when`
  /// if non-null. Pre: !empty().
  Task PopMin(Time* when = nullptr);

  const Stats& stats() const { return stats_; }

 private:
  struct Rec {
    Time when = 0;
    uint64_t seq = 0;
    uint32_t slot = 0;
    Task fn;
  };
  struct Slot {
    uint32_t gen = 1;
    bool live = false;        ///< allocated to an un-surfaced event
    bool cancelled = false;   ///< Cancel() hit it; reap when it surfaces
    bool in_overflow = false; ///< record currently lives in the overflow heap
  };
  struct Bucket {
    std::vector<Rec> recs;  ///< sorted ascending by (when, seq) from `head`
    size_t head = 0;
  };

  static bool KeyLess(const Rec& a, const Rec& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  Time wheel_end() const {
    return wheel_start_ +
           static_cast<Time>(buckets_.size()) * width_;
  }

  uint32_t AllocSlot();
  void FreeSlot(uint32_t slot);
  void PushRec(Rec rec);
  void BucketInsert(Bucket* bucket, Rec rec);
  /// Positions cursor_ at the next live record, refilling the wheel from
  /// the overflow heap as needed. False when no live events remain.
  bool FindNext();
  /// Moves the next window of overflow events into (possibly re-sized,
  /// re-widthed) buckets.
  void Refill();
  /// Sweeps cancelled records out of the overflow heap once they outnumber
  /// the live ones. RPC-style timers (armed far in the future, almost
  /// always cancelled before firing) would otherwise sit in the heap as
  /// tombstones until their window refills — hundreds of sim-milliseconds —
  /// inflating every heap operation. O(n) per sweep, amortized O(1) per
  /// cancel; deterministic (pure function of the operation sequence).
  void MaybeCompactOverflow();

  Slab* slab_;
  std::vector<Bucket> buckets_;
  size_t cursor_ = 0;      ///< first bucket that may hold live records
  Time wheel_start_ = 0;   ///< time of bucket 0's left edge
  Time width_;             ///< time covered by one bucket
  std::vector<Rec> overflow_;  ///< min-heap on (when, seq)
  size_t overflow_cancelled_ = 0;  ///< tombstones currently in overflow_
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;  ///< LIFO reuse (deterministic)
  uint64_t next_seq_ = 0;
  size_t pending_ = 0;
  /// Set by FindNext(): the global minimum sits in the overflow heap (an
  /// event scheduled before the current window), not at the bucket cursor.
  bool next_from_overflow_ = false;
  /// Events the last Refill() distributed (drives bucket-count growth).
  size_t moved_last_refill_ = 0;
  // Pop history for width adaptation: events popped and time advanced since
  // the last refill.
  uint64_t popped_this_window_ = 0;
  Time last_pop_when_ = 0;
  Stats stats_;
};

}  // namespace evc::sim

#endif  // EVC_SIM_CALENDAR_QUEUE_H_
