// Nemesis: Jepsen-style adversarial fault scheduling for the simulator.
//
// Benchmarks and tests used to hand-roll fault injection with raw
// Network::Partition / SetNodeUp / ScheduleAt calls; the Nemesis gives them
// one shared, declarative path. A FaultPlan is a time-ordered list of fault
// actions (explicit or randomized); a Nemesis executes a plan against a
// Network, resolving the randomized actions from its own seeded Rng so that
// an entire adversarial schedule is a pure function of (seed, options) and
// any failure replays bit-identically. The fuzz harness (verify/fuzz.h,
// tools/evc_fuzz) drives thousands of these schedules against every store.

#ifndef EVC_SIM_NEMESIS_H_
#define EVC_SIM_NEMESIS_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/network.h"

namespace evc::sim {

/// Shapes of randomized partitions the Nemesis can draw.
enum class PartitionStyle {
  kMajorityMinority,  ///< cut off a random minority (< half) of the targets
  kRingSplit,         ///< split a contiguous run of the target ring away
  kIsolateOne,        ///< isolate a single random target
  kRandomBisect,      ///< independent fair coin per target
};

const char* ToString(PartitionStyle style);

/// One scheduled fault. Times are relative to the instant the plan is
/// executed (Nemesis::Execute adds Simulator::Now()).
struct FaultAction {
  enum class Kind {
    kPartition,        ///< explicit groups (Network::Partition semantics)
    kRandomPartition,  ///< Nemesis picks the cut set by `style` at fire time
    kHeal,             ///< remove any partition
    kCrash,            ///< take an explicit node down
    kRestart,          ///< bring an explicit node back up
    kRandomCrash,      ///< crash a random currently-up target
    kRandomRestart,    ///< restart the longest-crashed nemesis-crashed target
    kLossRate,         ///< set the network loss probability
    kDuplicateRate,    ///< set the network duplication probability
    // Gray failures: the link/node keeps "working" as far as the
    // CanCommunicate oracle is concerned, but degrades service.
    kSlowLink,         ///< inflate latency on an explicit link by `factor`
    kFlakyLink,        ///< drop transmissions on an explicit link at `rate`
    kSlowNode,         ///< add processing `delay` to an explicit node
    kRandomSlowLink,   ///< kSlowLink on a random target pair
    kRandomFlakyLink,  ///< kFlakyLink on a random target pair
    kRandomSlowNode,   ///< kSlowNode on a random target
    kGrayRecover,      ///< undo the oldest still-active gray fault
    kHealAll,          ///< heal partition, restart crashed targets, zero
                       ///< rates, clear gray faults
    // Membership faults (appended so historical kinds keep their values).
    // They act through the installed MembershipActuator and are skipped
    // (stats_.skipped) when none is installed.
    kAddNode,          ///< propose joining a brand-new node
    kRemoveNode,       ///< propose removing a random removable member
    kRollingRestart,   ///< crash+restart every up target, staggered
    // Load faults (appended; act through the installed LoadActuator and are
    // skipped when none is installed). Unlike network faults these attack
    // the workload itself — the trigger for metastable failures.
    kFlashCrowd,       ///< multiply offered load by `factor` (1.0 recovers)
    kLoadSpike,        ///< kFlashCrowd plus a hot-key shift
  };

  Kind kind = Kind::kHeal;
  Time at = 0;
  std::vector<std::vector<NodeId>> groups;  ///< kPartition only
  NodeId node = 0;     ///< kCrash / kRestart / kSlowNode / link endpoint a
  NodeId node_b = 0;   ///< link endpoint b (kSlowLink / kFlakyLink)
  double rate = 0.0;   ///< kLossRate / kDuplicateRate / kFlakyLink
  double factor = 1.0; ///< kSlowLink latency multiplier
  Time delay = 0;      ///< kSlowNode processing delay / kRollingRestart stagger
  Time hold = 0;       ///< kRollingRestart: per-node down time
  PartitionStyle style = PartitionStyle::kMajorityMinority;

  std::string ToString() const;
};

/// Declarative, time-ordered fault schedule. Build one explicitly with the
/// fluent *At() calls, or let Nemesis::GeneratePlan draw a random one.
class FaultPlan {
 public:
  FaultPlan& PartitionAt(Time at, std::vector<std::vector<NodeId>> groups);
  FaultPlan& RandomPartitionAt(Time at, PartitionStyle style);
  FaultPlan& HealAt(Time at);
  FaultPlan& CrashAt(Time at, NodeId node);
  FaultPlan& RestartAt(Time at, NodeId node);
  FaultPlan& RandomCrashAt(Time at);
  FaultPlan& RandomRestartAt(Time at);
  FaultPlan& LossRateAt(Time at, double rate);
  FaultPlan& DuplicateRateAt(Time at, double rate);
  FaultPlan& SlowLinkAt(Time at, NodeId a, NodeId b, double factor);
  FaultPlan& FlakyLinkAt(Time at, NodeId a, NodeId b, double drop_rate);
  FaultPlan& SlowNodeAt(Time at, NodeId node, Time delay);
  FaultPlan& RandomSlowLinkAt(Time at, double factor);
  FaultPlan& RandomFlakyLinkAt(Time at, double drop_rate);
  FaultPlan& RandomSlowNodeAt(Time at, Time delay);
  FaultPlan& GrayRecoverAt(Time at);
  FaultPlan& HealAllAt(Time at);
  FaultPlan& AddNodeAt(Time at);
  FaultPlan& RemoveNodeAt(Time at);
  /// Sets the offered-load multiplier to `factor` (1.0 = nominal, i.e. the
  /// paired recovery). Applied through the installed LoadActuator.
  FaultPlan& FlashCrowdAt(Time at, double factor);
  /// FlashCrowd plus a hot-key-distribution shift at the same instant.
  FaultPlan& LoadSpikeAt(Time at, double factor);
  /// Crash+restart every up target: target i goes down at `at + i*stagger`
  /// and comes back `hold` later. With hold < stagger at most one target is
  /// down at a time — the classic rolling-deploy shape.
  FaultPlan& RollingRestartAt(Time at, Time stagger, Time hold);

  const std::vector<FaultAction>& actions() const { return actions_; }
  size_t size() const { return actions_.size(); }
  bool empty() const { return actions_.empty(); }

  /// One action per line, time-sorted, for failure reports.
  std::string ToString() const;

 private:
  FaultPlan& Push(FaultAction action);
  std::vector<FaultAction> actions_;
};

/// Knobs for random schedule generation. Defaults produce a schedule that
/// keeps a majority of targets connected most of the time (so
/// majority-quorum stores can make progress between faults).
struct NemesisScheduleOptions {
  /// Faults are drawn over [0, duration) relative to execution time.
  Time duration = 20 * kSecond;
  /// Mean (exponential) gap between consecutive fault onsets.
  Time mean_fault_interval = 1500 * kMillisecond;
  /// Mean (exponential) time a fault holds before its paired heal/restart.
  Time mean_fault_duration = 2 * kSecond;
  /// Fault families the generator may draw. The gray families default to
  /// off so historical schedules (pinned fuzz corpora) replay bit-identically
  /// — enabling a family appends to the draw table, never reorders it.
  bool allow_partitions = true;
  bool allow_crashes = true;
  bool allow_loss = true;
  bool allow_duplication = true;
  bool allow_slow_links = false;
  bool allow_flaky_links = false;
  bool allow_slow_nodes = false;
  /// Membership families, appended after the gray ones (same historical-
  /// replay discipline: enabling appends to the draw table, never reorders).
  /// Both require a MembershipActuator / cooperating restart handling.
  bool allow_membership = false;       ///< kAddNode / kRemoveNode draws
  bool allow_rolling_restart = false;  ///< kRollingRestart draws
  /// Load family (kFlashCrowd / kLoadSpike draws), appended after the
  /// rolling-restart family. Requires a LoadActuator.
  bool allow_load_spikes = false;
  /// Upper bounds for the rate ramps.
  double max_loss_rate = 0.25;
  double max_duplicate_rate = 0.25;
  /// Upper bounds for the gray-failure draws.
  double max_latency_factor = 8.0;
  double max_flaky_drop_rate = 0.6;
  Time max_node_delay = 30 * kMillisecond;
  /// Maximum targets crashed at once (1 keeps an n>=3 majority alive).
  /// Rolling restarts account separately: with hold < stagger they keep at
  /// most one extra target down at a time by construction.
  int max_concurrent_crashes = 1;
  /// Cap on kAddNode/kRemoveNode draws per plan: reconfigurations are rare,
  /// heavyweight events, and each one runs a full prepare/catch-up/commit.
  int max_membership_ops = 3;
  /// Rolling-restart shape (kRollingRestart draws).
  Time rolling_stagger = 2 * kSecond;
  Time rolling_hold = 500 * kMillisecond;
  /// Upper bound for the load-spike multiplier draw (draws land in
  /// [2, max_load_factor]; below 2x a spike is routine traffic noise).
  double max_load_factor = 6.0;
  /// Append a HealAll at `duration` so runs end fault-free.
  bool heal_at_end = true;
};

struct NemesisStats {
  uint64_t partitions = 0;
  uint64_t heals = 0;
  uint64_t crashes = 0;
  uint64_t restarts = 0;
  uint64_t rate_changes = 0;
  uint64_t gray_faults = 0;      ///< slow/flaky links + slow nodes applied
  uint64_t gray_recoveries = 0;  ///< gray faults undone
  uint64_t membership_ops = 0;   ///< add/remove proposals actually started
  uint64_t rolling_restarts = 0; ///< rolling-restart waves launched
  uint64_t load_spikes = 0;      ///< flash crowds / load spikes applied
  uint64_t skipped = 0;  ///< random actions with no eligible target
  uint64_t total() const {
    return partitions + heals + crashes + restarts + rate_changes +
           gray_faults + gray_recoveries + membership_ops + rolling_restarts +
           load_spikes;
  }
};

/// How the Nemesis drives live membership changes (kAddNode / kRemoveNode):
/// the harness (e.g. the elastic fuzz runner) implements this against its
/// cluster's AddServerLive / RemoveServerLive. All methods run at fault
/// apply time on the simulator thread.
class MembershipActuator {
 public:
  virtual ~MembershipActuator() = default;
  /// Starts a live join of a brand-new node. Returns false when one cannot
  /// start right now (reconfiguration already in flight, floor/cap rules).
  virtual bool AddNode() = 0;
  /// Members currently eligible for removal, in deterministic order. The
  /// Nemesis picks one at random from this list.
  virtual std::vector<NodeId> RemovableNodes() = 0;
  /// Starts a live removal of `node`. Returns false when it cannot start.
  virtual bool RemoveNode(NodeId node) = 0;
};

/// How the Nemesis drives workload-level faults (kFlashCrowd / kLoadSpike):
/// the harness implements this against whatever generates its offered load
/// (e.g. the fuzz driver's session pacing). Runs at fault apply time.
class LoadActuator {
 public:
  virtual ~LoadActuator() = default;
  /// Multiplies the offered load by `factor` (1.0 restores nominal load).
  virtual void SetLoadFactor(double factor) = 0;
  /// Rotates the hot-key set so the spike also lands on fresh keys.
  virtual void ShiftHotKeys() = 0;
};

/// Executes fault plans against a network. `targets` is the set of nodes the
/// randomized faults may touch (typically the servers — leave clients out so
/// a partition never strands them in their own group). All randomness comes
/// from `seed`, so a schedule replays exactly.
class Nemesis {
 public:
  Nemesis(Network* network, std::vector<NodeId> targets, uint64_t seed);

  Nemesis(const Nemesis&) = delete;
  Nemesis& operator=(const Nemesis&) = delete;

  /// Extends the pool the *gray* draws (kRandomSlowLink / kRandomFlakyLink /
  /// kRandomSlowNode) pick from to `targets` plus `gray_targets` — e.g. edge
  /// cache clients, which a realistic adversary can degrade but which must
  /// never be partition/crash targets (a crashed client just stops issuing
  /// ops; a gray-degraded one keeps serving its cache). Partition, crash and
  /// rate faults still draw from `targets` alone. With an empty extension
  /// the draw stream is bit-identical to a Nemesis without this call.
  void SetGrayTargets(const std::vector<NodeId>& gray_targets);

  /// Installs the handler for kAddNode / kRemoveNode (not owned; must
  /// outlive the Nemesis). Without one those actions are skipped. Consumes
  /// no randomness, so installing it never perturbs existing schedules.
  void SetMembershipActuator(MembershipActuator* actuator) {
    actuator_ = actuator;
  }

  /// Installs the handler for kFlashCrowd / kLoadSpike (not owned; must
  /// outlive the Nemesis). Without one those actions are skipped. Consumes
  /// no randomness, so installing it never perturbs existing schedules.
  void SetLoadActuator(LoadActuator* actuator) { load_actuator_ = actuator; }

  /// Draws a random plan from the options. Pure function of the Nemesis
  /// seed and the options (does not touch the network).
  FaultPlan GeneratePlan(const NemesisScheduleOptions& options);

  /// Schedules every action in `plan` on the simulator, relative to Now().
  void Execute(const FaultPlan& plan);

  /// GeneratePlan + Execute.
  FaultPlan Unleash(const NemesisScheduleOptions& options) {
    FaultPlan plan = GeneratePlan(options);
    Execute(plan);
    return plan;
  }

  /// Immediately undoes everything this Nemesis did: heals the partition,
  /// restarts every target it crashed, and zeroes loss/duplication rates.
  void HealAll();

  /// True if no target is currently crashed by this Nemesis.
  bool AllTargetsUp() const { return crashed_.empty(); }

  /// Gray faults applied by this Nemesis and not yet recovered.
  size_t active_gray_faults() const { return gray_active_.size(); }

  const NemesisStats& stats() const { return stats_; }

  /// Time-stamped record of every fault actually applied (randomized
  /// actions appear with their resolved nodes/groups).
  const std::vector<std::string>& log() const { return log_; }

 private:
  /// One gray fault this Nemesis currently holds active (for GrayRecover /
  /// HealAll undo). `node_b` is unused for slow-node entries.
  struct GrayFault {
    FaultAction::Kind kind = FaultAction::Kind::kSlowNode;
    NodeId node = 0;
    NodeId node_b = 0;
  };

  void Apply(const FaultAction& action);
  void ApplyRandomPartition(PartitionStyle style);
  void ApplyGray(const FaultAction& action);
  void RecoverGray(const GrayFault& fault);
  /// Draws a random unordered pair from the gray pool; false if fewer than
  /// two nodes in it.
  bool DrawTargetPair(NodeId* a, NodeId* b);
  void Note(const std::string& what);

  Network* net_;
  MembershipActuator* actuator_ = nullptr;
  LoadActuator* load_actuator_ = nullptr;
  std::vector<NodeId> targets_;
  /// Pool for gray draws: targets_ plus SetGrayTargets extras (== targets_
  /// until extended, keeping historical schedules bit-identical).
  std::vector<NodeId> gray_pool_;
  Rng rng_;
  NemesisStats stats_;
  std::deque<NodeId> crashed_;  ///< targets crashed by us, oldest first
  std::deque<GrayFault> gray_active_;  ///< active gray faults, oldest first
  bool load_spike_active_ = false;  ///< a factor > 1 is currently applied
  std::vector<std::string> log_;
};

}  // namespace evc::sim

#endif  // EVC_SIM_NEMESIS_H_
