// Pluggable one-way message latency models.
//
// The tutorial's latency/consistency arguments hinge on the gap between
// intra-datacenter RTTs (~1 ms) and inter-datacenter RTTs (tens to hundreds
// of ms). WanMatrixLatency models a multi-datacenter deployment; the simpler
// models support microbenchmarks and the PBS WARS decomposition.

#ifndef EVC_SIM_LATENCY_H_
#define EVC_SIM_LATENCY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "sim/simulator.h"

namespace evc::sim {

/// Identifies a simulated process (replica server or client).
using NodeId = uint32_t;

/// Samples a one-way delivery latency for a (from, to) message.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  virtual Time Sample(NodeId from, NodeId to, Rng& rng) = 0;
};

/// Fixed latency for every link.
class ConstantLatency : public LatencyModel {
 public:
  explicit ConstantLatency(Time latency) : latency_(latency) {}
  Time Sample(NodeId, NodeId, Rng&) override { return latency_; }

 private:
  Time latency_;
};

/// Uniform in [lo, hi].
class UniformLatency : public LatencyModel {
 public:
  UniformLatency(Time lo, Time hi) : lo_(lo), hi_(hi) {
    EVC_CHECK(lo >= 0 && hi >= lo);
  }
  Time Sample(NodeId, NodeId, Rng& rng) override {
    return rng.NextInRange(lo_, hi_);
  }

 private:
  Time lo_, hi_;
};

/// Shifted exponential: base propagation delay plus exponential queueing
/// tail. This is the distribution family the PBS paper fits to Dynamo-style
/// deployments.
class ExponentialLatency : public LatencyModel {
 public:
  ExponentialLatency(Time base, double tail_mean_us)
      : base_(base), tail_mean_us_(tail_mean_us) {
    EVC_CHECK(base >= 0 && tail_mean_us >= 0);
  }
  Time Sample(NodeId, NodeId, Rng& rng) override {
    const double tail =
        tail_mean_us_ > 0 ? rng.NextExponential(tail_mean_us_) : 0.0;
    return base_ + static_cast<Time>(tail);
  }

 private:
  Time base_;
  double tail_mean_us_;
};

/// Log-normal latency (heavy-ish tail), parameterized by median and sigma.
class LogNormalLatency : public LatencyModel {
 public:
  LogNormalLatency(Time median, double sigma)
      : mu_(std::log(static_cast<double>(median > 0 ? median : 1))),
        sigma_(sigma) {}
  Time Sample(NodeId, NodeId, Rng& rng) override {
    return static_cast<Time>(rng.NextLogNormal(mu_, sigma_));
  }

 private:
  double mu_;
  double sigma_;
};

/// Multi-datacenter model: nodes are assigned to datacenters; latency is a
/// per-(dc, dc) base plus a jitter fraction sampled exponentially. Same-DC
/// traffic uses the (dc, dc) diagonal (typically ~0.25-0.5 ms one-way).
class WanMatrixLatency : public LatencyModel {
 public:
  /// `base_us[i][j]` is the one-way base latency from DC i to DC j in
  /// microseconds. `jitter_fraction` scales an exponential jitter term:
  /// sample = base * (1 + Exp(jitter_fraction)).
  WanMatrixLatency(std::vector<std::vector<Time>> base_us,
                   double jitter_fraction = 0.05);

  /// Assigns `node` to datacenter `dc`. Every node that sends or receives
  /// traffic MUST be assigned: earlier versions silently defaulted unknown
  /// nodes to DC 0, which gave misconfigured topologies intra-DC latency
  /// instead of failing — DatacenterOf now aborts (EVC_CHECK) on a node
  /// never passed to AssignNode.
  void AssignNode(NodeId node, uint32_t dc);

  /// The datacenter of `node`. Aborts if `node` was never assigned.
  uint32_t DatacenterOf(NodeId node) const;
  /// True if `node` was explicitly assigned to a datacenter.
  bool IsAssigned(NodeId node) const;
  size_t datacenter_count() const { return base_us_.size(); }

  Time Sample(NodeId from, NodeId to, Rng& rng) override;

  /// A standard 5-datacenter topology (US-East, US-West, EU, Asia, AUS) with
  /// one-way latencies derived from public inter-region RTT tables.
  static std::vector<std::vector<Time>> FiveRegionBaseUs();
  /// A 3-datacenter topology (US-East, EU, Asia).
  static std::vector<std::vector<Time>> ThreeRegionBaseUs();

 private:
  static constexpr uint32_t kUnassigned = UINT32_MAX;

  std::vector<std::vector<Time>> base_us_;
  double jitter_fraction_;
  std::vector<uint32_t> node_dc_;  // indexed by NodeId; kUnassigned = never set
};

}  // namespace evc::sim

#endif  // EVC_SIM_LATENCY_H_
