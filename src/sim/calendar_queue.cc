#include "sim/calendar_queue.h"

#include <algorithm>

namespace evc::sim {

namespace {

// Initial wheel geometry. Width adapts at every refill; the bucket count
// doubles (up to kMaxBuckets) when windows pack too many events per bucket.
constexpr CalendarQueue::Time kInitialWidth = 64;  // microseconds
constexpr size_t kInitialBuckets = 256;
constexpr size_t kMaxBuckets = 32768;
constexpr CalendarQueue::Time kMaxWidth = 1000 * 1000;  // 1 sim-second

// Min-heap on (when, seq): std::push_heap builds a max-heap with respect to
// the comparator, so "greater than" puts the smallest key at front().
constexpr auto kHeapGreater = [](const auto& a, const auto& b) {
  if (a.when != b.when) return a.when > b.when;
  return a.seq > b.seq;
};

}  // namespace

CalendarQueue::CalendarQueue(Slab* slab)
    : slab_(slab), buckets_(kInitialBuckets), width_(kInitialWidth) {
  EVC_CHECK(slab_ != nullptr);
}

CalendarQueue::~CalendarQueue() = default;

uint32_t CalendarQueue::AllocSlot() {
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].live = true;
  return slot;
}

void CalendarQueue::FreeSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  s.live = false;
  s.cancelled = false;
  s.in_overflow = false;
  // Bump the generation so stale ids for this slot stop matching. gen 0 is
  // skipped on wraparound: it would make (gen << 32 | slot) collide with
  // small plain integers (and id 0 is the callers' "no event" sentinel).
  if (++s.gen == 0) s.gen = 1;
  free_slots_.push_back(slot);
}

CalendarQueue::EventId CalendarQueue::Push(Time when, Task fn) {
  EVC_CHECK(when >= last_pop_when_);
  const uint32_t slot = AllocSlot();
  Rec rec;
  rec.when = when;
  rec.seq = next_seq_++;
  rec.slot = slot;
  rec.fn = std::move(fn);
  const EventId id =
      (static_cast<EventId>(slots_[slot].gen) << 32) | slot;
  PushRec(std::move(rec));
  ++pending_;
  return id;
}

void CalendarQueue::PushRec(Rec rec) {
  if (rec.when >= wheel_start_ && rec.when < wheel_end()) {
    const size_t idx = static_cast<size_t>((rec.when - wheel_start_) / width_);
    // The cursor may have skipped this bucket while it was empty (e.g.
    // RunUntil drained past it); pull it back so the event is found.
    if (idx < cursor_) cursor_ = idx;
    BucketInsert(&buckets_[idx], std::move(rec));
    return;
  }
  // Far-future events wait here for their window's refill. Events scheduled
  // before the current window (possible after RunUntil advanced the wheel
  // past a drained stretch) also land here; FindNext compares the heap top
  // against the bucket cursor on every pop, so they still pop in order.
  slots_[rec.slot].in_overflow = true;
  overflow_.push_back(std::move(rec));
  std::push_heap(overflow_.begin(), overflow_.end(), kHeapGreater);
}

void CalendarQueue::BucketInsert(Bucket* bucket, Rec rec) {
  auto& recs = bucket->recs;
  if (recs.empty() || KeyLess(recs.back(), rec)) {
    recs.push_back(std::move(rec));  // common case: newest key in bucket
    return;
  }
  auto pos = std::upper_bound(recs.begin() + bucket->head, recs.end(), rec,
                              [](const Rec& a, const Rec& b) {
                                return KeyLess(a, b);
                              });
  recs.insert(pos, std::move(rec));
}

bool CalendarQueue::Cancel(EventId id) {
  const uint32_t slot = static_cast<uint32_t>(id & 0xffffffffu);
  const uint32_t gen = static_cast<uint32_t>(id >> 32);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (!s.live || s.cancelled || s.gen != gen) return false;
  s.cancelled = true;  // the record is reaped when it surfaces
  --pending_;
  if (s.in_overflow) {
    ++overflow_cancelled_;
    MaybeCompactOverflow();
  }
  return true;
}

void CalendarQueue::MaybeCompactOverflow() {
  if (overflow_.size() < 64 ||
      overflow_cancelled_ * 2 <= overflow_.size()) {
    return;
  }
  ++stats_.compactions;
  auto live_end = std::remove_if(
      overflow_.begin(), overflow_.end(), [this](Rec& rec) {
        if (!slots_[rec.slot].cancelled) return false;
        rec.fn.Reset();
        FreeSlot(rec.slot);
        return true;
      });
  overflow_.erase(live_end, overflow_.end());
  std::make_heap(overflow_.begin(), overflow_.end(), kHeapGreater);
  overflow_cancelled_ = 0;
}

bool CalendarQueue::FindNext() {
  for (;;) {
    // Prune cancelled records off the overflow top.
    while (!overflow_.empty() &&
           slots_[overflow_.front().slot].cancelled) {
      std::pop_heap(overflow_.begin(), overflow_.end(), kHeapGreater);
      Rec dead = std::move(overflow_.back());
      overflow_.pop_back();
      dead.fn.Reset();
      FreeSlot(dead.slot);
      --overflow_cancelled_;
    }
    // Position the cursor at the first live bucket record.
    const Rec* bucket_head = nullptr;
    while (cursor_ < buckets_.size()) {
      Bucket& b = buckets_[cursor_];
      while (b.head < b.recs.size() &&
             slots_[b.recs[b.head].slot].cancelled) {
        Rec& dead = b.recs[b.head];
        dead.fn.Reset();
        FreeSlot(dead.slot);
        ++b.head;
      }
      if (b.head < b.recs.size()) {
        bucket_head = &b.recs[b.head];
        break;
      }
      b.recs.clear();
      b.head = 0;
      ++cursor_;
    }

    if (bucket_head != nullptr) {
      next_from_overflow_ =
          !overflow_.empty() && KeyLess(overflow_.front(), *bucket_head);
      return true;
    }
    if (!overflow_.empty()) {
      Refill();
      continue;  // the refilled window now holds the minimum
    }
    return false;
  }
}

void CalendarQueue::Refill() {
  ++stats_.refills;

  // Adapt the bucket width to the previous window's observed event rate so
  // the wheel keeps averaging ~1 event per bucket. Pure function of the pop
  // history => identical across same-seed runs.
  if (popped_this_window_ > 0) {
    const Time spanned = last_pop_when_ - wheel_start_ + 1;
    Time new_width = spanned / static_cast<Time>(popped_this_window_);
    new_width = std::clamp<Time>(new_width, 1, kMaxWidth);
    if (new_width > width_ * 2 || new_width * 2 < width_) {
      width_ = new_width;
      ++stats_.width_changes;
    }
  }
  // Double the bucket count when the last window packed events too densely
  // for the width floor to fix (many same-instant events).
  if (moved_last_refill_ > 4 * buckets_.size() &&
      buckets_.size() < kMaxBuckets) {
    buckets_.resize(buckets_.size() * 2);
    ++stats_.grows;
  }

  wheel_start_ = overflow_.front().when;
  cursor_ = 0;
  popped_this_window_ = 0;
  const Time end = wheel_end();
  size_t moved = 0;
  // Heap pops ascend in (when, seq), so every BucketInsert is an append.
  while (!overflow_.empty() && overflow_.front().when < end) {
    std::pop_heap(overflow_.begin(), overflow_.end(), kHeapGreater);
    Rec rec = std::move(overflow_.back());
    overflow_.pop_back();
    if (slots_[rec.slot].cancelled) {
      rec.fn.Reset();
      FreeSlot(rec.slot);
      --overflow_cancelled_;
      continue;
    }
    slots_[rec.slot].in_overflow = false;
    const size_t idx = static_cast<size_t>((rec.when - wheel_start_) / width_);
    BucketInsert(&buckets_[idx], std::move(rec));
    ++moved;
  }
  moved_last_refill_ = moved;
}

bool CalendarQueue::PeekWhen(Time* when) {
  if (!FindNext()) return false;
  if (next_from_overflow_) {
    *when = overflow_.front().when;
  } else {
    const Bucket& b = buckets_[cursor_];
    *when = b.recs[b.head].when;
  }
  return true;
}

Task CalendarQueue::PopMin(Time* when) {
  const bool found = FindNext();
  EVC_CHECK(found);
  Rec rec;
  if (next_from_overflow_) {
    std::pop_heap(overflow_.begin(), overflow_.end(), kHeapGreater);
    rec = std::move(overflow_.back());
    overflow_.pop_back();
  } else {
    Bucket& b = buckets_[cursor_];
    rec = std::move(b.recs[b.head]);
    ++b.head;
    if (b.head == b.recs.size()) {
      b.recs.clear();
      b.head = 0;
    }
  }
  FreeSlot(rec.slot);
  --pending_;
  ++popped_this_window_;
  last_pop_when_ = rec.when;
  if (when != nullptr) *when = rec.when;
  return std::move(rec.fn);
}

}  // namespace evc::sim
