// Move-only, slab-backed message payload box.
//
// Message payloads used to ride std::any, which (a) heap-allocates for
// anything larger than one pointer — i.e. every protocol envelope — and
// (b) requires contents to be copyable, forcing copy-constructible
// envelopes even though every send transfers ownership. Payload replaces it
// on the simulated wire: construction placement-news the value into a slab
// block, moves are two pointer copies, and extraction (`Take<T>()`) moves
// the value out and returns the block to the slab.
//
// Copying is explicit: Clone() duplicates the boxed value (used only by the
// network's duplicate-delivery fault, which models a packet duplicated in
// flight). Type mismatches on Take/Peek are programming errors and abort
// via EVC_CHECK, like a failed any_cast used to throw.

#ifndef EVC_SIM_PAYLOAD_H_
#define EVC_SIM_PAYLOAD_H_

#include <type_traits>
#include <typeinfo>
#include <utility>

#include "common/slab.h"
#include "common/status.h"

namespace evc::sim {

class Payload {
 public:
  Payload() = default;

  /// True when V can be duplicated for the duplicate-delivery fault: either
  /// copy-constructible, or it provides `V Clone() const` (the RPC envelopes
  /// carry a nested Payload, which is move-only but clonable).
  template <typename V>
  static constexpr bool kCloneable =
      std::is_copy_constructible_v<V> ||
      requires(const V& v) { V(v.Clone()); };

  /// Boxes `value` into `slab`.
  template <typename T,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<T>, Payload>>>
  Payload(Slab* slab, T&& value) {
    using V = std::decay_t<T>;
    static_assert(alignof(V) <= Slab::kAlign,
                  "payload type over-aligned for the slab");
    static_assert(kCloneable<V>,
                  "payloads must be clonable (duplicate-delivery fault)");
    obj_ = slab->Alloc(sizeof(V));
    new (obj_) V(std::forward<T>(value));
    slab_ = slab;
    vtable_ = &VTableFor<V>::vtable;
  }

  Payload(Payload&& other) noexcept { MoveFrom(other); }
  Payload& operator=(Payload&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  Payload(const Payload&) = delete;
  Payload& operator=(const Payload&) = delete;
  ~Payload() { Reset(); }

  bool has_value() const { return obj_ != nullptr; }

  /// Moves the boxed T out and frees the box. Aborts on type mismatch or an
  /// empty payload.
  template <typename T>
  T Take() && {
    EVC_CHECK(obj_ != nullptr);
    EVC_CHECK(*vtable_->type == typeid(T));
    T* typed = static_cast<T*>(obj_);
    T out = std::move(*typed);
    typed->~T();
    slab_->Free(obj_, vtable_->size);
    obj_ = nullptr;
    return out;
  }

  /// Borrow the boxed T without unboxing. Aborts on type mismatch.
  template <typename T>
  const T& Peek() const {
    EVC_CHECK(obj_ != nullptr);
    EVC_CHECK(*vtable_->type == typeid(T));
    return *static_cast<const T*>(obj_);
  }

  template <typename T>
  bool holds() const {
    return obj_ != nullptr && *vtable_->type == typeid(T);
  }

  /// Deep-copies the boxed value into a new box on the same slab.
  Payload Clone() const {
    Payload copy;
    if (obj_ != nullptr) {
      copy.obj_ = vtable_->clone(obj_, slab_);
      copy.slab_ = slab_;
      copy.vtable_ = vtable_;
    }
    return copy;
  }

 private:
  struct VTable {
    const std::type_info* type;
    size_t size;
    void (*destroy)(void* obj, Slab* slab);
    void* (*clone)(const void* obj, Slab* slab);
  };

  template <typename V>
  struct VTableFor {
    static constexpr VTable vtable = {
        &typeid(V), sizeof(V),
        [](void* obj, Slab* slab) {
          static_cast<V*>(obj)->~V();
          slab->Free(obj, sizeof(V));
        },
        [](const void* obj, Slab* slab) -> void* {
          void* p = slab->Alloc(sizeof(V));
          if constexpr (std::is_copy_constructible_v<V>) {
            new (p) V(*static_cast<const V*>(obj));
          } else {
            new (p) V(static_cast<const V*>(obj)->Clone());
          }
          return p;
        }};
  };

  void MoveFrom(Payload& other) {
    obj_ = other.obj_;
    slab_ = other.slab_;
    vtable_ = other.vtable_;
    other.obj_ = nullptr;
  }

  void Reset() {
    if (obj_ != nullptr) {
      vtable_->destroy(obj_, slab_);
      obj_ = nullptr;
    }
  }

  void* obj_ = nullptr;
  Slab* slab_ = nullptr;
  const VTable* vtable_ = nullptr;
};

}  // namespace evc::sim

#endif  // EVC_SIM_PAYLOAD_H_
