// Simulated message-passing network with fault injection.
//
// Nodes are integer ids; components register per-message-type handlers on a
// node. Delivery latency comes from a pluggable LatencyModel; faults include
// probabilistic loss, duplication, node crashes, and named network
// partitions (the CAP experiments drive these directly).

#ifndef EVC_SIM_NETWORK_H_
#define EVC_SIM_NETWORK_H_

#include <any>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "sim/latency.h"
#include "sim/simulator.h"

namespace evc::sim {

/// A delivered message. `payload` is a std::any moved from the sender; the
/// handler any_casts it to the protocol's request struct. (The simulator
/// substitutes for the wire, so no byte serialization is required; modules
/// that need real serialization — the WAL, Merkle trees — use
/// common/encoding.h.)
struct Message {
  NodeId from = 0;
  NodeId to = 0;
  std::string type;
  std::any payload;
  Time sent_at = 0;
};

/// Handler invoked at delivery time on the destination node.
using MessageHandler = std::function<void(Message)>;

/// Simulated network. Single-threaded; owned by one Simulator.
class Network {
 public:
  Network(Simulator* sim, std::unique_ptr<LatencyModel> latency);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Allocates a new node id. Nodes start up (not crashed).
  NodeId AddNode();

  /// Number of nodes allocated so far.
  size_t node_count() const { return node_up_.size(); }

  /// Registers the handler for messages of `type` addressed to `node`.
  /// Overwrites any existing handler for that (node, type).
  void RegisterHandler(NodeId node, const std::string& type,
                       MessageHandler handler);

  /// Sends a message. The message is dropped (silently, as on a real
  /// network) if the sender is crashed, the destination is crashed at
  /// delivery time, the two nodes are partitioned at send or delivery time,
  /// or the loss coin comes up tails.
  void Send(NodeId from, NodeId to, std::string type, std::any payload);

  // --- fault injection -----------------------------------------------------

  /// Probability in [0,1] that any given transmission is lost.
  void set_loss_rate(double p) { loss_rate_ = p; }
  /// Probability in [0,1] that a delivered message is delivered twice.
  void set_duplicate_rate(double p) { duplicate_rate_ = p; }

  /// Crashes or restarts a node at the network layer only: a crashed node
  /// receives nothing, but volatile protocol state survives. Nemesis-driven
  /// crashes additionally notify Simulator CrashParticipants so components
  /// drop volatile state and recover from their journals (see sim/nemesis.h).
  void SetNodeUp(NodeId node, bool up);
  bool IsNodeUp(NodeId node) const;

  /// Splits the network into groups; messages across groups are dropped.
  /// Nodes not listed go to group 0. Replaces any previous partition.
  void Partition(const std::vector<std::vector<NodeId>>& groups);
  /// Removes any partition.
  void Heal();
  /// True if a and b can currently exchange messages (both up, same side).
  /// Deliberately blind to gray failures below: a slow or flaky link still
  /// "communicates" as far as this oracle is concerned — that gap is exactly
  /// what client-side failure detectors (src/resilience) must close.
  bool CanCommunicate(NodeId a, NodeId b) const;

  // --- gray failures (partial, non-binary faults) --------------------------
  //
  // The link knobs are symmetric (one value per unordered node pair); a
  // factor of 1.0 / rate of 0.0 / delay of 0 clears the entry.

  /// Multiplies sampled delivery latency on the a<->b link by `factor`.
  void SetLinkLatencyFactor(NodeId a, NodeId b, double factor);
  double LinkLatencyFactor(NodeId a, NodeId b) const;

  /// Probability in [0,1] that a transmission on the a<->b link is dropped,
  /// independent of the global loss rate.
  void SetLinkDropRate(NodeId a, NodeId b, double rate);
  double LinkDropRate(NodeId a, NodeId b) const;

  /// Extra processing delay added to every message into or out of `node`
  /// (a "limping" node: alive, answering, but slow).
  void SetNodeProcessingDelay(NodeId node, Time delay);
  Time NodeProcessingDelay(NodeId node) const;

  /// Clears all slow-link, flaky-link, and slow-node state.
  void ClearGrayFaults();
  bool HasGrayFaults() const {
    return !link_latency_factor_.empty() || !link_drop_rate_.empty() ||
           !node_delay_.empty();
  }

  // --- introspection -------------------------------------------------------

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_delivered() const { return messages_delivered_; }
  uint64_t messages_dropped() const { return messages_dropped_; }
  /// Total payload-agnostic message count by type (for bandwidth-ish
  /// accounting in experiments).
  const std::unordered_map<std::string, uint64_t>& sent_by_type() const {
    return sent_by_type_;
  }

  Simulator* simulator() { return sim_; }
  LatencyModel* latency_model() { return latency_.get(); }

 private:
  void Deliver(Message msg);
  uint32_t GroupOf(NodeId node) const;
  static uint64_t LinkKey(NodeId a, NodeId b);

  // Cached global metrics instruments (stable references; see obs/metrics.h).
  struct NetMetrics {
    obs::Counter* sent = nullptr;
    obs::Counter* delivered = nullptr;
    obs::Counter* duplicated = nullptr;
    obs::Counter* drop_crashed = nullptr;
    obs::Counter* drop_partition = nullptr;
    obs::Counter* drop_loss = nullptr;
    obs::Counter* drop_flaky = nullptr;
    obs::Counter* drop_no_handler = nullptr;
    Histogram* delivery_latency_us = nullptr;  // evc::Histogram (common/stats.h)
  };

  Simulator* sim_;
  NetMetrics metrics_;
  std::unique_ptr<LatencyModel> latency_;
  Rng rng_;
  std::vector<bool> node_up_;
  std::vector<uint32_t> node_group_;
  bool partitioned_ = false;
  double loss_rate_ = 0.0;
  double duplicate_rate_ = 0.0;
  // Gray-failure state, keyed by unordered node pair (LinkKey) or node.
  std::unordered_map<uint64_t, double> link_latency_factor_;
  std::unordered_map<uint64_t, double> link_drop_rate_;
  std::unordered_map<NodeId, Time> node_delay_;
  uint64_t messages_sent_ = 0;
  uint64_t messages_delivered_ = 0;
  uint64_t messages_dropped_ = 0;
  std::unordered_map<std::string, uint64_t> sent_by_type_;
  // handlers_[node][type]
  std::vector<std::unordered_map<std::string, MessageHandler>> handlers_;
};

}  // namespace evc::sim

#endif  // EVC_SIM_NETWORK_H_
