// Simulated message-passing network with fault injection.
//
// Nodes are integer ids; components register per-message-type handlers on a
// node. Delivery latency comes from a pluggable LatencyModel; faults include
// probabilistic loss, duplication, node crashes, and named network
// partitions (the CAP experiments drive these directly).
//
// Hot-path design: message types are interned to dense MsgType ids at
// registration time, so sends and deliveries index flat vectors instead of
// hashing strings; payloads ride slab-backed move-only Payload boxes
// (sim/payload.h) instead of std::any, so a send transfers ownership with
// two pointer copies and the only deep copy left is the duplicate-delivery
// fault (an in-flight packet genuinely duplicated on the wire).

#ifndef EVC_SIM_NETWORK_H_
#define EVC_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/interner.h"
#include "common/rng.h"
#include "sim/latency.h"
#include "sim/payload.h"
#include "sim/simulator.h"

namespace evc::sim {

/// Dense id for an interned message-type name; see Network::InternType.
using MsgType = KeyId;

/// A delivered message. `payload` is a slab-backed box moved from the
/// sender; the handler Takes it as the protocol's request struct. (The
/// simulator substitutes for the wire, so no byte serialization is
/// required; modules that need real serialization — the WAL, Merkle trees —
/// use common/encoding.h.)
struct Message {
  NodeId from = 0;
  NodeId to = 0;
  MsgType type = kInvalidKeyId;
  Payload payload;
  Time sent_at = 0;
};

/// Handler invoked at delivery time on the destination node.
using MessageHandler = std::function<void(Message)>;

/// Simulated network. Single-threaded; owned by one Simulator.
class Network {
 public:
  Network(Simulator* sim, std::unique_ptr<LatencyModel> latency);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Allocates a new node id. Nodes start up (not crashed).
  NodeId AddNode();

  /// Number of nodes allocated so far.
  size_t node_count() const { return node_up_.size(); }

  /// Interns a message-type name, returning its dense id. Deterministic for
  /// a fixed registration order (ids assigned in first-intern order).
  /// Components intern each type once at setup and send by id.
  MsgType InternType(std::string_view name) {
    return type_interner_.Intern(name);
  }
  /// The canonical name for an interned type (diagnostics, exports).
  std::string_view TypeName(MsgType type) const {
    return type_interner_.NameOf(type);
  }

  /// Registers the handler for messages of `type` addressed to `node`.
  /// Overwrites any existing handler for that (node, type).
  void RegisterHandler(NodeId node, MsgType type, MessageHandler handler);
  /// Convenience: interns `type` then registers.
  void RegisterHandler(NodeId node, std::string_view type,
                       MessageHandler handler) {
    RegisterHandler(node, InternType(type), std::move(handler));
  }

  /// Sends a message. The message is dropped (silently, as on a real
  /// network) if the sender is crashed, the destination is crashed at
  /// delivery time, the two nodes are partitioned at send or delivery time,
  /// or the loss coin comes up tails.
  void Send(NodeId from, NodeId to, MsgType type, Payload payload);

  /// Convenience: boxes `value` into the simulator's slab and sends it.
  template <typename T,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<T>, Payload>>>
  void Send(NodeId from, NodeId to, MsgType type, T&& value) {
    Send(from, to, type, Payload(&sim_->slab(), std::forward<T>(value)));
  }

  /// Convenience (tests, cold paths): interns `type` on every call, then
  /// sends. Hot paths intern once at setup and use the MsgType overloads.
  template <typename T>
  void Send(NodeId from, NodeId to, std::string_view type, T&& value) {
    Send(from, to, InternType(type), std::forward<T>(value));
  }

  // --- fault injection -----------------------------------------------------

  /// Probability in [0,1] that any given transmission is lost.
  void set_loss_rate(double p) { loss_rate_ = p; }
  /// Probability in [0,1] that a delivered message is delivered twice.
  void set_duplicate_rate(double p) { duplicate_rate_ = p; }

  /// Crashes or restarts a node at the network layer only: a crashed node
  /// receives nothing, but volatile protocol state survives. Nemesis-driven
  /// crashes additionally notify Simulator CrashParticipants so components
  /// drop volatile state and recover from their journals (see sim/nemesis.h).
  void SetNodeUp(NodeId node, bool up);
  bool IsNodeUp(NodeId node) const;

  /// Splits the network into groups; messages across groups are dropped.
  /// Nodes not listed go to group 0. Replaces any previous partition.
  void Partition(const std::vector<std::vector<NodeId>>& groups);
  /// Removes any partition.
  void Heal();
  /// True if a and b can currently exchange messages (both up, same side).
  /// Deliberately blind to gray failures below: a slow or flaky link still
  /// "communicates" as far as this oracle is concerned — that gap is exactly
  /// what client-side failure detectors (src/resilience) must close.
  bool CanCommunicate(NodeId a, NodeId b) const;

  // --- gray failures (partial, non-binary faults) --------------------------
  //
  // The link knobs are symmetric (one value per unordered node pair); a
  // factor of 1.0 / rate of 0.0 / delay of 0 clears the entry.

  /// Multiplies sampled delivery latency on the a<->b link by `factor`.
  void SetLinkLatencyFactor(NodeId a, NodeId b, double factor);
  double LinkLatencyFactor(NodeId a, NodeId b) const;

  /// Probability in [0,1] that a transmission on the a<->b link is dropped,
  /// independent of the global loss rate.
  void SetLinkDropRate(NodeId a, NodeId b, double rate);
  double LinkDropRate(NodeId a, NodeId b) const;

  /// Extra processing delay added to every message into or out of `node`
  /// (a "limping" node: alive, answering, but slow).
  void SetNodeProcessingDelay(NodeId node, Time delay);
  Time NodeProcessingDelay(NodeId node) const;

  /// Clears all slow-link, flaky-link, and slow-node state.
  void ClearGrayFaults();
  bool HasGrayFaults() const {
    return !link_latency_factor_.empty() || !link_drop_rate_.empty() ||
           !node_delay_.empty();
  }

  // --- introspection -------------------------------------------------------

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_delivered() const { return messages_delivered_; }
  uint64_t messages_dropped() const { return messages_dropped_; }
  /// Messages sent of one interned type (payload-agnostic, for
  /// bandwidth-ish accounting in experiments). Index with an id from
  /// InternType; ids ≥ the table size have sent nothing.
  uint64_t sent_of_type(MsgType type) const {
    return type < sent_by_type_.size() ? sent_by_type_[type] : 0;
  }
  /// Number of interned message types (the valid sent_of_type id range).
  size_t type_count() const { return type_interner_.size(); }

  Simulator* simulator() { return sim_; }
  LatencyModel* latency_model() { return latency_.get(); }

 private:
  void Deliver(Message msg);
  uint32_t GroupOf(NodeId node) const;
  static uint64_t LinkKey(NodeId a, NodeId b);

  // Cached global metrics instruments (stable references; see obs/metrics.h).
  struct NetMetrics {
    obs::Counter* sent = nullptr;
    obs::Counter* delivered = nullptr;
    obs::Counter* duplicated = nullptr;
    obs::Counter* drop_crashed = nullptr;
    obs::Counter* drop_partition = nullptr;
    obs::Counter* drop_loss = nullptr;
    obs::Counter* drop_flaky = nullptr;
    obs::Counter* drop_no_handler = nullptr;
    Histogram* delivery_latency_us = nullptr;  // evc::Histogram (common/stats.h)
  };

  Simulator* sim_;
  NetMetrics metrics_;
  std::unique_ptr<LatencyModel> latency_;
  Rng rng_;
  std::vector<bool> node_up_;
  std::vector<uint32_t> node_group_;
  bool partitioned_ = false;
  double loss_rate_ = 0.0;
  double duplicate_rate_ = 0.0;
  // Gray-failure state, keyed by unordered node pair (LinkKey) or node.
  // Lookup-only maps (never iterated beyond empty()/clear()).
  std::unordered_map<uint64_t, double> link_latency_factor_;
  std::unordered_map<uint64_t, double> link_drop_rate_;
  std::unordered_map<NodeId, Time> node_delay_;
  uint64_t messages_sent_ = 0;
  uint64_t messages_delivered_ = 0;
  uint64_t messages_dropped_ = 0;
  KeyInterner type_interner_;
  std::vector<uint64_t> sent_by_type_;  // indexed by MsgType
  // handlers_[node][type]; inner vector indexed by MsgType, grown on
  // registration. Empty std::function = no handler.
  std::vector<std::vector<MessageHandler>> handlers_;
  // Cached per-node "net.sent"/"net.delivered" counters, indexed by node
  // (the seed did a registry map lookup per message).
  std::vector<obs::Counter*> node_sent_;
  std::vector<obs::Counter*> node_delivered_;
};

}  // namespace evc::sim

#endif  // EVC_SIM_NETWORK_H_
