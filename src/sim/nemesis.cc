#include "sim/nemesis.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace evc::sim {

const char* ToString(PartitionStyle style) {
  switch (style) {
    case PartitionStyle::kMajorityMinority: return "majority-minority";
    case PartitionStyle::kRingSplit: return "ring-split";
    case PartitionStyle::kIsolateOne: return "isolate-one";
    case PartitionStyle::kRandomBisect: return "random-bisect";
  }
  return "?";
}

namespace {

std::string FormatTime(Time t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.3fs", static_cast<double>(t) / kSecond);
  return buf;
}

std::string FormatGroups(const std::vector<std::vector<NodeId>>& groups) {
  std::string out = "[";
  for (size_t g = 0; g < groups.size(); ++g) {
    if (g > 0) out += " | ";
    for (size_t i = 0; i < groups[g].size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(groups[g][i]);
    }
  }
  out += "]";
  return out;
}

}  // namespace

std::string FaultAction::ToString() const {
  std::string out = FormatTime(at) + " ";
  switch (kind) {
    case Kind::kPartition:
      out += "partition " + FormatGroups(groups);
      break;
    case Kind::kRandomPartition:
      out += std::string("random-partition(") + sim::ToString(style) + ")";
      break;
    case Kind::kHeal:
      out += "heal";
      break;
    case Kind::kCrash:
      out += "crash node " + std::to_string(node);
      break;
    case Kind::kRestart:
      out += "restart node " + std::to_string(node);
      break;
    case Kind::kRandomCrash:
      out += "random-crash";
      break;
    case Kind::kRandomRestart:
      out += "random-restart";
      break;
    case Kind::kLossRate: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "loss-rate %.3f", rate);
      out += buf;
      break;
    }
    case Kind::kDuplicateRate: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "duplicate-rate %.3f", rate);
      out += buf;
      break;
    }
    case Kind::kSlowLink: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "slow-link %u<->%u x%.2f", node, node_b,
                    factor);
      out += buf;
      break;
    }
    case Kind::kFlakyLink: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "flaky-link %u<->%u drop %.3f", node,
                    node_b, rate);
      out += buf;
      break;
    }
    case Kind::kSlowNode: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "slow-node %u +%.1fms", node,
                    static_cast<double>(delay) / kMillisecond);
      out += buf;
      break;
    }
    case Kind::kRandomSlowLink: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "random-slow-link x%.2f", factor);
      out += buf;
      break;
    }
    case Kind::kRandomFlakyLink: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "random-flaky-link drop %.3f", rate);
      out += buf;
      break;
    }
    case Kind::kRandomSlowNode: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "random-slow-node +%.1fms",
                    static_cast<double>(delay) / kMillisecond);
      out += buf;
      break;
    }
    case Kind::kGrayRecover:
      out += "gray-recover";
      break;
    case Kind::kHealAll:
      out += "heal-all";
      break;
    case Kind::kAddNode:
      out += "add-node";
      break;
    case Kind::kRemoveNode:
      out += "remove-node";
      break;
    case Kind::kRollingRestart: {
      char buf[80];
      std::snprintf(buf, sizeof(buf),
                    "rolling-restart stagger %.1fs hold %.1fs",
                    static_cast<double>(delay) / kSecond,
                    static_cast<double>(hold) / kSecond);
      out += buf;
      break;
    }
    case Kind::kFlashCrowd: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "flash-crowd x%.2f", factor);
      out += buf;
      break;
    }
    case Kind::kLoadSpike: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "load-spike x%.2f + hot-key shift",
                    factor);
      out += buf;
      break;
    }
  }
  return out;
}

FaultPlan& FaultPlan::Push(FaultAction action) {
  actions_.push_back(std::move(action));
  return *this;
}

FaultPlan& FaultPlan::PartitionAt(Time at,
                                  std::vector<std::vector<NodeId>> groups) {
  FaultAction a;
  a.kind = FaultAction::Kind::kPartition;
  a.at = at;
  a.groups = std::move(groups);
  return Push(std::move(a));
}

FaultPlan& FaultPlan::RandomPartitionAt(Time at, PartitionStyle style) {
  FaultAction a;
  a.kind = FaultAction::Kind::kRandomPartition;
  a.at = at;
  a.style = style;
  return Push(std::move(a));
}

FaultPlan& FaultPlan::HealAt(Time at) {
  FaultAction a;
  a.kind = FaultAction::Kind::kHeal;
  a.at = at;
  return Push(std::move(a));
}

FaultPlan& FaultPlan::CrashAt(Time at, NodeId node) {
  FaultAction a;
  a.kind = FaultAction::Kind::kCrash;
  a.at = at;
  a.node = node;
  return Push(std::move(a));
}

FaultPlan& FaultPlan::RestartAt(Time at, NodeId node) {
  FaultAction a;
  a.kind = FaultAction::Kind::kRestart;
  a.at = at;
  a.node = node;
  return Push(std::move(a));
}

FaultPlan& FaultPlan::RandomCrashAt(Time at) {
  FaultAction a;
  a.kind = FaultAction::Kind::kRandomCrash;
  a.at = at;
  return Push(std::move(a));
}

FaultPlan& FaultPlan::RandomRestartAt(Time at) {
  FaultAction a;
  a.kind = FaultAction::Kind::kRandomRestart;
  a.at = at;
  return Push(std::move(a));
}

FaultPlan& FaultPlan::LossRateAt(Time at, double rate) {
  FaultAction a;
  a.kind = FaultAction::Kind::kLossRate;
  a.at = at;
  a.rate = rate;
  return Push(std::move(a));
}

FaultPlan& FaultPlan::DuplicateRateAt(Time at, double rate) {
  FaultAction a;
  a.kind = FaultAction::Kind::kDuplicateRate;
  a.at = at;
  a.rate = rate;
  return Push(std::move(a));
}

FaultPlan& FaultPlan::SlowLinkAt(Time at, NodeId a, NodeId b, double factor) {
  FaultAction action;
  action.kind = FaultAction::Kind::kSlowLink;
  action.at = at;
  action.node = a;
  action.node_b = b;
  action.factor = factor;
  return Push(std::move(action));
}

FaultPlan& FaultPlan::FlakyLinkAt(Time at, NodeId a, NodeId b,
                                  double drop_rate) {
  FaultAction action;
  action.kind = FaultAction::Kind::kFlakyLink;
  action.at = at;
  action.node = a;
  action.node_b = b;
  action.rate = drop_rate;
  return Push(std::move(action));
}

FaultPlan& FaultPlan::SlowNodeAt(Time at, NodeId node, Time delay) {
  FaultAction action;
  action.kind = FaultAction::Kind::kSlowNode;
  action.at = at;
  action.node = node;
  action.delay = delay;
  return Push(std::move(action));
}

FaultPlan& FaultPlan::RandomSlowLinkAt(Time at, double factor) {
  FaultAction action;
  action.kind = FaultAction::Kind::kRandomSlowLink;
  action.at = at;
  action.factor = factor;
  return Push(std::move(action));
}

FaultPlan& FaultPlan::RandomFlakyLinkAt(Time at, double drop_rate) {
  FaultAction action;
  action.kind = FaultAction::Kind::kRandomFlakyLink;
  action.at = at;
  action.rate = drop_rate;
  return Push(std::move(action));
}

FaultPlan& FaultPlan::RandomSlowNodeAt(Time at, Time delay) {
  FaultAction action;
  action.kind = FaultAction::Kind::kRandomSlowNode;
  action.at = at;
  action.delay = delay;
  return Push(std::move(action));
}

FaultPlan& FaultPlan::GrayRecoverAt(Time at) {
  FaultAction action;
  action.kind = FaultAction::Kind::kGrayRecover;
  action.at = at;
  return Push(std::move(action));
}

FaultPlan& FaultPlan::HealAllAt(Time at) {
  FaultAction a;
  a.kind = FaultAction::Kind::kHealAll;
  a.at = at;
  return Push(std::move(a));
}

FaultPlan& FaultPlan::AddNodeAt(Time at) {
  FaultAction a;
  a.kind = FaultAction::Kind::kAddNode;
  a.at = at;
  return Push(std::move(a));
}

FaultPlan& FaultPlan::RemoveNodeAt(Time at) {
  FaultAction a;
  a.kind = FaultAction::Kind::kRemoveNode;
  a.at = at;
  return Push(std::move(a));
}

FaultPlan& FaultPlan::FlashCrowdAt(Time at, double factor) {
  FaultAction a;
  a.kind = FaultAction::Kind::kFlashCrowd;
  a.at = at;
  a.factor = factor;
  return Push(std::move(a));
}

FaultPlan& FaultPlan::LoadSpikeAt(Time at, double factor) {
  FaultAction a;
  a.kind = FaultAction::Kind::kLoadSpike;
  a.at = at;
  a.factor = factor;
  return Push(std::move(a));
}

FaultPlan& FaultPlan::RollingRestartAt(Time at, Time stagger, Time hold) {
  FaultAction a;
  a.kind = FaultAction::Kind::kRollingRestart;
  a.at = at;
  a.delay = stagger;
  a.hold = hold;
  return Push(std::move(a));
}

std::string FaultPlan::ToString() const {
  std::vector<const FaultAction*> sorted;
  sorted.reserve(actions_.size());
  for (const FaultAction& a : actions_) sorted.push_back(&a);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FaultAction* a, const FaultAction* b) {
                     return a->at < b->at;
                   });
  std::string out;
  for (const FaultAction* a : sorted) {
    out += a->ToString();
    out += "\n";
  }
  return out;
}

Nemesis::Nemesis(Network* network, std::vector<NodeId> targets, uint64_t seed)
    : net_(network), targets_(std::move(targets)), rng_(seed) {
  EVC_CHECK(net_ != nullptr);
  EVC_CHECK(!targets_.empty());
  gray_pool_ = targets_;
}

void Nemesis::SetGrayTargets(const std::vector<NodeId>& gray_targets) {
  gray_pool_ = targets_;
  for (NodeId node : gray_targets) {
    if (std::find(gray_pool_.begin(), gray_pool_.end(), node) ==
        gray_pool_.end()) {
      gray_pool_.push_back(node);
    }
  }
}

FaultPlan Nemesis::GeneratePlan(const NemesisScheduleOptions& options) {
  FaultPlan plan;
  const Time end = options.duration;

  enum Family {
    kPartitionF, kCrashF, kLossF, kDupF,
    kSlowLinkF, kFlakyLinkF, kSlowNodeF,
    kMembershipF, kRollingF, kLoadF
  };
  // Gray and membership families are appended after the historical ones, so
  // schedules drawn with the default toggles consume the rng stream exactly
  // as before.
  std::vector<Family> families;
  if (options.allow_partitions) families.push_back(kPartitionF);
  if (options.allow_crashes && options.max_concurrent_crashes > 0) {
    families.push_back(kCrashF);
  }
  if (options.allow_loss) families.push_back(kLossF);
  if (options.allow_duplication) families.push_back(kDupF);
  if (options.allow_slow_links && gray_pool_.size() >= 2) {
    families.push_back(kSlowLinkF);
  }
  if (options.allow_flaky_links && gray_pool_.size() >= 2) {
    families.push_back(kFlakyLinkF);
  }
  if (options.allow_slow_nodes) families.push_back(kSlowNodeF);
  if (options.allow_membership && options.max_membership_ops > 0) {
    families.push_back(kMembershipF);
  }
  if (options.allow_rolling_restart) families.push_back(kRollingF);
  if (options.allow_load_spikes) families.push_back(kLoadF);
  int membership_ops = 0;
  if (families.empty()) {
    if (options.heal_at_end) plan.HealAllAt(end);
    return plan;
  }

  // Walk time forward, drawing fault onsets from an exponential arrival
  // process and pairing each with its recovery action. `crash_ends` tracks
  // symbolic crash intervals so the plan never exceeds the concurrency cap.
  std::vector<Time> crash_ends;
  Time t = 0;
  for (;;) {
    t += std::max<Time>(
        kMillisecond,
        static_cast<Time>(rng_.NextExponential(
            static_cast<double>(options.mean_fault_interval))));
    if (t >= end) break;
    const Time hold = std::max<Time>(
        50 * kMillisecond,
        static_cast<Time>(rng_.NextExponential(
            static_cast<double>(options.mean_fault_duration))));
    const Time recover_at = std::min(t + hold, end);

    Family family = families[rng_.NextBounded(families.size())];
    if (family == kCrashF) {
      std::erase_if(crash_ends, [t](Time e) { return e <= t; });
      if (static_cast<int>(crash_ends.size()) >=
          options.max_concurrent_crashes) {
        family = families[rng_.NextBounded(families.size())];
        if (family == kCrashF) continue;  // skip this onset entirely
      }
    }

    switch (family) {
      case kPartitionF: {
        constexpr PartitionStyle kStyles[] = {
            PartitionStyle::kMajorityMinority, PartitionStyle::kRingSplit,
            PartitionStyle::kIsolateOne, PartitionStyle::kRandomBisect};
        plan.RandomPartitionAt(t, kStyles[rng_.NextBounded(4)]);
        plan.HealAt(recover_at);
        break;
      }
      case kCrashF:
        plan.RandomCrashAt(t);
        plan.RandomRestartAt(recover_at);
        crash_ends.push_back(recover_at);
        break;
      case kLossF:
        plan.LossRateAt(t, rng_.NextDouble() * options.max_loss_rate);
        plan.LossRateAt(recover_at, 0.0);
        break;
      case kDupF:
        plan.DuplicateRateAt(t,
                             rng_.NextDouble() * options.max_duplicate_rate);
        plan.DuplicateRateAt(recover_at, 0.0);
        break;
      case kSlowLinkF:
        // Factor in [2, max]: a x1 slow link would be a no-op draw.
        plan.RandomSlowLinkAt(
            t, 2.0 + rng_.NextDouble() * (options.max_latency_factor - 2.0));
        plan.GrayRecoverAt(recover_at);
        break;
      case kFlakyLinkF:
        // Rate in [0.2, max]: low rates are indistinguishable from loss.
        plan.RandomFlakyLinkAt(
            t, 0.2 + rng_.NextDouble() * (options.max_flaky_drop_rate - 0.2));
        plan.GrayRecoverAt(recover_at);
        break;
      case kSlowNodeF:
        plan.RandomSlowNodeAt(
            t, std::max<Time>(kMillisecond,
                              static_cast<Time>(
                                  rng_.NextDouble() *
                                  static_cast<double>(options.max_node_delay))));
        plan.GrayRecoverAt(recover_at);
        break;
      case kMembershipF:
        // No paired recovery: a membership change is permanent by nature
        // (the commit IS the recovery). Skip the draw past the cap rather
        // than removing the family, to keep the draw table static.
        if (membership_ops >= options.max_membership_ops) break;
        ++membership_ops;
        if (rng_.NextBool(0.5)) {
          plan.AddNodeAt(t);
        } else {
          plan.RemoveNodeAt(t);
        }
        break;
      case kRollingF:
        plan.RollingRestartAt(t, options.rolling_stagger,
                              options.rolling_hold);
        break;
      case kLoadF: {
        // Factor in [2, max]: spikes below 2x are routine traffic noise.
        const double factor =
            2.0 + rng_.NextDouble() * (options.max_load_factor - 2.0);
        if (rng_.NextBool(0.5)) {
          plan.LoadSpikeAt(t, factor);
        } else {
          plan.FlashCrowdAt(t, factor);
        }
        // The paired recovery restores nominal load: the spike ends, and
        // whether the system also recovers is exactly what the metastable-
        // failure checks are probing.
        plan.FlashCrowdAt(recover_at, 1.0);
        break;
      }
    }
  }
  if (options.heal_at_end) plan.HealAllAt(end);
  return plan;
}

void Nemesis::Execute(const FaultPlan& plan) {
  Simulator* sim = net_->simulator();
  const Time base = sim->Now();
  // Stable-sort by fire time so a heal scheduled at the same instant as the
  // next fault applies in plan order.
  std::vector<FaultAction> sorted = plan.actions();
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FaultAction& a, const FaultAction& b) {
                     return a.at < b.at;
                   });
  for (FaultAction& action : sorted) {
    FaultAction scheduled = std::move(action);
    sim->ScheduleAt(base + scheduled.at,
                    [this, a = std::move(scheduled)] { Apply(a); });
  }
}

void Nemesis::Note(const std::string& what) {
  log_.push_back(FormatTime(net_->simulator()->Now()) + " " + what);
}

void Nemesis::ApplyRandomPartition(PartitionStyle style) {
  const size_t n = targets_.size();
  std::vector<NodeId> cut;
  switch (style) {
    case PartitionStyle::kMajorityMinority: {
      // A random minority: 1 .. floor((n-1)/2) targets.
      const size_t max_cut = std::max<size_t>(1, (n - 1) / 2);
      const size_t k = 1 + rng_.NextBounded(max_cut);
      std::vector<NodeId> pool = targets_;
      for (size_t i = 0; i < k; ++i) {
        const size_t j = i + rng_.NextBounded(pool.size() - i);
        std::swap(pool[i], pool[j]);
        cut.push_back(pool[i]);
      }
      break;
    }
    case PartitionStyle::kRingSplit: {
      // A contiguous run of 1..n-1 targets in ring order.
      const size_t k = 1 + rng_.NextBounded(n - 1);
      const size_t start = rng_.NextBounded(n);
      for (size_t i = 0; i < k; ++i) cut.push_back(targets_[(start + i) % n]);
      break;
    }
    case PartitionStyle::kIsolateOne:
      cut.push_back(targets_[rng_.NextBounded(n)]);
      break;
    case PartitionStyle::kRandomBisect:
      for (NodeId node : targets_) {
        if (rng_.NextBool(0.5)) cut.push_back(node);
      }
      break;
  }
  if (cut.empty() || cut.size() == n) {
    // Degenerate draw (everyone or no one on the cut side): treat as heal
    // so the action is still deterministic and visible in the log.
    net_->Heal();
    ++stats_.heals;
    Note("partition degenerated to heal");
    return;
  }
  // Only the cut side is listed: every unlisted node (remaining targets and
  // all client nodes) stays together in group 0.
  net_->Partition({cut});
  ++stats_.partitions;
  Note(std::string("partition(") + sim::ToString(style) + ") cut " +
       FormatGroups({cut}));
}

void Nemesis::Apply(const FaultAction& action) {
  using Kind = FaultAction::Kind;
  switch (action.kind) {
    case Kind::kPartition:
      net_->Partition(action.groups);
      ++stats_.partitions;
      Note("partition " + FormatGroups(action.groups));
      break;
    case Kind::kRandomPartition:
      ApplyRandomPartition(action.style);
      break;
    case Kind::kHeal:
      net_->Heal();
      ++stats_.heals;
      Note("heal");
      break;
    case Kind::kCrash: {
      // A nemesis crash is a power loss: volatile state goes with the node.
      // Notify participants only on the up->down edge so a repeated crash of
      // an already-down node cannot double-drop state.
      const bool was_up = net_->IsNodeUp(action.node);
      net_->SetNodeUp(action.node, false);
      if (was_up) net_->simulator()->NotifyCrash(action.node);
      if (std::find(crashed_.begin(), crashed_.end(), action.node) ==
          crashed_.end()) {
        crashed_.push_back(action.node);
      }
      ++stats_.crashes;
      Note("crash node " + std::to_string(action.node));
      break;
    }
    case Kind::kRestart:
      // Recover from durable state before the network marks the node up, so
      // no message can observe half-recovered state.
      if (!net_->IsNodeUp(action.node)) {
        net_->simulator()->NotifyRestart(action.node);
      }
      net_->SetNodeUp(action.node, true);
      std::erase(crashed_, action.node);
      ++stats_.restarts;
      Note("restart node " + std::to_string(action.node));
      break;
    case Kind::kRandomCrash: {
      std::vector<NodeId> up;
      for (NodeId node : targets_) {
        if (net_->IsNodeUp(node)) up.push_back(node);
      }
      if (up.empty()) {
        ++stats_.skipped;
        Note("random-crash skipped (no target up)");
        break;
      }
      const NodeId victim = up[rng_.NextBounded(up.size())];
      net_->SetNodeUp(victim, false);
      net_->simulator()->NotifyCrash(victim);
      crashed_.push_back(victim);
      ++stats_.crashes;
      Note("crash node " + std::to_string(victim) + " (random)");
      break;
    }
    case Kind::kRandomRestart: {
      if (crashed_.empty()) {
        ++stats_.skipped;
        Note("random-restart skipped (nothing crashed)");
        break;
      }
      const NodeId node = crashed_.front();
      crashed_.pop_front();
      net_->simulator()->NotifyRestart(node);
      net_->SetNodeUp(node, true);
      ++stats_.restarts;
      Note("restart node " + std::to_string(node));
      break;
    }
    case Kind::kLossRate: {
      net_->set_loss_rate(action.rate);
      ++stats_.rate_changes;
      char buf[48];
      std::snprintf(buf, sizeof(buf), "loss-rate %.3f", action.rate);
      Note(buf);
      break;
    }
    case Kind::kDuplicateRate: {
      net_->set_duplicate_rate(action.rate);
      ++stats_.rate_changes;
      char buf[48];
      std::snprintf(buf, sizeof(buf), "duplicate-rate %.3f", action.rate);
      Note(buf);
      break;
    }
    case Kind::kSlowLink:
    case Kind::kFlakyLink:
    case Kind::kSlowNode:
    case Kind::kRandomSlowLink:
    case Kind::kRandomFlakyLink:
    case Kind::kRandomSlowNode:
      ApplyGray(action);
      break;
    case Kind::kGrayRecover: {
      if (gray_active_.empty()) {
        ++stats_.skipped;
        Note("gray-recover skipped (no active gray fault)");
        break;
      }
      const GrayFault fault = gray_active_.front();
      gray_active_.pop_front();
      RecoverGray(fault);
      break;
    }
    case Kind::kHealAll:
      HealAll();
      break;
    case Kind::kAddNode: {
      if (actuator_ == nullptr || !actuator_->AddNode()) {
        ++stats_.skipped;
        Note("add-node skipped (no actuator or reconfig in flight)");
        break;
      }
      ++stats_.membership_ops;
      Note("add-node proposed");
      break;
    }
    case Kind::kRemoveNode: {
      std::vector<NodeId> pool =
          actuator_ == nullptr ? std::vector<NodeId>{}
                               : actuator_->RemovableNodes();
      if (pool.empty()) {
        ++stats_.skipped;
        Note("remove-node skipped (no removable member)");
        break;
      }
      const NodeId victim = pool[rng_.NextBounded(pool.size())];
      if (!actuator_->RemoveNode(victim)) {
        ++stats_.skipped;
        Note("remove-node skipped (proposal refused)");
        break;
      }
      ++stats_.membership_ops;
      Note("remove-node " + std::to_string(victim) + " proposed");
      break;
    }
    case Kind::kRollingRestart: {
      // Crash + restart every currently-up target, staggered: target i goes
      // down at i*stagger and returns `hold` later. Reuses the kCrash /
      // kRestart bookkeeping so crash participants and the crashed_ queue
      // see ordinary crashes.
      Simulator* sim = net_->simulator();
      Time offset = 0;
      int waved = 0;
      for (NodeId node : targets_) {
        if (!net_->IsNodeUp(node)) continue;
        sim->ScheduleAfter(offset, [this, node] {
          FaultAction crash;
          crash.kind = Kind::kCrash;
          crash.node = node;
          Apply(crash);
        });
        sim->ScheduleAfter(offset + action.hold, [this, node] {
          FaultAction restart;
          restart.kind = Kind::kRestart;
          restart.node = node;
          Apply(restart);
        });
        offset += action.delay;
        ++waved;
      }
      if (waved == 0) {
        ++stats_.skipped;
        Note("rolling-restart skipped (no target up)");
        break;
      }
      ++stats_.rolling_restarts;
      Note("rolling-restart of " + std::to_string(waved) + " targets");
      break;
    }
    case Kind::kFlashCrowd:
    case Kind::kLoadSpike: {
      if (load_actuator_ == nullptr) {
        ++stats_.skipped;
        Note("load fault skipped (no load actuator)");
        break;
      }
      load_actuator_->SetLoadFactor(action.factor);
      if (action.kind == Kind::kLoadSpike) load_actuator_->ShiftHotKeys();
      char buf[64];
      if (action.factor > 1.0) {
        load_spike_active_ = true;
        ++stats_.load_spikes;
        std::snprintf(buf, sizeof(buf), "%s x%.2f",
                      action.kind == Kind::kLoadSpike ? "load-spike"
                                                      : "flash-crowd",
                      action.factor);
      } else {
        load_spike_active_ = false;
        std::snprintf(buf, sizeof(buf), "load recovered (x%.2f)",
                      action.factor);
      }
      Note(buf);
      break;
    }
  }
}

bool Nemesis::DrawTargetPair(NodeId* a, NodeId* b) {
  if (gray_pool_.size() < 2) return false;
  const size_t i = rng_.NextBounded(gray_pool_.size());
  const size_t j_raw = rng_.NextBounded(gray_pool_.size() - 1);
  const size_t j = j_raw < i ? j_raw : j_raw + 1;
  *a = gray_pool_[i];
  *b = gray_pool_[j];
  return true;
}

void Nemesis::ApplyGray(const FaultAction& action) {
  using Kind = FaultAction::Kind;
  GrayFault fault;
  fault.node = action.node;
  fault.node_b = action.node_b;
  switch (action.kind) {
    case Kind::kSlowLink:
    case Kind::kRandomSlowLink: {
      fault.kind = Kind::kSlowLink;
      if (action.kind == Kind::kRandomSlowLink &&
          !DrawTargetPair(&fault.node, &fault.node_b)) {
        ++stats_.skipped;
        Note("random-slow-link skipped (fewer than two targets)");
        return;
      }
      net_->SetLinkLatencyFactor(fault.node, fault.node_b, action.factor);
      char buf[80];
      std::snprintf(buf, sizeof(buf), "slow-link %u<->%u x%.2f", fault.node,
                    fault.node_b, action.factor);
      Note(buf);
      break;
    }
    case Kind::kFlakyLink:
    case Kind::kRandomFlakyLink: {
      fault.kind = Kind::kFlakyLink;
      if (action.kind == Kind::kRandomFlakyLink &&
          !DrawTargetPair(&fault.node, &fault.node_b)) {
        ++stats_.skipped;
        Note("random-flaky-link skipped (fewer than two targets)");
        return;
      }
      net_->SetLinkDropRate(fault.node, fault.node_b, action.rate);
      char buf[80];
      std::snprintf(buf, sizeof(buf), "flaky-link %u<->%u drop %.3f",
                    fault.node, fault.node_b, action.rate);
      Note(buf);
      break;
    }
    case Kind::kSlowNode:
    case Kind::kRandomSlowNode: {
      fault.kind = Kind::kSlowNode;
      if (action.kind == Kind::kRandomSlowNode) {
        fault.node = gray_pool_[rng_.NextBounded(gray_pool_.size())];
      }
      net_->SetNodeProcessingDelay(fault.node, action.delay);
      char buf[80];
      std::snprintf(buf, sizeof(buf), "slow-node %u +%.1fms", fault.node,
                    static_cast<double>(action.delay) / kMillisecond);
      Note(buf);
      break;
    }
    default:
      EVC_CHECK(false);
  }
  gray_active_.push_back(fault);
  ++stats_.gray_faults;
}

void Nemesis::RecoverGray(const GrayFault& fault) {
  using Kind = FaultAction::Kind;
  switch (fault.kind) {
    case Kind::kSlowLink:
      net_->SetLinkLatencyFactor(fault.node, fault.node_b, 1.0);
      Note("gray-recover slow-link " + std::to_string(fault.node) + "<->" +
           std::to_string(fault.node_b));
      break;
    case Kind::kFlakyLink:
      net_->SetLinkDropRate(fault.node, fault.node_b, 0.0);
      Note("gray-recover flaky-link " + std::to_string(fault.node) + "<->" +
           std::to_string(fault.node_b));
      break;
    case Kind::kSlowNode:
      net_->SetNodeProcessingDelay(fault.node, 0);
      Note("gray-recover slow-node " + std::to_string(fault.node));
      break;
    default:
      EVC_CHECK(false);
  }
  ++stats_.gray_recoveries;
}

void Nemesis::HealAll() {
  net_->Heal();
  while (!crashed_.empty()) {
    const NodeId node = crashed_.front();
    crashed_.pop_front();
    net_->simulator()->NotifyRestart(node);
    net_->SetNodeUp(node, true);
    ++stats_.restarts;
  }
  net_->set_loss_rate(0.0);
  net_->set_duplicate_rate(0.0);
  while (!gray_active_.empty()) {
    const GrayFault fault = gray_active_.front();
    gray_active_.pop_front();
    RecoverGray(fault);
  }
  if (load_spike_active_ && load_actuator_ != nullptr) {
    load_actuator_->SetLoadFactor(1.0);
    load_spike_active_ = false;
  }
  ++stats_.heals;
  Note("heal-all");
}

}  // namespace evc::sim
