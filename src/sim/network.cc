#include "sim/network.h"

#include "common/logging.h"

namespace evc::sim {

Network::Network(Simulator* sim, std::unique_ptr<LatencyModel> latency)
    : sim_(sim),
      latency_(std::move(latency)),
      rng_(sim->rng().Fork(0x4e455457)) {
  EVC_CHECK(sim_ != nullptr);
  EVC_CHECK(latency_ != nullptr);
  obs::MetricsRegistry& g = sim_->metrics().global();
  metrics_.sent = &g.CounterFor("net.sent");
  metrics_.delivered = &g.CounterFor("net.delivered");
  metrics_.duplicated = &g.CounterFor("net.duplicated");
  metrics_.drop_crashed = &g.CounterFor("net.drop.crashed");
  metrics_.drop_partition = &g.CounterFor("net.drop.partition");
  metrics_.drop_loss = &g.CounterFor("net.drop.loss");
  metrics_.drop_flaky = &g.CounterFor("net.drop.flaky");
  metrics_.drop_no_handler = &g.CounterFor("net.drop.no_handler");
  metrics_.delivery_latency_us = &g.HistogramFor("net.delivery_latency_us");
}

NodeId Network::AddNode() {
  const NodeId id = static_cast<NodeId>(node_up_.size());
  node_up_.push_back(true);
  node_group_.push_back(0);
  handlers_.emplace_back();
  obs::MetricsRegistry& reg = sim_->metrics().node(id);
  node_sent_.push_back(&reg.CounterFor("net.sent"));
  node_delivered_.push_back(&reg.CounterFor("net.delivered"));
  return id;
}

void Network::RegisterHandler(NodeId node, MsgType type,
                              MessageHandler handler) {
  EVC_CHECK(node < handlers_.size());
  EVC_CHECK(type < type_interner_.size());
  auto& node_handlers = handlers_[node];
  if (node_handlers.size() <= type) node_handlers.resize(type + 1);
  node_handlers[type] = std::move(handler);
}

uint32_t Network::GroupOf(NodeId node) const {
  return node < node_group_.size() ? node_group_[node] : 0;
}

bool Network::CanCommunicate(NodeId a, NodeId b) const {
  if (!IsNodeUp(a) || !IsNodeUp(b)) return false;
  if (!partitioned_) return true;
  return GroupOf(a) == GroupOf(b);
}

void Network::SetNodeUp(NodeId node, bool up) {
  EVC_CHECK(node < node_up_.size());
  node_up_[node] = up;
}

bool Network::IsNodeUp(NodeId node) const {
  return node < node_up_.size() && node_up_[node];
}

void Network::Partition(const std::vector<std::vector<NodeId>>& groups) {
  for (auto& g : node_group_) g = 0;
  uint32_t group_id = 1;
  for (const auto& group : groups) {
    for (NodeId n : group) {
      EVC_CHECK(n < node_group_.size());
      node_group_[n] = group_id;
    }
    ++group_id;
  }
  partitioned_ = true;
}

void Network::Heal() {
  partitioned_ = false;
  for (auto& g : node_group_) g = 0;
}

uint64_t Network::LinkKey(NodeId a, NodeId b) {
  const NodeId lo = a < b ? a : b;
  const NodeId hi = a < b ? b : a;
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

void Network::SetLinkLatencyFactor(NodeId a, NodeId b, double factor) {
  EVC_CHECK(factor > 0.0);
  if (factor == 1.0) {
    link_latency_factor_.erase(LinkKey(a, b));
  } else {
    link_latency_factor_[LinkKey(a, b)] = factor;
  }
}

double Network::LinkLatencyFactor(NodeId a, NodeId b) const {
  auto it = link_latency_factor_.find(LinkKey(a, b));
  return it == link_latency_factor_.end() ? 1.0 : it->second;
}

void Network::SetLinkDropRate(NodeId a, NodeId b, double rate) {
  EVC_CHECK(rate >= 0.0 && rate <= 1.0);
  if (rate == 0.0) {
    link_drop_rate_.erase(LinkKey(a, b));
  } else {
    link_drop_rate_[LinkKey(a, b)] = rate;
  }
}

double Network::LinkDropRate(NodeId a, NodeId b) const {
  auto it = link_drop_rate_.find(LinkKey(a, b));
  return it == link_drop_rate_.end() ? 0.0 : it->second;
}

void Network::SetNodeProcessingDelay(NodeId node, Time delay) {
  EVC_CHECK(delay >= 0);
  if (delay == 0) {
    node_delay_.erase(node);
  } else {
    node_delay_[node] = delay;
  }
}

Time Network::NodeProcessingDelay(NodeId node) const {
  auto it = node_delay_.find(node);
  return it == node_delay_.end() ? 0 : it->second;
}

void Network::ClearGrayFaults() {
  link_latency_factor_.clear();
  link_drop_rate_.clear();
  node_delay_.clear();
}

void Network::Send(NodeId from, NodeId to, MsgType type, Payload payload) {
  ++messages_sent_;
  if (sent_by_type_.size() <= type) sent_by_type_.resize(type + 1, 0);
  ++sent_by_type_[type];
  metrics_.sent->Inc();
  if (from < node_sent_.size()) node_sent_[from]->Inc();
  if (!IsNodeUp(from) || !IsNodeUp(to)) {
    ++messages_dropped_;
    metrics_.drop_crashed->Inc();
    return;
  }
  if (!CanCommunicate(from, to)) {
    ++messages_dropped_;
    metrics_.drop_partition->Inc();
    return;
  }
  if (loss_rate_ > 0 && rng_.NextBool(loss_rate_)) {
    ++messages_dropped_;
    metrics_.drop_loss->Inc();
    return;
  }
  if (const double flaky = LinkDropRate(from, to);
      flaky > 0 && rng_.NextBool(flaky)) {
    ++messages_dropped_;
    metrics_.drop_flaky->Inc();
    return;
  }
  Message msg;
  msg.from = from;
  msg.to = to;
  msg.type = type;
  msg.payload = std::move(payload);
  msg.sent_at = sim_->Now();

  // Gray faults stretch delivery: slow links scale the sampled latency,
  // slow nodes add processing delay at both sender and receiver.
  Time latency = latency_->Sample(from, to, rng_);
  if (const double factor = LinkLatencyFactor(from, to); factor != 1.0) {
    latency = static_cast<Time>(static_cast<double>(latency) * factor);
  }
  latency += NodeProcessingDelay(from) + NodeProcessingDelay(to);
  const bool duplicate = duplicate_rate_ > 0 && rng_.NextBool(duplicate_rate_);
  if (duplicate) {
    metrics_.duplicated->Inc();
    // A packet duplicated in flight carries the same bytes: deep-copy the
    // payload (the only payload copy left in the network).
    Message copy;
    copy.from = msg.from;
    copy.to = msg.to;
    copy.type = msg.type;
    copy.payload = msg.payload.Clone();
    copy.sent_at = msg.sent_at;
    const Time extra = latency_->Sample(from, to, rng_);
    sim_->ScheduleAfter(latency + extra,
                        [this, m = std::move(copy)]() mutable {
                          Deliver(std::move(m));
                        });
  }
  sim_->ScheduleAfter(latency, [this, m = std::move(msg)]() mutable {
    Deliver(std::move(m));
  });
}

void Network::Deliver(Message msg) {
  // Re-check reachability at delivery time: a partition or crash that began
  // while the message was in flight also prevents delivery.
  if (!IsNodeUp(msg.to)) {
    ++messages_dropped_;
    metrics_.drop_crashed->Inc();
    return;
  }
  if (!CanCommunicate(msg.from, msg.to)) {
    ++messages_dropped_;
    metrics_.drop_partition->Inc();
    return;
  }
  auto& node_handlers = handlers_[msg.to];
  if (msg.type >= node_handlers.size() || !node_handlers[msg.type]) {
    EVC_LOG_WARN("node %u has no handler for message type '%s'", msg.to,
                 std::string(TypeName(msg.type)).c_str());
    ++messages_dropped_;
    metrics_.drop_no_handler->Inc();
    return;
  }
  ++messages_delivered_;
  metrics_.delivered->Inc();
  if (msg.to < node_delivered_.size()) node_delivered_[msg.to]->Inc();
  metrics_.delivery_latency_us->Add(
      static_cast<double>(sim_->Now() - msg.sent_at));
  node_handlers[msg.type](std::move(msg));
}

}  // namespace evc::sim
