#include "sim/simulator.h"

#include <algorithm>

namespace evc::sim {

EventId Simulator::ScheduleLegacy(Time when, LegacyFn fn) {
  const EventId id = next_id_++;
  heap_.push_back(LegacyEvent{when, next_seq_++, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), EventOrder{});
  pending_ids_.insert(id);
  return id;
}

bool Simulator::Cancel(EventId id) {
  if (sched_ == SchedulerKind::kCalendar) return calq_.Cancel(id);
  // Only a genuinely pending event can be cancelled; ids that already ran
  // (or were already cancelled) report false and leave no tombstone behind,
  // keeping pending_events() exact.
  if (pending_ids_.erase(id) == 0) return false;
  cancelled_.insert(id);
  return true;
}

bool Simulator::Step() {
  if (sched_ != SchedulerKind::kCalendar) return StepLegacy();
  if (calq_.empty()) return false;
  Time when = 0;
  Task fn = calq_.PopMin(&when);
  now_ = when;
  ++events_executed_;
  fn.Run();
  return true;
}

bool Simulator::StepLegacy() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), EventOrder{});
    LegacyEvent ev = std::move(heap_.back());
    heap_.pop_back();
    if (cancelled_.erase(ev.id) > 0) continue;
    pending_ids_.erase(ev.id);
    now_ = ev.when;
    ++events_executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RegisterCrashParticipant(uint32_t node, CrashParticipant* p) {
  EVC_CHECK(p != nullptr);
  crash_participants_[node].push_back(p);
}

void Simulator::UnregisterCrashParticipant(CrashParticipant* p) {
  for (auto& [node, participants] : crash_participants_) {
    std::erase(participants, p);
  }
}

void Simulator::NotifyCrash(uint32_t node) {
  auto it = crash_participants_.find(node);
  if (it == crash_participants_.end()) return;
  for (CrashParticipant* p : it->second) p->OnCrash(node);
}

void Simulator::NotifyRestart(uint32_t node) {
  auto it = crash_participants_.find(node);
  if (it == crash_participants_.end() || it->second.empty()) return;
  for (CrashParticipant* p : it->second) p->OnRestart(node);
  metrics_.global().CounterFor("crash.recoveries").Inc();
}

void Simulator::RunUntil(Time deadline) {
  if (sched_ == SchedulerKind::kCalendar) {
    Time when = 0;
    while (calq_.PeekWhen(&when) && when <= deadline) {
      Task fn = calq_.PopMin(&when);
      now_ = when;
      ++events_executed_;
      fn.Run();
    }
  } else {
    while (!heap_.empty()) {
      const LegacyEvent& top = heap_.front();
      if (cancelled_.count(top.id) > 0) {
        cancelled_.erase(top.id);
        std::pop_heap(heap_.begin(), heap_.end(), EventOrder{});
        heap_.pop_back();
        continue;
      }
      if (top.when > deadline) break;
      StepLegacy();
    }
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace evc::sim
