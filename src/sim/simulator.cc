#include "sim/simulator.h"

namespace evc::sim {

EventId Simulator::ScheduleAt(Time when, std::function<void()> fn) {
  EVC_CHECK(when >= now_);
  const EventId id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, std::move(fn)});
  return id;
}

bool Simulator::Cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  return cancelled_.insert(id).second;
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    // priority_queue::top is const; copy out the small fields and move the
    // closure via const_cast, which is safe because we pop immediately.
    Event& top = const_cast<Event&>(queue_.top());
    Event ev{top.when, top.seq, top.id, std::move(top.fn)};
    queue_.pop();
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.when;
    ++events_executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(Time deadline) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (cancelled_.count(top.id)) {
      cancelled_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.when > deadline) break;
    Step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace evc::sim
