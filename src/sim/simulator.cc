#include "sim/simulator.h"

namespace evc::sim {

EventId Simulator::ScheduleAt(Time when, std::function<void()> fn) {
  EVC_CHECK(when >= now_);
  const EventId id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, std::move(fn)});
  pending_ids_.insert(id);
  return id;
}

bool Simulator::Cancel(EventId id) {
  // Only a genuinely pending event can be cancelled; ids that already ran
  // (or were already cancelled) report false and leave no tombstone behind,
  // keeping pending_events() exact.
  if (pending_ids_.erase(id) == 0) return false;
  cancelled_.insert(id);
  return true;
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    // priority_queue::top is const; copy out the small fields and move the
    // closure via const_cast, which is safe because we pop immediately.
    Event& top = const_cast<Event&>(queue_.top());
    Event ev{top.when, top.seq, top.id, std::move(top.fn)};
    queue_.pop();
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    pending_ids_.erase(ev.id);
    now_ = ev.when;
    ++events_executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RegisterCrashParticipant(uint32_t node, CrashParticipant* p) {
  EVC_CHECK(p != nullptr);
  crash_participants_[node].push_back(p);
}

void Simulator::UnregisterCrashParticipant(CrashParticipant* p) {
  for (auto& [node, participants] : crash_participants_) {
    std::erase(participants, p);
  }
}

void Simulator::NotifyCrash(uint32_t node) {
  auto it = crash_participants_.find(node);
  if (it == crash_participants_.end()) return;
  for (CrashParticipant* p : it->second) p->OnCrash(node);
}

void Simulator::NotifyRestart(uint32_t node) {
  auto it = crash_participants_.find(node);
  if (it == crash_participants_.end() || it->second.empty()) return;
  for (CrashParticipant* p : it->second) p->OnRestart(node);
  metrics_.global().CounterFor("crash.recoveries").Inc();
}

void Simulator::RunUntil(Time deadline) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (cancelled_.count(top.id)) {
      cancelled_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.when > deadline) break;
    Step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace evc::sim
