// Slab-allocated, move-only event closure.
//
// The scheduler used to store events as std::function<void()>, which heap
// allocates for any capture list over two pointers — i.e. for every network
// delivery closure (they capture a whole Message). Task type-erases the
// callable into a single slab block instead: allocation and free are a
// freelist pop/push, and moving a Task moves two pointers.
//
// Lifetime rule (pinned by simulator_test "SelfDestroyingClosure"): the
// callable object stays alive for the duration of operator(), and is
// destroyed immediately after it returns — so a closure may free the objects
// it captured, reschedule into the structure that held it, or cause slab
// reuse, all while running.

#ifndef EVC_SIM_TASK_H_
#define EVC_SIM_TASK_H_

#include <type_traits>
#include <utility>

#include "common/slab.h"
#include "common/status.h"

namespace evc::sim {

class Task {
 public:
  Task() = default;

  /// Boxes `fn` into `slab`. `fn` must be invocable with no arguments.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Task>>>
  Task(Slab* slab, F&& fn) : slab_(slab) {
    using Fn = std::decay_t<F>;
    static_assert(alignof(Fn) <= Slab::kAlign,
                  "closure over-aligned for the slab");
    obj_ = slab->Alloc(sizeof(Fn));
    new (obj_) Fn(std::forward<F>(fn));
    invoke_ = [](void* obj) { (*static_cast<Fn*>(obj))(); };
    destroy_ = [](void* obj, Slab* s) {
      static_cast<Fn*>(obj)->~Fn();
      s->Free(obj, sizeof(Fn));
    };
  }

  Task(Task&& other) noexcept { MoveFrom(other); }
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Reset(); }

  bool valid() const { return obj_ != nullptr; }

  /// Runs the closure, then destroys it. The Task is empty afterwards.
  void Run() {
    EVC_CHECK(obj_ != nullptr);
    // Detach before invoking: the closure may recurse into the scheduler
    // and cause this Task object to move or be destroyed.
    void* obj = obj_;
    auto invoke = invoke_;
    auto destroy = destroy_;
    Slab* slab = slab_;
    obj_ = nullptr;
    invoke(obj);
    destroy(obj, slab);
  }

  /// Destroys the closure without running it (cancelled events).
  void Reset() {
    if (obj_ != nullptr) {
      destroy_(obj_, slab_);
      obj_ = nullptr;
    }
  }

 private:
  void MoveFrom(Task& other) {
    obj_ = other.obj_;
    invoke_ = other.invoke_;
    destroy_ = other.destroy_;
    slab_ = other.slab_;
    other.obj_ = nullptr;
  }

  void* obj_ = nullptr;
  void (*invoke_)(void*) = nullptr;
  void (*destroy_)(void*, Slab*) = nullptr;
  Slab* slab_ = nullptr;
};

}  // namespace evc::sim

#endif  // EVC_SIM_TASK_H_
