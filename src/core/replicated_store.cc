#include "core/replicated_store.h"

#include <algorithm>

#include "causal/causal_store.h"
#include "clock/version_vector.h"
#include "consensus/paxos.h"
#include "replication/anti_entropy.h"
#include "replication/quorum_store.h"
#include "replication/timeline_store.h"

namespace evc::core {

const char* ConsistencyLevelToString(ConsistencyLevel level) {
  switch (level) {
    case ConsistencyLevel::kEventual:
      return "eventual";
    case ConsistencyLevel::kQuorum:
      return "quorum";
    case ConsistencyLevel::kCausal:
      return "causal";
    case ConsistencyLevel::kTimeline:
      return "timeline";
    case ConsistencyLevel::kStrong:
      return "strong";
  }
  return "?";
}

struct ReplicatedStore::ClientState {
  sim::NodeId node = 0;
  int dc = 0;
  // Quorum levels: causal context from the client's last read per key.
  std::map<std::string, VersionVector> contexts;
  // Strong level: a Paxos client tracking the leader.
  std::unique_ptr<consensus::PaxosKvClient> paxos_client;
  // Causal level: dependency-tracking client.
  std::unique_ptr<causal::CausalClient> causal_client;
};

struct ReplicatedStore::Impl {
  // Exactly one of these is populated, per options.level.
  std::unique_ptr<repl::DynamoCluster> dynamo;
  std::unique_ptr<repl::AntiEntropy> anti_entropy;
  std::vector<sim::NodeId> dynamo_servers;
  std::vector<int> server_dc;  // dc of dynamo_servers[i]

  std::unique_ptr<consensus::PaxosCluster> paxos;
  std::vector<sim::NodeId> paxos_servers;

  std::unique_ptr<causal::CausalCluster> causal;
  std::vector<sim::NodeId> causal_dcs;

  std::unique_ptr<repl::TimelineCluster> timeline;
  std::vector<sim::NodeId> timeline_servers;
  std::vector<int> timeline_server_dc;
};

ReplicatedStore::ReplicatedStore(StoreOptions options)
    : options_(options), impl_(std::make_unique<Impl>()) {
  EVC_CHECK(options_.datacenters >= 1 && options_.datacenters <= 5);
  EVC_CHECK(options_.servers_per_datacenter >= 1);

  sim_ = std::make_unique<sim::Simulator>(options_.seed);
  auto base = options_.datacenters <= 3
                  ? sim::WanMatrixLatency::ThreeRegionBaseUs()
                  : sim::WanMatrixLatency::FiveRegionBaseUs();
  // Trim the matrix to the requested datacenter count.
  base.resize(options_.datacenters);
  for (auto& row : base) row.resize(options_.datacenters);
  auto latency = std::make_unique<sim::WanMatrixLatency>(std::move(base));
  wan_ = latency.get();
  net_ = std::make_unique<sim::Network>(sim_.get(), std::move(latency));
  rpc_ = std::make_unique<sim::Rpc>(net_.get());

  const int total_servers =
      options_.datacenters * options_.servers_per_datacenter;

  switch (options_.level) {
    case ConsistencyLevel::kEventual:
    case ConsistencyLevel::kQuorum: {
      repl::QuorumConfig config;
      config.replication_factor = std::min(3, total_servers);
      if (options_.level == ConsistencyLevel::kEventual) {
        config.read_quorum = 1;
        config.write_quorum = 1;
        config.sloppy = true;
      } else {
        config.read_quorum = std::min(2, config.replication_factor);
        config.write_quorum = std::min(2, config.replication_factor);
        config.sloppy = false;
      }
      impl_->dynamo = std::make_unique<repl::DynamoCluster>(rpc_.get(),
                                                            config);
      for (int s = 0; s < total_servers; ++s) {
        const sim::NodeId node = impl_->dynamo->AddServer();
        const int dc = s % options_.datacenters;
        wan_->AssignNode(node, dc);
        impl_->dynamo_servers.push_back(node);
        impl_->server_dc.push_back(dc);
      }
      // Anti-entropy keeps eventual replicas converging in the background.
      std::vector<ReplicaStorage*> storages;
      for (const sim::NodeId node : impl_->dynamo_servers) {
        storages.push_back(impl_->dynamo->storage(node));
      }
      repl::AntiEntropyOptions ae;
      ae.interval = 500 * sim::kMillisecond;
      impl_->anti_entropy = std::make_unique<repl::AntiEntropy>(
          net_.get(), impl_->dynamo_servers, storages, ae);
      impl_->anti_entropy->Start();
      impl_->dynamo->StartHintDelivery(500 * sim::kMillisecond);
      break;
    }
    case ConsistencyLevel::kStrong: {
      impl_->paxos = std::make_unique<consensus::PaxosCluster>(
          rpc_.get(), consensus::PaxosOptions{});
      for (int s = 0; s < total_servers; ++s) {
        const sim::NodeId node = impl_->paxos->AddServer();
        wan_->AssignNode(node, s % options_.datacenters);
        impl_->paxos_servers.push_back(node);
      }
      impl_->paxos->Start();
      sim_->RunFor(2 * sim::kSecond);  // let a leader emerge
      break;
    }
    case ConsistencyLevel::kCausal: {
      impl_->causal = std::make_unique<causal::CausalCluster>(
          rpc_.get(), causal::CausalOptions{});
      for (int d = 0; d < options_.datacenters; ++d) {
        const sim::NodeId node = impl_->causal->AddDatacenter();
        wan_->AssignNode(node, d);
        impl_->causal_dcs.push_back(node);
      }
      break;
    }
    case ConsistencyLevel::kTimeline: {
      impl_->timeline = std::make_unique<repl::TimelineCluster>(
          rpc_.get(), repl::TimelineOptions{});
      for (int s = 0; s < total_servers; ++s) {
        const sim::NodeId node = impl_->timeline->AddServer();
        const int dc = s % options_.datacenters;
        wan_->AssignNode(node, dc);
        impl_->timeline_servers.push_back(node);
        impl_->timeline_server_dc.push_back(dc);
      }
      break;
    }
  }
}

ReplicatedStore::~ReplicatedStore() = default;

sim::NodeId ReplicatedStore::AddClient(int dc) {
  EVC_CHECK(dc >= 0 && dc < options_.datacenters);
  const sim::NodeId node = net_->AddNode();
  wan_->AssignNode(node, dc);
  auto state = std::make_unique<ClientState>();
  state->node = node;
  state->dc = dc;
  if (options_.level == ConsistencyLevel::kStrong) {
    state->paxos_client = std::make_unique<consensus::PaxosKvClient>(
        impl_->paxos.get(), sim_.get(), node, impl_->paxos_servers);
  } else if (options_.level == ConsistencyLevel::kCausal) {
    state->causal_client = std::make_unique<causal::CausalClient>(
        impl_->causal.get(), node, impl_->causal_dcs[dc]);
  }
  clients_[node] = std::move(state);
  return node;
}

namespace {

// Picks the coordinator in the client's datacenter (local-first routing).
sim::NodeId LocalServer(const std::vector<sim::NodeId>& servers,
                        const std::vector<int>& server_dc, int client_dc) {
  for (size_t i = 0; i < servers.size(); ++i) {
    if (server_dc[i] == client_dc) return servers[i];
  }
  return servers[0];
}

}  // namespace

void ReplicatedStore::Put(sim::NodeId client, const std::string& key,
                          std::string value, WriteCallback done) {
  auto it = clients_.find(client);
  EVC_CHECK(it != clients_.end());
  ClientState* state = it->second.get();
  const sim::Time start = sim_->Now();
  auto finish = [this, start, done](Status s) {
    if (s.ok()) {
      put_latency_.Add(static_cast<double>(sim_->Now() - start));
    } else {
      ++puts_failed_;
    }
    done(std::move(s));
  };

  switch (options_.level) {
    case ConsistencyLevel::kEventual:
    case ConsistencyLevel::kQuorum: {
      const sim::NodeId coordinator =
          LocalServer(impl_->dynamo_servers, impl_->server_dc, state->dc);
      const VersionVector ctx = state->contexts[key];
      impl_->dynamo->Put(client, coordinator, key, std::move(value), ctx,
                         [state, key, finish](Result<Version> r) {
                           if (r.ok()) {
                             state->contexts[key].MergeWith(r->vv);
                           }
                           finish(r.status());
                         });
      break;
    }
    case ConsistencyLevel::kStrong:
      state->paxos_client->Put(key, std::move(value),
                               [finish](Result<uint64_t> r) {
                                 finish(r.status());
                               });
      break;
    case ConsistencyLevel::kCausal:
      state->causal_client->Put(key, std::move(value),
                                [finish](Result<causal::WriteId> r) {
                                  finish(r.status());
                                });
      break;
    case ConsistencyLevel::kTimeline:
      impl_->timeline->Write(client, key, std::move(value),
                             [finish](Result<uint64_t> r) {
                               finish(r.status());
                             });
      break;
  }
}

void ReplicatedStore::Get(sim::NodeId client, const std::string& key,
                          ReadCallback done) {
  auto it = clients_.find(client);
  EVC_CHECK(it != clients_.end());
  ClientState* state = it->second.get();
  const sim::Time start = sim_->Now();
  auto finish = [this, start, done](Result<std::string> r) {
    if (r.ok() || r.status().IsNotFound()) {
      get_latency_.Add(static_cast<double>(sim_->Now() - start));
    } else {
      ++gets_failed_;
    }
    done(std::move(r));
  };

  switch (options_.level) {
    case ConsistencyLevel::kEventual:
    case ConsistencyLevel::kQuorum: {
      const sim::NodeId coordinator =
          LocalServer(impl_->dynamo_servers, impl_->server_dc, state->dc);
      impl_->dynamo->Get(
          client, coordinator, key,
          [state, key, finish](Result<repl::ReadResult> r) {
            if (!r.ok()) {
              finish(r.status());
              return;
            }
            state->contexts[key] = r->context;
            if (r->versions.empty()) {
              finish(Status::NotFound(key));
              return;
            }
            // Facade policy: newest timestamp wins among siblings.
            const Version* best = &r->versions[0];
            for (const Version& v : r->versions) {
              if (best->lww_ts < v.lww_ts) best = &v;
            }
            finish(best->value);
          });
      break;
    }
    case ConsistencyLevel::kStrong:
      state->paxos_client->Get(key, finish);
      break;
    case ConsistencyLevel::kCausal:
      state->causal_client->Get(
          key, [finish, key](Result<causal::CausalRead> r) {
            if (!r.ok()) {
              finish(r.status());
            } else if (!r->found) {
              finish(Status::NotFound(key));
            } else {
              finish(r->value);
            }
          });
      break;
    case ConsistencyLevel::kTimeline: {
      const sim::NodeId replica = LocalServer(
          impl_->timeline_servers, impl_->timeline_server_dc, state->dc);
      impl_->timeline->Read(
          client, replica, key, repl::TimelineReadLevel::kAny, 0,
          [finish, key](Result<repl::TimelineRead> r) {
            if (!r.ok()) {
              finish(r.status());
            } else if (!r->found) {
              finish(Status::NotFound(key));
            } else {
              finish(r->value);
            }
          });
      break;
    }
  }
}

void ReplicatedStore::RunFor(sim::Time duration) { sim_->RunFor(duration); }

}  // namespace evc::core
