// Unified facade over every consistency protocol in evc.
//
// The tutorial's central message is that consistency is a *dial*, not a
// binary. ReplicatedStore exposes that dial as one enum: construct a
// geo-replicated store at a chosen level and issue Put/Get from clients
// pinned to datacenters; the facade wires up the right protocol stack
// underneath (Dynamo quorums + anti-entropy, Multi-Paxos, COPS, PNUTS) and
// records per-operation latency. Examples and the Fig. 1 bench are written
// against this API.

#ifndef EVC_CORE_REPLICATED_STORE_H_
#define EVC_CORE_REPLICATED_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "sim/rpc.h"

namespace evc {
namespace repl {
class DynamoCluster;
class AntiEntropy;
class TimelineCluster;
}  // namespace repl
namespace consensus {
class PaxosCluster;
class PaxosKvClient;
}  // namespace consensus
namespace causal {
class CausalCluster;
class CausalClient;
}  // namespace causal
}  // namespace evc

namespace evc::core {

/// The consistency dial.
enum class ConsistencyLevel {
  kEventual,   ///< Dynamo N=3 R=1 W=1, sloppy quorums, anti-entropy
  kQuorum,     ///< Dynamo N=3 R=2 W=2 (read-your-latest via intersection)
  kCausal,     ///< COPS-style causal+ (local reads/writes, dep tracking)
  kTimeline,   ///< PNUTS primary-copy (master writes, any-replica reads)
  kStrong,     ///< Multi-Paxos replicated log (linearizable)
};

const char* ConsistencyLevelToString(ConsistencyLevel level);

struct StoreOptions {
  ConsistencyLevel level = ConsistencyLevel::kEventual;
  /// Datacenters in the WAN topology (1..5; uses the 3- or 5-region preset).
  int datacenters = 3;
  /// One storage server per datacenter by default.
  int servers_per_datacenter = 1;
  uint64_t seed = 1;
};

/// A geo-replicated KV store at one consistency level, self-contained with
/// its own simulator.
class ReplicatedStore {
 public:
  explicit ReplicatedStore(StoreOptions options);
  ~ReplicatedStore();

  ReplicatedStore(const ReplicatedStore&) = delete;
  ReplicatedStore& operator=(const ReplicatedStore&) = delete;

  /// The virtual clock everything runs on. Use RunFor to make progress.
  sim::Simulator* simulator() { return sim_.get(); }
  const StoreOptions& options() const { return options_; }

  /// Creates a client attached to datacenter `dc` (0-based).
  sim::NodeId AddClient(int dc);

  using WriteCallback = std::function<void(Status)>;
  using ReadCallback = std::function<void(Result<std::string>)>;

  /// Writes through the level-appropriate protocol. The per-client causal
  /// context is managed internally (read-before-write contexts for the
  /// quorum levels, dependency tracking for causal).
  void Put(sim::NodeId client, const std::string& key, std::string value,
           WriteCallback done);

  /// Reads at the store's consistency level. Concurrent siblings (possible
  /// at kEventual) are resolved newest-timestamp-first for this facade; use
  /// repl::DynamoCluster directly for application-level merges.
  void Get(sim::NodeId client, const std::string& key, ReadCallback done);

  /// Latency of completed operations, in virtual microseconds.
  const Histogram& put_latency() const { return put_latency_; }
  const Histogram& get_latency() const { return get_latency_; }
  uint64_t puts_failed() const { return puts_failed_; }
  uint64_t gets_failed() const { return gets_failed_; }

  /// Runs the simulation forward (convenience passthrough).
  void RunFor(sim::Time duration);

 private:
  struct ClientState;
  struct Impl;

  StoreOptions options_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<sim::Rpc> rpc_;
  sim::WanMatrixLatency* wan_ = nullptr;  // owned by net_
  std::unique_ptr<Impl> impl_;
  std::map<sim::NodeId, std::unique_ptr<ClientState>> clients_;
  Histogram put_latency_;
  Histogram get_latency_;
  uint64_t puts_failed_ = 0;
  uint64_t gets_failed_ = 0;
};

}  // namespace evc::core

#endif  // EVC_CORE_REPLICATED_STORE_H_
