// Bayou-style session guarantees over the quorum store.
//
// Eventual consistency makes no per-client promises; the four session
// guarantees (Terry et al., PDIS '94) restore exactly the promises mobile
// and interactive applications need, without global coordination:
//   * read-your-writes  (RYW): a read reflects every earlier session write;
//   * monotonic reads    (MR): reads never go backwards in time;
//   * monotonic writes   (MW): session writes apply in issue order;
//   * writes-follow-reads(WFR): a write is ordered after the writes whose
//     effects the session has read.
//
// Mechanism (per the tutorial): the session tracks a read-vector and a
// write-vector per key. Writes carry the merged vectors as their causal
// context (MW + WFR fall out of causal domination). Reads check that the
// reply's context dominates the session vectors (RYW + MR); a stale reply
// is retried against another coordinator or after a delay — the "stick to a
// sufficiently fresh server" rule. With guarantees disabled, the same
// machinery *detects and counts* the anomalies instead of preventing them
// (Fig. 4 reports both sides).

#ifndef EVC_SESSION_SESSION_H_
#define EVC_SESSION_SESSION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "replication/quorum_store.h"

namespace evc::session {

struct SessionOptions {
  bool read_your_writes = true;
  bool monotonic_reads = true;
  bool monotonic_writes = true;
  bool writes_follow_reads = true;
  /// Delay between freshness retries.
  sim::Time retry_interval = 50 * sim::kMillisecond;
  /// Retries before giving up with Unavailable (guarantee not satisfiable).
  int max_retries = 20;
  /// When true, each operation routes through the next coordinator in turn
  /// (a load-balanced deployment with no server stickiness — the setting in
  /// which session guarantees earn their keep). When false, the session
  /// sticks to one coordinator.
  bool rotate_coordinators = false;
};

struct SessionStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t guarantee_retries = 0;       ///< stale replies retried (enforcing)
  uint64_t ryw_violations_detected = 0; ///< stale replies served (detecting)
  uint64_t mr_violations_detected = 0;
  uint64_t guarantee_failures = 0;      ///< retries exhausted
};

/// One client session. Not thread-safe (simulator single-threaded).
class Session {
 public:
  /// `coordinators`: servers this session may route through; retries rotate
  /// across them.
  Session(repl::DynamoCluster* cluster, sim::Simulator* sim,
          sim::NodeId client_node, std::vector<sim::NodeId> coordinators,
          SessionOptions options);

  /// Writes under the session's guarantees.
  void Put(const std::string& key, std::string value,
           repl::PutCallback done);

  /// Reads under the session's guarantees. The returned versions reflect at
  /// least the session's prior writes (RYW) and reads (MR) when enabled.
  void Get(const std::string& key, repl::GetCallback done);

  const SessionStats& stats() const { return stats_; }
  const SessionOptions& options() const { return options_; }

 private:
  /// Context a write must causally follow: write-vector (MW) ⊔ read-vector
  /// (WFR), per the enabled guarantees.
  VersionVector WriteContext(const std::string& key) const;

  void GetAttempt(const std::string& key, int attempts_left,
                  size_t coordinator_index, repl::GetCallback done);

  repl::DynamoCluster* cluster_;
  sim::Simulator* sim_;
  sim::NodeId client_node_;
  std::vector<sim::NodeId> coordinators_;
  SessionOptions options_;
  SessionStats stats_;
  // Per-key session state (version vectors are per-key in this store).
  std::map<std::string, VersionVector> write_vector_;
  std::map<std::string, VersionVector> read_vector_;
  size_t next_coordinator_ = 0;
};

}  // namespace evc::session

#endif  // EVC_SESSION_SESSION_H_
