#include "session/session.h"

namespace evc::session {

Session::Session(repl::DynamoCluster* cluster, sim::Simulator* sim,
                 sim::NodeId client_node,
                 std::vector<sim::NodeId> coordinators, SessionOptions options)
    : cluster_(cluster),
      sim_(sim),
      client_node_(client_node),
      coordinators_(std::move(coordinators)),
      options_(options) {
  EVC_CHECK(cluster_ != nullptr);
  EVC_CHECK(!coordinators_.empty());
}

VersionVector Session::WriteContext(const std::string& key) const {
  VersionVector ctx;
  if (options_.monotonic_writes) {
    auto it = write_vector_.find(key);
    if (it != write_vector_.end()) ctx.MergeWith(it->second);
  }
  if (options_.writes_follow_reads) {
    auto it = read_vector_.find(key);
    if (it != read_vector_.end()) ctx.MergeWith(it->second);
  }
  return ctx;
}

void Session::Put(const std::string& key, std::string value,
                  repl::PutCallback done) {
  ++stats_.writes;
  const VersionVector ctx = WriteContext(key);
  if (options_.rotate_coordinators) ++next_coordinator_;
  const sim::NodeId coordinator =
      coordinators_[next_coordinator_ % coordinators_.size()];
  cluster_->Put(client_node_, coordinator, key, std::move(value), ctx,
                [this, key, done](Result<Version> r) {
                  if (r.ok()) {
                    write_vector_[key].MergeWith(r->vv);
                  }
                  done(std::move(r));
                });
}

void Session::Get(const std::string& key, repl::GetCallback done) {
  ++stats_.reads;
  if (options_.rotate_coordinators) ++next_coordinator_;
  GetAttempt(key, options_.max_retries, next_coordinator_, std::move(done));
}

void Session::GetAttempt(const std::string& key, int attempts_left,
                         size_t coordinator_index, repl::GetCallback done) {
  const sim::NodeId coordinator =
      coordinators_[coordinator_index % coordinators_.size()];
  cluster_->Get(
      client_node_, coordinator, key,
      [this, key, attempts_left, coordinator_index,
       done](Result<repl::ReadResult> r) {
        if (!r.ok()) {
          done(std::move(r));
          return;
        }
        // Anomaly accounting runs regardless of enforcement, so that the
        // guarantees-off configuration measures how often eventual
        // consistency would have broken each promise.
        auto wit = write_vector_.find(key);
        const bool ryw_violated = wit != write_vector_.end() &&
                                  !r->context.Descends(wit->second);
        auto rit = read_vector_.find(key);
        const bool mr_violated = rit != read_vector_.end() &&
                                 !r->context.Descends(rit->second);
        if (ryw_violated) ++stats_.ryw_violations_detected;
        if (mr_violated) ++stats_.mr_violations_detected;

        // Enforcement: retry only for the guarantees that are switched on.
        const bool must_retry = (options_.read_your_writes && ryw_violated) ||
                                (options_.monotonic_reads && mr_violated);
        if (must_retry) {
          if (attempts_left <= 0) {
            ++stats_.guarantee_failures;
            done(Status::Unavailable(
                "session guarantee unsatisfiable (retries exhausted)"));
            return;
          }
          ++stats_.guarantee_retries;
          // Retry routing follows the session's coordinator policy: a
          // rotating session tries the next coordinator (a different replica
          // may already have the write), while a sticky session re-polls the
          // SAME coordinator after the delay and waits for replication to
          // catch up. The seed advanced the index unconditionally, silently
          // turning sticky sessions into rotating ones on every freshness
          // retry.
          const size_t retry_index = options_.rotate_coordinators
                                         ? coordinator_index + 1
                                         : coordinator_index;
          sim_->ScheduleAfter(
              options_.retry_interval,
              [this, key, attempts_left, retry_index, done] {
                GetAttempt(key, attempts_left - 1, retry_index, done);
              });
          return;
        }
        read_vector_[key].MergeWith(r->context);
        done(std::move(r));
      });
}

}  // namespace evc::session
