// Multi-Paxos replicated log and a linearizable KV state machine on top.
//
// This is the strong-consistency baseline of the taxonomy (the
// Megastore/Spanner family's core): every operation — including reads — is
// a command agreed on by a majority, applied in slot order at every replica.
// Properties the tests check:
//   * safety: no two replicas ever decide different values for a slot, under
//     message loss, duplication, leader crashes and re-elections;
//   * liveness (partial synchrony): a majority partition keeps committing;
//   * the CAP corollary: a minority partition commits nothing (Fig. 7).
//
// Structure: each server is acceptor + learner + potential leader. Leaders
// run Phase 1 (prepare) once over the open slot range, then Phase 2
// (accept) per command. Heartbeats suppress elections; followers start a
// randomized-timeout election when the leader goes quiet. Chosen entries
// propagate via learn messages, with a catch-up path for gaps.

#ifndef EVC_CONSENSUS_PAXOS_H_
#define EVC_CONSENSUS_PAXOS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "resilience/detector.h"
#include "resilience/retry.h"
#include "sim/rpc.h"
#include "storage/wal.h"

namespace evc::consensus {

/// A Paxos ballot: (round, node) with lexicographic order.
struct Ballot {
  uint64_t round = 0;
  uint32_t node = 0;

  auto operator<=>(const Ballot&) const = default;
  std::string ToString() const {
    return std::to_string(round) + "." + std::to_string(node);
  }
};

/// A state-machine command. Reads go through the log too, which is the
/// simplest way to linearizable reads (no leases needed).
struct Command {
  // kPutIfAbsent is appended so historical encodings keep their type byte.
  enum class Type { kNoop, kPut, kGet, kDelete, kPutIfAbsent };
  Type type = Type::kNoop;
  std::string key;
  std::string value;
  /// Unique id of the logical operation. Retries of the same client op reuse
  /// the id, and the state machine applies each mutating id at most once —
  /// otherwise a timed-out proposal completed later by a new leader plus its
  /// retry would execute the same put twice (a real linearizability
  /// violation the fault fuzzer caught). 0 means "stamp at Propose".
  uint64_t op_id = 0;
};

/// Result of executing a command against the KV state machine.
struct Execution {
  uint64_t slot = 0;
  bool found = false;     ///< kGet/kPutIfAbsent: key already existed
  std::string value;      ///< kGet: the value read; kPutIfAbsent: the winner
};

struct PaxosOptions {
  /// Per-phase RPC timeout. Must exceed the worst round trip in the
  /// deployment (the WAN matrix tops out near 110 ms one-way).
  sim::Time rpc_timeout = 400 * sim::kMillisecond;
  sim::Time heartbeat_interval = 50 * sim::kMillisecond;
  /// Base election timeout; each follower randomizes in [T, 2T).
  sim::Time election_timeout = 600 * sim::kMillisecond;
  /// Client-visible proposal timeout.
  sim::Time proposal_timeout = 2 * sim::kSecond;
  /// Register servers as simulator CrashParticipants: a nemesis crash drops
  /// all volatile state and a restart recovers from the acceptor journal.
  /// Off means the pre-durability behavior (crash = network silence only).
  bool crash_amnesia = true;
  /// Journal promised/accepted ballots to a per-acceptor WAL before acking
  /// Prepare/Accept. Turning this off under crash_amnesia reproduces the
  /// classic unsound acceptor: a restarted node forgets its promises and can
  /// let two different values be chosen for one slot (pinned by test).
  bool journal_acceptor_state = true;
};

struct PaxosStats {
  uint64_t elections_started = 0;
  uint64_t leaderships_won = 0;
  uint64_t proposals_ok = 0;
  uint64_t proposals_failed = 0;
  uint64_t commands_applied = 0;
  uint64_t catchups = 0;
  /// Slots observed chosen with two different values — impossible when
  /// acceptors journal their state, possible (and counted instead of
  /// crashing) when journal_acceptor_state is off under amnesia crashes.
  uint64_t chosen_conflicts = 0;
};

/// A cluster of Paxos servers with a replicated KV state machine.
class PaxosCluster : private sim::CrashParticipant {
 public:
  PaxosCluster(sim::Rpc* rpc, PaxosOptions options);
  ~PaxosCluster();

  /// Adds a server. Call exactly `n` times before Start().
  sim::NodeId AddServer();
  std::vector<sim::NodeId> AddServers(int count);

  /// Starts heartbeat/election timers. Server 0 attempts leadership first.
  void Start();

  using ProposeCallback = std::function<void(Result<Execution>)>;

  /// Mints a cluster-unique op id. Clients that retry a command must stamp
  /// it once with this and reuse it across attempts (see Command::op_id).
  uint64_t MintOpId() { return next_op_id_++; }

  /// Proposes a command via `server`. Fails with FailedPrecondition (+the
  /// current leader hint in the message) when `server` is not the leader,
  /// or TimedOut when no progress is possible.
  void Propose(sim::NodeId client, sim::NodeId server, Command command,
               ProposeCallback done);

  /// The node currently believing itself leader (0-or-more may transiently
  /// believe so; the log stays safe regardless). Returns nullopt when none.
  std::optional<sim::NodeId> CurrentLeader() const;

  /// True if `server` currently believes itself leader (test hook).
  bool IsLeader(sim::NodeId server) const;

  /// Chosen value in `slot` at `server` (test hook). Empty if not chosen.
  std::optional<std::string> ChosenAt(sim::NodeId server, uint64_t slot) const;

  /// Applied state machine: value of `key` at `server` (test hook).
  std::optional<std::string> AppliedValue(sim::NodeId server,
                                          const std::string& key) const;
  /// Number of contiguously applied slots at `server`.
  uint64_t AppliedIndex(sim::NodeId server) const;

  const PaxosStats& stats() const { return stats_; }
  size_t server_count() const { return servers_.size(); }

 private:
  struct SlotState {
    Ballot accepted_ballot;
    std::string accepted_value;  // encoded command
    bool has_accepted = false;
    bool chosen = false;
    std::string chosen_value;
  };

  struct PendingProposal {
    uint64_t slot = 0;
    std::string encoded;
    int accept_acks = 0;
    int accept_replies = 0;
    bool decided = false;
    ProposeCallback done;
    uint64_t op_id = 0;
    sim::EventId timeout_event = 0;
  };

  struct Server {
    sim::NodeId node = 0;
    uint32_t index = 0;
    // Acceptor state.
    Ballot promised;
    std::map<uint64_t, SlotState> slots;
    // Learner / state machine.
    uint64_t applied_index = 0;  // next slot to apply
    std::map<std::string, std::string> kv;
    std::set<uint64_t> applied_ops;  // mutating op_ids already applied
    // Leader state.
    bool is_leader = false;
    bool electing = false;
    Ballot ballot;            // my current ballot when leading/electing
    uint64_t next_slot = 0;   // next free slot as leader
    std::map<uint64_t, std::shared_ptr<PendingProposal>> in_flight;
    // Failure detection.
    sim::Time last_heartbeat = 0;
    Ballot leader_ballot;     // highest ballot heard from a leader
    sim::NodeId leader_hint = 0;
    bool has_leader_hint = false;
    // Acceptor journal: promised / accepted / chosen records, replayed on
    // restart (empty when options_.journal_acceptor_state is off).
    WriteAheadLog wal;
  };

  // Message payloads.
  struct PrepareReq {
    Ballot ballot;
    uint64_t from_slot = 0;
  };
  struct PrepareReply {
    bool promised = false;
    Ballot promised_ballot;
    // Accepted entries at/after from_slot: slot -> (ballot, value).
    std::vector<std::tuple<uint64_t, Ballot, std::string>> accepted;
    // Chosen entries the preparer might be missing.
    std::vector<std::pair<uint64_t, std::string>> chosen;
  };
  struct AcceptReq {
    Ballot ballot;
    uint64_t slot = 0;
    std::string value;
  };
  struct AcceptReply {
    bool accepted = false;
    Ballot promised_ballot;
  };
  struct LearnMsg {
    uint64_t slot = 0;
    std::string value;
  };
  struct HeartbeatMsg {
    Ballot ballot;
    sim::NodeId leader = 0;
    uint64_t chosen_watermark = 0;  // leader's contiguous chosen prefix
  };
  struct CatchupReq {
    uint64_t from_slot = 0;
  };
  struct CatchupReply {
    std::vector<std::pair<uint64_t, std::string>> chosen;
  };

  Server* FindServer(sim::NodeId node);
  const Server* FindServer(sim::NodeId node) const;
  /// Global metrics registry of the owning simulator (paxos.* instruments).
  obs::MetricsRegistry& Obs();
  void RegisterHandlers(Server* server);
  void ScheduleElectionCheck(Server* server);
  void StartElection(Server* server);
  void BecomeLeader(Server* server,
                    const std::vector<PrepareReply>& promises,
                    uint64_t from_slot);
  void SendHeartbeats(Server* server);
  void ProposeInSlot(Server* server, uint64_t slot, std::string encoded,
                     std::shared_ptr<PendingProposal> pending);
  void OnChosen(Server* server, uint64_t slot, const std::string& value);
  void ApplyReady(Server* server);
  void StepDown(Server* server, const Ballot& seen);

  // CrashParticipant: amnesia crash drops all volatile server state; restart
  // replays the acceptor journal and re-applies the chosen prefix.
  void OnCrash(uint32_t node) override;
  void OnRestart(uint32_t node) override;
  void JournalPromise(Server* server, const Ballot& ballot);
  void JournalAccept(Server* server, uint64_t slot, const Ballot& ballot,
                     const std::string& value);
  void JournalChosen(Server* server, uint64_t slot, const std::string& value);

  static std::string EncodeCommand(const Command& cmd);
  static Result<Command> DecodeCommand(const std::string& bytes);

  sim::Rpc* rpc_;
  PaxosOptions options_;
  // Pre-interned RPC methods / message types (resolved once in the ctor).
  sim::MethodId m_client_proposal_ = 0;
  sim::MethodId m_prepare_ = 0;
  sim::MethodId m_accept_ = 0;
  sim::MethodId m_catchup_ = 0;
  sim::MsgType t_learn_ = 0;
  sim::MsgType t_heartbeat_ = 0;
  std::vector<std::unique_ptr<Server>> servers_;
  std::map<sim::NodeId, Server*> by_node_;
  PaxosStats stats_;
  sim::CrashRegistrar crash_registrar_;
  Rng rng_;
  uint64_t next_op_id_ = 1;
  bool started_ = false;
};

/// Thin client that tracks the leader hint and retries redirected or
/// timed-out proposals. This is what examples and benches use.
class PaxosKvClient {
 public:
  PaxosKvClient(PaxosCluster* cluster, sim::Simulator* sim,
                sim::NodeId client_node, std::vector<sim::NodeId> servers);

  using PutCallback = std::function<void(Result<uint64_t>)>;  // slot
  using GetCallback = std::function<void(Result<std::string>)>;

  void Put(const std::string& key, std::string value, PutCallback done);
  void Get(const std::string& key, GetCallback done);

  /// Submits an arbitrary command with the full retry/leader-steering logic
  /// behind Put/Get. Stamps op_id when 0 so retries dedup. This is how the
  /// membership config service runs kPutIfAbsent epoch claims through the
  /// consensus group.
  void Execute(Command cmd, std::function<void(Result<Execution>)> done);

 private:
  static constexpr int kMaxAttempts = 10;

  void Submit(Command cmd, int attempts_left,
              std::function<void(Result<Execution>)> done);
  /// First non-suspected server starting at preferred_; falls back to
  /// preferred_ when the detector suspects everyone.
  size_t PickServer() const;

  PaxosCluster* cluster_;
  sim::Simulator* sim_;
  sim::NodeId client_node_;
  std::vector<sim::NodeId> servers_;
  size_t preferred_ = 0;  // index of last known-good server
  uint64_t next_op_ = 1;
  // Client-side resilience: proposal outcomes feed a per-server phi-accrual
  // detector so leader probing skips servers that stopped answering, and
  // retries back off exponentially with jitter instead of a fixed pause.
  resilience::PhiAccrualDetector detector_;
  resilience::RetryPolicy retry_;
};

}  // namespace evc::consensus

#endif  // EVC_CONSENSUS_PAXOS_H_
