#include "consensus/paxos.h"

#include <algorithm>
#include <cstdlib>

#include "common/encoding.h"
#include "common/logging.h"

namespace evc::consensus {

namespace {
constexpr char kClientProposal[] = "px.client";
constexpr char kPrepare[] = "px.prepare";
constexpr char kAccept[] = "px.accept";
constexpr char kLearn[] = "px.learn";
constexpr char kHeartbeat[] = "px.heartbeat";
constexpr char kCatchup[] = "px.catchup";

// Acceptor journal record tags (first byte of each WAL record).
constexpr char kWalPromise = 'P';  // [round][node]
constexpr char kWalAccept = 'A';   // [slot][round][node][value]
constexpr char kWalChosen = 'C';   // [slot][value]
}  // namespace

PaxosCluster::PaxosCluster(sim::Rpc* rpc, PaxosOptions options)
    : rpc_(rpc),
      options_(options),
      rng_(rpc->simulator()->rng().Fork(0x9a905)) {
  EVC_CHECK(rpc_ != nullptr);
  m_client_proposal_ = rpc_->InternMethod(kClientProposal);
  m_prepare_ = rpc_->InternMethod(kPrepare);
  m_accept_ = rpc_->InternMethod(kAccept);
  m_catchup_ = rpc_->InternMethod(kCatchup);
  t_learn_ = rpc_->network()->InternType(kLearn);
  t_heartbeat_ = rpc_->network()->InternType(kHeartbeat);
}

obs::MetricsRegistry& PaxosCluster::Obs() {
  return rpc_->simulator()->metrics().global();
}

PaxosCluster::~PaxosCluster() = default;

sim::NodeId PaxosCluster::AddServer() {
  EVC_CHECK(!started_);
  auto server = std::make_unique<Server>();
  server->node = rpc_->network()->AddNode();
  server->index = static_cast<uint32_t>(servers_.size());
  RegisterHandlers(server.get());
  by_node_[server->node] = server.get();
  if (options_.crash_amnesia) {
    crash_registrar_.Register(rpc_->simulator(), server->node, this);
  }
  servers_.push_back(std::move(server));
  return servers_.back()->node;
}

std::vector<sim::NodeId> PaxosCluster::AddServers(int count) {
  std::vector<sim::NodeId> nodes;
  for (int i = 0; i < count; ++i) nodes.push_back(AddServer());
  return nodes;
}

PaxosCluster::Server* PaxosCluster::FindServer(sim::NodeId node) {
  auto it = by_node_.find(node);
  return it == by_node_.end() ? nullptr : it->second;
}
const PaxosCluster::Server* PaxosCluster::FindServer(sim::NodeId node) const {
  auto it = by_node_.find(node);
  return it == by_node_.end() ? nullptr : it->second;
}

std::string PaxosCluster::EncodeCommand(const Command& cmd) {
  std::string out;
  out.push_back(static_cast<char>(cmd.type));
  PutLengthPrefixed(&out, cmd.key);
  PutLengthPrefixed(&out, cmd.value);
  PutVarint64(&out, cmd.op_id);
  return out;
}

Result<Command> PaxosCluster::DecodeCommand(const std::string& bytes) {
  if (bytes.empty()) return Status::Corruption("empty command");
  Command cmd;
  cmd.type = static_cast<Command::Type>(bytes[0]);
  Decoder dec(std::string_view(bytes).substr(1));
  EVC_RETURN_IF_ERROR(dec.GetLengthPrefixed(&cmd.key));
  EVC_RETURN_IF_ERROR(dec.GetLengthPrefixed(&cmd.value));
  EVC_RETURN_IF_ERROR(dec.GetVarint64(&cmd.op_id));
  return cmd;
}

namespace {
// Contiguous chosen prefix length (first unchosen slot index).
template <typename SlotMap>
uint64_t WatermarkOf(const SlotMap& slots) {
  uint64_t w = 0;
  auto it = slots.find(w);
  while (it != slots.end() && it->second.chosen) {
    ++w;
    it = slots.find(w);
  }
  return w;
}
}  // namespace

void PaxosCluster::RegisterHandlers(Server* server) {
  const sim::NodeId node = server->node;

  rpc_->RegisterHandler(
      node, m_prepare_,
      [this, server](sim::NodeId, sim::Payload req, sim::RpcResponder respond) {
        auto prepare = std::move(req).Take<PrepareReq>();
        PrepareReply reply;
        if (prepare.ballot > server->promised) {
          server->promised = prepare.ballot;
          // Journal before the ack leaves: a restarted acceptor must still
          // honor this promise or two leaders can both reach majority.
          JournalPromise(server, server->promised);
          reply.promised = true;
          for (const auto& [slot, state] : server->slots) {
            if (slot < prepare.from_slot) continue;
            if (state.chosen) {
              reply.chosen.emplace_back(slot, state.chosen_value);
            } else if (state.has_accepted) {
              reply.accepted.emplace_back(slot, state.accepted_ballot,
                                          state.accepted_value);
            }
          }
        }
        reply.promised_ballot = server->promised;
        respond(std::move(reply));
      });

  rpc_->RegisterHandler(
      node, m_accept_,
      [this, server](sim::NodeId, sim::Payload req, sim::RpcResponder respond) {
        auto accept = std::move(req).Take<AcceptReq>();
        AcceptReply reply;
        if (accept.ballot >= server->promised) {
          server->promised = accept.ballot;
          SlotState& state = server->slots[accept.slot];
          if (!state.chosen) {
            state.accepted_ballot = accept.ballot;
            state.accepted_value = accept.value;
            state.has_accepted = true;
            JournalAccept(server, accept.slot, accept.ballot, accept.value);
          } else {
            // Nothing accepted, but the promise still advanced.
            JournalPromise(server, server->promised);
          }
          reply.accepted = true;
        } else {
          // Ballot conflict: a competing (would-be) leader holds a higher
          // promise at this acceptor.
          Obs().CounterFor("paxos.accept_conflicts").Inc();
        }
        reply.promised_ballot = server->promised;
        respond(reply);
      });

  rpc_->network()->RegisterHandler(node, t_learn_, [this,
                                                  server](sim::Message msg) {
    auto learn = std::move(msg.payload).Take<LearnMsg>();
    OnChosen(server, learn.slot, learn.value);
  });

  rpc_->network()->RegisterHandler(
      node, t_heartbeat_, [this, server](sim::Message msg) {
        auto hb = std::move(msg.payload).Take<HeartbeatMsg>();
        if (hb.ballot >= server->leader_ballot) {
          server->leader_ballot = hb.ballot;
          server->leader_hint = hb.leader;
          server->has_leader_hint = true;
          server->last_heartbeat = rpc_->simulator()->Now();
          if (server->is_leader && hb.ballot > server->ballot) {
            StepDown(server, hb.ballot);
          }
          // Catch up if the leader has chosen entries we lack.
          const uint64_t my_watermark = WatermarkOf(server->slots);
          if (hb.chosen_watermark > my_watermark &&
              hb.leader != server->node) {
            ++stats_.catchups;
            Obs().CounterFor("paxos.catchups").Inc();
            CatchupReq req{my_watermark};
            rpc_->Call(server->node, hb.leader, m_catchup_, req,
                       4 * options_.rpc_timeout,
                       [this, server](Result<sim::Payload> r) {
                         if (!r.ok()) return;
                         auto reply = std::move(r).value().Take<CatchupReply>();
                         for (const auto& [slot, value] : reply.chosen) {
                           OnChosen(server, slot, value);
                         }
                       });
          }
        }
      });

  rpc_->RegisterHandler(
      node, m_catchup_,
      [server](sim::NodeId, sim::Payload req, sim::RpcResponder respond) {
        auto catchup = std::move(req).Take<CatchupReq>();
        CatchupReply reply;
        for (const auto& [slot, state] : server->slots) {
          if (slot >= catchup.from_slot && state.chosen) {
            reply.chosen.emplace_back(slot, state.chosen_value);
          }
        }
        respond(std::move(reply));
      });

  rpc_->RegisterHandler(
      node, m_client_proposal_,
      [this, server](sim::NodeId, sim::Payload req, sim::RpcResponder respond) {
        auto cmd = std::move(req).Take<Command>();
        if (!server->is_leader) {
          std::string hint = "not leader";
          if (server->has_leader_hint) {
            hint += "; hint=" + std::to_string(server->leader_hint);
          }
          respond(Status::FailedPrecondition(hint));
          return;
        }
        auto pending = std::make_shared<PendingProposal>();
        pending->slot = server->next_slot++;
        pending->encoded = EncodeCommand(cmd);
        pending->op_id = cmd.op_id;
        pending->done = [respond](Result<Execution> r) {
          if (r.ok()) {
            respond(std::move(r).value());
          } else {
            respond(r.status());
          }
        };
        server->in_flight[pending->slot] = pending;
        // Proposal-level timeout.
        pending->timeout_event = rpc_->simulator()->ScheduleAfter(
            options_.proposal_timeout, [this, server, pending] {
              if (pending->decided) return;
              pending->decided = true;
              server->in_flight.erase(pending->slot);
              ++stats_.proposals_failed;
              Obs().CounterFor("paxos.proposals_failed").Inc();
              pending->done(Status::TimedOut("proposal timed out"));
            });
        ProposeInSlot(server, pending->slot, pending->encoded, pending);
      });
}

void PaxosCluster::Start() {
  started_ = true;
  sim::Simulator* sim = rpc_->simulator();
  for (auto& server_ptr : servers_) {
    Server* server = server_ptr.get();
    server->last_heartbeat = sim->Now();
    ScheduleElectionCheck(server);
  }
  // Bootstrap: server 0 runs for leadership immediately.
  sim->ScheduleAfter(1, [this] { StartElection(servers_[0].get()); });
}

void PaxosCluster::ScheduleElectionCheck(Server* server) {
  sim::Simulator* sim = rpc_->simulator();
  const sim::Time jitter = static_cast<sim::Time>(
      rng_.NextBounded(static_cast<uint64_t>(options_.election_timeout)));
  sim->ScheduleAfter(options_.election_timeout + jitter, [this, server] {
    sim::Simulator* sim2 = rpc_->simulator();
    if (rpc_->network()->IsNodeUp(server->node) && !server->is_leader &&
        !server->electing &&
        sim2->Now() - server->last_heartbeat > options_.election_timeout) {
      StartElection(server);
    }
    ScheduleElectionCheck(server);
  });
}

void PaxosCluster::StartElection(Server* server) {
  if (!rpc_->network()->IsNodeUp(server->node)) return;
  server->electing = true;
  ++stats_.elections_started;
  Obs().CounterFor("paxos.elections").Inc();
  const uint64_t round =
      std::max({server->promised.round, server->ballot.round,
                server->leader_ballot.round}) +
      1;
  server->ballot = Ballot{round, server->index};
  const uint64_t from_slot = WatermarkOf(server->slots);

  struct ElectionState {
    std::vector<PrepareReply> promises;
    int replies = 0;
    bool done = false;
    Ballot ballot;
  };
  auto state = std::make_shared<ElectionState>();
  state->ballot = server->ballot;
  const int total = static_cast<int>(servers_.size());
  const int majority = total / 2 + 1;

  PrepareReq req{server->ballot, from_slot};
  for (auto& peer : servers_) {
    rpc_->Call(
        server->node, peer->node, m_prepare_, req, options_.rpc_timeout,
        [this, server, state, majority, total, from_slot](
            Result<sim::Payload> r) {
          ++state->replies;
          if (state->done) return;
          // A newer election at this server supersedes this one.
          if (server->ballot != state->ballot) {
            state->done = true;
            return;
          }
          if (r.ok()) {
            auto reply = std::move(r).value().Take<PrepareReply>();
            if (reply.promised) {
              state->promises.push_back(std::move(reply));
            } else if (reply.promised_ballot > server->ballot) {
              // Lost to a higher ballot: abandon.
              state->done = true;
              server->electing = false;
              return;
            }
          }
          if (static_cast<int>(state->promises.size()) >= majority) {
            state->done = true;
            BecomeLeader(server, state->promises, from_slot);
          } else if (state->replies == total) {
            state->done = true;
            server->electing = false;  // retry on next election check
          }
        });
  }
}

void PaxosCluster::BecomeLeader(Server* server,
                                const std::vector<PrepareReply>& promises,
                                uint64_t from_slot) {
  server->is_leader = true;
  server->electing = false;
  server->has_leader_hint = true;
  server->leader_hint = server->node;
  server->leader_ballot = server->ballot;
  ++stats_.leaderships_won;
  Obs().CounterFor("paxos.leaderships_won").Inc();

  // Adopt chosen entries and the highest-ballot accepted value per open slot.
  std::map<uint64_t, std::pair<Ballot, std::string>> open;
  uint64_t max_slot_seen = from_slot == 0 ? 0 : from_slot - 1;
  bool any_slot = from_slot > 0;
  for (const auto& promise : promises) {
    for (const auto& [slot, value] : promise.chosen) {
      OnChosen(server, slot, value);
      max_slot_seen = std::max(max_slot_seen, slot);
      any_slot = true;
    }
    for (const auto& [slot, ballot, value] : promise.accepted) {
      auto it = open.find(slot);
      if (it == open.end() || ballot > it->second.first) {
        open[slot] = {ballot, value};
      }
      max_slot_seen = std::max(max_slot_seen, slot);
      any_slot = true;
    }
  }
  server->next_slot = any_slot ? max_slot_seen + 1 : from_slot;

  // Re-propose open values; fill holes with no-ops so the log has no gaps.
  for (uint64_t slot = WatermarkOf(server->slots); slot < server->next_slot;
       ++slot) {
    if (server->slots.count(slot) && server->slots[slot].chosen) continue;
    std::string value;
    auto it = open.find(slot);
    if (it != open.end()) {
      value = it->second.second;
    } else {
      Command noop;
      noop.type = Command::Type::kNoop;
      value = EncodeCommand(noop);
    }
    ProposeInSlot(server, slot, value, nullptr);
  }

  SendHeartbeats(server);
}

void PaxosCluster::SendHeartbeats(Server* server) {
  if (!server->is_leader || !rpc_->network()->IsNodeUp(server->node)) return;
  HeartbeatMsg hb;
  hb.ballot = server->ballot;
  hb.leader = server->node;
  hb.chosen_watermark = WatermarkOf(server->slots);
  for (auto& peer : servers_) {
    if (peer->node == server->node) continue;
    rpc_->network()->Send(server->node, peer->node, t_heartbeat_, hb);
  }
  server->last_heartbeat = rpc_->simulator()->Now();
  rpc_->simulator()->ScheduleAfter(options_.heartbeat_interval,
                                   [this, server] { SendHeartbeats(server); });
}

void PaxosCluster::ProposeInSlot(Server* server, uint64_t slot,
                                 std::string encoded,
                                 std::shared_ptr<PendingProposal> pending) {
  // If we have already promised a higher ballot, we are deposed: accepting
  // our own proposal would break the promise (and Paxos safety).
  if (server->ballot < server->promised) {
    StepDown(server, server->promised);  // fails `pending` via in_flight
    return;
  }
  // Leader accepts locally first (it is an acceptor too).
  SlotState& local = server->slots[slot];
  if (!local.chosen) {
    local.accepted_ballot = server->ballot;
    local.accepted_value = encoded;
    local.has_accepted = true;
    JournalAccept(server, slot, server->ballot, encoded);
  }
  if (server->promised < server->ballot) {
    server->promised = server->ballot;
    JournalPromise(server, server->promised);
  }

  struct AcceptState {
    int acks = 1;  // self
    int replies = 1;
    bool done = false;
  };
  auto state = std::make_shared<AcceptState>();
  const int total = static_cast<int>(servers_.size());
  const int majority = total / 2 + 1;
  const Ballot ballot = server->ballot;

  if (state->acks >= majority) {
    state->done = true;
    OnChosen(server, slot, encoded);
    return;  // single-node cluster
  }

  AcceptReq req{ballot, slot, encoded};
  for (auto& peer : servers_) {
    if (peer->node == server->node) continue;
    rpc_->Call(server->node, peer->node, m_accept_, req, options_.rpc_timeout,
               [this, server, state, majority, total, slot, encoded, ballot,
                pending](Result<sim::Payload> r) {
                 ++state->replies;
                 if (state->done) return;
                 if (r.ok()) {
                   auto reply =
                       std::move(r).value().Take<AcceptReply>();
                   if (reply.accepted) {
                     ++state->acks;
                   } else if (reply.promised_ballot > ballot) {
                     state->done = true;
                     StepDown(server, reply.promised_ballot);
                     return;
                   }
                 }
                 if (state->acks >= majority) {
                   state->done = true;
                   OnChosen(server, slot, encoded);
                   // Spread the decision.
                   LearnMsg learn{slot, encoded};
                   for (auto& p : servers_) {
                     if (p->node != server->node) {
                       rpc_->network()->Send(server->node, p->node, t_learn_,
                                             learn);
                     }
                   }
                 } else if (state->replies == total) {
                   state->done = true;
                   // No majority this round (loss / crashes / partition).
                   // The slot MUST eventually be decided or it becomes a
                   // permanent hole blocking application of every later
                   // slot — the leader re-proposes the same value while it
                   // remains leader. The client-facing proposal timeout
                   // fires independently if this drags on.
                   sim::Simulator* sim = rpc_->simulator();
                   const Ballot my_ballot = server->ballot;
                   sim->ScheduleAfter(
                       100 * sim::kMillisecond,
                       [this, server, slot, encoded, pending, my_ballot] {
                         if (!server->is_leader ||
                             server->ballot != my_ballot) {
                           return;  // deposed: next leader fills the slot
                         }
                         auto it = server->slots.find(slot);
                         if (it != server->slots.end() && it->second.chosen) {
                           return;  // a learn already arrived
                         }
                         ProposeInSlot(server, slot, encoded, pending);
                       });
                 }
               });
  }
}

void PaxosCluster::OnChosen(Server* server, uint64_t slot,
                            const std::string& value) {
  SlotState& state = server->slots[slot];
  if (state.chosen) {
    if (state.chosen_value != value) {
      // A slot can only ever be chosen with one value — with journaled
      // acceptors this is a hard invariant. With journaling off and amnesia
      // crashes on, the unsound acceptor genuinely allows it; count the
      // violation (the paxos_amnesia test pins this) and keep the first
      // value so the run can finish.
      if (options_.journal_acceptor_state) {
        EVC_CHECK(state.chosen_value == value);
      }
      ++stats_.chosen_conflicts;
      Obs().CounterFor("paxos.chosen_conflicts").Inc();
    }
    return;
  }
  state.chosen = true;
  state.chosen_value = value;
  JournalChosen(server, slot, value);
  ApplyReady(server);
}

void PaxosCluster::ApplyReady(Server* server) {
  for (;;) {
    auto it = server->slots.find(server->applied_index);
    if (it == server->slots.end() || !it->second.chosen) break;
    const uint64_t slot = server->applied_index;
    auto cmd_or = DecodeCommand(it->second.chosen_value);
    EVC_CHECK(cmd_or.ok());
    const Command& cmd = *cmd_or;
    Execution exec;
    exec.slot = slot;
    switch (cmd.type) {
      case Command::Type::kNoop:
        break;
      case Command::Type::kPut:
        if (cmd.op_id == 0 || server->applied_ops.insert(cmd.op_id).second) {
          server->kv[cmd.key] = cmd.value;
        } else {
          Obs().CounterFor("paxos.dedup_hits").Inc();
        }
        break;
      case Command::Type::kDelete:
        if (cmd.op_id == 0 || server->applied_ops.insert(cmd.op_id).second) {
          server->kv.erase(cmd.key);
        } else {
          Obs().CounterFor("paxos.dedup_hits").Inc();
        }
        break;
      case Command::Type::kGet: {
        auto kv_it = server->kv.find(cmd.key);
        if (kv_it != server->kv.end()) {
          exec.found = true;
          exec.value = kv_it->second;
        }
        break;
      }
      case Command::Type::kPutIfAbsent: {
        // Conditional create: found=false means this command created the
        // key. A dedup hit means an earlier apply of the SAME op won the
        // race, so a retry must still observe "created".
        auto kv_it = server->kv.find(cmd.key);
        if (cmd.op_id != 0 && server->applied_ops.count(cmd.op_id) > 0) {
          Obs().CounterFor("paxos.dedup_hits").Inc();
          exec.found = false;
          exec.value = cmd.value;
        } else if (kv_it == server->kv.end()) {
          if (cmd.op_id != 0) server->applied_ops.insert(cmd.op_id);
          server->kv[cmd.key] = cmd.value;
          exec.found = false;
          exec.value = cmd.value;
        } else {
          exec.found = true;
          exec.value = kv_it->second;
        }
        break;
      }
    }
    ++stats_.commands_applied;
    Obs().CounterFor("paxos.commands_applied").Inc();
    ++server->applied_index;
    // Complete the client's proposal if this server coordinated it.
    auto pending_it = server->in_flight.find(slot);
    if (pending_it != server->in_flight.end()) {
      auto pending = pending_it->second;
      server->in_flight.erase(pending_it);
      if (!pending->decided) {
        pending->decided = true;
        rpc_->simulator()->Cancel(pending->timeout_event);
        if (pending->op_id == cmd.op_id) {
          ++stats_.proposals_ok;
          Obs().CounterFor("paxos.proposals_ok").Inc();
          pending->done(exec);
        } else {
          // Another leader filled our slot with a different command.
          ++stats_.proposals_failed;
          Obs().CounterFor("paxos.proposals_failed").Inc();
          pending->done(Status::Aborted("slot taken by another command"));
        }
      }
    }
  }
}

void PaxosCluster::JournalPromise(Server* server, const Ballot& ballot) {
  if (!options_.journal_acceptor_state) return;
  std::string rec;
  rec.push_back(kWalPromise);
  PutVarint64(&rec, ballot.round);
  PutVarint64(&rec, ballot.node);
  server->wal.Append(rec);
}

void PaxosCluster::JournalAccept(Server* server, uint64_t slot,
                                 const Ballot& ballot,
                                 const std::string& value) {
  if (!options_.journal_acceptor_state) return;
  std::string rec;
  rec.push_back(kWalAccept);
  PutVarint64(&rec, slot);
  PutVarint64(&rec, ballot.round);
  PutVarint64(&rec, ballot.node);
  PutLengthPrefixed(&rec, value);
  server->wal.Append(rec);
}

void PaxosCluster::JournalChosen(Server* server, uint64_t slot,
                                 const std::string& value) {
  if (!options_.journal_acceptor_state) return;
  std::string rec;
  rec.push_back(kWalChosen);
  PutVarint64(&rec, slot);
  PutLengthPrefixed(&rec, value);
  server->wal.Append(rec);
}

void PaxosCluster::OnCrash(uint32_t node) {
  Server* server = FindServer(node);
  EVC_CHECK(server != nullptr);
  // Account for everything volatile that evaporates.
  uint64_t dropped = 0;
  for (const auto& [slot, state] : server->slots) {
    dropped += state.accepted_value.size() + state.chosen_value.size();
  }
  for (const auto& [key, value] : server->kv) {
    dropped += key.size() + value.size();
  }
  Obs().CounterFor("crash.state_dropped_bytes").Inc(dropped);
  // Neutralize in-flight proposal state. Do NOT invoke the callbacks: the
  // coordinator just lost power, so its client's RPC times out naturally.
  for (auto& [slot, pending] : server->in_flight) {
    if (!pending->decided) {
      pending->decided = true;
      rpc_->simulator()->Cancel(pending->timeout_event);
    }
  }
  server->in_flight.clear();
  server->promised = Ballot{};
  server->slots.clear();
  server->applied_index = 0;
  server->kv.clear();
  server->applied_ops.clear();
  server->is_leader = false;
  server->electing = false;
  server->ballot = Ballot{};
  server->next_slot = 0;
  server->leader_ballot = Ballot{};
  server->leader_hint = 0;
  server->has_leader_hint = false;
}

void PaxosCluster::OnRestart(uint32_t node) {
  Server* server = FindServer(node);
  EVC_CHECK(server != nullptr);
  std::vector<std::string> records;
  uint64_t valid_prefix = 0;
  EVC_CHECK(server->wal.ReadAll(&records, &valid_prefix).ok());
  server->wal.TruncateTo(valid_prefix);
  for (const std::string& rec : records) {
    EVC_CHECK(!rec.empty());
    Decoder dec(std::string_view(rec).substr(1));
    switch (rec[0]) {
      case kWalPromise: {
        Ballot b;
        EVC_CHECK(dec.GetVarint64(&b.round).ok());
        uint64_t bnode = 0;
        EVC_CHECK(dec.GetVarint64(&bnode).ok());
        b.node = static_cast<uint32_t>(bnode);
        if (b > server->promised) server->promised = b;
        break;
      }
      case kWalAccept: {
        uint64_t slot = 0;
        Ballot b;
        uint64_t bnode = 0;
        std::string value;
        EVC_CHECK(dec.GetVarint64(&slot).ok());
        EVC_CHECK(dec.GetVarint64(&b.round).ok());
        EVC_CHECK(dec.GetVarint64(&bnode).ok());
        b.node = static_cast<uint32_t>(bnode);
        EVC_CHECK(dec.GetLengthPrefixed(&value).ok());
        SlotState& state = server->slots[slot];
        if (!state.chosen) {
          state.accepted_ballot = b;
          state.accepted_value = std::move(value);
          state.has_accepted = true;
        }
        if (b > server->promised) server->promised = b;
        break;
      }
      case kWalChosen: {
        uint64_t slot = 0;
        std::string value;
        EVC_CHECK(dec.GetVarint64(&slot).ok());
        EVC_CHECK(dec.GetLengthPrefixed(&value).ok());
        SlotState& state = server->slots[slot];
        state.chosen = true;
        state.chosen_value = std::move(value);
        break;
      }
      default:
        EVC_CHECK(false);
    }
  }
  Obs().CounterFor("wal.replayed_records").Inc(records.size());
  // Re-apply the contiguous chosen prefix to rebuild the state machine (the
  // op_id dedup set rebuilds with it, so replay stays exactly-once).
  ApplyReady(server);
  // Fresh failure-detection clock: give the incumbent a full election
  // timeout to make contact before this node runs for leadership.
  server->last_heartbeat = rpc_->simulator()->Now();
}

void PaxosCluster::StepDown(Server* server, const Ballot& seen) {
  if (seen > server->leader_ballot) server->leader_ballot = seen;
  if (!server->is_leader && !server->electing) return;
  server->is_leader = false;
  server->electing = false;
  // Fail in-flight proposals; clients retry against the new leader.
  auto in_flight = std::move(server->in_flight);
  server->in_flight.clear();
  for (auto& [slot, pending] : in_flight) {
    if (!pending->decided) {
      pending->decided = true;
      rpc_->simulator()->Cancel(pending->timeout_event);
      ++stats_.proposals_failed;
      Obs().CounterFor("paxos.proposals_failed").Inc();
      pending->done(Status::Aborted("leadership lost"));
    }
  }
}

void PaxosCluster::Propose(sim::NodeId client, sim::NodeId server,
                           Command command, ProposeCallback done) {
  if (command.op_id == 0) command.op_id = next_op_id_++;
  rpc_->Call(client, server, m_client_proposal_, std::move(command),
             options_.proposal_timeout + 4 * options_.rpc_timeout,
             [done](Result<sim::Payload> r) {
               if (!r.ok()) {
                 done(r.status());
               } else {
                 done(std::move(r).value().Take<Execution>());
               }
             });
}

bool PaxosCluster::IsLeader(sim::NodeId node) const {
  const Server* server = FindServer(node);
  EVC_CHECK(server != nullptr);
  return server->is_leader;
}

std::optional<sim::NodeId> PaxosCluster::CurrentLeader() const {
  for (const auto& server : servers_) {
    if (server->is_leader && rpc_->network()->IsNodeUp(server->node)) {
      return server->node;
    }
  }
  return std::nullopt;
}

std::optional<std::string> PaxosCluster::ChosenAt(sim::NodeId node,
                                                  uint64_t slot) const {
  const Server* server = FindServer(node);
  EVC_CHECK(server != nullptr);
  auto it = server->slots.find(slot);
  if (it == server->slots.end() || !it->second.chosen) return std::nullopt;
  return it->second.chosen_value;
}

std::optional<std::string> PaxosCluster::AppliedValue(
    sim::NodeId node, const std::string& key) const {
  const Server* server = FindServer(node);
  EVC_CHECK(server != nullptr);
  auto it = server->kv.find(key);
  if (it == server->kv.end()) return std::nullopt;
  return it->second;
}

uint64_t PaxosCluster::AppliedIndex(sim::NodeId node) const {
  const Server* server = FindServer(node);
  EVC_CHECK(server != nullptr);
  return server->applied_index;
}

// ---------------------------------------------------------------------------
// PaxosKvClient
// ---------------------------------------------------------------------------

PaxosKvClient::PaxosKvClient(PaxosCluster* cluster, sim::Simulator* sim,
                             sim::NodeId client_node,
                             std::vector<sim::NodeId> servers)
    : cluster_(cluster),
      sim_(sim),
      client_node_(client_node),
      servers_(std::move(servers)),
      detector_(resilience::DetectorOptions{}),
      // Seeded from the client's node id so adding client-side resilience
      // leaves every other component's random stream untouched.
      retry_(
          [] {
            resilience::RetryOptions r;
            r.initial_backoff = 50 * sim::kMillisecond;
            r.max_backoff = 800 * sim::kMillisecond;
            r.jitter = 0.3;
            return r;
          }(),
          0xbac0ff5eULL ^
              (uint64_t{client_node} + 1) * 0x9e3779b97f4a7c15ULL) {
  EVC_CHECK(!servers_.empty());
}

size_t PaxosKvClient::PickServer() const {
  for (size_t i = 0; i < servers_.size(); ++i) {
    const size_t idx = (preferred_ + i) % servers_.size();
    if (!detector_.ConsecutiveFailuresExceeded(servers_[idx])) return idx;
  }
  return preferred_ % servers_.size();
}

void PaxosKvClient::Submit(Command cmd, int attempts_left,
                           std::function<void(Result<Execution>)> done) {
  if (attempts_left <= 0) {
    done(Status::Unavailable("paxos retries exhausted"));
    return;
  }
  preferred_ = PickServer();
  const sim::NodeId target = servers_[preferred_ % servers_.size()];
  cluster_->Propose(
      client_node_, target, cmd,
      [this, cmd, target, attempts_left, done](Result<Execution> r) {
        // Any reply — success, NotLeader, app error — proves the server is
        // alive; only silence (timeout) counts against it.
        // The client runs no heartbeat stream, so only the detector's
        // consecutive-failure fallback applies: replies clear it, timeouts
        // feed it (phi over request interarrivals would convict idle peers).
        const bool alive = r.ok() || !r.status().IsTimedOut();
        if (alive) {
          detector_.OnAlive(target);
        } else {
          detector_.OnFailure(target, sim_->Now());
        }
        if (r.ok()) {
          done(std::move(r));
          return;
        }
        const Status& st = r.status();
        if (st.IsFailedPrecondition()) {
          // Follow the leader hint if present, else try the next server.
          const std::string& msg = st.message();
          const size_t pos = msg.find("hint=");
          bool hinted = false;
          if (pos != std::string::npos) {
            const sim::NodeId hint = static_cast<sim::NodeId>(
                std::strtoul(msg.c_str() + pos + 5, nullptr, 10));
            for (size_t i = 0; i < servers_.size(); ++i) {
              if (servers_[i] == hint) {
                preferred_ = i;
                hinted = true;
              }
            }
          }
          if (!hinted) preferred_ = (preferred_ + 1) % servers_.size();
          Submit(cmd, attempts_left - 1, done);
          return;
        }
        // Timeout / abort / unavailable: exponential backoff with jitter,
        // rotate to the next server, retry. The detector marks a silent
        // server so PickServer skips it on the next attempt.
        preferred_ = (preferred_ + 1) % servers_.size();
        const int retry_number = kMaxAttempts - attempts_left + 1;
        sim_->ScheduleAfter(retry_.BackoffBefore(retry_number),
                            [this, cmd, attempts_left, done] {
                              Submit(cmd, attempts_left - 1, done);
                            });
      });
}

void PaxosKvClient::Put(const std::string& key, std::string value,
                        PutCallback done) {
  Command cmd;
  cmd.type = Command::Type::kPut;
  cmd.key = key;
  cmd.value = std::move(value);
  // One id across all retries: a timed-out attempt may still commit, and the
  // state machine must not apply the retry's duplicate on top of it.
  cmd.op_id = cluster_->MintOpId();
  Submit(cmd, kMaxAttempts, [done](Result<Execution> r) {
    if (r.ok()) {
      done(r->slot);
    } else {
      done(r.status());
    }
  });
}

void PaxosKvClient::Get(const std::string& key, GetCallback done) {
  Command cmd;
  cmd.type = Command::Type::kGet;
  cmd.key = key;
  cmd.op_id = cluster_->MintOpId();
  Submit(cmd, kMaxAttempts, [done](Result<Execution> r) {
    if (!r.ok()) {
      done(r.status());
    } else if (!r->found) {
      done(Status::NotFound("key absent at read slot"));
    } else {
      done(r->value);
    }
  });
}

void PaxosKvClient::Execute(Command cmd,
                            std::function<void(Result<Execution>)> done) {
  if (cmd.op_id == 0) cmd.op_id = cluster_->MintOpId();
  Submit(std::move(cmd), kMaxAttempts, std::move(done));
}

}  // namespace evc::consensus
