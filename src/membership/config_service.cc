#include "membership/config_service.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "sim/simulator.h"

namespace evc::membership {

namespace {

// Config KV layout inside the Paxos state machine: "m/<epoch>" holds the
// encoded view claimed for that epoch (kPutIfAbsent — first writer wins),
// "c" holds the encoded view of the highest committed epoch.
std::string EpochKey(uint64_t epoch) {
  return "m/" + std::to_string(epoch);
}
constexpr char kCommitKey[] = "c";

}  // namespace

ConfigService::ConfigService(sim::Rpc* rpc, consensus::PaxosCluster* paxos,
                             std::vector<sim::NodeId> paxos_servers,
                             ConfigOptions options)
    : rpc_(rpc), options_(options) {
  node_ = rpc_->network()->AddNode();
  client_ = std::make_unique<consensus::PaxosKvClient>(
      paxos, rpc_->simulator(), node_, std::move(paxos_servers));
  m_fetch_ = rpc_->InternMethod("cfg.fetch");
  m_report_ = rpc_->InternMethod("cfg.caughtup");
  t_view_ = rpc_->network()->InternType("cfg.view");

  rpc_->RegisterHandler(
      node_, m_fetch_,
      [this](sim::NodeId, sim::Payload, sim::RpcResponder respond) {
        respond(Snapshot());
      });
  rpc_->RegisterHandler(
      node_, m_report_,
      [this](sim::NodeId from, sim::Payload request,
             sim::RpcResponder respond) {
        const auto req = std::move(request).Take<CatchUpReq>();
        ++stats_.catch_up_reports;
        Obs().CounterFor("cfg.catchup_reports").Inc();
        if (prepared_.has_value() && req.epoch == prepared_->epoch &&
            !committing_) {
          received_reports_.insert(from);
          bool all = true;
          for (sim::NodeId need : required_reports_) {
            if (received_reports_.count(need) == 0) {
              all = false;
              break;
            }
          }
          if (all) StartCommit();
        }
        respond(true);
      });
}

obs::MetricsRegistry& ConfigService::Obs() {
  return rpc_->simulator()->metrics().global();
}

ViewState ConfigService::Snapshot() const {
  ViewState state;
  state.committed = committed_;
  state.has_prepared = prepared_.has_value();
  if (prepared_.has_value()) state.prepared = *prepared_;
  return state;
}

void ConfigService::Bootstrap(std::vector<sim::NodeId> members,
                              DoneCallback done) {
  MembershipView view;
  view.epoch = 1;
  view.members = std::move(members);
  std::sort(view.members.begin(), view.members.end());
  consensus::Command cmd;
  cmd.type = consensus::Command::Type::kPutIfAbsent;
  cmd.key = EpochKey(1);
  cmd.value = view.Encode();
  client_->Execute(
      std::move(cmd),
      [this, view, done](Result<consensus::Execution> r) mutable {
        if (!r.ok()) {
          done(r.status());
          return;
        }
        if (r->found) {
          // Epoch 1 already chosen (e.g. a racing bootstrap): adopt it.
          auto chosen = MembershipView::Decode(r->value);
          if (!chosen.ok()) {
            done(chosen.status());
            return;
          }
          view = *chosen;
        }
        committed_ = std::move(view);
        Broadcast();
        done(Status::OK());
      });
}

Status ConfigService::ProposeJoin(sim::NodeId node, DoneCallback done) {
  if (ReconfigInProgress()) {
    return Status::FailedPrecondition("reconfiguration in flight");
  }
  if (committed_.epoch == 0) {
    return Status::FailedPrecondition("not bootstrapped");
  }
  if (committed_.Contains(node)) {
    return Status::InvalidArgument("node already a member");
  }
  MembershipView view;
  view.epoch = committed_.epoch + 1;
  view.members = committed_.members;
  view.members.push_back(node);
  std::sort(view.members.begin(), view.members.end());
  ProposeView(std::move(view), std::move(done));
  return Status::OK();
}

Status ConfigService::ProposeLeave(sim::NodeId node, DoneCallback done) {
  if (ReconfigInProgress()) {
    return Status::FailedPrecondition("reconfiguration in flight");
  }
  if (!committed_.Contains(node)) {
    return Status::InvalidArgument("node is not a member");
  }
  if (committed_.members.size() <= 1) {
    return Status::FailedPrecondition("cannot remove the last member");
  }
  MembershipView view;
  view.epoch = committed_.epoch + 1;
  view.members = committed_.members;
  view.members.erase(
      std::remove(view.members.begin(), view.members.end(), node),
      view.members.end());
  ProposeView(std::move(view), std::move(done));
  return Status::OK();
}

void ConfigService::ProposeView(MembershipView view, DoneCallback done) {
  proposing_ = true;
  consensus::Command cmd;
  cmd.type = consensus::Command::Type::kPutIfAbsent;
  cmd.key = EpochKey(view.epoch);
  cmd.value = view.Encode();
  client_->Execute(
      std::move(cmd),
      [this, view, done](Result<consensus::Execution> r) {
        proposing_ = false;
        if (!r.ok()) {
          done(r.status());
          return;
        }
        if (r->found) {
          // Single-proposer service: losing the epoch claim means a
          // concurrent proposer exists (or a stale retry resurfaced).
          // Surface it rather than adopting a view we did not build.
          done(Status::Aborted("epoch already claimed"));
          return;
        }
        ++stats_.reconfigs_proposed;
        Obs().CounterFor("cfg.reconfigs_proposed").Inc();
        prepared_ = view;
        committing_ = false;
        received_reports_.clear();
        required_reports_.clear();
        for (sim::NodeId m : committed_.members) required_reports_.insert(m);
        for (sim::NodeId m : view.members) required_reports_.insert(m);
        Broadcast();
        // Conservative fallback: commit even if some reporter never shows
        // up (crashed mid-stream; anti-entropy repairs the remainder).
        const uint64_t epoch = view.epoch;
        rpc_->simulator()->ScheduleAfter(
            options_.catch_up_timeout, [this, epoch] {
              if (prepared_.has_value() && prepared_->epoch == epoch &&
                  !committing_) {
                ++stats_.commit_timeouts;
                Obs().CounterFor("cfg.commit_timeouts").Inc();
                StartCommit();
              }
            });
        done(Status::OK());
      });
}

void ConfigService::StartCommit() {
  EVC_CHECK(prepared_.has_value());
  committing_ = true;
  consensus::Command cmd;
  cmd.type = consensus::Command::Type::kPut;
  cmd.key = kCommitKey;
  cmd.value = prepared_->Encode();
  client_->Execute(
      std::move(cmd), [this](Result<consensus::Execution> r) {
        if (!r.ok()) {
          // The commit record MUST eventually be chosen; retry after a
          // beat (the config Paxos group re-elects within ~1s).
          rpc_->simulator()->ScheduleAfter(sim::kSecond, [this] {
            if (prepared_.has_value() && committing_) StartCommit();
          });
          return;
        }
        if (!prepared_.has_value()) return;  // already flipped (late retry)
        committed_ = *prepared_;
        prepared_.reset();
        committing_ = false;
        received_reports_.clear();
        required_reports_.clear();
        ++stats_.commits;
        Obs().CounterFor("cfg.commits").Inc();
        Broadcast();
      });
}

void ConfigService::Subscribe(sim::NodeId node, ViewHandler handler) {
  EVC_CHECK(subscribers_.count(node) == 0);
  subscribers_[node] = std::move(handler);
  rpc_->network()->RegisterHandler(
      node, t_view_, [this, node](sim::Message msg) {
        auto state = std::move(msg.payload).Take<ViewState>();
        auto it = subscribers_.find(node);
        if (it == subscribers_.end()) return;
        std::optional<MembershipView> prepared;
        if (state.has_prepared) prepared = std::move(state.prepared);
        it->second(state.committed, prepared);
      });
}

void ConfigService::Broadcast() {
  for (const auto& [node, handler] : subscribers_) {
    (void)handler;
    rpc_->network()->Send(node_, node, t_view_, Snapshot());
    ++stats_.view_broadcasts;
  }
  Obs().CounterFor("cfg.view_broadcasts").Inc(subscribers_.size());
}

void ConfigService::Fetch(sim::NodeId from,
                          std::function<void(Result<ViewState>)> done) {
  CatchUpReq req;  // ignored by the handler; any payload works
  rpc_->Call(from, node_, m_fetch_, req, options_.rpc_timeout,
             [done](Result<sim::Payload> r) {
               if (!r.ok()) {
                 done(r.status());
                 return;
               }
               done(std::move(*r).Take<ViewState>());
             });
}

void ConfigService::ReportCatchUp(sim::NodeId reporter, uint64_t epoch,
                                  DoneCallback done) {
  CatchUpReq req;
  req.epoch = epoch;
  rpc_->Call(reporter, node_, m_report_, req, options_.rpc_timeout,
             [done](Result<sim::Payload> r) { done(r.status()); });
}

}  // namespace evc::membership
