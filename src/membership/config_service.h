// Paxos-backed membership configuration service.
//
// Reconfiguration is a first-class consensus decision, not gossip: epoch
// e+1's member set is claimed in the config Paxos group's replicated KV with
// a conditional put (kPutIfAbsent on key "m/<e+1>"), so exactly one proposal
// per epoch can ever win, no matter how proposals race or retry. The service
// then runs a two-phase handoff:
//
//   1. PREPARE — the winning view is published alongside the committed one.
//      Data nodes seeing a prepared view start streaming moved key ranges to
//      their new owners while traffic keeps flowing (writes to in-motion
//      ranges take extra write legs / hinted handoff to the new owners), and
//      report catch-up back here when their outbound delta has drained.
//   2. COMMIT — once every member of old ∪ new has reported (or a
//      conservative timeout fires, counted in cfg.commit_timeouts), the
//      commit record is chosen through Paxos and the committed view flips.
//      Subscribers learn via push broadcast; a periodic pull (Fetch) covers
//      nodes that were crashed or partitioned during the push.
//
// The service itself lives on one sim node and talks to data nodes over the
// simulated network, so partitions and latency faults delay view
// propagation exactly as they would in production. The epoch fence on every
// data-plane RPC is what keeps that delay safe (see DESIGN.md §4.4).

#ifndef EVC_MEMBERSHIP_CONFIG_SERVICE_H_
#define EVC_MEMBERSHIP_CONFIG_SERVICE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "consensus/paxos.h"
#include "membership/view.h"
#include "sim/rpc.h"

namespace evc::membership {

struct ConfigOptions {
  /// How long a prepared view may wait for catch-up reports before the
  /// service commits anyway. Catch-up normally completes in well under a
  /// second; the timeout only matters when a reporter crashed mid-stream
  /// (its durable data survives and anti-entropy repairs the remainder).
  sim::Time catch_up_timeout = 10 * sim::kSecond;
  /// Timeout for subscriber-issued Fetch / catch-up report RPCs.
  sim::Time rpc_timeout = 500 * sim::kMillisecond;
};

struct ConfigStats {
  uint64_t reconfigs_proposed = 0;
  uint64_t commits = 0;
  uint64_t commit_timeouts = 0;
  uint64_t catch_up_reports = 0;
  uint64_t view_broadcasts = 0;
};

/// The full published state: the committed view plus the prepared successor
/// (when a reconfiguration is in flight). This is what broadcasts carry and
/// what Fetch returns.
struct ViewState {
  MembershipView committed;
  bool has_prepared = false;
  MembershipView prepared;
};

class ConfigService {
 public:
  /// Invoked on a subscriber node when a view push or fetch reply lands.
  using ViewHandler = std::function<void(
      const MembershipView& committed,
      const std::optional<MembershipView>& prepared)>;
  using DoneCallback = std::function<void(Status)>;

  /// `paxos` must already have its servers added and started; the service
  /// proposes through them with the standard leader-steering client.
  ConfigService(sim::Rpc* rpc, consensus::PaxosCluster* paxos,
                std::vector<sim::NodeId> paxos_servers,
                ConfigOptions options = {});

  /// The network node the service answers Fetch / catch-up reports on.
  sim::NodeId node() const { return node_; }

  /// Claims epoch 1 with `members` through Paxos. Idempotent: if epoch 1
  /// was already chosen (service restart, racing bootstrap), adopts the
  /// chosen view instead.
  void Bootstrap(std::vector<sim::NodeId> members, DoneCallback done);

  /// True while a proposal or prepared-but-uncommitted view is in flight.
  /// At most one reconfiguration runs at a time; callers must check this
  /// before proposing.
  bool ReconfigInProgress() const {
    return proposing_ || prepared_.has_value();
  }

  const MembershipView& committed() const { return committed_; }
  const std::optional<MembershipView>& prepared() const { return prepared_; }

  /// Proposes epoch committed+1 with `node` added / removed. Returns
  /// immediately with FailedPrecondition when a reconfiguration is already
  /// in flight or the delta is vacuous; otherwise `done` fires once the
  /// view is PREPARED (commit follows asynchronously after catch-up).
  [[nodiscard]] Status ProposeJoin(sim::NodeId node, DoneCallback done);
  [[nodiscard]] Status ProposeLeave(sim::NodeId node, DoneCallback done);

  /// Registers `handler` to run on `node` whenever a view push lands there.
  /// Push delivery rides the simulated network: a crashed or partitioned
  /// subscriber simply misses the push and must Fetch (pull) later.
  void Subscribe(sim::NodeId node, ViewHandler handler);

  /// Pulls the current ViewState over the network from `from`.
  void Fetch(sim::NodeId from, std::function<void(Result<ViewState>)> done);

  /// Reports (over the network, from `reporter`) that the reporter finished
  /// catch-up for prepared epoch `epoch`. `done` receives the service ack.
  void ReportCatchUp(sim::NodeId reporter, uint64_t epoch, DoneCallback done);

  const ConfigStats& stats() const { return stats_; }

 private:
  struct CatchUpReq {
    uint64_t epoch = 0;
  };

  void ProposeView(MembershipView view, DoneCallback done);
  void StartCommit();
  void Broadcast();
  ViewState Snapshot() const;
  obs::MetricsRegistry& Obs();

  sim::Rpc* rpc_;
  ConfigOptions options_;
  sim::NodeId node_ = 0;
  std::unique_ptr<consensus::PaxosKvClient> client_;
  sim::MethodId m_fetch_ = 0;
  sim::MethodId m_report_ = 0;
  sim::MsgType t_view_ = 0;

  MembershipView committed_;
  std::optional<MembershipView> prepared_;
  bool proposing_ = false;
  bool committing_ = false;
  /// Catch-up bookkeeping for the prepared epoch: old ∪ new members must
  /// report before commit (or the timeout fires).
  std::set<sim::NodeId> required_reports_;
  std::set<sim::NodeId> received_reports_;
  /// Ordered by node id: broadcast fan-out order is deterministic.
  std::map<sim::NodeId, ViewHandler> subscribers_;
  ConfigStats stats_;
};

}  // namespace evc::membership

#endif  // EVC_MEMBERSHIP_CONFIG_SERVICE_H_
