// Membership views: the epoch-numbered node sets chosen by the config
// service's Paxos group.
//
// A view is the unit of reconfiguration: epoch e names one exact member set,
// and every data-plane RPC carries the sender's committed epoch so a request
// built against a stale view is rejected-and-retried instead of silently
// served (see DESIGN.md §4.4). Views are encoded as Paxos KV values with the
// shared length-prefixed wire helpers so the config log is replayable.

#ifndef EVC_MEMBERSHIP_VIEW_H_
#define EVC_MEMBERSHIP_VIEW_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/encoding.h"
#include "common/status.h"
#include "sim/network.h"

namespace evc::membership {

/// One membership epoch: a dense view number plus the exact member set.
/// Members are kept sorted so every node derives the identical HashRing
/// (vnode placement is a pure function of the sorted member list).
struct MembershipView {
  uint64_t epoch = 0;
  std::vector<sim::NodeId> members;

  bool Contains(sim::NodeId node) const {
    return std::find(members.begin(), members.end(), node) != members.end();
  }

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, epoch);
    PutVarint64(&out, members.size());
    for (sim::NodeId m : members) PutVarint64(&out, m);
    return out;
  }

  static Result<MembershipView> Decode(const std::string& bytes) {
    MembershipView view;
    Decoder dec(bytes);
    EVC_RETURN_IF_ERROR(dec.GetVarint64(&view.epoch));
    uint64_t count = 0;
    EVC_RETURN_IF_ERROR(dec.GetVarint64(&count));
    view.members.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t node = 0;
      EVC_RETURN_IF_ERROR(dec.GetVarint64(&node));
      view.members.push_back(static_cast<sim::NodeId>(node));
    }
    if (!dec.Done()) return Status::Corruption("trailing bytes in view");
    return view;
  }
};

}  // namespace evc::membership

#endif  // EVC_MEMBERSHIP_VIEW_H_
