#include "crdt/orset.h"

namespace evc::crdt {

// ---------------------------------------------------------------------------
// OrSet (tombstoned)
// ---------------------------------------------------------------------------

void OrSet::Add(const std::string& element) {
  live_[element].insert(Dot{replica_id_, ++next_tag_});
}

void OrSet::Remove(const std::string& element) {
  auto it = live_.find(element);
  if (it == live_.end()) return;
  tombstones_.insert(it->second.begin(), it->second.end());
  live_.erase(it);
}

void OrSet::Compact(const std::string& element) {
  auto it = live_.find(element);
  if (it == live_.end()) return;
  for (auto dot_it = it->second.begin(); dot_it != it->second.end();) {
    if (tombstones_.count(*dot_it)) {
      dot_it = it->second.erase(dot_it);
    } else {
      ++dot_it;
    }
  }
  if (it->second.empty()) live_.erase(it);
}

bool OrSet::Contains(const std::string& element) const {
  auto it = live_.find(element);
  return it != live_.end() && !it->second.empty();
}

void OrSet::Merge(const OrSet& other) {
  tombstones_.insert(other.tombstones_.begin(), other.tombstones_.end());
  for (const auto& [element, dots] : other.live_) {
    live_[element].insert(dots.begin(), dots.end());
  }
  // Apply tombstones to the union.
  std::vector<std::string> keys;
  keys.reserve(live_.size());
  for (const auto& [element, dots] : live_) keys.push_back(element);
  for (const auto& key : keys) Compact(key);
  // next_tag_ is per-replica; merging never needs to advance it because tags
  // are namespaced by replica id.
}

std::vector<std::string> OrSet::Elements() const {
  std::vector<std::string> out;
  out.reserve(live_.size());
  for (const auto& [element, dots] : live_) {
    if (!dots.empty()) out.push_back(element);
  }
  return out;
}

size_t OrSet::size() const { return Elements().size(); }

size_t OrSet::live_dot_count() const {
  size_t n = 0;
  for (const auto& [element, dots] : live_) n += dots.size();
  return n;
}

size_t OrSet::StateBytes() const {
  size_t bytes = tombstones_.size() * 12;
  for (const auto& [element, dots] : live_) {
    bytes += element.size() + dots.size() * 12;
  }
  return bytes;
}

bool OrSet::operator==(const OrSet& other) const {
  return live_ == other.live_ && tombstones_ == other.tombstones_;
}

// ---------------------------------------------------------------------------
// OrSwot (optimized, no tombstones)
// ---------------------------------------------------------------------------

void OrSwot::Add(const std::string& element) {
  const uint64_t counter = vv_.Increment(replica_id_);
  // The fresh dot supersedes all locally observed dots for this element
  // (they remain covered by vv_, so peers learn they were removed).
  entries_[element] = {Dot{replica_id_, counter}};
}

void OrSwot::Remove(const std::string& element) {
  // Observed dots stay summarized in vv_; dropping the entry encodes the
  // removal without a tombstone.
  entries_.erase(element);
}

bool OrSwot::Contains(const std::string& element) const {
  return entries_.count(element) > 0;
}

void OrSwot::Merge(const OrSwot& other) {
  std::map<std::string, std::set<Dot>> merged;

  // Union of element names present on either side.
  auto consider = [&](const std::string& element,
                      const std::set<Dot>* mine_dots,
                      const std::set<Dot>* their_dots) {
    std::set<Dot> keep;
    if (mine_dots != nullptr) {
      for (const Dot& d : *mine_dots) {
        // Keep my dot if they also have it, or they have never seen it.
        const bool they_have =
            their_dots != nullptr && their_dots->count(d) > 0;
        const bool they_observed = other.vv_.Get(d.replica) >= d.counter;
        if (they_have || !they_observed) keep.insert(d);
      }
    }
    if (their_dots != nullptr) {
      for (const Dot& d : *their_dots) {
        const bool i_have = mine_dots != nullptr && mine_dots->count(d) > 0;
        const bool i_observed = vv_.Get(d.replica) >= d.counter;
        if (i_have || !i_observed) keep.insert(d);
      }
    }
    if (!keep.empty()) merged[element] = std::move(keep);
  };

  for (const auto& [element, dots] : entries_) {
    auto it = other.entries_.find(element);
    consider(element, &dots, it == other.entries_.end() ? nullptr : &it->second);
  }
  for (const auto& [element, dots] : other.entries_) {
    if (entries_.count(element) == 0) {
      consider(element, nullptr, &dots);
    }
  }

  entries_ = std::move(merged);
  vv_.MergeWith(other.vv_);
}

std::vector<std::string> OrSwot::Elements() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [element, dots] : entries_) out.push_back(element);
  return out;
}

size_t OrSwot::live_dot_count() const {
  size_t n = 0;
  for (const auto& [element, dots] : entries_) n += dots.size();
  return n;
}

size_t OrSwot::StateBytes() const {
  size_t bytes = vv_.size() * 12;
  for (const auto& [element, dots] : entries_) {
    bytes += element.size() + dots.size() * 12;
  }
  return bytes;
}

}  // namespace evc::crdt
