// Simple set CRDTs: grow-only set and two-phase set.
//
// GSet supports only Add. TwoPhaseSet adds Remove via a tombstone set, at
// the cost that a removed element can never be re-added — the limitation
// that motivates the observed-remove sets in orset.h.

#ifndef EVC_CRDT_SETS_H_
#define EVC_CRDT_SETS_H_

#include <set>
#include <string>
#include <vector>

namespace evc::crdt {

/// Grow-only set; join is union.
class GSet {
 public:
  /// Returns true if the element was newly added.
  bool Add(const std::string& element) {
    return elements_.insert(element).second;
  }
  bool Contains(const std::string& element) const {
    return elements_.count(element) > 0;
  }
  void Merge(const GSet& other) {
    elements_.insert(other.elements_.begin(), other.elements_.end());
  }
  size_t size() const { return elements_.size(); }
  const std::set<std::string>& elements() const { return elements_; }
  bool operator==(const GSet& other) const {
    return elements_ == other.elements_;
  }

 private:
  std::set<std::string> elements_;
};

/// Two-phase set: element lifecycle is absent -> present -> removed-forever.
class TwoPhaseSet {
 public:
  /// Adds an element. Re-adding after removal has no effect (remove wins).
  void Add(const std::string& element) { added_.insert(element); }

  /// Removes an element that has been added (a blind remove of a never-seen
  /// element is recorded too, poisoning future adds — standard 2P-set).
  void Remove(const std::string& element) {
    added_.insert(element);
    removed_.insert(element);
  }

  bool Contains(const std::string& element) const {
    return added_.count(element) > 0 && removed_.count(element) == 0;
  }

  void Merge(const TwoPhaseSet& other) {
    added_.insert(other.added_.begin(), other.added_.end());
    removed_.insert(other.removed_.begin(), other.removed_.end());
  }

  std::vector<std::string> LiveElements() const {
    std::vector<std::string> out;
    for (const auto& e : added_) {
      if (removed_.count(e) == 0) out.push_back(e);
    }
    return out;
  }

  size_t live_size() const { return LiveElements().size(); }
  size_t tombstone_count() const { return removed_.size(); }

  bool operator==(const TwoPhaseSet& other) const {
    return added_ == other.added_ && removed_ == other.removed_;
  }

 private:
  std::set<std::string> added_;
  std::set<std::string> removed_;
};

}  // namespace evc::crdt

#endif  // EVC_CRDT_SETS_H_
