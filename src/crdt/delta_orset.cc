#include "crdt/delta_orset.h"

namespace evc::crdt {

DeltaOrSet DeltaOrSet::Add(const std::string& element) {
  const Dot dot = ctx_.NextDot(replica_id_);

  DeltaOrSet delta;
  // The delta's context carries the new dot AND the dots it supersedes
  // (locally observed dots for this element), so receivers drop them too.
  delta.ctx_.Add(dot);
  auto it = entries_.find(element);
  if (it != entries_.end()) {
    for (const Dot& old : it->second) delta.ctx_.Add(old);
  }
  delta.entries_[element] = {dot};

  entries_[element] = {dot};
  return delta;
}

DeltaOrSet DeltaOrSet::Remove(const std::string& element) {
  DeltaOrSet delta;
  auto it = entries_.find(element);
  if (it != entries_.end()) {
    // Context-only delta: "I observed these dots (and removed them)".
    for (const Dot& dot : it->second) delta.ctx_.Add(dot);
    entries_.erase(it);
  }
  return delta;
}

std::vector<std::string> DeltaOrSet::Elements() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [element, dots] : entries_) out.push_back(element);
  return out;
}

void DeltaOrSet::Merge(const DeltaOrSet& other) {
  std::map<std::string, std::set<Dot>> merged;

  auto consider = [&](const std::string& element,
                      const std::set<Dot>* mine,
                      const std::set<Dot>* theirs) {
    std::set<Dot> keep;
    if (mine != nullptr) {
      for (const Dot& d : *mine) {
        const bool they_have = theirs != nullptr && theirs->count(d) > 0;
        if (they_have || !other.ctx_.Contains(d)) keep.insert(d);
      }
    }
    if (theirs != nullptr) {
      for (const Dot& d : *theirs) {
        const bool i_have = mine != nullptr && mine->count(d) > 0;
        if (i_have || !ctx_.Contains(d)) keep.insert(d);
      }
    }
    if (!keep.empty()) merged[element] = std::move(keep);
  };

  for (const auto& [element, dots] : entries_) {
    auto it = other.entries_.find(element);
    consider(element, &dots,
             it == other.entries_.end() ? nullptr : &it->second);
  }
  for (const auto& [element, dots] : other.entries_) {
    if (entries_.count(element) == 0) consider(element, nullptr, &dots);
  }

  entries_ = std::move(merged);
  ctx_.Merge(other.ctx_);
}

size_t DeltaOrSet::StateBytes() const {
  size_t bytes = ctx_.StateBytes();
  for (const auto& [element, dots] : entries_) {
    bytes += element.size() + dots.size() * 12;
  }
  return bytes;
}

}  // namespace evc::crdt
