// Causal broadcast over the simulated network, for op-based CRDT
// replication between geo-distributed replicas.
//
// CausalBus (causal_bus.h) provides the delivery contract in-memory; this
// component provides it across the simulated WAN: each published op is
// stamped with the origin's vector clock and broadcast; receivers buffer
// ops until causally ready. The `causal` switch exists to measure what the
// contract is worth: with it off, ops apply in arrival order, and an
// OR-set remove can arrive before the add it observed — the removed
// element then resurrects on that replica *permanently* (tests and the
// docs call this the zombie-element anomaly).

#ifndef EVC_CRDT_GEO_BROADCAST_H_
#define EVC_CRDT_GEO_BROADCAST_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "clock/version_vector.h"
#include "sim/network.h"

namespace evc::crdt {

struct GeoBroadcastOptions {
  /// Enforce causal delivery (buffer out-of-order ops). Off = apply in
  /// arrival order (the broken baseline).
  bool causal = true;
};

/// Reliable broadcast among a fixed group of network nodes. Delivery
/// callbacks receive the op payload (a slab-backed sim::Payload, as
/// elsewhere on the simulated network) in causal order when enabled.
class GeoBroadcast {
 public:
  GeoBroadcast(sim::Network* network, GeoBroadcastOptions options = {});

  using DeliverFn =
      std::function<void(uint32_t origin_index, const sim::Payload&)>;

  /// Registers `node` as member number `index` (0-based, dense). All
  /// members must be added before the first Publish.
  void AddMember(sim::NodeId node, DeliverFn deliver);

  /// Publishes an op from member `index`: delivers locally at once, then
  /// broadcasts. Exactly-once per member; causal order per options.
  void Publish(uint32_t index, sim::Payload op);

  /// Convenience: boxes `op` into the simulator's slab and publishes it.
  template <typename T,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<T>, sim::Payload>>>
  void Publish(uint32_t index, T&& op) {
    Publish(index, sim::Payload(&network_->simulator()->slab(),
                                std::forward<T>(op)));
  }

  size_t member_count() const { return members_.size(); }
  /// Ops buffered awaiting causal readiness at member `index`.
  size_t PendingAt(uint32_t index) const;
  uint64_t delivered_at(uint32_t index) const {
    return members_[index].delivered;
  }

 private:
  struct StampedOp {
    uint32_t origin = 0;
    uint64_t seq = 0;
    VectorClock deps;
    sim::Payload op;

    StampedOp Clone() const {  // duplicate-delivery fault support
      StampedOp c;
      c.origin = origin;
      c.seq = seq;
      c.deps = deps;
      c.op = op.Clone();
      return c;
    }
  };
  struct Member {
    // Explicit noexcept move: members_ reallocation must move, not copy
    // (pending StampedOps hold move-only Payloads).
    Member() = default;
    Member(Member&&) noexcept = default;
    Member& operator=(Member&&) noexcept = default;

    sim::NodeId node = 0;
    uint32_t index = 0;
    VectorClock clock;
    std::deque<StampedOp> pending;
    DeliverFn deliver;
    uint64_t delivered = 0;
  };

  bool Ready(const Member& member, const StampedOp& op) const;
  void Receive(Member* member, StampedOp op);
  void Drain(Member* member);

  sim::MsgType op_type_ = 0;
  sim::Network* network_;
  GeoBroadcastOptions options_;
  std::vector<Member> members_;
};

}  // namespace evc::crdt

#endif  // EVC_CRDT_GEO_BROADCAST_H_
