// Observed-remove map with last-writer-wins values.
//
// Key presence follows OR-set (add-wins) semantics — a concurrent Put
// survives a Remove — while the value under each key converges by LWW.
// This is the document/row shape most NoSQL stores expose over CRDTs.

#ifndef EVC_CRDT_ORMAP_H_
#define EVC_CRDT_ORMAP_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crdt/orset.h"
#include "crdt/registers.h"

namespace evc::crdt {

/// OR-Map: keys managed by an OrSwot, values by LwwRegister.
class OrMap {
 public:
  explicit OrMap(uint32_t replica_id)
      : replica_id_(replica_id), keys_(replica_id) {}

  /// Inserts or updates `key`.
  void Put(const std::string& key, std::string value, LamportTimestamp ts) {
    keys_.Add(key);
    values_[key].Set(std::move(value), ts);
  }

  /// Removes `key` (observed-remove: concurrent Puts survive).
  void Remove(const std::string& key) { keys_.Remove(key); }

  /// Value if the key is live.
  std::optional<std::string> Get(const std::string& key) const {
    if (!keys_.Contains(key)) return std::nullopt;
    auto it = values_.find(key);
    if (it == values_.end() || !it->second.has_value()) return std::nullopt;
    return it->second.value();
  }

  bool Contains(const std::string& key) const { return keys_.Contains(key); }

  std::vector<std::string> Keys() const { return keys_.Elements(); }
  size_t size() const { return keys_.size(); }

  void Merge(const OrMap& other) {
    keys_.Merge(other.keys_);
    for (const auto& [key, reg] : other.values_) {
      values_[key].Merge(reg);
    }
    // Registers for keys whose presence dots were all removed are retained
    // as hidden state (they matter if the key is re-added concurrently);
    // GarbageCollect() trims registers for keys dead on this replica.
  }

  /// Drops value registers for keys not currently live. Safe only after all
  /// replicas have exchanged state (same caveat as tombstone GC).
  size_t GarbageCollect() {
    size_t removed = 0;
    for (auto it = values_.begin(); it != values_.end();) {
      if (!keys_.Contains(it->first)) {
        it = values_.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    return removed;
  }

  bool operator==(const OrMap& other) const {
    if (!(keys_ == other.keys_)) return false;
    // Compare only live values: hidden registers may differ by GC timing.
    for (const auto& key : Keys()) {
      if (Get(key) != other.Get(key)) return false;
    }
    return true;
  }

 private:
  uint32_t replica_id_;
  OrSwot keys_;
  std::map<std::string, LwwRegister> values_;
};

}  // namespace evc::crdt

#endif  // EVC_CRDT_ORMAP_H_
