// Register CRDTs: last-writer-wins and multi-value.
//
// LWWRegister resolves concurrent assignments by timestamp (arbitrary but
// convergent — one write silently loses). MVRegister keeps all concurrent
// assignments as siblings for the application to reconcile, trading
// convergence-to-one-value for no-lost-updates. Fig. 5 contrasts the two.

#ifndef EVC_CRDT_REGISTERS_H_
#define EVC_CRDT_REGISTERS_H_

#include <string>
#include <vector>

#include "clock/lamport.h"
#include "clock/version_vector.h"

namespace evc::crdt {

/// Last-writer-wins register. Ties broken by (counter, node) so the order is
/// total and all replicas pick the same winner.
class LwwRegister {
 public:
  LwwRegister() = default;

  /// Assigns `value` at timestamp `ts`. Stale assignments are ignored.
  /// Returns true if the assignment took effect locally.
  bool Set(std::string value, LamportTimestamp ts) {
    if (has_value_ && !(ts_ < ts)) return false;
    value_ = std::move(value);
    ts_ = ts;
    has_value_ = true;
    return true;
  }

  void Merge(const LwwRegister& other) {
    if (!other.has_value_) return;
    Set(other.value_, other.ts_);
  }

  bool has_value() const { return has_value_; }
  const std::string& value() const { return value_; }
  LamportTimestamp timestamp() const { return ts_; }

  bool operator==(const LwwRegister& other) const {
    if (has_value_ != other.has_value_) return false;
    if (!has_value_) return true;
    return value_ == other.value_ && ts_ == other.ts_;
  }

 private:
  std::string value_;
  LamportTimestamp ts_{};
  bool has_value_ = false;
};

/// Multi-value register: concurrent assignments become siblings.
class MvRegister {
 public:
  MvRegister() = default;

  /// Assigns `value` at `replica`, superseding every sibling currently
  /// visible (their contexts are absorbed).
  void Set(std::string value, uint32_t replica);

  /// Current sibling values (more than one iff there were concurrent Sets).
  std::vector<std::string> Values() const;

  /// Number of concurrent siblings.
  size_t sibling_count() const { return siblings_.size(); }

  void Merge(const MvRegister& other);

  bool operator==(const MvRegister& other) const;

  std::string ToString() const;

 private:
  struct Entry {
    std::string value;
    VersionVector vv;
  };
  /// Observed context = join of all sibling vectors.
  VersionVector Context() const;
  static void Insert(std::vector<Entry>* entries, const Entry& e);

  std::vector<Entry> siblings_;
};

}  // namespace evc::crdt

#endif  // EVC_CRDT_REGISTERS_H_
