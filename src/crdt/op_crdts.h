// Operation-based (commutative) CRDTs, to contrast with the state-based
// variants: smaller messages (one op instead of full state) but a delivery
// contract — exactly-once, and causal order for the OR-set.

#ifndef EVC_CRDT_OP_CRDTS_H_
#define EVC_CRDT_OP_CRDTS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "clock/version_vector.h"

namespace evc::crdt {

/// Op-based counter: ops are signed deltas; any delivery order works, but
/// each op must be delivered exactly once.
class OpCounter {
 public:
  struct Op {
    int64_t delta = 0;
  };

  /// Produces the op for a local increment (caller broadcasts it; local
  /// application happens on delivery/echo).
  static Op MakeIncrement(int64_t amount) { return Op{amount}; }

  void Apply(const Op& op) { value_ += op.delta; }
  int64_t Value() const { return value_; }

 private:
  int64_t value_ = 0;
};

/// Op-based observed-remove set. Add ships a unique tag; Remove ships the
/// set of tags observed at the origin. Requires causal delivery: a Remove
/// must arrive after the Adds it observed.
class OpOrSet {
 public:
  struct Op {
    enum class Type { kAdd, kRemove };
    Type type = Type::kAdd;
    std::string element;
    Dot tag;                 ///< add: the new tag
    std::vector<Dot> tags;   ///< remove: observed tags
  };

  explicit OpOrSet(uint32_t replica_id) : replica_id_(replica_id) {}

  /// Builds the op for a local add (fresh unique tag).
  Op MakeAdd(const std::string& element) {
    Op op;
    op.type = Op::Type::kAdd;
    op.element = element;
    op.tag = Dot{replica_id_, ++next_tag_};
    return op;
  }

  /// Builds the op for a local remove (captures currently observed tags).
  /// Returns an op with empty tags if the element is absent (no-op remove).
  Op MakeRemove(const std::string& element) const {
    Op op;
    op.type = Op::Type::kRemove;
    op.element = element;
    auto it = tags_.find(element);
    if (it != tags_.end()) {
      op.tags.assign(it->second.begin(), it->second.end());
    }
    return op;
  }

  /// Applies a delivered op (local echo or remote).
  void Apply(const Op& op) {
    if (op.type == Op::Type::kAdd) {
      tags_[op.element].insert(op.tag);
      return;
    }
    auto it = tags_.find(op.element);
    if (it == tags_.end()) return;
    for (const Dot& d : op.tags) it->second.erase(d);
    if (it->second.empty()) tags_.erase(it);
  }

  bool Contains(const std::string& element) const {
    return tags_.count(element) > 0;
  }

  std::vector<std::string> Elements() const {
    std::vector<std::string> out;
    for (const auto& [element, tags] : tags_) out.push_back(element);
    return out;
  }

  size_t size() const { return tags_.size(); }

  bool operator==(const OpOrSet& other) const { return tags_ == other.tags_; }

 private:
  uint32_t replica_id_;
  uint64_t next_tag_ = 0;
  std::map<std::string, std::set<Dot>> tags_;
};

}  // namespace evc::crdt

#endif  // EVC_CRDT_OP_CRDTS_H_
