// Reliable causal broadcast for operation-based CRDTs.
//
// Op-based (commutative) CRDTs need their ops delivered exactly once and in
// causal order. CausalBus provides that contract over an arbitrary (even
// adversarial) exchange schedule: each op is stamped with its origin's
// vector clock; a receiver buffers an op until it has delivered every op the
// sender had delivered first. Tests drive the bus with random partial
// exchanges to show op-based CRDTs converge exactly when this contract
// holds (and the state-based variants don't need it at all).

#ifndef EVC_CRDT_CAUSAL_BUS_H_
#define EVC_CRDT_CAUSAL_BUS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "clock/version_vector.h"
#include "common/status.h"

namespace evc::crdt {

/// A broadcast operation with its causal metadata.
template <typename Op>
struct StampedOp {
  uint32_t origin = 0;
  uint64_t seq = 0;      ///< origin's op sequence number, starting at 1
  VectorClock deps;      ///< origin's clock *before* this op
  Op op;
};

/// In-memory causal broadcast bus connecting `n` replicas (ids 0..n-1).
/// Single-threaded. Delivery callbacks are registered per replica.
template <typename Op>
class CausalBus {
 public:
  using DeliverFn = std::function<void(uint32_t origin, const Op& op)>;

  explicit CausalBus(uint32_t replica_count)
      : clocks_(replica_count),
        pending_(replica_count),
        deliver_(replica_count),
        delivered_count_(replica_count, 0) {}

  uint32_t replica_count() const {
    return static_cast<uint32_t>(clocks_.size());
  }

  /// Sets the delivery callback for `replica`.
  void OnDeliver(uint32_t replica, DeliverFn fn) {
    deliver_[replica] = std::move(fn);
  }

  /// Broadcasts `op` from `origin`. The op is delivered to the origin
  /// immediately (local echo) and buffered for every other replica until
  /// that replica Pulls it.
  void Broadcast(uint32_t origin, Op op) {
    StampedOp<Op> stamped;
    stamped.origin = origin;
    stamped.deps = clocks_[origin];
    stamped.seq = clocks_[origin].Get(origin) + 1;
    stamped.op = std::move(op);
    // Local echo counts as delivery.
    clocks_[origin].Increment(origin);
    ++delivered_count_[origin];
    if (deliver_[origin]) deliver_[origin](origin, stamped.op);
    for (uint32_t r = 0; r < replica_count(); ++r) {
      if (r != origin) pending_[r].push_back(stamped);
    }
  }

  /// Attempts to deliver up to `max_ops` buffered ops to `replica`,
  /// respecting causal order. Returns the number delivered.
  size_t Pull(uint32_t replica, size_t max_ops = SIZE_MAX) {
    size_t delivered = 0;
    bool progress = true;
    while (progress && delivered < max_ops) {
      progress = false;
      auto& queue = pending_[replica];
      for (auto it = queue.begin(); it != queue.end(); ++it) {
        if (!CausallyReady(replica, *it)) continue;
        StampedOp<Op> stamped = std::move(*it);
        queue.erase(it);
        clocks_[replica].Increment(stamped.origin);
        ++delivered_count_[replica];
        if (deliver_[replica]) deliver_[replica](stamped.origin, stamped.op);
        ++delivered;
        progress = true;
        break;  // restart scan: delivery may unblock earlier entries
      }
    }
    return delivered;
  }

  /// Drains every replica until the whole system is quiescent.
  void PullAll() {
    bool progress = true;
    while (progress) {
      progress = false;
      for (uint32_t r = 0; r < replica_count(); ++r) {
        progress |= Pull(r) > 0;
      }
    }
  }

  /// Ops buffered but not yet deliverable/pulled at `replica`.
  size_t PendingAt(uint32_t replica) const {
    return pending_[replica].size();
  }
  uint64_t delivered_count(uint32_t replica) const {
    return delivered_count_[replica];
  }
  const VectorClock& clock_of(uint32_t replica) const {
    return clocks_[replica];
  }

 private:
  bool CausallyReady(uint32_t replica, const StampedOp<Op>& stamped) const {
    const VectorClock& local = clocks_[replica];
    // Next-in-sequence from the origin…
    if (local.Get(stamped.origin) + 1 != stamped.seq) return false;
    // …and we have delivered everything the origin had.
    for (const auto& [r, counter] : stamped.deps.entries()) {
      if (r == stamped.origin) continue;
      if (local.Get(r) < counter) return false;
    }
    return true;
  }

  std::vector<VectorClock> clocks_;
  std::vector<std::deque<StampedOp<Op>>> pending_;
  std::vector<DeliverFn> deliver_;
  std::vector<uint64_t> delivered_count_;
};

}  // namespace evc::crdt

#endif  // EVC_CRDT_CAUSAL_BUS_H_
