// Observed-remove sets: the CRDT behind Dynamo-style shopping carts.
//
// Add tags the element with a globally unique dot; Remove deletes exactly
// the tags it has observed. A concurrent Add therefore survives a Remove
// (add-wins), which is the semantics the tutorial's shopping-cart anecdote
// wants: no deleted item resurrects, no concurrent addition is lost.
//
// Two implementations with identical observable semantics:
//   * OrSet      — classic tombstoned version: removed dots accumulate
//                  forever (state grows with remove traffic).
//   * OrSwot     — "OR-Set without tombstones" (optimized, Riak-style):
//                  a version vector summarizes observed dots, so removes
//                  free state. Fig. 6 measures the state-size difference.

#ifndef EVC_CRDT_ORSET_H_
#define EVC_CRDT_ORSET_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "clock/version_vector.h"

namespace evc::crdt {

/// Classic tombstoned observed-remove set.
class OrSet {
 public:
  explicit OrSet(uint32_t replica_id) : replica_id_(replica_id) {}

  /// Adds `element` with a fresh unique tag.
  void Add(const std::string& element);

  /// Removes every currently observed tag of `element`. Concurrent adds at
  /// other replicas (tags we have not seen) survive the merge.
  void Remove(const std::string& element);

  bool Contains(const std::string& element) const;

  void Merge(const OrSet& other);

  std::vector<std::string> Elements() const;
  size_t size() const;

  /// Total dots stored, live + tombstoned: the unbounded-growth metric.
  size_t live_dot_count() const;
  size_t tombstone_count() const { return tombstones_.size(); }
  size_t StateBytes() const;

  /// Structural equality (same live dots and tombstones).
  bool operator==(const OrSet& other) const;

 private:
  void Compact(const std::string& element);

  uint32_t replica_id_;
  uint64_t next_tag_ = 0;
  std::map<std::string, std::set<Dot>> live_;  // element -> observed dots
  std::set<Dot> tombstones_;                   // removed dots, kept forever
};

/// Optimized observed-remove set without tombstones (add-wins).
class OrSwot {
 public:
  explicit OrSwot(uint32_t replica_id) : replica_id_(replica_id) {}

  void Add(const std::string& element);
  void Remove(const std::string& element);
  bool Contains(const std::string& element) const;

  void Merge(const OrSwot& other);

  std::vector<std::string> Elements() const;
  size_t size() const { return entries_.size(); }
  size_t live_dot_count() const;
  size_t StateBytes() const;

  const VersionVector& context() const { return vv_; }

  /// Structural equality: same causal context and same element dots.
  bool operator==(const OrSwot& other) const {
    return vv_ == other.vv_ && entries_ == other.entries_;
  }

 private:
  uint32_t replica_id_;
  VersionVector vv_;  // summarizes every dot this replica has observed
  std::map<std::string, std::set<Dot>> entries_;
};

}  // namespace evc::crdt

#endif  // EVC_CRDT_ORSET_H_
