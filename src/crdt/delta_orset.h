// Delta-state OR-set (Almeida, Shoker, Baquero 2018).
//
// State-based CRDTs converge by shipping *full state*; delta CRDTs ship
// only the join-irreducible change each mutation produced, joined at the
// receiver exactly like state. The subtlety is causal metadata: a delta's
// context is not a contiguous prefix of events, so the classic version
// vector is generalized to a DotContext = contiguous vector + sparse "dot
// cloud", compacted whenever the cloud fills a gap. Fig. 6c quantifies the
// bandwidth win over full-state shipping.

#ifndef EVC_CRDT_DELTA_ORSET_H_
#define EVC_CRDT_DELTA_ORSET_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "clock/version_vector.h"

namespace evc::crdt {

/// A possibly non-contiguous set of observed events: a contiguous version
/// vector plus a sparse cloud of out-of-gap dots.
class DotContext {
 public:
  /// True if the event `dot` is contained.
  bool Contains(const Dot& dot) const {
    if (vv_.Get(dot.replica) >= dot.counter) return true;
    return cloud_.count(dot) > 0;
  }

  /// Mints the next fresh dot for `replica` (top-level state use only; a
  /// fresh dot is by construction contiguous).
  Dot NextDot(uint32_t replica) {
    return Dot{replica, vv_.Increment(replica)};
  }

  /// Inserts an arbitrary event and re-compacts.
  void Add(const Dot& dot) {
    cloud_.insert(dot);
    Compact();
  }

  /// Joins another context.
  void Merge(const DotContext& other) {
    vv_.MergeWith(other.vv_);
    cloud_.insert(other.cloud_.begin(), other.cloud_.end());
    Compact();
  }

  /// Folds cloud dots that extend the contiguous prefix into the vector.
  void Compact() {
    bool progress = true;
    while (progress) {
      progress = false;
      for (auto it = cloud_.begin(); it != cloud_.end();) {
        const uint64_t have = vv_.Get(it->replica);
        if (it->counter == have + 1) {
          vv_.Set(it->replica, it->counter);
          it = cloud_.erase(it);
          progress = true;
        } else if (it->counter <= have) {
          it = cloud_.erase(it);  // already covered
        } else {
          ++it;
        }
      }
    }
  }

  bool operator==(const DotContext& other) const {
    return vv_ == other.vv_ && cloud_ == other.cloud_;
  }

  const VersionVector& vector() const { return vv_; }
  size_t cloud_size() const { return cloud_.size(); }
  /// Serialized-size proxy in bytes.
  size_t StateBytes() const { return vv_.size() * 12 + cloud_.size() * 12; }

 private:
  VersionVector vv_;
  std::set<Dot> cloud_;
};

/// Delta-state observed-remove set. Mutators return the delta to ship;
/// Merge ingests either a delta or a peer's full state (they are the same
/// kind of object — that is the elegance of delta CRDTs).
class DeltaOrSet {
 public:
  /// A replica with a fixed id. Deltas are constructed with the default id
  /// (they never mint dots of their own).
  explicit DeltaOrSet(uint32_t replica_id = UINT32_MAX)
      : replica_id_(replica_id) {}

  /// Adds `element`; returns the delta (one fresh dot + observed removal
  /// of the element's prior local dots).
  DeltaOrSet Add(const std::string& element);

  /// Removes `element` (observed-remove); returns the delta.
  DeltaOrSet Remove(const std::string& element);

  bool Contains(const std::string& element) const {
    return entries_.count(element) > 0;
  }
  std::vector<std::string> Elements() const;
  size_t size() const { return entries_.size(); }

  /// Joins a delta or a full peer state.
  void Merge(const DeltaOrSet& other);

  bool operator==(const DeltaOrSet& other) const {
    return entries_ == other.entries_ && ctx_ == other.ctx_;
  }

  size_t StateBytes() const;
  const DotContext& context() const { return ctx_; }

 private:
  uint32_t replica_id_;
  DotContext ctx_;
  std::map<std::string, std::set<Dot>> entries_;
};

}  // namespace evc::crdt

#endif  // EVC_CRDT_DELTA_ORSET_H_
