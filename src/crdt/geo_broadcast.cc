#include "crdt/geo_broadcast.h"

#include "common/status.h"

namespace evc::crdt {

namespace {
constexpr char kOpMsg[] = "gb.op";
}  // namespace

GeoBroadcast::GeoBroadcast(sim::Network* network, GeoBroadcastOptions options)
    : network_(network), options_(options) {
  EVC_CHECK(network_ != nullptr);
  op_type_ = network_->InternType(kOpMsg);
}

void GeoBroadcast::AddMember(sim::NodeId node, DeliverFn deliver) {
  const uint32_t index = static_cast<uint32_t>(members_.size());
  Member member;
  member.node = node;
  member.index = index;
  member.deliver = std::move(deliver);
  members_.push_back(std::move(member));

  network_->RegisterHandler(node, op_type_, [this, index](sim::Message msg) {
    Receive(&members_[index], std::move(msg.payload).Take<StampedOp>());
  });
}

void GeoBroadcast::Publish(uint32_t index, sim::Payload op) {
  EVC_CHECK(index < members_.size());
  Member& origin = members_[index];
  StampedOp stamped;
  stamped.origin = index;
  stamped.deps = origin.clock;
  stamped.seq = origin.clock.Get(index) + 1;
  stamped.op = std::move(op);

  // Local echo.
  origin.clock.Increment(index);
  ++origin.delivered;
  origin.deliver(index, stamped.op);

  // Each peer gets its own deep copy, as each send owns its payload (the
  // seed's std::any made the same per-peer copy implicitly).
  for (Member& peer : members_) {
    if (peer.index == index) continue;
    network_->Send(origin.node, peer.node, op_type_, stamped.Clone());
  }
}

bool GeoBroadcast::Ready(const Member& member, const StampedOp& op) const {
  if (member.clock.Get(op.origin) + 1 != op.seq) return false;
  for (const auto& [replica, counter] : op.deps.entries()) {
    if (replica == op.origin) continue;
    if (member.clock.Get(replica) < counter) return false;
  }
  return true;
}

void GeoBroadcast::Receive(Member* member, StampedOp op) {
  if (!options_.causal) {
    // Arrival-order delivery (the broken baseline). Still exactly-once:
    // drop duplicates/stale by per-origin seq tracking.
    const uint64_t seen = member->clock.Get(op.origin);
    if (op.seq <= seen) return;
    member->clock.Set(op.origin, op.seq);
    ++member->delivered;
    member->deliver(op.origin, op.op);
    return;
  }
  member->pending.push_back(std::move(op));
  Drain(member);
}

size_t GeoBroadcast::PendingAt(uint32_t index) const {
  EVC_CHECK(index < members_.size());
  return members_[index].pending.size();
}

void GeoBroadcast::Drain(Member* member) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = member->pending.begin(); it != member->pending.end();
         ++it) {
      if (it->seq <= member->clock.Get(it->origin)) {
        member->pending.erase(it);  // duplicate
        progress = true;
        break;
      }
      if (!Ready(*member, *it)) continue;
      StampedOp op = std::move(*it);
      member->pending.erase(it);
      member->clock.Increment(op.origin);
      ++member->delivered;
      member->deliver(op.origin, op.op);
      progress = true;
      break;
    }
  }
}

}  // namespace evc::crdt
