// Grow-only counter (state-based CRDT) with delta support.
//
// State: per-replica partial counts; join = pointwise max. Increments
// commute, so replicas that exchange state in any order converge — the
// canonical example of strong eventual consistency in the tutorial.

#ifndef EVC_CRDT_GCOUNTER_H_
#define EVC_CRDT_GCOUNTER_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"

namespace evc::crdt {

/// State-based grow-only counter.
class GCounter {
 public:
  GCounter() = default;

  /// Adds `amount` (>= 0 semantics: grow-only) on behalf of `replica`.
  /// Returns a delta CRDT containing just the changed entry; shipping deltas
  /// instead of full state is the delta-CRDT optimization measured in Fig 6.
  GCounter Increment(uint32_t replica, uint64_t amount = 1);

  /// Total across replicas.
  uint64_t Value() const;

  /// Per-replica share (0 if absent).
  uint64_t ShareOf(uint32_t replica) const;

  /// Join: pointwise maximum. Idempotent, commutative, associative.
  void Merge(const GCounter& other);

  /// True if `this` state already includes everything in `other`.
  bool Includes(const GCounter& other) const;

  bool operator==(const GCounter& other) const {
    return shares_ == other.shares_;
  }

  size_t entry_count() const { return shares_.size(); }
  /// Serialized size proxy: bytes to encode the state.
  size_t StateBytes() const;

  std::string ToString() const;

 private:
  std::map<uint32_t, uint64_t> shares_;
};

/// Positive-negative counter: a pair of GCounters (increments, decrements).
class PNCounter {
 public:
  PNCounter() = default;

  /// Returns the delta (a PNCounter with only the changed entry).
  PNCounter Increment(uint32_t replica, uint64_t amount = 1);
  PNCounter Decrement(uint32_t replica, uint64_t amount = 1);

  /// May be negative.
  int64_t Value() const;

  void Merge(const PNCounter& other);

  bool operator==(const PNCounter& other) const {
    return positive_ == other.positive_ && negative_ == other.negative_;
  }

  size_t StateBytes() const {
    return positive_.StateBytes() + negative_.StateBytes();
  }

  std::string ToString() const;

 private:
  GCounter positive_;
  GCounter negative_;
};

}  // namespace evc::crdt

#endif  // EVC_CRDT_GCOUNTER_H_
