#include "crdt/gcounter.h"

namespace evc::crdt {

GCounter GCounter::Increment(uint32_t replica, uint64_t amount) {
  shares_[replica] += amount;
  GCounter delta;
  delta.shares_[replica] = shares_[replica];
  return delta;
}

uint64_t GCounter::Value() const {
  uint64_t total = 0;
  for (const auto& [replica, share] : shares_) total += share;
  return total;
}

uint64_t GCounter::ShareOf(uint32_t replica) const {
  auto it = shares_.find(replica);
  return it == shares_.end() ? 0 : it->second;
}

void GCounter::Merge(const GCounter& other) {
  for (const auto& [replica, share] : other.shares_) {
    auto& mine = shares_[replica];
    if (share > mine) mine = share;
  }
}

bool GCounter::Includes(const GCounter& other) const {
  for (const auto& [replica, share] : other.shares_) {
    if (ShareOf(replica) < share) return false;
  }
  return true;
}

size_t GCounter::StateBytes() const {
  // varint-ish estimate: ~(4 + 8) bytes per entry plus map overhead proxy.
  return shares_.size() * 12;
}

std::string GCounter::ToString() const {
  std::string out = "GCounter{";
  bool first = true;
  for (const auto& [replica, share] : shares_) {
    if (!first) out += ", ";
    first = false;
    out += "r" + std::to_string(replica) + ":" + std::to_string(share);
  }
  return out + "}";
}

PNCounter PNCounter::Increment(uint32_t replica, uint64_t amount) {
  PNCounter delta;
  delta.positive_ = positive_.Increment(replica, amount);
  return delta;
}

PNCounter PNCounter::Decrement(uint32_t replica, uint64_t amount) {
  PNCounter delta;
  delta.negative_ = negative_.Increment(replica, amount);
  return delta;
}

int64_t PNCounter::Value() const {
  return static_cast<int64_t>(positive_.Value()) -
         static_cast<int64_t>(negative_.Value());
}

void PNCounter::Merge(const PNCounter& other) {
  positive_.Merge(other.positive_);
  negative_.Merge(other.negative_);
}

std::string PNCounter::ToString() const {
  return "PNCounter{+" + std::to_string(positive_.Value()) + ",-" +
         std::to_string(negative_.Value()) + "}";
}

}  // namespace evc::crdt
