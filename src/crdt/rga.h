// Replicated Growable Array (RGA): a sequence CRDT for collaborative
// editing. Each element has a globally unique id ordered by (timestamp,
// replica); concurrent inserts at the same position order deterministically
// by id, deletes tombstone. All replicas that apply the same set of
// operations converge to the same sequence regardless of delivery order
// (subject to causal readiness: an insert's reference must exist first).

#ifndef EVC_CRDT_RGA_H_
#define EVC_CRDT_RGA_H_

#include <compare>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace evc::crdt {

/// Unique element id; (0,0) denotes the virtual head (insert-at-front).
struct RgaId {
  uint64_t timestamp = 0;
  uint32_t replica = 0;

  auto operator<=>(const RgaId&) const = default;
  bool IsHead() const { return timestamp == 0 && replica == 0; }
  std::string ToString() const {
    return std::to_string(timestamp) + "@" + std::to_string(replica);
  }
};

inline constexpr RgaId kRgaHead{};

/// A replicable RGA operation.
struct RgaOp {
  enum class Type { kInsert, kDelete };
  Type type = Type::kInsert;
  RgaId id;           ///< the element this op creates / deletes
  RgaId ref;          ///< insert: predecessor element (or head)
  std::string value;  ///< insert payload
};

/// One replica of the sequence.
class Rga {
 public:
  explicit Rga(uint32_t replica_id) : replica_id_(replica_id) {}

  /// Inserts `value` immediately after element `ref` (kRgaHead for front).
  /// Returns the new element's id. Aborts if `ref` is unknown (caller bug).
  RgaId InsertAfter(RgaId ref, std::string value);

  /// Convenience: appends at the end of the live sequence.
  RgaId PushBack(std::string value);

  /// Tombstones the element. Returns false if the id is unknown.
  bool Erase(RgaId id);

  /// True if the element exists and is live.
  bool Contains(RgaId id) const;

  /// The live sequence.
  std::vector<std::string> Materialize() const;
  /// Live values concatenated (for text editing tests).
  std::string Text() const;
  /// Id of the i-th live element.
  Result<RgaId> IdAt(size_t index) const;

  size_t live_size() const;
  size_t node_count() const { return nodes_.size(); }  // includes tombstones

  /// All operations this replica has generated or applied, in application
  /// order (exchange these to replicate).
  const std::vector<RgaOp>& Log() const { return log_; }

  /// Applies a remote op. Returns false if not yet causally ready (insert
  /// ref unknown / delete target unknown); the caller requeues. Duplicate
  /// ops are ignored (returns true).
  bool ApplyRemote(const RgaOp& op);

  /// Replays everything from `other`'s log until quiescent.
  void MergeFrom(const Rga& other);

 private:
  struct Node {
    RgaId id;
    std::string value;
    bool tombstone = false;
  };

  /// RGA integration: inserts the node after `ref`, skipping any sibling
  /// nodes (same ref) with larger id so that all replicas order concurrent
  /// inserts identically.
  void Integrate(const RgaOp& op);
  int FindIndex(RgaId id) const;

  uint32_t replica_id_;
  uint64_t clock_ = 0;  // Lamport-style: advanced past every observed id
  std::vector<Node> nodes_;
  std::map<RgaId, bool> known_;  // id -> applied (value true once integrated)
  std::vector<RgaOp> log_;
};

}  // namespace evc::crdt

#endif  // EVC_CRDT_RGA_H_
