#include "crdt/registers.h"

#include <algorithm>

namespace evc::crdt {

VersionVector MvRegister::Context() const {
  VersionVector ctx;
  for (const auto& e : siblings_) ctx.MergeWith(e.vv);
  return ctx;
}

void MvRegister::Set(std::string value, uint32_t replica) {
  Entry e;
  e.vv = Context();
  e.vv.Increment(replica);
  e.value = std::move(value);
  siblings_.clear();  // new write dominates everything it observed
  siblings_.push_back(std::move(e));
}

void MvRegister::Insert(std::vector<Entry>* entries, const Entry& e) {
  for (const auto& existing : *entries) {
    const CausalOrder order = existing.vv.Compare(e.vv);
    if (order == CausalOrder::kAfter || order == CausalOrder::kEqual) return;
  }
  entries->erase(std::remove_if(entries->begin(), entries->end(),
                                [&e](const Entry& existing) {
                                  return e.vv.Dominates(existing.vv);
                                }),
                 entries->end());
  entries->push_back(e);
}

void MvRegister::Merge(const MvRegister& other) {
  for (const auto& e : other.siblings_) Insert(&siblings_, e);
}

std::vector<std::string> MvRegister::Values() const {
  std::vector<std::string> out;
  out.reserve(siblings_.size());
  for (const auto& e : siblings_) out.push_back(e.value);
  std::sort(out.begin(), out.end());
  return out;
}

bool MvRegister::operator==(const MvRegister& other) const {
  if (siblings_.size() != other.siblings_.size()) return false;
  // Compare as sets of (value, vv).
  for (const auto& e : siblings_) {
    const bool found = std::any_of(
        other.siblings_.begin(), other.siblings_.end(), [&e](const Entry& o) {
          return o.value == e.value &&
                 o.vv.Compare(e.vv) == CausalOrder::kEqual;
        });
    if (!found) return false;
  }
  return true;
}

std::string MvRegister::ToString() const {
  std::string out = "MvRegister{";
  bool first = true;
  for (const auto& v : Values()) {
    if (!first) out += " | ";
    first = false;
    out += v;
  }
  return out + "}";
}

}  // namespace evc::crdt
