#include "crdt/rga.h"

namespace evc::crdt {

int Rga::FindIndex(RgaId id) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].id == id) return static_cast<int>(i);
  }
  return -1;
}

RgaId Rga::InsertAfter(RgaId ref, std::string value) {
  EVC_CHECK(ref.IsHead() || FindIndex(ref) >= 0);
  const RgaId id{++clock_, replica_id_};
  RgaOp op;
  op.type = RgaOp::Type::kInsert;
  op.id = id;
  op.ref = ref;
  op.value = std::move(value);
  Integrate(op);
  log_.push_back(op);
  known_[id] = true;
  return id;
}

RgaId Rga::PushBack(std::string value) {
  // Find the id of the last node (live or tombstoned: appending after a
  // tombstone is fine and keeps ordering stable).
  const RgaId ref = nodes_.empty() ? kRgaHead : nodes_.back().id;
  return InsertAfter(ref, std::move(value));
}

bool Rga::Erase(RgaId id) {
  const int idx = FindIndex(id);
  if (idx < 0 || nodes_[idx].tombstone) return false;
  nodes_[idx].tombstone = true;
  RgaOp op;
  op.type = RgaOp::Type::kDelete;
  op.id = id;
  log_.push_back(op);
  return true;
}

bool Rga::Contains(RgaId id) const {
  const int idx = FindIndex(id);
  return idx >= 0 && !nodes_[idx].tombstone;
}

void Rga::Integrate(const RgaOp& op) {
  // Position scan: start right after ref (or at the beginning for head),
  // then skip over any node with a larger id — concurrent inserts after the
  // same ref order by descending id, giving an identical total order at
  // every replica (classic RGA integration rule).
  size_t pos = 0;
  if (!op.ref.IsHead()) {
    const int ref_idx = FindIndex(op.ref);
    EVC_CHECK(ref_idx >= 0);
    pos = static_cast<size_t>(ref_idx) + 1;
  }
  while (pos < nodes_.size() && op.id < nodes_[pos].id) {
    ++pos;
  }
  Node node;
  node.id = op.id;
  node.value = op.value;
  nodes_.insert(nodes_.begin() + static_cast<long>(pos), std::move(node));
  if (op.id.timestamp > clock_) clock_ = op.id.timestamp;
}

bool Rga::ApplyRemote(const RgaOp& op) {
  if (op.type == RgaOp::Type::kInsert) {
    if (known_.count(op.id)) return true;  // duplicate
    if (!op.ref.IsHead() && FindIndex(op.ref) < 0) return false;  // not ready
    Integrate(op);
    known_[op.id] = true;
    log_.push_back(op);
    return true;
  }
  // Delete.
  const int idx = FindIndex(op.id);
  if (idx < 0) return false;  // target not yet inserted here
  if (nodes_[idx].tombstone) return true;  // duplicate delete
  nodes_[idx].tombstone = true;
  log_.push_back(op);
  return true;
}

void Rga::MergeFrom(const Rga& other) {
  bool progress = true;
  std::vector<const RgaOp*> pending;
  for (const auto& op : other.log_) pending.push_back(&op);
  while (progress && !pending.empty()) {
    progress = false;
    std::vector<const RgaOp*> still_pending;
    for (const RgaOp* op : pending) {
      if (ApplyRemote(*op)) {
        progress = true;
      } else {
        still_pending.push_back(op);
      }
    }
    pending.swap(still_pending);
  }
  // Anything left is causally unready even given the full peer log, which
  // cannot happen with well-formed logs.
  EVC_CHECK(pending.empty());
}

std::vector<std::string> Rga::Materialize() const {
  std::vector<std::string> out;
  for (const auto& node : nodes_) {
    if (!node.tombstone) out.push_back(node.value);
  }
  return out;
}

std::string Rga::Text() const {
  std::string out;
  for (const auto& node : nodes_) {
    if (!node.tombstone) out += node.value;
  }
  return out;
}

Result<RgaId> Rga::IdAt(size_t index) const {
  size_t live = 0;
  for (const auto& node : nodes_) {
    if (node.tombstone) continue;
    if (live == index) return node.id;
    ++live;
  }
  return Status::OutOfRange("index " + std::to_string(index));
}

size_t Rga::live_size() const {
  size_t n = 0;
  for (const auto& node : nodes_) {
    if (!node.tombstone) ++n;
  }
  return n;
}

}  // namespace evc::crdt
