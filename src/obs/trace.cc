#include "obs/trace.h"

namespace evc::obs {

uint64_t Tracer::BeginChild(uint64_t parent, uint32_t node, KeyId name,
                            int64_t now) {
  if (!enabled_) return 0;
  const uint64_t id = next_id_++;
  ++started_;
  Span span;
  span.id = id;
  span.parent = parent;
  span.node = node;
  span.start = now;
  span.end = now;
  span.name = name;
  open_.emplace(id, std::move(span));
  return id;
}

void Tracer::End(uint64_t id, int64_t now, KeyId outcome) {
  auto it = open_.find(id);
  if (it == open_.end()) return;
  Span span = std::move(it->second);
  open_.erase(it);
  span.end = now;
  span.outcome = outcome;
  ++ended_;
  finished_.push_back(std::move(span));
  while (finished_.size() > capacity_) {
    finished_.pop_front();
    ++dropped_;
  }
}

void Tracer::Clear() {
  open_.clear();
  finished_.clear();
}

}  // namespace evc::obs
