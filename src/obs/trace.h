// Structured trace spans for RPCs and replication events.
//
// A span is one timed unit of protocol work: an RPC call, the server-side
// handling of that call, an anti-entropy round. Spans carry (id, parent,
// node, name, sim-time start/end, outcome) and finished spans land in a
// bounded ring buffer — overflow evicts the oldest, so memory stays O(capacity)
// no matter how long the run is.
//
// Parenting uses an ambient "current span" that the single-threaded
// simulator makes sound: while an RPC handler (or a reply callback) runs,
// the RPC layer scopes the current span to the enclosing call, so any
// nested Call() started from inside is recorded as a child. Cross-node
// edges work because the RPC envelopes carry the caller's span id.
//
// Span ids come from a plain counter and times from the virtual clock, so
// traces are deterministic for a fixed seed.

#ifndef EVC_OBS_TRACE_H_
#define EVC_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <string_view>
#include <unordered_map>

#include "common/interner.h"

namespace evc::obs {

/// One finished (or in-flight) unit of traced work. Times are virtual
/// microseconds; node is a sim::NodeId. Names and outcomes are interned in
/// the owning Tracer (resolve with Tracer::NameOf) so a span is a flat
/// 48-byte record and opening/closing one allocates nothing.
struct Span {
  uint64_t id = 0;
  uint64_t parent = 0;  ///< 0 = root
  uint32_t node = 0;
  KeyId name = kInvalidKeyId;     ///< e.g. "rpc.dyn.put", "ae.round"
  KeyId outcome = kInvalidKeyId;  ///< "ok", "timeout", an error code name
  int64_t start = 0;
  int64_t end = 0;
};

/// Records spans into a bounded ring buffer of finished spans.
class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 8192;

  explicit Tracer(size_t capacity = kDefaultCapacity) : capacity_(capacity) {}

  /// Tracing toggle; Begin() is a no-op returning 0 while disabled.
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Interns a span-name or outcome string, returning a dense id for the
  /// id-based Begin/End overloads. Hot callers (the RPC layer) intern once
  /// at setup; the string_view overloads below intern per call.
  KeyId InternName(std::string_view name) { return names_.Intern(name); }
  /// Resolves an id from InternName (stable view; see common/interner.h).
  std::string_view NameOf(KeyId id) const { return names_.NameOf(id); }

  /// Opens a span parented to the ambient current span. Returns its id.
  uint64_t Begin(uint32_t node, std::string_view name, int64_t now) {
    return BeginChild(current_, node, InternName(name), now);
  }
  uint64_t Begin(uint32_t node, KeyId name, int64_t now) {
    return BeginChild(current_, node, name, now);
  }
  /// Opens a span with an explicit parent (0 = root).
  uint64_t BeginChild(uint64_t parent, uint32_t node, KeyId name,
                      int64_t now);
  uint64_t BeginChild(uint64_t parent, uint32_t node, std::string_view name,
                      int64_t now) {
    return BeginChild(parent, node, InternName(name), now);
  }

  /// Closes span `id`, moving it into the ring buffer. Unknown or
  /// already-closed ids are ignored (e.g. a span evicted by Clear).
  void End(uint64_t id, int64_t now, KeyId outcome);
  void End(uint64_t id, int64_t now, std::string_view outcome) {
    End(id, now, InternName(outcome));
  }

  /// Ambient parent for Begin(); scoped by the RPC layer around handlers
  /// and reply callbacks. 0 = no current span.
  uint64_t current() const { return current_; }

  /// RAII: makes `span` the ambient current span for the scope's lifetime.
  class Scope {
   public:
    Scope(Tracer* tracer, uint64_t span)
        : tracer_(tracer), saved_(tracer->current_) {
      tracer_->current_ = span;
    }
    ~Scope() { tracer_->current_ = saved_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Tracer* tracer_;
    uint64_t saved_;
  };

  /// Finished spans, oldest first. At most `capacity()` entries; overflow
  /// evicted the oldest (newest spans always survive).
  const std::deque<Span>& finished() const { return finished_; }
  size_t capacity() const { return capacity_; }
  /// Spans evicted from the ring due to overflow.
  uint64_t dropped() const { return dropped_; }
  /// Spans begun / finished over the tracer's lifetime.
  uint64_t started() const { return started_; }
  uint64_t ended() const { return ended_; }
  /// Spans begun but not yet ended.
  size_t open_count() const { return open_.size(); }

  /// Drops all finished and open spans (counters keep accumulating).
  void Clear();

 private:
  bool enabled_ = true;
  size_t capacity_;
  uint64_t next_id_ = 1;
  uint64_t current_ = 0;
  uint64_t started_ = 0;
  uint64_t ended_ = 0;
  uint64_t dropped_ = 0;
  std::unordered_map<uint64_t, Span> open_;
  std::deque<Span> finished_;
  KeyInterner names_;  ///< span names and outcomes (shared id space)
};

}  // namespace evc::obs

#endif  // EVC_OBS_TRACE_H_
