#include "obs/export.h"

#include <cstdio>

namespace evc::obs {

namespace {

Json HistogramToJson(const Histogram& h) {
  Json::Object out;
  out["count"] = Json(h.count());
  out["mean"] = Json(h.mean());
  out["min"] = Json(h.min());
  out["p50"] = Json(h.Percentile(0.50));
  out["p90"] = Json(h.Percentile(0.90));
  out["p99"] = Json(h.Percentile(0.99));
  out["p999"] = Json(h.Percentile(0.999));
  out["max"] = Json(h.max());
  return Json(std::move(out));
}

Json SpanToJson(const Tracer& tracer, const Span& span) {
  Json::Object out;
  out["id"] = Json(span.id);
  out["parent"] = Json(span.parent);
  out["node"] = Json(static_cast<uint64_t>(span.node));
  out["name"] = Json(std::string(tracer.NameOf(span.name)));
  out["start"] = Json(span.start);
  out["end"] = Json(span.end);
  out["outcome"] = Json(std::string(tracer.NameOf(span.outcome)));
  return Json(std::move(out));
}

}  // namespace

Json RegistryToJson(const MetricsRegistry& registry) {
  Json::Object counters;
  for (const auto& [name, c] : registry.counters()) {
    counters[name] = Json(c.value());
  }
  Json::Object gauges;
  for (const auto& [name, g] : registry.gauges()) {
    gauges[name] = Json(g.value());
  }
  Json::Object histograms;
  for (const auto& [name, h] : registry.histograms()) {
    histograms[name] = HistogramToJson(h);
  }
  Json::Object out;
  out["counters"] = Json(std::move(counters));
  out["gauges"] = Json(std::move(gauges));
  out["histograms"] = Json(std::move(histograms));
  return Json(std::move(out));
}

Json MetricsToJson(const Metrics& metrics) {
  Json::Object nodes;
  for (uint32_t n = 0; n < metrics.node_limit(); ++n) {
    const MetricsRegistry* reg = metrics.node_if(n);
    if (reg == nullptr || reg->empty()) continue;
    nodes[std::to_string(n)] = RegistryToJson(*reg);
  }
  Json::Object out;
  out["schema"] = Json("evc-metrics-v1");
  out["global"] = RegistryToJson(metrics.global());
  out["nodes"] = Json(std::move(nodes));
  out["merged"] = RegistryToJson(metrics.Merged());
  return Json(std::move(out));
}

Json TraceToJson(const Tracer& tracer) {
  Json::Array spans;
  spans.reserve(tracer.finished().size());
  for (const Span& span : tracer.finished()) {
    spans.push_back(SpanToJson(tracer, span));
  }
  Json::Object out;
  out["schema"] = Json("evc-trace-v1");
  out["dropped"] = Json(tracer.dropped());
  out["open"] = Json(static_cast<uint64_t>(tracer.open_count()));
  out["spans"] = Json(std::move(spans));
  return Json(std::move(out));
}

std::string RegistryToCsv(const MetricsRegistry& registry) {
  std::string out = "kind,name,field,value\n";
  char buf[128];
  for (const auto& [name, c] : registry.counters()) {
    std::snprintf(buf, sizeof(buf), "counter,%s,value,%llu\n", name.c_str(),
                  static_cast<unsigned long long>(c.value()));
    out += buf;
  }
  for (const auto& [name, g] : registry.gauges()) {
    std::snprintf(buf, sizeof(buf), "gauge,%s,value,%.17g\n", name.c_str(),
                  g.value());
    out += buf;
  }
  for (const auto& [name, h] : registry.histograms()) {
    const std::pair<const char*, double> fields[] = {
        {"count", static_cast<double>(h.count())}, {"mean", h.mean()},
        {"min", h.min()},                          {"p50", h.Percentile(0.5)},
        {"p90", h.Percentile(0.9)},                {"p99", h.Percentile(0.99)},
        {"p999", h.Percentile(0.999)},             {"max", h.max()}};
    for (const auto& [field, value] : fields) {
      std::snprintf(buf, sizeof(buf), "histogram,%s,%s,%.17g\n", name.c_str(),
                    field, value);
      out += buf;
    }
  }
  return out;
}

std::string TraceToCsv(const Tracer& tracer) {
  std::string out = "id,parent,node,name,start,end,outcome\n";
  char buf[256];
  for (const Span& span : tracer.finished()) {
    const std::string name(tracer.NameOf(span.name));
    const std::string outcome(tracer.NameOf(span.outcome));
    std::snprintf(buf, sizeof(buf), "%llu,%llu,%u,%s,%lld,%lld,%s\n",
                  static_cast<unsigned long long>(span.id),
                  static_cast<unsigned long long>(span.parent), span.node,
                  name.c_str(), static_cast<long long>(span.start),
                  static_cast<long long>(span.end), outcome.c_str());
    out += buf;
  }
  return out;
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Unavailable("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const int close_rc = std::fclose(f);
  if (written != content.size() || close_rc != 0) {
    return Status::Unavailable("short write to " + path);
  }
  return Status::OK();
}

}  // namespace evc::obs
