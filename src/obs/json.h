// Minimal JSON value type, serializer, and parser.
//
// This exists so that (a) the exporters build documents that are valid by
// construction and serialize deterministically — objects are std::map, so
// keys come out sorted; numbers use a fixed format — and (b) the inspection
// tools (tools/evc_trace, tools/evc_bench_check) can read those documents
// back without an external dependency. It is not a general-purpose JSON
// library: no \uXXXX escapes beyond ASCII round-tripping, no streaming.

#ifndef EVC_OBS_JSON_H_
#define EVC_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace evc::obs {

/// A JSON document node. Value-semantic; objects keep keys sorted.
class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(int v) : type_(Type::kInt), int_(v) {}
  Json(int64_t v) : type_(Type::kInt), int_(v) {}
  Json(uint64_t v) : type_(Type::kInt), int_(static_cast<int64_t>(v)) {}
  Json(double v) : type_(Type::kDouble), double_(v) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  Json(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  static Json MakeArray() { return Json(Array{}); }
  static Json MakeObject() { return Json(Object{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  int64_t AsInt() const {
    return type_ == Type::kDouble ? static_cast<int64_t>(double_) : int_;
  }
  double AsDouble() const {
    return type_ == Type::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& AsString() const { return string_; }
  const Array& AsArray() const { return array_; }
  Array& AsArray() { return array_; }
  const Object& AsObject() const { return object_; }
  Object& AsObject() { return object_; }

  /// Object field access; creates the field (as null) on mutable access.
  Json& operator[](const std::string& key) { return object_[key]; }
  /// Returns the field or nullptr when absent / not an object.
  const Json* Find(const std::string& key) const;

  void push_back(Json v) { array_.push_back(std::move(v)); }

  /// Serializes deterministically. `indent` < 0 emits compact single-line
  /// JSON; >= 0 pretty-prints with that many spaces per level.
  std::string Dump(int indent = -1) const;

  /// Parses a complete JSON document (rejects trailing garbage).
  static Result<Json> Parse(std::string_view text);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace evc::obs

#endif  // EVC_OBS_JSON_H_
