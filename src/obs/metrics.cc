#include "obs/metrics.h"

namespace evc::obs {

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counters_[name].Inc(c.value());
  }
  for (const auto& [name, g] : other.gauges_) {
    gauges_[name].Add(g.value());
  }
  for (const auto& [name, h] : other.histograms_) {
    histograms_[name].Merge(h);
  }
}

MetricsRegistry& Metrics::node(uint32_t node) {
  if (nodes_.size() <= node) nodes_.resize(node + 1);
  if (!nodes_[node]) nodes_[node] = std::make_unique<MetricsRegistry>();
  return *nodes_[node];
}

const MetricsRegistry* Metrics::node_if(uint32_t node) const {
  if (node >= nodes_.size()) return nullptr;
  return nodes_[node].get();
}

MetricsRegistry Metrics::Merged() const {
  MetricsRegistry out;
  out.MergeFrom(global_);
  for (const auto& reg : nodes_) {
    if (reg) out.MergeFrom(*reg);
  }
  return out;
}

}  // namespace evc::obs
