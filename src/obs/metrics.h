// Sim-time metrics: label-free counters, gauges, and latency histograms.
//
// One MetricsRegistry per scope (the Simulator owns a global registry plus
// one registry per node, see Metrics). Registration is cheap — a name lookup
// in a std::map returning a stable reference that hot paths cache — and
// iteration order is the name order, so exports are deterministic. Values
// are driven entirely by virtual time and seeded randomness: two same-seed
// runs export byte-identical JSON (pinned by obs_export_test).
//
// Layering: obs sits below sim (sim/simulator.h owns an obs::Metrics), so
// this header must not include anything from sim/. Node ids and times are
// the same plain integers sim uses.

#ifndef EVC_OBS_METRICS_H_
#define EVC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"

namespace evc::obs {

/// Monotonic event count (messages sent, retries, dedup hits, ...).
class Counter {
 public:
  void Inc(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// Point-in-time level (pending hints, buffered writes, ...). Merging across
/// nodes sums, which is the right semantic for per-node occupancy levels.
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// A flat namespace of counters, gauges, and histograms for one scope.
class MetricsRegistry {
 public:
  /// Returns the named instrument, creating it on first use. References are
  /// stable for the registry's lifetime (map nodes never move), so callers
  /// on hot paths should look up once and keep the reference.
  Counter& CounterFor(const std::string& name) { return counters_[name]; }
  Gauge& GaugeFor(const std::string& name) { return gauges_[name]; }
  Histogram& HistogramFor(const std::string& name) { return histograms_[name]; }

  /// Accumulates `other` into this registry: counters and gauges add,
  /// histograms merge bucket-wise. Used to collapse per-node registries
  /// into one cluster-wide view at export time.
  void MergeFrom(const MetricsRegistry& other);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  // Deterministic (name-ordered) iteration for exporters.
  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// The simulation-wide metrics hub: one global registry for cluster-level
/// instruments plus a lazily grown registry per node.
class Metrics {
 public:
  MetricsRegistry& global() { return global_; }
  const MetricsRegistry& global() const { return global_; }

  /// Registry for `node`, created on first use.
  MetricsRegistry& node(uint32_t node);
  /// Read-only view; nullptr if the node never recorded anything.
  const MetricsRegistry* node_if(uint32_t node) const;
  /// One past the highest node id that has a registry.
  size_t node_limit() const { return nodes_.size(); }

  /// Global registry plus every node registry merged into one.
  MetricsRegistry Merged() const;

 private:
  MetricsRegistry global_;
  std::vector<std::unique_ptr<MetricsRegistry>> nodes_;
};

}  // namespace evc::obs

#endif  // EVC_OBS_METRICS_H_
