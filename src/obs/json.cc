#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace evc::obs {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan; null is the least-bad
    *out += "null";
    return;
  }
  // %.17g round-trips any double and is a fixed, deterministic format.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
  // Keep numbers self-describing: a double that printed as an integer gets
  // a ".0" so parsers preserve the int/double distinction.
  if (std::string_view(buf).find_first_of(".eE") == std::string_view::npos) {
    *out += ".0";
  }
}

void AppendNewlineIndent(std::string* out, int indent, int depth) {
  if (indent < 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * depth, ' ');
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> ParseDocument() {
    EVC_ASSIGN_OR_RETURN(Json value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters at offset " +
                                     std::to_string(pos_));
    }
    return value;
  }

 private:
  Status Error(const std::string& what) {
    return Status::InvalidArgument(what + " at offset " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() && std::isspace(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Result<Json> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      EVC_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Json(std::move(s));
    }
    if (ConsumeLiteral("true")) return Json(true);
    if (ConsumeLiteral("false")) return Json(false);
    if (ConsumeLiteral("null")) return Json();
    return ParseNumber();
  }

  Result<Json> ParseObject() {
    ++pos_;  // '{'
    Json::Object obj;
    if (Consume('}')) return Json(std::move(obj));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      EVC_ASSIGN_OR_RETURN(std::string key, ParseString());
      if (!Consume(':')) return Error("expected ':'");
      EVC_ASSIGN_OR_RETURN(Json value, ParseValue());
      obj[std::move(key)] = std::move(value);
      if (Consume(',')) continue;
      if (Consume('}')) return Json(std::move(obj));
      return Error("expected ',' or '}'");
    }
  }

  Result<Json> ParseArray() {
    ++pos_;  // '['
    Json::Array arr;
    if (Consume(']')) return Json(std::move(arr));
    while (true) {
      EVC_ASSIGN_OR_RETURN(Json value, ParseValue());
      arr.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return Json(std::move(arr));
      return Error("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad \\u escape");
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("bad escape");
      }
    }
    return Error("unterminated string");
  }

  Result<Json> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Error("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    if (!is_double) {
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (end == token.c_str() + token.size()) {
        return Json(static_cast<int64_t>(v));
      }
    }
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("bad number");
    return Json(d);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const Json* Json::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kInt:
      *out += std::to_string(int_);
      break;
    case Type::kDouble:
      AppendDouble(out, double_);
      break;
    case Type::kString:
      AppendEscaped(out, string_);
      break;
    case Type::kArray: {
      if (array_.empty()) {
        *out += "[]";
        break;
      }
      out->push_back('[');
      bool first = true;
      for (const Json& v : array_) {
        if (!first) out->push_back(',');
        first = false;
        AppendNewlineIndent(out, indent, depth + 1);
        v.DumpTo(out, indent, depth + 1);
      }
      AppendNewlineIndent(out, indent, depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        *out += "{}";
        break;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [key, v] : object_) {
        if (!first) out->push_back(',');
        first = false;
        AppendNewlineIndent(out, indent, depth + 1);
        AppendEscaped(out, key);
        out->push_back(':');
        if (indent >= 0) out->push_back(' ');
        v.DumpTo(out, indent, depth + 1);
      }
      AppendNewlineIndent(out, indent, depth);
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  if (indent >= 0) out.push_back('\n');
  return out;
}

Result<Json> Json::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace evc::obs
