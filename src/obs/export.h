// Deterministic exporters for metrics and trace spans.
//
// JSON schemas (stable; validated by tools/evc_bench_check for bench output
// and consumed by tools/evc_trace for traces):
//
//   metrics ("evc-metrics-v1"):
//     {"schema": "...", "global": <registry>, "merged": <registry>,
//      "nodes": {"<node-id>": <registry>, ...}}   // only non-empty nodes
//     <registry> = {"counters": {name: int}, "gauges": {name: double},
//                   "histograms": {name: {"count": int, "mean": double,
//                   "min": double, "p50": ..., "p90": ..., "p99": ...,
//                   "p999": ..., "max": double}}}
//
//   trace ("evc-trace-v1"):
//     {"schema": "...", "dropped": int, "open": int, "spans": [
//        {"id": int, "parent": int, "node": int, "name": str,
//         "start": int, "end": int, "outcome": str}, ...]}
//
// Everything is derived from virtual time and seeded randomness and objects
// serialize with sorted keys, so same-seed runs export identical bytes.

#ifndef EVC_OBS_EXPORT_H_
#define EVC_OBS_EXPORT_H_

#include <string>

#include "common/status.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace evc::obs {

/// One registry as a Json object (see schema above).
Json RegistryToJson(const MetricsRegistry& registry);

/// Whole metrics hub: global + per-node + merged view.
Json MetricsToJson(const Metrics& metrics);

/// The tracer's finished spans (oldest first).
Json TraceToJson(const Tracer& tracer);

/// CSV with one row per counter/gauge/histogram-percentile, name-sorted:
/// "kind,name,field,value".
std::string RegistryToCsv(const MetricsRegistry& registry);

/// CSV of spans: "id,parent,node,name,start,end,outcome".
std::string TraceToCsv(const Tracer& tracer);

/// Writes `content` to `path` (truncating). Returns IO errors as Status.
Status WriteFile(const std::string& path, const std::string& content);

}  // namespace evc::obs

#endif  // EVC_OBS_EXPORT_H_
