#include "clock/version_vector.h"

#include "common/encoding.h"

namespace evc {

const char* CausalOrderToString(CausalOrder order) {
  switch (order) {
    case CausalOrder::kEqual:
      return "Equal";
    case CausalOrder::kBefore:
      return "Before";
    case CausalOrder::kAfter:
      return "After";
    case CausalOrder::kConcurrent:
      return "Concurrent";
  }
  return "Unknown";
}

uint64_t VersionVector::Get(uint32_t replica) const {
  auto it = entries_.find(replica);
  return it == entries_.end() ? 0 : it->second;
}

void VersionVector::Set(uint32_t replica, uint64_t value) {
  if (value == 0) {
    entries_.erase(replica);
  } else {
    entries_[replica] = value;
  }
}

uint64_t VersionVector::Increment(uint32_t replica) {
  return ++entries_[replica];
}

void VersionVector::MergeWith(const VersionVector& other) {
  for (const auto& [replica, counter] : other.entries_) {
    auto& mine = entries_[replica];
    if (counter > mine) mine = counter;
  }
}

VersionVector VersionVector::Merge(const VersionVector& a,
                                   const VersionVector& b) {
  VersionVector out = a;
  out.MergeWith(b);
  return out;
}

CausalOrder VersionVector::Compare(const VersionVector& other) const {
  bool less = false;    // some component of *this < other
  bool greater = false; // some component of *this > other

  auto it_a = entries_.begin();
  auto it_b = other.entries_.begin();
  while (it_a != entries_.end() || it_b != other.entries_.end()) {
    if (it_b == other.entries_.end() ||
        (it_a != entries_.end() && it_a->first < it_b->first)) {
      greater = true;  // other has 0 here
      ++it_a;
    } else if (it_a == entries_.end() || it_b->first < it_a->first) {
      less = true;  // this has 0 here
      ++it_b;
    } else {
      if (it_a->second < it_b->second) less = true;
      if (it_a->second > it_b->second) greater = true;
      ++it_a;
      ++it_b;
    }
    if (less && greater) return CausalOrder::kConcurrent;
  }
  if (less) return CausalOrder::kBefore;
  if (greater) return CausalOrder::kAfter;
  return CausalOrder::kEqual;
}

bool VersionVector::Descends(const VersionVector& other) const {
  const CausalOrder order = Compare(other);
  return order == CausalOrder::kEqual || order == CausalOrder::kAfter;
}

uint64_t VersionVector::TotalEvents() const {
  uint64_t total = 0;
  for (const auto& [replica, counter] : entries_) total += counter;
  return total;
}

std::string VersionVector::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [replica, counter] : entries_) {
    if (!first) out += ", ";
    first = false;
    out += "r" + std::to_string(replica) + ":" + std::to_string(counter);
  }
  out += "}";
  return out;
}

void VersionVector::EncodeTo(std::string* dst) const {
  PutVarint64(dst, entries_.size());
  for (const auto& [replica, counter] : entries_) {
    PutVarint64(dst, replica);
    PutVarint64(dst, counter);
  }
}

Result<VersionVector> VersionVector::Decode(std::string_view data) {
  Decoder dec(data);
  uint64_t n = 0;
  EVC_RETURN_IF_ERROR(dec.GetVarint64(&n));
  VersionVector vv;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t replica = 0, counter = 0;
    EVC_RETURN_IF_ERROR(dec.GetVarint64(&replica));
    EVC_RETURN_IF_ERROR(dec.GetVarint64(&counter));
    if (replica > UINT32_MAX) {
      return Status::Corruption("replica id out of range");
    }
    vv.Set(static_cast<uint32_t>(replica), counter);
  }
  if (!dec.Done()) return Status::Corruption("trailing bytes after vector");
  return vv;
}

bool DottedVersionVector::Contains(const Dot& d) const {
  if (has_dot_ && dot_.replica == d.replica && dot_.counter == d.counter) {
    return true;
  }
  return context_.Get(d.replica) >= d.counter;
}

bool DottedVersionVector::Dominates(const DottedVersionVector& other) const {
  // `other`'s events are its context plus its dot; all must be in `this`.
  if (other.has_dot_ && !Contains(other.dot_)) return false;
  for (const auto& [replica, counter] : other.context_.entries()) {
    // Every event (replica, 1..counter) must be contained. The context is
    // contiguous, so it suffices to check the top event.
    if (!Contains(Dot{replica, counter})) return false;
  }
  return true;
}

CausalOrder DottedVersionVector::Compare(
    const DottedVersionVector& other) const {
  const bool ab = Dominates(other);
  const bool ba = other.Dominates(*this);
  if (ab && ba) return CausalOrder::kEqual;
  if (ab) return CausalOrder::kAfter;
  if (ba) return CausalOrder::kBefore;
  return CausalOrder::kConcurrent;
}

VersionVector DottedVersionVector::Flatten() const {
  VersionVector out = context_;
  if (has_dot_ && out.Get(dot_.replica) < dot_.counter) {
    out.Set(dot_.replica, dot_.counter);
  }
  return out;
}

std::string DottedVersionVector::ToString() const {
  std::string out = context_.ToString();
  if (has_dot_) out += "+" + dot_.ToString();
  return out;
}

}  // namespace evc
