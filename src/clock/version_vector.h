// Version vectors / vector clocks.
//
// The core causality-tracking structure of the tutorial's mechanism section:
// a map replica-id -> counter. Two versions are ordered iff one vector
// dominates the other; otherwise they are concurrent (siblings). The same
// structure serves as a vector clock for events (session guarantees, causal
// store) and as a version vector for object versions (multi-value KV).

#ifndef EVC_CLOCK_VERSION_VECTOR_H_
#define EVC_CLOCK_VERSION_VECTOR_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"

namespace evc {

/// Result of comparing two version vectors under the causal partial order.
enum class CausalOrder {
  kEqual,       ///< identical vectors
  kBefore,      ///< left strictly happens-before right (right dominates)
  kAfter,       ///< left strictly dominates right
  kConcurrent,  ///< neither dominates: conflicting / concurrent versions
};

const char* CausalOrderToString(CausalOrder order);

/// Map from replica id to update counter. Absent entries are zero. The map
/// is ordered so iteration (and serialization) is deterministic.
class VersionVector {
 public:
  VersionVector() = default;

  /// Counter for `replica` (0 if absent).
  uint64_t Get(uint32_t replica) const;

  /// Sets the counter for `replica` (erases the entry when v == 0).
  void Set(uint32_t replica, uint64_t value);

  /// Increments `replica`'s counter and returns the new value.
  uint64_t Increment(uint32_t replica);

  /// Pointwise maximum with `other` (the join of the two histories).
  void MergeWith(const VersionVector& other);

  /// Joined copy.
  static VersionVector Merge(const VersionVector& a, const VersionVector& b);

  /// Compares under the causal partial order.
  CausalOrder Compare(const VersionVector& other) const;

  /// True if this vector has seen everything `other` has (>= pointwise):
  /// i.e. Compare(other) is kEqual or kAfter.
  bool Descends(const VersionVector& other) const;

  /// True if this strictly dominates `other`.
  bool Dominates(const VersionVector& other) const {
    return Compare(other) == CausalOrder::kAfter;
  }

  /// True if the two vectors are concurrent.
  bool ConcurrentWith(const VersionVector& other) const {
    return Compare(other) == CausalOrder::kConcurrent;
  }

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  /// Sum of all counters (total events witnessed); used as a cheap progress
  /// metric in experiments.
  uint64_t TotalEvents() const;

  bool operator==(const VersionVector& other) const {
    return entries_ == other.entries_;
  }
  bool operator!=(const VersionVector& other) const {
    return !(*this == other);
  }

  const std::map<uint32_t, uint64_t>& entries() const { return entries_; }

  /// "{r0:3, r2:1}" rendering for logs and test failure messages.
  std::string ToString() const;

  /// Deterministic binary form (varint count, then (replica, counter) pairs
  /// in ascending replica order).
  void EncodeTo(std::string* dst) const;
  static Result<VersionVector> Decode(std::string_view data);

 private:
  std::map<uint32_t, uint64_t> entries_;
};

/// Vector clocks are structurally identical to version vectors; the alias
/// documents intent (event causality vs. object version history).
using VectorClock = VersionVector;

/// A dot: one specific write event (replica, sequence-number).
struct Dot {
  uint32_t replica = 0;
  uint64_t counter = 0;

  auto operator<=>(const Dot&) const = default;
  std::string ToString() const {
    return "(" + std::to_string(replica) + "," + std::to_string(counter) + ")";
  }
};

/// Dotted version vector (Preguiça et al. 2012): a contiguous causal context
/// plus the single dot of the write it tags. Lets a server tag each sibling
/// with exactly one new event while keeping the context compact, fixing the
/// sibling-explosion problem of naive per-client version vectors.
class DottedVersionVector {
 public:
  DottedVersionVector() = default;
  DottedVersionVector(VersionVector context, Dot dot)
      : context_(std::move(context)), dot_(dot), has_dot_(true) {}

  /// The contiguous history below the dot.
  const VersionVector& context() const { return context_; }
  bool has_dot() const { return has_dot_; }
  const Dot& dot() const { return dot_; }

  /// True if `this` (as an event set) contains the event `d`.
  bool Contains(const Dot& d) const;

  /// True if every event of `other` is contained in `this` — i.e. `other`'s
  /// write is causally dominated and may be discarded.
  bool Dominates(const DottedVersionVector& other) const;

  /// Causal comparison of the tagged writes.
  CausalOrder Compare(const DottedVersionVector& other) const;

  /// Flattens dot + context into a plain version vector.
  VersionVector Flatten() const;

  std::string ToString() const;

 private:
  VersionVector context_;
  Dot dot_{};
  bool has_dot_ = false;
};

}  // namespace evc

#endif  // EVC_CLOCK_VERSION_VECTOR_H_
