// Hybrid logical clock (Kulkarni et al. 2014).
//
// Combines physical time with a logical component: timestamps are close to
// wall-clock (useful for LWW and bounded-staleness reasoning) while still
// respecting happens-before even when physical clocks skew. The tutorial's
// discussion of last-writer-wins anomalies under clock skew motivates this.

#ifndef EVC_CLOCK_HLC_H_
#define EVC_CLOCK_HLC_H_

#include <algorithm>
#include <compare>
#include <cstdint>
#include <string>

namespace evc {

/// An HLC timestamp: (wall, logical, node). Ordered lexicographically; the
/// node id makes the order total.
struct HlcTimestamp {
  int64_t wall = 0;     ///< physical component (simulated microseconds)
  uint32_t logical = 0; ///< ticks within one physical instant
  uint32_t node = 0;

  auto operator<=>(const HlcTimestamp&) const = default;

  std::string ToString() const {
    return std::to_string(wall) + "." + std::to_string(logical) + "@" +
           std::to_string(node);
  }
};

/// Per-process hybrid logical clock. The caller supplies physical time on
/// each operation (in simulation this is virtual time plus per-node skew).
class HybridLogicalClock {
 public:
  explicit HybridLogicalClock(uint32_t node_id) : node_id_(node_id) {}

  /// Timestamp for a local event or message send at physical time `now`.
  HlcTimestamp Tick(int64_t physical_now) {
    if (physical_now > wall_) {
      wall_ = physical_now;
      logical_ = 0;
    } else {
      ++logical_;
    }
    return Current();
  }

  /// Merges a received timestamp at local physical time `now`.
  HlcTimestamp Observe(const HlcTimestamp& remote, int64_t physical_now) {
    const int64_t max_wall = std::max(std::max(wall_, remote.wall),
                                      physical_now);
    if (max_wall == wall_ && max_wall == remote.wall) {
      logical_ = std::max(logical_, remote.logical) + 1;
    } else if (max_wall == wall_) {
      ++logical_;
    } else if (max_wall == remote.wall) {
      logical_ = remote.logical + 1;
    } else {
      logical_ = 0;
    }
    wall_ = max_wall;
    return Current();
  }

  HlcTimestamp Current() const { return HlcTimestamp{wall_, logical_, node_id_}; }

  /// Maximum drift of the HLC's wall component above true physical time;
  /// bounded by the clock-skew bound of the deployment (HLC theorem 1).
  int64_t WallDriftAbove(int64_t physical_now) const {
    return wall_ > physical_now ? wall_ - physical_now : 0;
  }

 private:
  uint32_t node_id_;
  int64_t wall_ = 0;
  uint32_t logical_ = 0;
};

}  // namespace evc

#endif  // EVC_CLOCK_HLC_H_
