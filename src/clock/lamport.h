// Lamport scalar logical clock (Lamport 1978).
//
// Provides a total order consistent with happens-before. Used by the
// last-writer-wins conflict policy (timestamp = (counter, replica-id) to
// break ties deterministically) and as the op-ordering basis for timeline
// consistency.

#ifndef EVC_CLOCK_LAMPORT_H_
#define EVC_CLOCK_LAMPORT_H_

#include <compare>
#include <cstdint>
#include <string>

namespace evc {

/// A Lamport timestamp: (counter, node) with lexicographic order. The node
/// component makes the order total across replicas.
struct LamportTimestamp {
  uint64_t counter = 0;
  uint32_t node = 0;

  auto operator<=>(const LamportTimestamp&) const = default;

  std::string ToString() const {
    return std::to_string(counter) + "@" + std::to_string(node);
  }
};

/// Per-process Lamport clock.
class LamportClock {
 public:
  explicit LamportClock(uint32_t node_id) : node_id_(node_id) {}

  /// Advances for a local event (or message send) and returns the new stamp.
  LamportTimestamp Tick() { return LamportTimestamp{++counter_, node_id_}; }

  /// Folds in a remote timestamp on message receipt, then ticks.
  LamportTimestamp Observe(const LamportTimestamp& remote) {
    if (remote.counter > counter_) counter_ = remote.counter;
    return Tick();
  }

  /// Current value without advancing.
  LamportTimestamp Peek() const { return LamportTimestamp{counter_, node_id_}; }

  uint32_t node_id() const { return node_id_; }

 private:
  uint32_t node_id_;
  uint64_t counter_ = 0;
};

}  // namespace evc

#endif  // EVC_CLOCK_LAMPORT_H_
