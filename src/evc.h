// Umbrella header: the full public API of the evc library.
//
// Most adopters only need core/replicated_store.h (the consistency dial) or
// one protocol header; this header exists for exploratory use and for
// keeping the public surface compiling as one unit.

#ifndef EVC_EVC_H_
#define EVC_EVC_H_

// Substrate.
#include "common/distributions.h"   // IWYU pragma: export
#include "common/encoding.h"        // IWYU pragma: export
#include "common/hash.h"            // IWYU pragma: export
#include "common/logging.h"         // IWYU pragma: export
#include "common/rng.h"             // IWYU pragma: export
#include "common/stats.h"           // IWYU pragma: export
#include "common/status.h"          // IWYU pragma: export

// Observability.
#include "obs/export.h"   // IWYU pragma: export
#include "obs/json.h"     // IWYU pragma: export
#include "obs/metrics.h"  // IWYU pragma: export
#include "obs/trace.h"    // IWYU pragma: export

// Simulation.
#include "sim/latency.h"    // IWYU pragma: export
#include "sim/nemesis.h"    // IWYU pragma: export
#include "sim/network.h"    // IWYU pragma: export
#include "sim/rpc.h"        // IWYU pragma: export
#include "sim/simulator.h"  // IWYU pragma: export

// Version tracking.
#include "clock/hlc.h"             // IWYU pragma: export
#include "clock/lamport.h"         // IWYU pragma: export
#include "clock/version_vector.h"  // IWYU pragma: export

// Storage.
#include "storage/dvv_store.h"        // IWYU pragma: export
#include "storage/merkle.h"           // IWYU pragma: export
#include "storage/replica_storage.h"  // IWYU pragma: export
#include "storage/versioned_store.h"  // IWYU pragma: export
#include "storage/wal.h"              // IWYU pragma: export

// Protocols.
#include "causal/causal_store.h"         // IWYU pragma: export
#include "consensus/paxos.h"             // IWYU pragma: export
#include "replication/anti_entropy.h"    // IWYU pragma: export
#include "replication/hash_ring.h"       // IWYU pragma: export
#include "replication/quorum_store.h"    // IWYU pragma: export
#include "replication/timeline_store.h"  // IWYU pragma: export
#include "session/session.h"             // IWYU pragma: export
#include "sla/pileus.h"                  // IWYU pragma: export
#include "stale/pbs.h"                   // IWYU pragma: export
#include "txn/escrow.h"                  // IWYU pragma: export
#include "txn/redblue.h"                 // IWYU pragma: export

// CRDTs.
#include "crdt/causal_bus.h"   // IWYU pragma: export
#include "crdt/delta_orset.h"  // IWYU pragma: export
#include "crdt/gcounter.h"       // IWYU pragma: export
#include "crdt/geo_broadcast.h"  // IWYU pragma: export
#include "crdt/op_crdts.h"     // IWYU pragma: export
#include "crdt/ormap.h"        // IWYU pragma: export
#include "crdt/orset.h"        // IWYU pragma: export
#include "crdt/registers.h"    // IWYU pragma: export
#include "crdt/rga.h"          // IWYU pragma: export
#include "crdt/sets.h"         // IWYU pragma: export

// Workloads, verification, facade.
#include "core/replicated_store.h"        // IWYU pragma: export
#include "verify/causal_checker.h"        // IWYU pragma: export
#include "verify/convergence.h"           // IWYU pragma: export
#include "verify/fuzz.h"                  // IWYU pragma: export
#include "verify/linearizability.h"       // IWYU pragma: export
#include "verify/session_guarantees.h"    // IWYU pragma: export
#include "workload/workload.h"            // IWYU pragma: export

#endif  // EVC_EVC_H_
