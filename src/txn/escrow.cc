#include "txn/escrow.h"

#include <algorithm>

namespace evc::txn {

namespace {
constexpr char kAcquire[] = "esc.acquire";
constexpr char kSteal[] = "esc.steal";
constexpr char kNaiveAcquire[] = "nv.acquire";
constexpr char kNaiveDelta[] = "nv.delta";
}  // namespace

// ---------------------------------------------------------------------------
// EscrowCluster
// ---------------------------------------------------------------------------

EscrowCluster::EscrowCluster(sim::Rpc* rpc, int replica_count,
                             int64_t initial_total, EscrowOptions options)
    : rpc_(rpc), options_(options) {
  EVC_CHECK(rpc_ != nullptr);
  m_acquire_ = rpc_->InternMethod(kAcquire);
  m_steal_ = rpc_->InternMethod(kSteal);
  EVC_CHECK(replica_count >= 1);
  EVC_CHECK(initial_total >= 0);
  const int64_t base = initial_total / replica_count;
  int64_t remainder = initial_total % replica_count;
  for (int i = 0; i < replica_count; ++i) {
    auto replica = std::make_unique<Replica>();
    replica->node = rpc_->network()->AddNode();
    replica->index = i;
    replica->share = base + (remainder-- > 0 ? 1 : 0);
    RegisterHandlers(replica.get());
    replicas_.push_back(std::move(replica));
  }
}

sim::NodeId EscrowCluster::replica_node(int index) const {
  EVC_CHECK(index >= 0 && index < static_cast<int>(replicas_.size()));
  return replicas_[index]->node;
}

int64_t EscrowCluster::ShareOf(int replica) const {
  EVC_CHECK(replica >= 0 && replica < static_cast<int>(replicas_.size()));
  return replicas_[replica]->share;
}

int64_t EscrowCluster::TotalRemaining() const {
  int64_t total = 0;
  for (const auto& r : replicas_) total += r->share;
  return total;
}

int EscrowCluster::RichestPeer(const Replica& replica) const {
  int richest = -1;
  int64_t best = 0;
  for (const auto& peer : replicas_) {
    if (peer->index == replica.index) continue;
    if (peer->share > best) {
      best = peer->share;
      richest = peer->index;
    }
  }
  return richest;
}

void EscrowCluster::RegisterHandlers(Replica* replica) {
  rpc_->RegisterHandler(
      replica->node, m_acquire_,
      [this, replica](sim::NodeId, sim::Payload req, sim::RpcResponder respond) {
        auto acquire = std::move(req).Take<AcquireReq>();
        HandleAcquire(replica, acquire, std::move(respond));
      });

  rpc_->RegisterHandler(
      replica->node, m_steal_,
      [this, replica](sim::NodeId, sim::Payload req, sim::RpcResponder respond) {
        auto steal = std::move(req).Take<StealReq>();
        // Give the larger of `wanted` and a fraction of our share, bounded
        // by what we hold. Giving from our escrow can never break the
        // invariant: units merely change custodian.
        const int64_t fraction = static_cast<int64_t>(
            static_cast<double>(replica->share) * options_.steal_fraction);
        int64_t give = std::max(steal.wanted, fraction);
        if (give > replica->share) give = replica->share;
        replica->share -= give;
        if (give > 0) {
          ++stats_.transfers;
          stats_.transferred_units += give;
        }
        respond(give);
      });
}

void EscrowCluster::HandleAcquire(Replica* replica, const AcquireReq& req,
                                  sim::RpcResponder respond) {
  if (replica->share >= req.amount) {
    // Fast path: purely local, invariant-safe.
    replica->share -= req.amount;
    total_acquired_ += req.amount;
    ++stats_.acquires_ok;
    respond(replica->share);
    return;
  }
  if (!req.allow_steal) {
    ++stats_.acquires_aborted;
    respond(Status::Aborted("escrow exhausted"));
    return;
  }
  // Slow path: rebalance from the richest peer, then retry once.
  const int peer = RichestPeer(*replica);
  if (peer < 0) {
    ++stats_.acquires_aborted;
    respond(Status::Aborted("escrow exhausted (no peers)"));
    return;
  }
  StealReq steal{req.amount - replica->share};
  AcquireReq retry = req;
  retry.allow_steal = false;
  rpc_->Call(replica->node, replicas_[peer]->node, m_steal_, steal,
             options_.rpc_timeout,
             [this, replica, retry, respond](Result<sim::Payload> r) mutable {
               if (r.ok()) {
                 replica->share += std::move(r).value().Take<int64_t>();
               }
               HandleAcquire(replica, retry, std::move(respond));
             });
}

void EscrowCluster::Acquire(sim::NodeId client, int replica, int64_t amount,
                            AcquireCallback done) {
  EVC_CHECK(amount > 0);
  AcquireReq req{amount, /*allow_steal=*/true};
  rpc_->Call(client, replica_node(replica), m_acquire_, req,
             2 * options_.rpc_timeout, [done](Result<sim::Payload> r) {
               if (!r.ok()) {
                 done(r.status());
               } else {
                 done(std::move(r).value().Take<int64_t>());
               }
             });
}

// ---------------------------------------------------------------------------
// NaiveCounterCluster
// ---------------------------------------------------------------------------

NaiveCounterCluster::NaiveCounterCluster(sim::Rpc* rpc, int replica_count,
                                         int64_t initial_total,
                                         sim::Time rpc_timeout)
    : rpc_(rpc), rpc_timeout_(rpc_timeout), initial_total_(initial_total) {
  EVC_CHECK(rpc_ != nullptr);
  m_naive_acquire_ = rpc_->InternMethod(kNaiveAcquire);
  t_naive_delta_ = rpc_->network()->InternType(kNaiveDelta);
  for (int i = 0; i < replica_count; ++i) {
    auto replica = std::make_unique<Replica>();
    replica->node = rpc_->network()->AddNode();
    replica->cached = initial_total;
    Replica* raw = replica.get();

    rpc_->network()->RegisterHandler(
        raw->node, t_naive_delta_, [raw](sim::Message msg) {
          raw->cached -= std::move(msg.payload).Take<int64_t>();
        });

    rpc_->RegisterHandler(
        raw->node, m_naive_acquire_,
        [this, raw](sim::NodeId, sim::Payload req, sim::RpcResponder respond) {
          auto acquire = std::move(req).Take<AcquireReq>();
          // Check-then-act against a possibly stale cache: the classic
          // race. Two replicas both see stock and both sell it.
          if (raw->cached < acquire.amount) {
            ++stats_.acquires_aborted;
            respond(Status::Aborted("out of stock (cached view)"));
            return;
          }
          raw->cached -= acquire.amount;
          total_acquired_ += acquire.amount;
          ++stats_.acquires_ok;
          for (const auto& peer : replicas_) {
            if (peer->node != raw->node) {
              rpc_->network()->Send(raw->node, peer->node, t_naive_delta_,
                                    acquire.amount);
            }
          }
          respond(raw->cached);
        });

    replicas_.push_back(std::move(replica));
  }
}

sim::NodeId NaiveCounterCluster::replica_node(int index) const {
  EVC_CHECK(index >= 0 && index < static_cast<int>(replicas_.size()));
  return replicas_[index]->node;
}

int64_t NaiveCounterCluster::ValueAt(int replica) const {
  EVC_CHECK(replica >= 0 && replica < static_cast<int>(replicas_.size()));
  return replicas_[replica]->cached;
}

void NaiveCounterCluster::Acquire(sim::NodeId client, int replica,
                                  int64_t amount, AcquireCallback done) {
  EVC_CHECK(amount > 0);
  AcquireReq req{amount};
  rpc_->Call(client, replica_node(replica), m_naive_acquire_, req, rpc_timeout_,
             [done](Result<sim::Payload> r) {
               if (!r.ok()) {
                 done(r.status());
               } else {
                 done(std::move(r).value().Take<int64_t>());
               }
             });
}

}  // namespace evc::txn
