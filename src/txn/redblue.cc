#include "txn/redblue.h"

namespace evc::txn {

namespace {
constexpr char kLocalOp[] = "rb.local";
constexpr char kRedOp[] = "rb.red";
constexpr char kDelta[] = "rb.delta";
}  // namespace

RedBlueBank::RedBlueBank(sim::Rpc* rpc, int site_count, RedBlueOptions options)
    : rpc_(rpc), options_(options) {
  EVC_CHECK(rpc_ != nullptr);
  m_local_op_ = rpc_->InternMethod(kLocalOp);
  m_red_op_ = rpc_->InternMethod(kRedOp);
  t_delta_ = rpc_->network()->InternType(kDelta);
  EVC_CHECK(site_count >= 1);
  for (int i = 0; i < site_count; ++i) {
    auto site = std::make_unique<Site>();
    site->node = rpc_->network()->AddNode();
    site->index = i;
    RegisterHandlers(site.get());
    by_node_[site->node] = site.get();
    sites_.push_back(std::move(site));
  }
}

sim::NodeId RedBlueBank::site_node(int index) const {
  EVC_CHECK(index >= 0 && index < static_cast<int>(sites_.size()));
  return sites_[index]->node;
}

RedBlueBank::Site* RedBlueBank::FindSite(sim::NodeId node) {
  auto it = by_node_.find(node);
  return it == by_node_.end() ? nullptr : it->second;
}

void RedBlueBank::ApplyDelta(Site* site, const std::string& account,
                             int64_t delta) {
  int64_t& balance = site->balances[account];
  balance += delta;
  if (balance < 0) {
    // The invariant "balance >= 0" is broken at this site — the double-
    // spend anomaly mislabelled-blue withdrawals produce.
    ++stats_.invariant_violations;
  }
}

void RedBlueBank::BroadcastDelta(Site* origin, const std::string& account,
                                 int64_t delta) {
  BlueDelta msg{account, delta};
  for (auto& peer : sites_) {
    if (peer->node == origin->node) continue;
    rpc_->network()->Send(origin->node, peer->node, t_delta_, msg);
  }
}

void RedBlueBank::RegisterHandlers(Site* site) {
  // Blue shadow deltas commute: apply on arrival, any order.
  rpc_->network()->RegisterHandler(
      site->node, t_delta_, [this, site](sim::Message msg) {
        auto delta = std::move(msg.payload).Take<BlueDelta>();
        ApplyDelta(site, delta.account, delta.delta);
      });

  // Blue client ops (deposit / mislabelled-blue withdraw).
  rpc_->RegisterHandler(
      site->node, m_local_op_,
      [this, site](sim::NodeId, sim::Payload req, sim::RpcResponder respond) {
        auto op = std::move(req).Take<LocalOpReq>();
        if (op.is_withdraw) {
          // Local-only invariant check: unsound globally, by design.
          if (site->balances[op.account] < op.amount) {
            respond(Status::Aborted("insufficient funds (local view)"));
            return;
          }
          ++stats_.blue_ops;
          ApplyDelta(site, op.account, -op.amount);
          BroadcastDelta(site, op.account, -op.amount);
        } else {
          ++stats_.blue_ops;
          ApplyDelta(site, op.account, op.amount);
          BroadcastDelta(site, op.account, op.amount);
        }
        respond(site->balances[op.account]);
      });

  // Red ops land only on the sequencer (site 0).
  if (site->index == 0) {
    rpc_->RegisterHandler(
        site->node, m_red_op_,
        [this, site](sim::NodeId, sim::Payload req, sim::RpcResponder respond) {
          auto op = std::move(req).Take<RedReq>();
          ++stats_.red_ops;
          // The sequencer's local balance is a safe under-approximation of
          // the global balance: it contains every red withdrawal (they all
          // execute here) and a subset of the deposits (those already
          // replicated). Approving against it can never overdraw.
          if (site->balances[op.account] < op.amount) {
            ++stats_.red_aborts;
            respond(Status::Aborted("insufficient funds (red check)"));
            return;
          }
          ApplyDelta(site, op.account, -op.amount);
          BroadcastDelta(site, op.account, -op.amount);
          respond(site->balances[op.account]);
        });
  }
}

void RedBlueBank::Deposit(sim::NodeId client, int site,
                          const std::string& account, int64_t amount,
                          OpCallback done) {
  EVC_CHECK(amount >= 0);
  LocalOpReq req{account, amount, /*is_withdraw=*/false};
  rpc_->Call(client, site_node(site), m_local_op_, std::move(req),
             options_.rpc_timeout, [done](Result<sim::Payload> r) {
               if (!r.ok()) {
                 done(r.status());
               } else {
                 done(std::move(r).value().Take<int64_t>());
               }
             });
}

void RedBlueBank::WithdrawBlue(sim::NodeId client, int site,
                               const std::string& account, int64_t amount,
                               OpCallback done) {
  EVC_CHECK(amount >= 0);
  LocalOpReq req{account, amount, /*is_withdraw=*/true};
  rpc_->Call(client, site_node(site), m_local_op_, std::move(req),
             options_.rpc_timeout, [done](Result<sim::Payload> r) {
               if (!r.ok()) {
                 done(r.status());
               } else {
                 done(std::move(r).value().Take<int64_t>());
               }
             });
}

void RedBlueBank::WithdrawRed(sim::NodeId client, int site,
                              const std::string& account, int64_t amount,
                              OpCallback done) {
  EVC_CHECK(amount >= 0);
  (void)site;  // red ops always route to the sequencer, wherever the client
  RedReq req{account, amount};
  rpc_->Call(client, site_node(0), m_red_op_, std::move(req),
             options_.rpc_timeout, [done](Result<sim::Payload> r) {
               if (!r.ok()) {
                 done(r.status());
               } else {
                 done(std::move(r).value().Take<int64_t>());
               }
             });
}

int64_t RedBlueBank::BalanceAt(int site, const std::string& account) const {
  EVC_CHECK(site >= 0 && site < static_cast<int>(sites_.size()));
  auto it = sites_[site]->balances.find(account);
  return it == sites_[site]->balances.end() ? 0 : it->second;
}

bool RedBlueBank::Converged(const std::string& account) const {
  const int64_t first = BalanceAt(0, account);
  for (size_t i = 1; i < sites_.size(); ++i) {
    if (BalanceAt(static_cast<int>(i), account) != first) return false;
  }
  return true;
}

}  // namespace evc::txn
