// RedBlue consistency (Li et al., OSDI 2012) on a geo-replicated bank.
//
// The tutorial's "strong only when necessary" hybrid: operations are
// labelled blue (provably commutative and invariant-safe — execute at the
// local site immediately, replicate shadow deltas asynchronously) or red
// (order-dependent — serialized through a global sequencer before anyone
// acks). The bank is the paper's running example:
//   * Deposit is blue: deposits commute and cannot break balance >= 0.
//   * Withdraw must be red: two sites concurrently withdrawing the same
//     funds can drive the balance negative. WithdrawBlue is provided
//     deliberately to measure exactly that anomaly (Table 1 / Table 2).
// Blue latency ~ local RTT; red latency ~ WAN RTT to the sequencer: the
// throughput/latency-vs-red-fraction tradeoff is the experiment.

#ifndef EVC_TXN_REDBLUE_H_
#define EVC_TXN_REDBLUE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/rpc.h"

namespace evc::txn {

struct RedBlueOptions {
  sim::Time rpc_timeout = 2 * sim::kSecond;
};

struct RedBlueStats {
  uint64_t blue_ops = 0;
  uint64_t red_ops = 0;
  uint64_t red_aborts = 0;           ///< red withdrawals rejected (funds)
  uint64_t invariant_violations = 0; ///< balance observed < 0 at some site
};

/// Geo-replicated bank with red/blue operation labelling.
class RedBlueBank {
 public:
  /// `rpc` must outlive the bank. Site 0 hosts the red-op sequencer.
  RedBlueBank(sim::Rpc* rpc, int site_count, RedBlueOptions options = {});

  size_t site_count() const { return sites_.size(); }
  sim::NodeId site_node(int index) const;

  using OpCallback = std::function<void(Result<int64_t>)>;

  /// Blue op: commutative deposit. Acks after the local apply; shadow
  /// deltas replicate asynchronously.
  void Deposit(sim::NodeId client, int site, const std::string& account,
               int64_t amount, OpCallback done);

  /// Red op: withdraw serialized through the sequencer, which checks the
  /// invariant against its authoritative red state. Aborted when the
  /// sequencer cannot guarantee balance >= 0.
  void WithdrawRed(sim::NodeId client, int site, const std::string& account,
                   int64_t amount, OpCallback done);

  /// Mislabelled-blue withdraw: local check, blue replication. Fast and
  /// WRONG — concurrent sites can double-spend (the anomaly the experiment
  /// counts).
  void WithdrawBlue(sim::NodeId client, int site, const std::string& account,
                    int64_t amount, OpCallback done);

  /// Balance visible at `site`.
  int64_t BalanceAt(int site, const std::string& account) const;
  /// True if every site sees the same balance.
  bool Converged(const std::string& account) const;

  const RedBlueStats& stats() const { return stats_; }

 private:
  struct Site {
    sim::NodeId node = 0;
    int index = 0;
    std::map<std::string, int64_t> balances;
  };
  struct BlueDelta {
    std::string account;
    int64_t delta = 0;
  };
  struct LocalOpReq {
    std::string account;
    int64_t amount = 0;
    bool is_withdraw = false;
  };
  struct RedReq {
    std::string account;
    int64_t amount = 0;
  };

  Site* FindSite(sim::NodeId node);
  void RegisterHandlers(Site* site);
  void ApplyDelta(Site* site, const std::string& account, int64_t delta);
  void BroadcastDelta(Site* origin, const std::string& account,
                      int64_t delta);

  sim::Rpc* rpc_;
  // Pre-interned RPC methods / message types (resolved in the ctor).
  sim::MethodId m_local_op_ = 0;
  sim::MethodId m_red_op_ = 0;
  sim::MsgType t_delta_ = 0;
  RedBlueOptions options_;
  std::vector<std::unique_ptr<Site>> sites_;
  std::map<sim::NodeId, Site*> by_node_;
  RedBlueStats stats_;
};

}  // namespace evc::txn

#endif  // EVC_TXN_REDBLUE_H_
