// Escrow reservations (O'Neil 1986) for high-contention counters, plus the
// naive replicated counter they fix.
//
// The tutorial's answer to "how do you decrement inventory without
// coordination per operation?": pre-partition the quantity into per-replica
// escrow shares. A decrement that fits the local share commits locally with
// no coordination and cannot violate the global invariant (sum of shares
// never goes negative). When the local share runs dry, the replica
// rebalances from peers — coordination proportional to imbalance, not to
// operation count. NaiveCounterCluster is the baseline: local check +
// asynchronous delta propagation, which oversells under contention
// (Table 2 counts the oversold units).

#ifndef EVC_TXN_ESCROW_H_
#define EVC_TXN_ESCROW_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "sim/rpc.h"

namespace evc::txn {

struct EscrowOptions {
  sim::Time rpc_timeout = 2 * sim::kSecond;
  /// A dry replica asks the richest peer for this fraction of its share.
  double steal_fraction = 0.5;
};

struct EscrowStats {
  uint64_t acquires_ok = 0;
  uint64_t acquires_aborted = 0;
  uint64_t transfers = 0;        ///< escrow rebalance rounds
  int64_t transferred_units = 0;
};

/// Replicated counter with escrow: Acquire(k) succeeds iff the global
/// remaining quantity allows it, with purely local fast-path decisions.
class EscrowCluster {
 public:
  EscrowCluster(sim::Rpc* rpc, int replica_count, int64_t initial_total,
                EscrowOptions options = {});

  using AcquireCallback = std::function<void(Result<int64_t>)>;

  /// Acquires `amount` units at `replica`. The callback gets the replica's
  /// remaining share, or Aborted when the escrow cannot cover it (after one
  /// rebalance attempt).
  void Acquire(sim::NodeId client, int replica, int64_t amount,
               AcquireCallback done);

  sim::NodeId replica_node(int index) const;
  int64_t ShareOf(int replica) const;
  /// Sum of shares still held (invariant: initial_total - acquired).
  int64_t TotalRemaining() const;
  int64_t total_acquired() const { return total_acquired_; }

  const EscrowStats& stats() const { return stats_; }

 private:
  struct Replica {
    sim::NodeId node = 0;
    int index = 0;
    int64_t share = 0;
  };
  struct AcquireReq {
    int64_t amount = 0;
    bool allow_steal = true;
  };
  struct StealReq {
    int64_t wanted = 0;
  };

  void RegisterHandlers(Replica* replica);
  void HandleAcquire(Replica* replica, const AcquireReq& req,
                     sim::RpcResponder respond);
  int RichestPeer(const Replica& replica) const;

  sim::Rpc* rpc_;
  // Pre-interned RPC methods / message types (resolved in the ctor).
  sim::MethodId m_acquire_ = 0;
  sim::MethodId m_steal_ = 0;
  EscrowOptions options_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  int64_t total_acquired_ = 0;
  EscrowStats stats_;
};

struct NaiveCounterStats {
  uint64_t acquires_ok = 0;
  uint64_t acquires_aborted = 0;
};

/// The broken baseline: each replica holds an eventually consistent copy of
/// the counter, checks locally, and gossips deltas. Concurrent acquires at
/// different replicas both pass the check — the counter oversells.
class NaiveCounterCluster {
 public:
  NaiveCounterCluster(sim::Rpc* rpc, int replica_count, int64_t initial_total,
                      sim::Time rpc_timeout = 2 * sim::kSecond);

  using AcquireCallback = std::function<void(Result<int64_t>)>;
  void Acquire(sim::NodeId client, int replica, int64_t amount,
               AcquireCallback done);

  sim::NodeId replica_node(int index) const;
  int64_t ValueAt(int replica) const;
  int64_t total_acquired() const { return total_acquired_; }
  int64_t initial_total() const { return initial_total_; }
  /// Units sold beyond the initial stock (0 when behaving correctly).
  int64_t Oversold() const {
    return total_acquired_ > initial_total_ ? total_acquired_ - initial_total_
                                            : 0;
  }
  const NaiveCounterStats& stats() const { return stats_; }

 private:
  struct Replica {
    sim::NodeId node = 0;
    int64_t cached = 0;
  };
  struct AcquireReq {
    int64_t amount = 0;
  };

  sim::Rpc* rpc_;
  // Pre-interned RPC methods / message types (resolved in the ctor).
  sim::MethodId m_naive_acquire_ = 0;
  sim::MsgType t_naive_delta_ = 0;
  sim::Time rpc_timeout_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  int64_t initial_total_ = 0;
  int64_t total_acquired_ = 0;
  NaiveCounterStats stats_;
};

}  // namespace evc::txn

#endif  // EVC_TXN_ESCROW_H_
