// evc_bench_check — schema validator for evc-bench-v1 documents.
//
// Usage: evc_bench_check [--floor=<metric>=<min>]... BENCH_a.json [...]
//
// Validates every file and exits nonzero if any violates the schema, so CI
// can gate on bench output staying machine-readable. Each --floor names a
// metric that must be present (in at least one file) and >= <min> in every
// file that reports it — the throughput-regression gate for perf benches
// (e.g. --floor=calendar_speedup_n1000=2.4 fails the simcore bench when the
// calendar queue slips more than 20% under its 3x acceptance bar):
//   * top level is an object with schema == "evc-bench-v1" and a nonempty
//     string name;
//   * metrics is an object of numbers;
//   * notes (optional) is an object of strings;
//   * tables is an object; each table has a nonempty columns array of
//     strings and a rows array where every row is an array of exactly
//     columns.size() scalar cells (bool / number / string);
//   * sim (optional) is an object.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

using evc::obs::Json;

struct Floor {
  std::string metric;
  double min = 0;
  bool seen = false;  ///< found in at least one validated file
};

/// Parses "--floor=<metric>=<min>". Returns false on malformed input.
bool ParseFloor(const std::string& arg, Floor* out) {
  const std::string body = arg.substr(8);  // past "--floor="
  const size_t eq = body.rfind('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= body.size()) {
    return false;
  }
  out->metric = body.substr(0, eq);
  char* end = nullptr;
  out->min = std::strtod(body.c_str() + eq + 1, &end);
  return end != nullptr && *end == '\0';
}

bool ReadWholeFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool Fail(const std::string& path, const std::string& what) {
  std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(), what.c_str());
  return false;
}

bool IsScalar(const Json& v) {
  return v.is_bool() || v.is_number() || v.is_string();
}

/// Applies every floor that names a metric in `doc` (already validated).
bool CheckFloors(const std::string& path, const Json& doc,
                 std::vector<Floor>* floors) {
  bool ok = true;
  const Json& metrics = *doc.Find("metrics");
  for (Floor& floor : *floors) {
    const Json* value = metrics.Find(floor.metric);
    if (value == nullptr) continue;
    floor.seen = true;
    if (value->AsDouble() < floor.min) {
      ok = Fail(path, "metric " + floor.metric + " = " +
                          std::to_string(value->AsDouble()) +
                          " is below the floor " + std::to_string(floor.min));
    }
  }
  return ok;
}


bool CheckTables(const std::string& path, const Json& tables) {
  if (!tables.is_object()) return Fail(path, "tables is not an object");
  for (const auto& [tname, table] : tables.AsObject()) {
    if (!table.is_object()) {
      return Fail(path, "table " + tname + " is not an object");
    }
    const Json* columns = table.Find("columns");
    if (columns == nullptr || !columns->is_array() ||
        columns->AsArray().empty()) {
      return Fail(path, "table " + tname + " has no nonempty columns array");
    }
    for (const Json& c : columns->AsArray()) {
      if (!c.is_string()) {
        return Fail(path, "table " + tname + " has a non-string column name");
      }
    }
    const Json* rows = table.Find("rows");
    if (rows == nullptr || !rows->is_array()) {
      return Fail(path, "table " + tname + " has no rows array");
    }
    const size_t width = columns->AsArray().size();
    size_t r = 0;
    for (const Json& row : rows->AsArray()) {
      if (!row.is_array() || row.AsArray().size() != width) {
        return Fail(path, "table " + tname + " row " + std::to_string(r) +
                              " does not have " + std::to_string(width) +
                              " cells");
      }
      for (const Json& cell : row.AsArray()) {
        if (!IsScalar(cell)) {
          return Fail(path, "table " + tname + " row " + std::to_string(r) +
                                " has a non-scalar cell");
        }
      }
      ++r;
    }
  }
  return true;
}

bool CheckFile(const std::string& path, std::vector<Floor>* floors) {
  std::string text;
  if (!ReadWholeFile(path, &text)) return Fail(path, "cannot read file");
  auto parsed = Json::Parse(text);
  if (!parsed.ok()) return Fail(path, parsed.status().ToString());
  const Json& doc = *parsed;
  if (!doc.is_object()) return Fail(path, "top level is not an object");

  const Json* schema = doc.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->AsString() != "evc-bench-v1") {
    return Fail(path, "schema field is not \"evc-bench-v1\"");
  }
  const Json* name = doc.Find("name");
  if (name == nullptr || !name->is_string() || name->AsString().empty()) {
    return Fail(path, "name is not a nonempty string");
  }

  const Json* metrics = doc.Find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    return Fail(path, "metrics is not an object");
  }
  for (const auto& [key, value] : metrics->AsObject()) {
    if (!value.is_number()) {
      return Fail(path, "metric " + key + " is not a number");
    }
  }

  if (const Json* notes = doc.Find("notes")) {
    if (!notes->is_object()) return Fail(path, "notes is not an object");
    for (const auto& [key, value] : notes->AsObject()) {
      if (!value.is_string()) {
        return Fail(path, "note " + key + " is not a string");
      }
    }
  }

  const Json* tables = doc.Find("tables");
  if (tables == nullptr) return Fail(path, "tables is missing");
  if (!CheckTables(path, *tables)) return false;

  if (const Json* sim = doc.Find("sim")) {
    if (!sim->is_object()) return Fail(path, "sim is not an object");
  }

  size_t rows = 0;
  for (const auto& [tname, table] : tables->AsObject()) {
    rows += table.Find("rows")->AsArray().size();
  }
  if (!CheckFloors(path, doc, floors)) return false;

  std::printf("OK   %s: %zu tables, %zu rows, %zu metrics\n", path.c_str(),
              tables->AsObject().size(), rows, metrics->AsObject().size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<Floor> floors;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--floor=", 0) == 0) {
      Floor floor;
      if (!ParseFloor(arg, &floor)) {
        std::fprintf(stderr, "malformed %s (want --floor=<metric>=<min>)\n",
                     arg.c_str());
        return 2;
      }
      floors.push_back(floor);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: evc_bench_check [--floor=<metric>=<min>]... "
                 "BENCH.json [...]\n");
    return 2;
  }
  bool all_ok = true;
  for (const std::string& path : paths) {
    all_ok &= CheckFile(path, &floors);
  }
  // A floor naming a metric no file reports is a misconfigured gate, not a
  // silent pass.
  for (const Floor& floor : floors) {
    if (!floor.seen) {
      std::fprintf(stderr, "FAIL floor metric %s not found in any file\n",
                   floor.metric.c_str());
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}
