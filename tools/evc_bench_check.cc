// evc_bench_check — schema validator for evc-bench-v1 documents.
//
// Usage: evc_bench_check BENCH_a.json [BENCH_b.json ...]
//
// Validates every file and exits nonzero if any violates the schema, so CI
// can gate on bench output staying machine-readable:
//   * top level is an object with schema == "evc-bench-v1" and a nonempty
//     string name;
//   * metrics is an object of numbers;
//   * notes (optional) is an object of strings;
//   * tables is an object; each table has a nonempty columns array of
//     strings and a rows array where every row is an array of exactly
//     columns.size() scalar cells (bool / number / string);
//   * sim (optional) is an object.

#include <cstdio>
#include <string>

#include "obs/json.h"

namespace {

using evc::obs::Json;

bool ReadWholeFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool Fail(const std::string& path, const std::string& what) {
  std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(), what.c_str());
  return false;
}

bool IsScalar(const Json& v) {
  return v.is_bool() || v.is_number() || v.is_string();
}

bool CheckTables(const std::string& path, const Json& tables) {
  if (!tables.is_object()) return Fail(path, "tables is not an object");
  for (const auto& [tname, table] : tables.AsObject()) {
    if (!table.is_object()) {
      return Fail(path, "table " + tname + " is not an object");
    }
    const Json* columns = table.Find("columns");
    if (columns == nullptr || !columns->is_array() ||
        columns->AsArray().empty()) {
      return Fail(path, "table " + tname + " has no nonempty columns array");
    }
    for (const Json& c : columns->AsArray()) {
      if (!c.is_string()) {
        return Fail(path, "table " + tname + " has a non-string column name");
      }
    }
    const Json* rows = table.Find("rows");
    if (rows == nullptr || !rows->is_array()) {
      return Fail(path, "table " + tname + " has no rows array");
    }
    const size_t width = columns->AsArray().size();
    size_t r = 0;
    for (const Json& row : rows->AsArray()) {
      if (!row.is_array() || row.AsArray().size() != width) {
        return Fail(path, "table " + tname + " row " + std::to_string(r) +
                              " does not have " + std::to_string(width) +
                              " cells");
      }
      for (const Json& cell : row.AsArray()) {
        if (!IsScalar(cell)) {
          return Fail(path, "table " + tname + " row " + std::to_string(r) +
                                " has a non-scalar cell");
        }
      }
      ++r;
    }
  }
  return true;
}

bool CheckFile(const std::string& path) {
  std::string text;
  if (!ReadWholeFile(path, &text)) return Fail(path, "cannot read file");
  auto parsed = Json::Parse(text);
  if (!parsed.ok()) return Fail(path, parsed.status().ToString());
  const Json& doc = *parsed;
  if (!doc.is_object()) return Fail(path, "top level is not an object");

  const Json* schema = doc.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->AsString() != "evc-bench-v1") {
    return Fail(path, "schema field is not \"evc-bench-v1\"");
  }
  const Json* name = doc.Find("name");
  if (name == nullptr || !name->is_string() || name->AsString().empty()) {
    return Fail(path, "name is not a nonempty string");
  }

  const Json* metrics = doc.Find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    return Fail(path, "metrics is not an object");
  }
  for (const auto& [key, value] : metrics->AsObject()) {
    if (!value.is_number()) {
      return Fail(path, "metric " + key + " is not a number");
    }
  }

  if (const Json* notes = doc.Find("notes")) {
    if (!notes->is_object()) return Fail(path, "notes is not an object");
    for (const auto& [key, value] : notes->AsObject()) {
      if (!value.is_string()) {
        return Fail(path, "note " + key + " is not a string");
      }
    }
  }

  const Json* tables = doc.Find("tables");
  if (tables == nullptr) return Fail(path, "tables is missing");
  if (!CheckTables(path, *tables)) return false;

  if (const Json* sim = doc.Find("sim")) {
    if (!sim->is_object()) return Fail(path, "sim is not an object");
  }

  size_t rows = 0;
  for (const auto& [tname, table] : tables->AsObject()) {
    rows += table.Find("rows")->AsArray().size();
  }
  std::printf("OK   %s: %zu tables, %zu rows, %zu metrics\n", path.c_str(),
              tables->AsObject().size(), rows, metrics->AsObject().size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: evc_bench_check BENCH.json [...]\n");
    return 2;
  }
  bool all_ok = true;
  for (int i = 1; i < argc; ++i) {
    all_ok &= CheckFile(argv[i]);
  }
  return all_ok ? 0 : 1;
}
