#include "evc_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <regex>
#include <sstream>
#include <utility>

namespace evc {
namespace lint {

namespace {

constexpr const char* kWallClock = "wall-clock";
constexpr const char* kRawRandom = "raw-random";
constexpr const char* kUnorderedIteration = "unordered-iteration";
constexpr const char* kUnorderedSnapshot = "unordered-snapshot";
constexpr const char* kDiscardedStatus = "discarded-status";
constexpr const char* kCheckMacro = "check-macro";
constexpr const char* kPointerTaint = "pointer-taint";
constexpr const char* kThreadHostile = "thread-hostile";
constexpr const char* kLayering = "layering";
constexpr const char* kIncludeCycle = "include-cycle";
constexpr const char* kBadSuppression = "bad-suppression";

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

/// All identifiers in `s`, in order of appearance.
std::vector<std::string> IdentTokens(const std::string& s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    if (IsIdentStart(s[i])) {
      size_t b = i;
      while (i < s.size() && IsIdentChar(s[i])) ++i;
      out.push_back(s.substr(b, i - b));
    } else {
      ++i;
    }
  }
  return out;
}

bool HasToken(const std::vector<std::string>& tokens, const char* t) {
  return std::find(tokens.begin(), tokens.end(), t) != tokens.end();
}

/// A suppression directive parsed from a comment.
struct Suppression {
  int line = 0;  ///< 1-based line the comment ends on; covers line and line+1.
  std::set<std::string> checks;
  bool used = false;
};

/// Per-file result of comment/string stripping.
struct Preprocessed {
  /// Source text with comments, string literals and char literals replaced by
  /// spaces (newlines preserved), so offsets and line numbers still map.
  std::string code;
  /// 1-based line number for each byte offset boundary: line_of[i] is the
  /// line containing code[i].
  std::vector<int> line_of;
  std::vector<Suppression> suppressions;
  std::vector<Finding> bad_suppressions;  ///< malformed directives
  /// Lines whose *string literals* contain the percent-p pointer conversion.
  /// Tracked during stripping because it is the one check that must look
  /// inside strings (format strings are where the bug lives).
  std::set<int> pointer_format_lines;
};

/// Parses an evc-lint directive out of one comment's text. Returns true if
/// the comment contains a directive at all (well-formed or not).
bool ParseDirective(const std::string& comment_text, int end_line,
                    const std::string& path, Preprocessed* out) {
  size_t pos = comment_text.find("evc-lint:");
  if (pos == std::string::npos) return false;
  std::string rest = Trim(comment_text.substr(pos + 9));

  auto bad = [&](const std::string& why) {
    out->bad_suppressions.push_back(
        {kBadSuppression, path, end_line, "malformed evc-lint directive: " + why});
  };

  if (rest.rfind("allow(", 0) != 0) {
    bad("expected 'allow(<check,...>) reason=...'");
    return true;
  }
  size_t close = rest.find(')');
  if (close == std::string::npos) {
    bad("missing ')' after allow(");
    return true;
  }
  std::string names = rest.substr(6, close - 6);
  std::string tail = Trim(rest.substr(close + 1));

  Suppression sup;
  sup.line = end_line;
  std::stringstream ss(names);
  std::string name;
  const auto& known = AllCheckNames();
  while (std::getline(ss, name, ',')) {
    name = Trim(name);
    if (name.empty()) continue;
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      bad("unknown check '" + name + "'");
      return true;
    }
    sup.checks.insert(name);
  }
  if (sup.checks.empty()) {
    bad("allow() names no checks");
    return true;
  }
  if (tail.rfind("reason=", 0) != 0 || Trim(tail.substr(7)).empty()) {
    bad("suppression requires a non-empty 'reason=...'");
    return true;
  }
  out->suppressions.push_back(std::move(sup));
  return true;
}

/// Strips comments / string literals / char literals (including raw strings),
/// collecting evc-lint directives from the comments as it goes.
Preprocessed Preprocess(const std::string& path, const std::string& text) {
  Preprocessed out;
  out.code.reserve(text.size());
  out.line_of.reserve(text.size());

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  State state = State::kCode;
  int line = 1;
  std::string comment_text;  // accumulates the current comment's contents
  std::string raw_delim;     // delimiter of the current raw string
  char prev_str = '\0';      // previous unescaped char inside a string literal

  auto emit = [&](char c) {
    out.code.push_back(c);
    out.line_of.push_back(line);
  };
  auto blank = [&](char c) { emit(c == '\n' ? '\n' : ' '); };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    char next = (i + 1 < text.size()) ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment_text.clear();
          blank(c);
          blank(next);
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment_text.clear();
          blank(c);
          blank(next);
          ++i;
        } else if (c == '"') {
          // Raw string? Look back for R / u8R / LR / uR / UR prefix.
          bool raw = i > 0 && text[i - 1] == 'R' &&
                     (i < 2 || !IsIdentChar(text[i - 2]) ||
                      (i >= 2 && (text[i - 2] == 'u' || text[i - 2] == 'U' ||
                                  text[i - 2] == 'L' || text[i - 2] == '8')));
          if (raw) {
            size_t paren = text.find('(', i + 1);
            if (paren != std::string::npos) {
              raw_delim = ")" + text.substr(i + 1, paren - i - 1) + "\"";
              state = State::kRaw;
              prev_str = '\0';
              blank(c);
              break;
            }
          }
          state = State::kString;
          prev_str = '\0';
          blank(c);
        } else if (c == '\'') {
          // C++14 digit separator (1'000'000) stays in code; anything else
          // starts a char literal.
          bool digit_sep =
              i > 0 && std::isdigit(static_cast<unsigned char>(text[i - 1])) &&
              std::isxdigit(static_cast<unsigned char>(next));
          if (!digit_sep) state = State::kChar;
          blank(c);
        } else {
          emit(c);
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          ParseDirective(comment_text, line, path, &out);
          state = State::kCode;
          blank(c);
        } else {
          comment_text.push_back(c);
          blank(c);
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          ParseDirective(comment_text, line, path, &out);
          state = State::kCode;
          blank(c);
          blank(next);
          ++i;
        } else {
          comment_text.push_back(c);
          blank(c);
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          prev_str = '\0';
          blank(c);
          blank(next);
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          blank(c);
        } else {
          if (prev_str == '%' && c == 'p') out.pointer_format_lines.insert(line);
          prev_str = c;
          blank(c);
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          blank(c);
          blank(next);
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          blank(c);
        } else {
          blank(c);
        }
        break;
      case State::kRaw:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t k = 0; k < raw_delim.size(); ++k) blank(text[i + k]);
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else {
          if (prev_str == '%' && c == 'p') out.pointer_format_lines.insert(line);
          prev_str = c;
          blank(c);
        }
        break;
    }
    if (c == '\n') ++line;
  }
  if (state == State::kLineComment) ParseDirective(comment_text, line, path, &out);
  return out;
}

/// Walks forward from the '<' at `pos`, returning the offset just past the
/// matching '>', or npos if unbalanced.
size_t BalanceAngles(const std::string& s, size_t pos) {
  int depth = 0;
  for (size_t i = pos; i < s.size(); ++i) {
    if (s[i] == '<') ++depth;
    else if (s[i] == '>') {
      if (--depth == 0) return i + 1;
    } else if (s[i] == ';' || s[i] == '{') {
      return std::string::npos;  // gave up: not a template argument list
    }
  }
  return std::string::npos;
}

/// Walks forward from the '(' at `pos`, returning the offset just past the
/// matching ')', or npos.
size_t BalanceParens(const std::string& s, size_t pos) {
  int depth = 0;
  for (size_t i = pos; i < s.size(); ++i) {
    if (s[i] == '(') ++depth;
    else if (s[i] == ')') {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

size_t SkipSpaces(const std::string& s, size_t pos) {
  while (pos < s.size() &&
         std::isspace(static_cast<unsigned char>(s[pos]))) {
    ++pos;
  }
  return pos;
}

/// Identifiers declared (variables/members) or returned (getters) with an
/// unordered associative container type, plus function names returning
/// Status/Result — collected across the whole file set.
struct SymbolTable {
  std::set<std::string> unordered_names;
  std::set<std::string> unordered_aliases;  ///< using X = std::unordered_...
  std::set<std::string> status_fns;
  /// Functions declared `void` somewhere in the set. A name in both sets is
  /// ambiguous (the table matches by name, not by receiver type), so the
  /// discarded-status check skips it — precision over recall; genuinely
  /// dropped values are still caught by [[nodiscard]] + -Werror.
  std::set<std::string> void_fns;
};

void CollectUnorderedNames(const std::string& code, SymbolTable* table) {
  static const char* kTypes[] = {"unordered_map<", "unordered_set<",
                                 "unordered_multimap<", "unordered_multiset<"};
  for (const char* type : kTypes) {
    size_t type_len = std::string(type).size();
    for (size_t pos = code.find(type); pos != std::string::npos;
         pos = code.find(type, pos + 1)) {
      // Require a non-identifier char before (avoids my_unordered_map<).
      if (pos > 0 && IsIdentChar(code[pos - 1]) && code[pos - 1] != ':') {
        continue;
      }
      size_t after = BalanceAngles(code, pos + type_len - 1);
      if (after == std::string::npos) continue;
      size_t p = SkipSpaces(code, after);
      while (p < code.size() && (code[p] == '&' || code[p] == '*')) {
        p = SkipSpaces(code, p + 1);
      }
      size_t name_start = p;
      while (p < code.size() && IsIdentChar(code[p])) ++p;
      if (p == name_start || !IsIdentStart(code[name_start])) continue;
      std::string name = code.substr(name_start, p - name_start);
      size_t q = SkipSpaces(code, p);
      // Variable/member declaration, getter declaration, or using-alias: all
      // mean "iterating <name> iterates a hash-ordered container".
      if (q < code.size() && (code[q] == ';' || code[q] == '{' ||
                              code[q] == '=' || code[q] == ',' ||
                              code[q] == ')' || code[q] == '(')) {
        table->unordered_names.insert(std::move(name));
      }
    }
  }
  // using Alias = std::unordered_map<...>;
  static const std::regex kAlias(
      "using\\s+([A-Za-z_]\\w*)\\s*=\\s*(std::)?unordered_(map|set|multimap|"
      "multiset)\\s*<");
  for (std::sregex_iterator it(code.begin(), code.end(), kAlias), end;
       it != end; ++it) {
    table->unordered_aliases.insert((*it)[1].str());
  }
}

/// Second collection pass (needs aliases from every file first): variables,
/// parameters and getters declared with an unordered alias type.
void CollectAliasDeclaredNames(const std::string& code, SymbolTable* table) {
  for (const std::string& alias : table->unordered_aliases) {
    for (size_t pos = code.find(alias); pos != std::string::npos;
         pos = code.find(alias, pos + 1)) {
      if (pos > 0 && (IsIdentChar(code[pos - 1]) || code[pos - 1] == ':')) {
        continue;
      }
      size_t after = pos + alias.size();
      if (after < code.size() && IsIdentChar(code[after])) continue;
      size_t p = SkipSpaces(code, after);
      while (p < code.size() && (code[p] == '&' || code[p] == '*')) {
        p = SkipSpaces(code, p + 1);
      }
      size_t name_start = p;
      while (p < code.size() && IsIdentChar(code[p])) ++p;
      if (p == name_start || !IsIdentStart(code[name_start])) continue;
      size_t q = SkipSpaces(code, p);
      if (q < code.size() && (code[q] == ';' || code[q] == '{' ||
                              code[q] == '=' || code[q] == ',' ||
                              code[q] == ')' || code[q] == '(' ||
                              code[q] == '[')) {
        table->unordered_names.insert(code.substr(name_start, p - name_start));
      }
    }
  }
}

void CollectStatusFns(const std::string& code, SymbolTable* table) {
  // Plain `Status Name(`-style declarations (with optional namespace
  // qualification of Status itself).
  static const std::regex kStatusFn(
      "(^|[^:\\w<,])(::)?(evc::)?Status\\s+([A-Za-z_]\\w*)\\s*\\(");
  for (std::sregex_iterator it(code.begin(), code.end(), kStatusFn), end;
       it != end; ++it) {
    table->status_fns.insert((*it)[4].str());
  }
  // `void Name(` declarations, for the ambiguity subtraction above.
  static const std::regex kVoidFn(
      "(^|[^:\\w<,])void\\s+([A-Za-z_]\\w*)\\s*\\(");
  for (std::sregex_iterator it(code.begin(), code.end(), kVoidFn), end;
       it != end; ++it) {
    table->void_fns.insert((*it)[2].str());
  }
  // `Result<...> Name(` declarations; angle brackets balanced manually.
  for (size_t pos = code.find("Result<"); pos != std::string::npos;
       pos = code.find("Result<", pos + 1)) {
    if (pos > 0 && IsIdentChar(code[pos - 1])) continue;
    size_t after = BalanceAngles(code, pos + 6);
    if (after == std::string::npos) continue;
    size_t p = SkipSpaces(code, after);
    size_t name_start = p;
    while (p < code.size() && IsIdentChar(code[p])) ++p;
    if (p == name_start || !IsIdentStart(code[name_start])) continue;
    size_t q = SkipSpaces(code, p);
    if (q < code.size() && code[q] == '(') {
      table->status_fns.insert(code.substr(name_start, p - name_start));
    }
  }
}

int LineAt(const Preprocessed& pre, size_t offset) {
  if (pre.line_of.empty()) return 1;
  if (offset >= pre.line_of.size()) return pre.line_of.back();
  return pre.line_of[offset];
}

/// Per-line regex checks: wall-clock, raw-random, check-macro, pointer-taint.
void RunLineChecks(const std::string& path, const Preprocessed& pre,
                   std::vector<Finding>* findings) {
  struct Rule {
    const char* check;
    std::regex pattern;
    const char* message;
  };
  // NOTE: patterns run on comment/string-stripped text, so prose mentioning a
  // banned symbol never trips a rule.
  static const std::vector<Rule>* rules = new std::vector<Rule>{
      {kWallClock,
       std::regex("system_clock|steady_clock|high_resolution_clock"),
       "wall/monotonic clock use; sim code must take time from "
       "sim::Simulator::Now() (bit-identical replay)"},
      {kWallClock,
       std::regex("\\b(gettimeofday|clock_gettime|timespec_get|localtime|"
                  "gmtime|mktime|strftime)\\b"),
       "OS clock API; sim code must take time from sim::Simulator::Now()"},
      {kWallClock, std::regex("(std::time|(^|[^\\w.:>])time)\\s*\\("),
       "time() reads the wall clock; use sim::Simulator::Now()"},
      {kWallClock, std::regex("(^|[^\\w.:>])clock\\s*\\(\\s*\\)"),
       "clock() reads a process clock; use sim::Simulator::Now()"},
      {kRawRandom,
       std::regex("(std::rand\\s*\\(|\\bsrand\\s*\\(|(^|[^\\w.:>])rand\\s*"
                  "\\()"),
       "rand()/srand() is global nondeterministic state; draw from "
       "common/rng.h (evc::Rng)"},
      {kRawRandom, std::regex("\\brandom_device\\b"),
       "std::random_device is nondeterministic by design; seed an evc::Rng "
       "from the experiment seed instead"},
      {kRawRandom, std::regex("\\bdefault_random_engine\\b"),
       "std::default_random_engine is implementation-defined; use evc::Rng"},
      {kRawRandom,
       std::regex("\\bmt19937(_64)?\\s+[A-Za-z_]\\w*\\s*(;|\\(\\s*\\)|\\{\\s*"
                  "\\})"),
       "unseeded std::mt19937; all randomness must flow through common/rng.h "
       "with an explicit seed"},
      {kCheckMacro, std::regex("(^|[^\\w])assert\\s*\\("),
       "bare assert() vanishes under NDEBUG (release/fuzz builds); use "
       "EVC_CHECK"},
      {kCheckMacro, std::regex("#\\s*include\\s*[<\"](cassert|assert\\.h)[>\"]"),
       "<cassert> include; use EVC_CHECK from common/status.h"},
      {kPointerTaint,
       std::regex("reinterpret_cast\\s*<\\s*(std::)?(u?intptr_t|size_t|"
                  "uint32_t|uint64_t|unsigned\\s+long(\\s+long)?|long\\s+"
                  "long)\\b"),
       "pointer-to-integer cast; addresses differ across runs (ASLR, "
       "allocator state) and must never reach exported or replay-visible "
       "state"},
      {kPointerTaint, std::regex("\\(\\s*(std::)?u?intptr_t\\s*\\)"),
       "C-style pointer-to-integer cast; addresses differ across runs and "
       "must never reach exported or replay-visible state"},
      {kPointerTaint, std::regex("\\bhash\\s*<\\s*[^<>;]*\\*\\s*>"),
       "std::hash over a pointer type hashes an address; hash a stable id "
       "(node name, key, sequence number) instead"},
  };

  // The obs exporter shim is the one place allowed to touch the real clock
  // (it stamps export metadata, never sim-visible state).
  bool wall_clock_exempt = path.find("obs/export") != std::string::npos;

  std::istringstream stream(pre.code);
  std::string line_text;
  int line_no = 0;
  while (std::getline(stream, line_text)) {
    ++line_no;
    for (const Rule& rule : *rules) {
      if (wall_clock_exempt && std::string(rule.check) == kWallClock) continue;
      if (std::regex_search(line_text, rule.pattern)) {
        findings->push_back({rule.check, path, line_no, rule.message});
        break;  // one finding per line is enough signal
      }
    }
  }
  // The one in-string pattern: percent-p format conversions, recorded during
  // stripping (see Preprocessed::pointer_format_lines).
  for (int ln : pre.pointer_format_lines) {
    findings->push_back(
        {kPointerTaint, path, ln,
         "format string contains the percent-p pointer conversion; addresses "
         "differ across runs and poison logged/exported state"});
  }
}

/// Strips trailing balanced (...) / [...] groups then returns the trailing
/// identifier of a range-for's range expression ("net.peers()" -> "peers").
std::string TrailingIdentifier(std::string expr) {
  expr = Trim(expr);
  while (!expr.empty() && (expr.back() == ')' || expr.back() == ']')) {
    char close = expr.back();
    char open = close == ')' ? '(' : '[';
    int depth = 0;
    size_t i = expr.size();
    while (i > 0) {
      --i;
      if (expr[i] == close) ++depth;
      else if (expr[i] == open && --depth == 0) break;
    }
    if (depth != 0) return "";
    expr = Trim(expr.substr(0, i));
  }
  size_t end = expr.size();
  size_t begin = end;
  while (begin > 0 && IsIdentChar(expr[begin - 1])) --begin;
  return expr.substr(begin, end - begin);
}

void RunUnorderedIterationCheck(const std::string& path,
                                const Preprocessed& pre,
                                const SymbolTable& table,
                                std::vector<Finding>* findings) {
  const std::string& code = pre.code;
  for (size_t pos = code.find("for"); pos != std::string::npos;
       pos = code.find("for", pos + 1)) {
    if (pos > 0 && IsIdentChar(code[pos - 1])) continue;
    if (pos + 3 < code.size() && IsIdentChar(code[pos + 3])) continue;
    size_t paren = SkipSpaces(code, pos + 3);
    if (paren >= code.size() || code[paren] != '(') continue;
    size_t close = BalanceParens(code, paren);
    if (close == std::string::npos) continue;
    std::string head = code.substr(paren + 1, close - paren - 2);
    // Find a top-level ':' (range-for separator); skip '::'.
    int depth = 0;
    size_t colon = std::string::npos;
    for (size_t i = 0; i < head.size(); ++i) {
      char c = head[i];
      if (c == '(' || c == '[' || c == '<' || c == '{') ++depth;
      else if (c == ')' || c == ']' || c == '>' || c == '}') --depth;
      else if (c == ':' && depth <= 0) {
        if ((i + 1 < head.size() && head[i + 1] == ':') ||
            (i > 0 && head[i - 1] == ':')) {
          continue;
        }
        colon = i;
        break;
      } else if (c == '?') {
        break;  // conditional expression, not a range-for
      }
    }
    if (colon == std::string::npos) continue;
    std::string ident = TrailingIdentifier(head.substr(colon + 1));
    if (!ident.empty() && table.unordered_names.count(ident) > 0) {
      findings->push_back(
          {kUnorderedIteration, path, LineAt(pre, paren),
           "range-for over hash-ordered container '" + ident +
               "'; iteration order depends on hashing/addresses and breaks "
               "same-seed replay — use std::map, a sorted-key snapshot, or a "
               "justified allow()"});
    }
  }
}

/// Walks the receiver chain (identifiers, '.', '->', '::') backwards from
/// `pos`, returning the chain's start offset.
size_t ChainStart(const std::string& code, size_t pos) {
  size_t chain_start = pos;
  while (chain_start > 0) {
    char c = code[chain_start - 1];
    if (IsIdentChar(c) || c == '.' || c == ':') {
      --chain_start;
    } else if (c == '>' && chain_start >= 2 && code[chain_start - 2] == '-') {
      chain_start -= 2;
    } else {
      break;
    }
  }
  return chain_start;
}

/// unordered-snapshot: contents of a hash-ordered container copied into
/// another container (iterator-pair constructor, assign(), insert(),
/// back_inserter copies) with no std::sort of the target anywhere after —
/// the classic laundering of hash-order nondeterminism past the
/// unordered-iteration check.
void RunUnorderedSnapshotCheck(const std::string& path, const Preprocessed& pre,
                               const SymbolTable& table,
                               std::vector<Finding>* findings) {
  const std::string& code = pre.code;

  // Is `target` ever passed to a sort call at or after `from`?
  auto sorted_later = [&](const std::string& target, size_t from) {
    for (size_t s = code.find("sort", from); s != std::string::npos;
         s = code.find("sort", s + 1)) {
      if (s > 0 && IsIdentChar(code[s - 1]) && code[s - 1] != ':') continue;
      size_t p = SkipSpaces(code, s + 4);
      if (p >= code.size() || code[p] != '(') continue;
      size_t end = BalanceParens(code, p);
      if (end == std::string::npos) continue;
      std::string args = code.substr(p, end - p);
      for (const std::string& tok : IdentTokens(args)) {
        if (tok == target) return true;
      }
    }
    return false;
  };

  for (size_t pos = code.find(".begin"); pos != std::string::npos;
       pos = code.find(".begin", pos + 1)) {
    size_t after = SkipSpaces(code, pos + 6);
    if (after >= code.size() || code[after] != '(') continue;
    size_t chain_start = ChainStart(code, pos);
    std::string ident =
        TrailingIdentifier(code.substr(chain_start, pos - chain_start));
    if (ident.empty() || table.unordered_names.count(ident) == 0) continue;

    // Enclosing statement: must be a whole-container copy (mentions .end too)
    // and not already sorted in the same statement.
    size_t stmt_begin = chain_start;
    while (stmt_begin > 0 && code[stmt_begin - 1] != ';' &&
           code[stmt_begin - 1] != '{' && code[stmt_begin - 1] != '}') {
      --stmt_begin;
    }
    size_t stmt_end = code.find(';', pos);
    if (stmt_end == std::string::npos) continue;
    std::string stmt = code.substr(stmt_begin, stmt_end - stmt_begin);
    if (stmt.find(".end") == std::string::npos) continue;
    std::vector<std::string> stmt_tokens = IdentTokens(stmt);
    if (!stmt_tokens.empty() && stmt_tokens.front() == "for") continue;
    if (HasToken(stmt_tokens, "sort")) continue;
    if (HasToken(stmt_tokens, "return")) continue;  // caller's problem to sort

    // Identify the copy target.
    std::string target;
    size_t before = chain_start;
    while (before > stmt_begin &&
           std::isspace(static_cast<unsigned char>(code[before - 1]))) {
      --before;
    }
    // assign()/insert() reached via '.' or '->'.
    auto member_call = [&](const char* name) -> size_t {
      for (size_t p = stmt.find(name); p != std::string::npos;
           p = stmt.find(name, p + 1)) {
        if (p > 0 && (stmt[p - 1] == '.' ||
                      (stmt[p - 1] == '>' && p > 1 && stmt[p - 2] == '-'))) {
          return p;
        }
      }
      return std::string::npos;
    };
    size_t assign_pos = member_call("assign");
    size_t insert_pos = member_call("insert");
    size_t call_pos = std::min(assign_pos, insert_pos);
    size_t back_ins = stmt.find("back_inserter");
    if (call_pos != std::string::npos) {
      size_t recv_end = stmt[call_pos - 1] == '.' ? call_pos - 1 : call_pos - 2;
      target = TrailingIdentifier(stmt.substr(0, recv_end));
    } else if (back_ins != std::string::npos) {
      size_t p = SkipSpaces(stmt, back_ins + 13);
      if (p < stmt.size() && stmt[p] == '(') {
        size_t e = BalanceParens(stmt, p);
        if (e != std::string::npos) {
          target = TrailingIdentifier(stmt.substr(p + 1, e - p - 2));
        }
      }
    } else if (before > stmt_begin && code[before - 1] == '(') {
      // Constructor / callable: identifier directly before the '('.
      size_t q = before - 1;
      while (q > stmt_begin &&
             std::isspace(static_cast<unsigned char>(code[q - 1]))) {
        --q;
      }
      size_t name_end = q;
      while (q > stmt_begin && IsIdentChar(code[q - 1])) --q;
      target = code.substr(q, name_end - q);
    }
    if (target.empty()) {
      // `auto v = std::vector<T>(m.begin(), m.end())` — declarator before '='.
      size_t eq = stmt.find('=');
      if (eq != std::string::npos) {
        target = TrailingIdentifier(stmt.substr(0, eq));
      }
    }
    if (target.empty() || target == ident) continue;
    if (sorted_later(target, stmt_end)) continue;

    findings->push_back(
        {kUnorderedSnapshot, path, LineAt(pre, pos),
         "contents of hash-ordered '" + ident + "' copied into '" + target +
             "' and never sorted; the copy launders hash-order "
             "nondeterminism past the iteration check — std::sort it (or "
             "allow() with the reason order is irrelevant downstream)"});
  }
}

void RunDiscardedStatusCheck(const std::string& path, const Preprocessed& pre,
                             const SymbolTable& table,
                             std::vector<Finding>* findings) {
  const std::string& code = pre.code;
  for (const std::string& fn : table.status_fns) {
    if (table.void_fns.count(fn) > 0) continue;  // ambiguous name, see above
    for (size_t pos = code.find(fn); pos != std::string::npos;
         pos = code.find(fn, pos + 1)) {
      if (pos > 0 && IsIdentChar(code[pos - 1])) continue;  // substring match
      size_t after_name = pos + fn.size();
      size_t paren = SkipSpaces(code, after_name);
      if (paren >= code.size() || code[paren] != '(') continue;
      // Walk back over the receiver chain: identifiers, '.', '->', '::'.
      size_t chain_start = ChainStart(code, pos);
      // The chain must begin a statement: preceded (ignoring whitespace) by
      // ';', '{', '}', or the start of the file. Anything else means the
      // value is consumed (assignment, return, argument, condition, decl).
      size_t before = chain_start;
      while (before > 0 &&
             std::isspace(static_cast<unsigned char>(code[before - 1]))) {
        --before;
      }
      if (before != 0 && code[before - 1] != ';' && code[before - 1] != '{' &&
          code[before - 1] != '}') {
        continue;
      }
      size_t call_end = BalanceParens(code, paren);
      if (call_end == std::string::npos) continue;
      size_t next = SkipSpaces(code, call_end);
      if (next < code.size() && code[next] == ';') {
        findings->push_back(
            {kDiscardedStatus, path, LineAt(pre, pos),
             "call to '" + fn +
                 "' discards its Status/Result; check it, propagate it "
                 "(EVC_RETURN_IF_ERROR), or EVC_CHECK_OK it"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// thread-hostility audit (src/ only)
// ---------------------------------------------------------------------------

/// Blanks preprocessor logical lines (including backslash continuations) so
/// macro bodies containing braces don't desync the scope scanner. Length and
/// newlines are preserved, so offsets still map to lines.
std::string WithoutPreprocessorLines(const std::string& code) {
  std::string out = code;
  size_t i = 0;
  while (i < out.size()) {
    size_t j = i;
    while (j < out.size() && (out[j] == ' ' || out[j] == '\t')) ++j;
    bool pp = j < out.size() && out[j] == '#';
    size_t end = i;
    for (;;) {
      size_t nl = out.find('\n', end);
      if (nl == std::string::npos) {
        end = out.size();
        break;
      }
      bool cont = false;
      if (nl > i) {
        size_t last = nl - 1;
        if (out[last] == '\r' && last > i) --last;
        cont = out[last] == '\\';
      }
      end = nl + 1;
      if (!(pp && cont)) break;
    }
    if (pp) {
      for (size_t k = i; k < end; ++k) {
        if (out[k] != '\n') out[k] = ' ';
      }
    }
    i = end;
  }
  return out;
}

/// Scope kinds tracked by the thread-hostility scanner.
///   'n' namespace (incl. top level, extern "C")
///   'c' class/struct/union/enum body
///   'b' function/lambda/control-flow block
///   'i' brace initializer
char ClassifyScope(const std::string& header_in, char parent) {
  std::string h = Trim(header_in);
  if (h.empty()) return parent == 'c' ? 'c' : 'b';
  std::vector<std::string> tokens = IdentTokens(h);
  if (HasToken(tokens, "namespace")) return 'n';
  bool paren = h.find('(') != std::string::npos;
  if (!paren && (HasToken(tokens, "class") || HasToken(tokens, "struct") ||
                 HasToken(tokens, "union") || HasToken(tokens, "enum"))) {
    return 'c';
  }
  if (h.back() == ')' || h.back() == ']') return 'b';
  if (!tokens.empty()) {
    const std::string& last = tokens.back();
    if (last == "try" || last == "else" || last == "do" || last == "const" ||
        last == "noexcept" || last == "override" || last == "final" ||
        last == "mutable" || last == "catch") {
      return 'b';
    }
  }
  if (paren) return 'b';
  if (tokens.size() == 1 && tokens[0] == "extern") return 'n';
  return 'i';
}

/// Statement-level classifier: flags mutable namespace-scope globals (scope
/// 'n') and mutable `static` function-locals (scope 'b'). Heuristic by
/// design: `const`/`constexpr`/`constinit` anywhere in the declaration makes
/// it clean (so `const char* p` — a mutable pointer to const — passes; the
/// audit targets the common shapes, DESIGN.md documents the limitation).
void MaybeFlagDeclaration(const std::string& stmt, char scope,
                          const std::string& path, int line,
                          std::vector<Finding>* findings) {
  std::string t = Trim(stmt);
  if (t.empty()) return;
  std::vector<std::string> tokens = IdentTokens(t);
  if (tokens.empty()) return;
  static const std::set<std::string>* skip_first = new std::set<std::string>{
      "using",   "typedef",  "template", "friend",   "static_assert",
      "extern",  "namespace", "return",  "if",       "for",
      "while",   "do",       "switch",   "case",     "default",
      "break",   "continue", "goto",     "public",   "private",
      "protected", "class",  "struct",   "enum",     "union",
      "throw",   "delete",   "new",      "else",     "try",
      "catch",   "co_return", "co_await", "asm"};
  if (skip_first->count(tokens[0]) > 0) return;
  if (tokens[0].rfind("EVC_", 0) == 0) return;  // macro invocation
  bool is_static = HasToken(tokens, "static");
  if (scope == 'b' && !is_static) return;  // plain locals are fine
  if (HasToken(tokens, "const") || HasToken(tokens, "constexpr") ||
      HasToken(tokens, "constinit") || HasToken(tokens, "thread_local")) {
    return;  // thread_local reported separately, with its own message
  }
  if (t.find("operator") != std::string::npos) return;
  size_t eq = t.find('=');
  size_t par = t.find('(');
  // '(' before any '=' means a parameter list: function decl/def, not data.
  if (par != std::string::npos &&
      (eq == std::string::npos || par < eq)) {
    return;
  }
  std::string head = eq == std::string::npos ? t : t.substr(0, eq);
  std::vector<std::string> decl;
  for (const std::string& tok : IdentTokens(head)) {
    if (tok != "static" && tok != "inline" && tok != "volatile") {
      decl.push_back(tok);
    }
  }
  if (decl.size() < 2) return;  // need at least <type> <name>
  const std::string& name = decl.back();
  if (!IsIdentStart(name[0])) return;
  std::string msg =
      scope == 'n'
          ? "mutable namespace-scope global '" + name +
                "'; shared state becomes a data race (and a cross-run "
                "divergence source) the day this code runs on the real "
                "Runtime threads (ROADMAP item 2) — refactor into owned "
                "state or add a reasoned allow()"
          : "mutable function-local static '" + name +
                "'; hidden shared state across calls becomes a data race "
                "under the real Runtime threads (ROADMAP item 2) — hoist it "
                "into owned state or add a reasoned allow()";
  findings->push_back({kThreadHostile, path, line, std::move(msg)});
}

bool PathIsInSrc(const std::string& path);  // fwd (defined with layer model)

void RunThreadHostileCheck(const std::string& path, const Preprocessed& pre,
                           std::vector<Finding>* findings) {
  if (!PathIsInSrc(path)) return;
  std::string code = WithoutPreprocessorLines(pre.code);

  // thread_local anywhere (any scope) is a per-thread divergence source.
  static const std::regex kThreadLocal("\\bthread_local\\b");
  for (std::sregex_iterator it(code.begin(), code.end(), kThreadLocal), end;
       it != end; ++it) {
    findings->push_back(
        {kThreadHostile, path, LineAt(pre, static_cast<size_t>(it->position())),
         "thread_local storage; per-thread state diverges between the "
         "single-threaded sim and the real Runtime (ROADMAP item 2) — pass "
         "explicit per-worker state or add a reasoned allow()"});
  }

  // Scope-tracking statement scan.
  std::vector<char> scopes = {'n'};
  size_t stmt_start = 0;
  int paren_depth = 0;
  auto stmt_line = [&](size_t begin, size_t end) {
    size_t p = begin;
    while (p < end && std::isspace(static_cast<unsigned char>(code[p]))) ++p;
    return LineAt(pre, p);
  };
  for (size_t i = 0; i < code.size(); ++i) {
    char c = code[i];
    if (c == '(') {
      ++paren_depth;
    } else if (c == ')') {
      if (paren_depth > 0) --paren_depth;
    } else if (c == ';' && paren_depth == 0) {
      char cur = scopes.back();
      if (cur == 'n' || cur == 'b') {
        MaybeFlagDeclaration(code.substr(stmt_start, i - stmt_start), cur,
                             path, stmt_line(stmt_start, i), findings);
      }
      stmt_start = i + 1;
    } else if (c == '{' && paren_depth == 0) {
      std::string header = code.substr(stmt_start, i - stmt_start);
      char cur = scopes.back();
      char kind = ClassifyScope(header, cur);
      if (kind == 'i' && (cur == 'n' || cur == 'b')) {
        // `Type name{init};` — the header is itself the declaration.
        MaybeFlagDeclaration(header, cur, path, stmt_line(stmt_start, i),
                             findings);
      }
      scopes.push_back(kind);
      stmt_start = i + 1;
    } else if (c == '}' && paren_depth == 0) {
      if (scopes.size() > 1) scopes.pop_back();
      stmt_start = i + 1;
    }
  }
}

// ---------------------------------------------------------------------------
// Layer model + include-graph passes
// ---------------------------------------------------------------------------

/// The declared layer order. Rank N may include rank <= N; an include whose
/// target rank exceeds the includer's rank climbs the order and is a
/// layering finding. Same-rank edges are legal but cycle-checked.
const std::map<std::string, int>& LayerRanks() {
  static const std::map<std::string, int>* ranks =
      new std::map<std::string, int>{
          {"common", 0},
          {"clock", 1},
          {"obs", 1},  // owned by the Simulator (metrics/tracing), below sim
          {"sim", 2},
          {"net", 3},  // sim/network*, sim/nemesis*, sim/latency*
          {"rpc", 3},  // sim/rpc*
          {"storage", 4},
          {"crdt", 4},
          {"cache", 5},
          {"causal", 5},
          {"consensus", 5},
          {"core", 5},
          {"membership", 5},
          {"replication", 5},
          {"resilience", 5},
          {"session", 5},
          {"sla", 5},
          {"stale", 5},
          {"txn", 5},
          {"verify", 6},
          {"workload", 6},
          {"api", 7},  // src/evc.h umbrella header
          {"bench", 8},
          {"examples", 8},
          {"tests", 8},
          {"tools", 8},
      };
  return *ranks;
}

/// Store-layer set: the code the Runtime port (ROADMAP item 2) must lift off
/// the simulator; --runtime-worklist reports its direct sim:: references.
const std::set<std::string>& StoreLayers() {
  static const std::set<std::string>* layers = new std::set<std::string>{
      "cache", "causal", "consensus",  "core", "membership", "replication",
      "resilience", "session", "sla", "stale", "txn"};
  return *layers;
}

int RankOf(const std::string& layer) {
  auto it = LayerRanks().find(layer);
  return it == LayerRanks().end() ? -1 : it->second;
}

bool IsAnchorComponent(const std::string& c) {
  return c == "src" || c == "bench" || c == "tools" || c == "tests" ||
         c == "examples";
}

/// `path` split at its last src/bench/tools/tests/examples component.
struct PathAnchor {
  bool ok = false;
  std::string root;    ///< prefix before the anchor ("" or "/root/repo/")
  std::string anchor;  ///< the anchor component itself
  std::vector<std::string> rest;  ///< components after the anchor
};

PathAnchor SplitAnchor(const std::string& path) {
  std::vector<std::pair<std::string, size_t>> comps;  // (component, offset)
  size_t i = 0;
  while (i < path.size()) {
    if (path[i] == '/') {
      ++i;
      continue;
    }
    size_t b = i;
    while (i < path.size() && path[i] != '/') ++i;
    std::string comp = path.substr(b, i - b);
    if (comp != ".") comps.emplace_back(std::move(comp), b);
  }
  PathAnchor out;
  size_t anchor_idx = comps.size();
  for (size_t k = 0; k < comps.size(); ++k) {
    if (IsAnchorComponent(comps[k].first)) anchor_idx = k;
  }
  if (anchor_idx == comps.size()) return out;
  out.ok = true;
  out.anchor = comps[anchor_idx].first;
  out.root = path.substr(0, comps[anchor_idx].second);
  for (size_t k = anchor_idx + 1; k < comps.size(); ++k) {
    out.rest.push_back(comps[k].first);
  }
  return out;
}

bool PathIsInSrc(const std::string& path) {
  PathAnchor a = SplitAnchor(path);
  return a.ok && a.anchor == "src";
}

/// src/sim/ splits into three layers: the simulator core ("sim"), the
/// network/fault files layered on top of it ("net"), and the rpc stack on
/// top of those ("rpc").
std::string SimSubLayer(const std::string& basename) {
  if (basename.rfind("network", 0) == 0 || basename.rfind("nemesis", 0) == 0 ||
      basename.rfind("latency", 0) == 0) {
    return "net";
  }
  if (basename.rfind("rpc", 0) == 0) return "rpc";
  return "sim";
}

/// Layer inferred from an include string ("sim/rpc.h" -> "rpc") when the
/// include does not resolve to a scanned file. Unknown shapes -> "".
std::string LayerOfInclude(const std::string& inc) {
  if (inc == "evc.h") return "api";
  size_t slash = inc.find('/');
  if (slash == std::string::npos) return "";
  std::string first = inc.substr(0, slash);
  if (first == "sim") return SimSubLayer(inc.substr(inc.rfind('/') + 1));
  return LayerRanks().count(first) > 0 ? first : "";
}

std::string NormalizePath(const std::string& path) {
  return std::filesystem::path(path).lexically_normal().generic_string();
}

/// A quoted include extracted from raw text (the stripped code blanks string
/// literals, so the path only survives in the raw line; the stripped line is
/// consulted to drop includes that live inside comments).
struct IncludeRef {
  std::string inc;
  int line = 0;
};

std::vector<IncludeRef> ExtractIncludes(const std::string& raw,
                                        const std::string& stripped) {
  std::vector<IncludeRef> out;
  static const std::regex kInc(
      "^[ \\t]*#[ \\t]*include[ \\t]*\"([^\"]+)\"");
  std::istringstream rs(raw);
  std::istringstream cs(stripped);
  std::string rline;
  std::string cline;
  int line = 0;
  while (std::getline(rs, rline)) {
    ++line;
    if (!std::getline(cs, cline)) cline.clear();
    std::smatch m;
    if (std::regex_search(rline, m, kInc) &&
        cline.find('#') != std::string::npos) {
      out.push_back({m[1].str(), line});
    }
  }
  return out;
}

/// Resolves an include against the scanned file set: relative to the
/// includer's directory first, then against the repo roots the includer's
/// own path implies. Returns the file index or -1.
int ResolveInclude(const std::string& includer, const std::string& inc,
                   const std::map<std::string, int>& by_path) {
  namespace fs = std::filesystem;
  std::vector<std::string> candidates;
  candidates.push_back(
      (fs::path(includer).parent_path() / inc).lexically_normal()
          .generic_string());
  PathAnchor a = SplitAnchor(includer);
  if (a.ok) {
    for (const char* root_dir : {"src", "tools", "bench", "tests"}) {
      candidates.push_back(NormalizePath(a.root + root_dir + "/" + inc));
    }
  }
  candidates.push_back(NormalizePath(inc));
  for (const std::string& cand : candidates) {
    auto it = by_path.find(cand);
    if (it != by_path.end()) return it->second;
  }
  return -1;
}

/// One analyzed include edge.
struct IncludeEdge {
  std::string inc;           ///< as written in the #include
  int line = 0;              ///< 1-based line of the #include
  int target = -1;           ///< index into the file set, or -1
  std::string target_layer;  ///< resolved or inferred; may be ""
};

/// Whole-set include analysis shared by the layering/cycle checks, the DOT
/// export and the runtime worklist.
struct IncludeGraph {
  std::vector<std::string> layer;          ///< per file; may be ""
  std::vector<int> rank;                   ///< per file; -1 if unknown
  std::vector<std::vector<IncludeEdge>> edges;  ///< per file
};

IncludeGraph BuildIncludeGraph(const std::vector<SourceFile>& files,
                               const std::vector<Preprocessed>& pres) {
  IncludeGraph g;
  g.layer.resize(files.size());
  g.rank.resize(files.size(), -1);
  g.edges.resize(files.size());
  std::map<std::string, int> by_path;
  for (size_t i = 0; i < files.size(); ++i) {
    by_path.emplace(NormalizePath(files[i].path), static_cast<int>(i));
  }
  // Two passes: layers first, then edges — an edge's target layer must be
  // readable even when the target file sorts after the includer.
  for (size_t i = 0; i < files.size(); ++i) {
    g.layer[i] = LayerOfPath(files[i].path);
    g.rank[i] = RankOf(g.layer[i]);
  }
  for (size_t i = 0; i < files.size(); ++i) {
    for (IncludeRef& ref :
         ExtractIncludes(files[i].content, pres[i].code)) {
      IncludeEdge e;
      e.inc = ref.inc;
      e.line = ref.line;
      e.target = ResolveInclude(files[i].path, ref.inc, by_path);
      e.target_layer = e.target >= 0 ? g.layer[e.target]
                                     : LayerOfInclude(ref.inc);
      g.edges[i].push_back(std::move(e));
    }
  }
  return g;
}

/// Layering findings: files outside the declared layer map, and includes
/// that climb the layer order.
void RunLayeringChecks(const std::vector<SourceFile>& files,
                       const IncludeGraph& g,
                       std::map<std::string, std::vector<Finding>>* extra) {
  for (size_t i = 0; i < files.size(); ++i) {
    const std::string& path = files[i].path;
    if (!g.layer[i].empty() && g.rank[i] < 0) {
      (*extra)[path].push_back(
          {kLayering, path, 1,
           "directory '" + g.layer[i] +
               "' is not in the declared layer order; add it to kLayerRanks "
               "(tools/evc_lint/lint.cc) at the rank its dependencies "
               "justify"});
      continue;
    }
    if (g.rank[i] < 0) continue;  // outside the layer map entirely
    for (const IncludeEdge& e : g.edges[i]) {
      int target_rank = RankOf(e.target_layer);
      if (target_rank < 0) continue;
      if (target_rank > g.rank[i]) {
        (*extra)[path].push_back(
            {kLayering, path, e.line,
             "include of '" + e.inc + "' climbs the layer order: '" +
                 g.layer[i] + "' (rank " + std::to_string(g.rank[i]) +
                 ") may not depend on '" + e.target_layer + "' (rank " +
                 std::to_string(target_rank) +
                 "); invert the dependency or move the shared piece to a "
                 "lower layer"});
      }
    }
  }
}

/// include-cycle findings: cycles in the file-level include graph, plus
/// cycles between same-rank layers. Each distinct cycle is reported once,
/// anchored at its lexicographically-smallest member.
void RunCycleChecks(const std::vector<SourceFile>& files,
                    const IncludeGraph& g,
                    std::map<std::string, std::vector<Finding>>* extra) {
  size_t n = files.size();

  // --- file-level cycles ---
  std::vector<int> color(n, 0);  // 0 white, 1 on stack, 2 done
  std::vector<int> stack;
  std::set<std::string> seen_cycles;
  auto edge_line = [&](int from, int to) {
    for (const IncludeEdge& e : g.edges[from]) {
      if (e.target == to) return e.line;
    }
    return 1;
  };
  std::function<void(int)> dfs = [&](int u) {
    color[u] = 1;
    stack.push_back(u);
    for (const IncludeEdge& e : g.edges[u]) {
      int v = e.target;
      if (v < 0) continue;
      if (color[v] == 0) {
        dfs(v);
      } else if (color[v] == 1) {
        // Found a cycle: the stack suffix from v to u.
        size_t start = 0;
        for (size_t k = 0; k < stack.size(); ++k) {
          if (stack[k] == v) {
            start = k;
            break;
          }
        }
        std::vector<int> cycle(stack.begin() + start, stack.end());
        // Rotate so the smallest path leads, for stable dedup + reporting.
        size_t min_at = 0;
        for (size_t k = 1; k < cycle.size(); ++k) {
          if (files[cycle[k]].path < files[cycle[min_at]].path) min_at = k;
        }
        std::rotate(cycle.begin(), cycle.begin() + min_at, cycle.end());
        std::string chain;
        for (int idx : cycle) chain += files[idx].path + " -> ";
        chain += files[cycle[0]].path;
        if (seen_cycles.insert(chain).second) {
          const std::string& path = files[cycle[0]].path;
          int next = cycle.size() > 1 ? cycle[1] : cycle[0];
          (*extra)[path].push_back(
              {kIncludeCycle, path, edge_line(cycle[0], next),
               "include cycle: " + chain +
                   " (header guards only hide it; hoist the shared "
                   "declarations into a lower layer)"});
        }
      }
    }
    stack.pop_back();
    color[u] = 2;
  };
  for (size_t i = 0; i < n; ++i) {
    if (color[i] == 0) dfs(static_cast<int>(i));
  }

  // --- same-rank layer cycles ---
  // layer -> layer -> representative (file path, line)
  std::map<std::string, std::map<std::string, std::pair<std::string, int>>>
      ladj;
  for (size_t i = 0; i < n; ++i) {
    if (g.rank[i] < 0) continue;
    for (const IncludeEdge& e : g.edges[i]) {
      if (e.target_layer.empty() || e.target_layer == g.layer[i]) continue;
      if (RankOf(e.target_layer) != g.rank[i]) continue;
      auto& slot = ladj[g.layer[i]][e.target_layer];
      if (slot.first.empty()) slot = {files[i].path, e.line};
    }
  }
  std::map<std::string, int> lcolor;
  std::vector<std::string> lstack;
  std::set<std::string> seen_lcycles;
  std::function<void(const std::string&)> ldfs = [&](const std::string& u) {
    lcolor[u] = 1;
    lstack.push_back(u);
    for (const auto& [v, rep] : ladj[u]) {
      if (lcolor[v] == 0) {
        ldfs(v);
      } else if (lcolor[v] == 1) {
        size_t start = 0;
        for (size_t k = 0; k < lstack.size(); ++k) {
          if (lstack[k] == v) {
            start = k;
            break;
          }
        }
        std::vector<std::string> cycle(lstack.begin() + start, lstack.end());
        size_t min_at = 0;
        for (size_t k = 1; k < cycle.size(); ++k) {
          if (cycle[k] < cycle[min_at]) min_at = k;
        }
        std::rotate(cycle.begin(), cycle.begin() + min_at, cycle.end());
        std::string chain;
        for (const std::string& l : cycle) chain += l + " -> ";
        chain += cycle[0];
        if (seen_lcycles.insert(chain).second) {
          const auto& rep = ladj[cycle[0]].begin()->second;
          (*extra)[rep.first].push_back(
              {kIncludeCycle, rep.first, rep.second,
               "cycle between same-rank layers: " + chain +
                   " (same-rank includes are legal only while acyclic; split "
                   "the layers across ranks or break the back edge)"});
        }
      }
    }
    lstack.pop_back();
    lcolor[u] = 2;
  };
  std::vector<std::string> layer_nodes;
  for (const auto& [u, _] : ladj) layer_nodes.push_back(u);
  for (const std::string& u : layer_nodes) {
    if (lcolor[u] == 0) ldfs(u);
  }
}

bool IsSuppressed(std::vector<Suppression>& sups, const Finding& f) {
  for (Suppression& sup : sups) {
    if (sup.checks.count(f.check) > 0 &&
        (f.line == sup.line || f.line == sup.line + 1)) {
      sup.used = true;
      return true;
    }
  }
  return false;
}

}  // namespace

const std::vector<std::string>& AllCheckNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      kWallClock,        kRawRandom,     kUnorderedIteration,
      kUnorderedSnapshot, kDiscardedStatus, kCheckMacro,
      kPointerTaint,     kThreadHostile, kLayering,
      kIncludeCycle};
  return *names;
}

std::string LayerOfPath(const std::string& path) {
  PathAnchor a = SplitAnchor(path);
  if (!a.ok) return "";
  if (a.anchor != "src") return a.anchor;
  if (a.rest.empty()) return "";
  if (a.rest.size() == 1) return "api";  // src/evc.h umbrella header
  const std::string& module = a.rest.front();
  if (module == "sim") return SimSubLayer(a.rest.back());
  return module;
}

std::vector<Finding> ScanFiles(const std::vector<SourceFile>& files,
                               const Options& options) {
  std::vector<Preprocessed> pres;
  pres.reserve(files.size());
  SymbolTable table;
  for (const SourceFile& file : files) {
    pres.push_back(Preprocess(file.path, file.content));
    CollectUnorderedNames(pres.back().code, &table);
    CollectStatusFns(pres.back().code, &table);
  }
  // Aliases can be declared in one file (a header) and used in another, so
  // alias-typed declarations are collected only once every file is parsed.
  for (const Preprocessed& pre : pres) {
    CollectAliasDeclaredNames(pre.code, &table);
  }

  auto enabled = [&](const char* check) {
    return options.only_checks.empty() || options.only_checks.count(check) > 0;
  };

  // Whole-set passes over the include graph; findings are attributed to the
  // includer file so its suppressions apply.
  std::map<std::string, std::vector<Finding>> graph_findings;
  if (enabled(kLayering) || enabled(kIncludeCycle)) {
    IncludeGraph graph = BuildIncludeGraph(files, pres);
    if (enabled(kLayering)) RunLayeringChecks(files, graph, &graph_findings);
    if (enabled(kIncludeCycle)) RunCycleChecks(files, graph, &graph_findings);
  }

  std::vector<Finding> all;
  for (size_t i = 0; i < files.size(); ++i) {
    const std::string& path = files[i].path;
    Preprocessed& pre = pres[i];
    std::vector<Finding> raw;
    RunLineChecks(path, pre, &raw);
    if (enabled(kUnorderedIteration)) {
      RunUnorderedIterationCheck(path, pre, table, &raw);
    }
    if (enabled(kUnorderedSnapshot)) {
      RunUnorderedSnapshotCheck(path, pre, table, &raw);
    }
    if (enabled(kDiscardedStatus)) {
      RunDiscardedStatusCheck(path, pre, table, &raw);
    }
    if (enabled(kThreadHostile)) {
      RunThreadHostileCheck(path, pre, &raw);
    }
    auto git = graph_findings.find(path);
    if (git != graph_findings.end()) {
      for (Finding& f : git->second) raw.push_back(std::move(f));
      git->second.clear();
    }
    for (Finding& f : raw) {
      if (!enabled(f.check.c_str())) continue;
      if (IsSuppressed(pre.suppressions, f)) continue;
      all.push_back(std::move(f));
    }
    for (Finding& f : pre.bad_suppressions) all.push_back(std::move(f));
  }
  std::sort(all.begin(), all.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.check < b.check;
  });
  return all;
}

std::vector<std::string> ListSourceFiles(const std::vector<std::string>& paths,
                                         std::vector<std::string>* errors) {
  namespace fs = std::filesystem;
  std::vector<std::string> out;
  // readdir order is filesystem-dependent; sorting each directory's entries
  // bytewise before recursing makes the walk (and so every downstream report)
  // byte-identical across machines.
  std::function<void(const fs::path&)> walk = [&](const fs::path& dir) {
    std::vector<fs::path> entries;
    std::error_code ec;
    for (auto it = fs::directory_iterator(dir, ec);
         !ec && it != fs::directory_iterator(); it.increment(ec)) {
      entries.push_back(it->path());
    }
    if (ec) {
      errors->push_back("cannot list " + dir.generic_string());
      return;
    }
    std::sort(entries.begin(), entries.end(),
              [](const fs::path& a, const fs::path& b) {
                return a.generic_string() < b.generic_string();
              });
    for (const fs::path& e : entries) {
      std::error_code ec2;
      if (fs::is_directory(e, ec2)) {
        walk(e);
      } else if (fs::is_regular_file(e, ec2)) {
        std::string ext = e.extension().string();
        if (ext == ".cc" || ext == ".h") out.push_back(e.generic_string());
      }
    }
  };
  for (const std::string& path : paths) {
    fs::path p(path);
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      walk(p);
    } else if (fs::is_regular_file(p, ec)) {
      out.push_back(p.generic_string());  // explicit files skip the ext filter
    } else {
      errors->push_back("no such file or directory: " + path);
    }
  }
  return out;
}

namespace {

bool Excluded(const std::string& path, const Options& options) {
  for (const std::string& sub : options.excludes) {
    if (!sub.empty() && path.find(sub) != std::string::npos) return true;
  }
  return false;
}

std::vector<SourceFile> LoadFiles(const std::vector<std::string>& paths,
                                  const Options& options,
                                  std::vector<std::string>* errors) {
  std::vector<SourceFile> files;
  for (const std::string& path : ListSourceFiles(paths, errors)) {
    if (Excluded(path, options)) continue;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      errors->push_back("cannot read " + path);
      continue;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    files.push_back({path, ss.str()});
  }
  return files;
}

/// Graphviz DOT render of the observed layer graph (see --layers=dot).
std::vector<std::string> RenderLayerDot(const std::vector<SourceFile>& files) {
  std::vector<Preprocessed> pres;
  pres.reserve(files.size());
  for (const SourceFile& f : files) pres.push_back(Preprocess(f.path, f.content));
  IncludeGraph g = BuildIncludeGraph(files, pres);

  std::set<std::string> layers;
  std::map<std::pair<std::string, std::string>, bool> edges;  // -> upward?
  for (size_t i = 0; i < files.size(); ++i) {
    if (g.rank[i] < 0) continue;
    layers.insert(g.layer[i]);
    for (const IncludeEdge& e : g.edges[i]) {
      int tr = RankOf(e.target_layer);
      if (tr < 0 || e.target_layer == g.layer[i]) continue;
      layers.insert(e.target_layer);
      edges[{g.layer[i], e.target_layer}] = tr > g.rank[i];
    }
  }

  std::vector<std::string> out;
  out.push_back("digraph evc_layers {");
  out.push_back("  rankdir=BT;  // arrows point at dependencies; low ranks sink");
  out.push_back("  node [shape=box, fontname=\"Helvetica\"];");
  std::map<int, std::vector<std::string>> by_rank;
  for (const std::string& l : layers) by_rank[RankOf(l)].push_back(l);
  for (const auto& [rank, names] : by_rank) {
    std::string line = "  { rank=same;";
    for (const std::string& l : names) line += " \"" + l + "\";";
    line += " }  // rank " + std::to_string(rank);
    out.push_back(line);
  }
  for (const auto& [pair, upward] : edges) {
    std::string line = "  \"" + pair.first + "\" -> \"" + pair.second + "\"";
    if (upward) line += " [color=red, penwidth=2, label=\"UPWARD\"]";
    line += ";";
    out.push_back(line);
  }
  out.push_back("}");
  return out;
}

/// Every direct sim:: reference inside store-layer code: the call sites the
/// Runtime port (ROADMAP item 2) must route through the runtime abstraction.
std::vector<std::string> RenderRuntimeWorklist(
    const std::vector<SourceFile>& files) {
  std::vector<std::string> out;
  static const std::regex kSimRef("\\bsim::([A-Za-z_]\\w*)");
  int refs = 0;
  int touched_files = 0;
  for (const SourceFile& f : files) {
    if (StoreLayers().count(LayerOfPath(f.path)) == 0) continue;
    Preprocessed pre = Preprocess(f.path, f.content);
    std::set<std::pair<int, std::string>> sites;
    for (std::sregex_iterator it(pre.code.begin(), pre.code.end(), kSimRef),
         end;
         it != end; ++it) {
      sites.emplace(LineAt(pre, static_cast<size_t>(it->position())),
                    (*it)[1].str());
    }
    if (sites.empty()) continue;
    ++touched_files;
    for (const auto& [line, sym] : sites) {
      out.push_back(f.path + ":" + std::to_string(line) + ": sim::" + sym);
      ++refs;
    }
  }
  out.push_back("runtime-worklist: " + std::to_string(refs) +
                " sim:: reference(s) across " + std::to_string(touched_files) +
                " store-layer file(s) to route through the Runtime "
                "abstraction (ROADMAP item 2)");
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::vector<Finding> ScanPaths(const std::vector<std::string>& paths,
                               const Options& options,
                               std::vector<std::string>* errors) {
  return ScanFiles(LoadFiles(paths, options, errors), options);
}

std::string FormatFinding(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         finding.check + "] " + finding.message;
}

std::string FindingsToJson(const std::vector<Finding>& findings) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << (i == 0 ? "" : ",") << "\n  {\"path\": \"" << JsonEscape(f.file)
       << "\", \"line\": " << f.line << ", \"check\": \""
       << JsonEscape(f.check) << "\", \"message\": \""
       << JsonEscape(f.message) << "\"}";
  }
  os << (findings.empty() ? "]" : "\n]");
  return os.str();
}

int RunCommandLine(const std::vector<std::string>& args,
                   std::vector<std::string>* out) {
  Options options;
  bool werror = false;
  bool json = false;
  bool layers_dot = false;
  bool runtime_worklist = false;
  std::vector<std::string> paths;
  for (const std::string& arg : args) {
    if (arg == "--werror") {
      werror = true;
    } else if (arg == "--list-checks") {
      for (const std::string& name : AllCheckNames()) out->push_back(name);
      return 0;
    } else if (arg.rfind("--check=", 0) == 0) {
      std::stringstream ss(arg.substr(8));
      std::string name;
      const auto& known = AllCheckNames();
      while (std::getline(ss, name, ',')) {
        name = Trim(name);
        if (name.empty()) continue;
        if (std::find(known.begin(), known.end(), name) == known.end()) {
          out->push_back("evc_lint: unknown check '" + name + "'");
          return 2;
        }
        options.only_checks.insert(name);
      }
    } else if (arg.rfind("--exclude=", 0) == 0) {
      std::stringstream ss(arg.substr(10));
      std::string sub;
      while (std::getline(ss, sub, ',')) {
        sub = Trim(sub);
        if (!sub.empty()) options.excludes.push_back(sub);
      }
    } else if (arg.rfind("--format=", 0) == 0) {
      std::string fmt = arg.substr(9);
      if (fmt == "json") {
        json = true;
      } else if (fmt != "text") {
        out->push_back("evc_lint: unknown format '" + fmt +
                       "' (expected text or json)");
        return 2;
      }
    } else if (arg.rfind("--layers=", 0) == 0) {
      if (arg.substr(9) != "dot") {
        out->push_back("evc_lint: unknown layers format '" + arg.substr(9) +
                       "' (expected dot)");
        return 2;
      }
      layers_dot = true;
    } else if (arg == "--runtime-worklist") {
      runtime_worklist = true;
    } else if (arg == "--help" || arg == "-h") {
      out->push_back(
          "usage: evc_lint [--werror] [--check=name,...] [--exclude=substr,"
          "...] [--format=text|json] [--layers=dot] [--runtime-worklist] "
          "[--list-checks] [paths...]");
      out->push_back(
          "scans .cc/.h files (default paths: src bench tools) for "
          "determinism, layering, thread-readiness and error-discipline "
          "violations");
      out->push_back(
          "  --layers=dot         print the observed layer graph as "
          "Graphviz DOT and exit");
      out->push_back(
          "  --runtime-worklist   list sim:: references in store-layer code "
          "(the Runtime-port migration worklist) and exit");
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      out->push_back("evc_lint: unknown flag '" + arg + "'");
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths = {"src", "bench", "tools"};

  std::vector<std::string> errors;
  std::vector<SourceFile> files = LoadFiles(paths, options, &errors);
  for (const std::string& err : errors) out->push_back("evc_lint: " + err);
  if (!errors.empty()) return 2;

  if (layers_dot) {
    for (std::string& line : RenderLayerDot(files)) {
      out->push_back(std::move(line));
    }
    return 0;
  }
  if (runtime_worklist) {
    for (std::string& line : RenderRuntimeWorklist(files)) {
      out->push_back(std::move(line));
    }
    return 0;
  }

  std::vector<Finding> findings = ScanFiles(files, options);
  if (json) {
    out->push_back(FindingsToJson(findings));
    return findings.empty() ? 0 : (werror ? 1 : 0);
  }
  for (const Finding& f : findings) out->push_back(FormatFinding(f));
  if (findings.empty()) {
    out->push_back("evc_lint: clean");
    return 0;
  }
  out->push_back("evc_lint: " + std::to_string(findings.size()) +
                 " finding(s)");
  return werror ? 1 : 0;
}

}  // namespace lint
}  // namespace evc
