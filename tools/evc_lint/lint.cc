#include "evc_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

namespace evc {
namespace lint {

namespace {

constexpr const char* kWallClock = "wall-clock";
constexpr const char* kRawRandom = "raw-random";
constexpr const char* kUnorderedIteration = "unordered-iteration";
constexpr const char* kDiscardedStatus = "discarded-status";
constexpr const char* kCheckMacro = "check-macro";
constexpr const char* kBadSuppression = "bad-suppression";

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

/// A suppression directive parsed from a comment.
struct Suppression {
  int line = 0;  ///< 1-based line the comment ends on; covers line and line+1.
  std::set<std::string> checks;
  bool used = false;
};

/// Per-file result of comment/string stripping.
struct Preprocessed {
  /// Source text with comments, string literals and char literals replaced by
  /// spaces (newlines preserved), so offsets and line numbers still map.
  std::string code;
  /// 1-based line number for each byte offset boundary: line_of[i] is the
  /// line containing code[i].
  std::vector<int> line_of;
  std::vector<Suppression> suppressions;
  std::vector<Finding> bad_suppressions;  ///< malformed directives
};

/// Parses an evc-lint directive out of one comment's text. Returns true if
/// the comment contains a directive at all (well-formed or not).
bool ParseDirective(const std::string& comment_text, int end_line,
                    const std::string& path, Preprocessed* out) {
  size_t pos = comment_text.find("evc-lint:");
  if (pos == std::string::npos) return false;
  std::string rest = Trim(comment_text.substr(pos + 9));

  auto bad = [&](const std::string& why) {
    out->bad_suppressions.push_back(
        {kBadSuppression, path, end_line, "malformed evc-lint directive: " + why});
  };

  if (rest.rfind("allow(", 0) != 0) {
    bad("expected 'allow(<check,...>) reason=...'");
    return true;
  }
  size_t close = rest.find(')');
  if (close == std::string::npos) {
    bad("missing ')' after allow(");
    return true;
  }
  std::string names = rest.substr(6, close - 6);
  std::string tail = Trim(rest.substr(close + 1));

  Suppression sup;
  sup.line = end_line;
  std::stringstream ss(names);
  std::string name;
  const auto& known = AllCheckNames();
  while (std::getline(ss, name, ',')) {
    name = Trim(name);
    if (name.empty()) continue;
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      bad("unknown check '" + name + "'");
      return true;
    }
    sup.checks.insert(name);
  }
  if (sup.checks.empty()) {
    bad("allow() names no checks");
    return true;
  }
  if (tail.rfind("reason=", 0) != 0 || Trim(tail.substr(7)).empty()) {
    bad("suppression requires a non-empty 'reason=...'");
    return true;
  }
  out->suppressions.push_back(std::move(sup));
  return true;
}

/// Strips comments / string literals / char literals (including raw strings),
/// collecting evc-lint directives from the comments as it goes.
Preprocessed Preprocess(const std::string& path, const std::string& text) {
  Preprocessed out;
  out.code.reserve(text.size());
  out.line_of.reserve(text.size());

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  State state = State::kCode;
  int line = 1;
  std::string comment_text;  // accumulates the current comment's contents
  std::string raw_delim;     // delimiter of the current raw string

  auto emit = [&](char c) {
    out.code.push_back(c);
    out.line_of.push_back(line);
  };
  auto blank = [&](char c) { emit(c == '\n' ? '\n' : ' '); };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    char next = (i + 1 < text.size()) ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment_text.clear();
          blank(c);
          blank(next);
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment_text.clear();
          blank(c);
          blank(next);
          ++i;
        } else if (c == '"') {
          // Raw string? Look back for R / u8R / LR / uR / UR prefix.
          bool raw = i > 0 && text[i - 1] == 'R' &&
                     (i < 2 || !IsIdentChar(text[i - 2]) ||
                      (i >= 2 && (text[i - 2] == 'u' || text[i - 2] == 'U' ||
                                  text[i - 2] == 'L' || text[i - 2] == '8')));
          if (raw) {
            size_t paren = text.find('(', i + 1);
            if (paren != std::string::npos) {
              raw_delim = ")" + text.substr(i + 1, paren - i - 1) + "\"";
              state = State::kRaw;
              blank(c);
              break;
            }
          }
          state = State::kString;
          blank(c);
        } else if (c == '\'') {
          // C++14 digit separator (1'000'000) stays in code; anything else
          // starts a char literal.
          bool digit_sep =
              i > 0 && std::isdigit(static_cast<unsigned char>(text[i - 1])) &&
              std::isxdigit(static_cast<unsigned char>(next));
          if (!digit_sep) state = State::kChar;
          blank(c);
        } else {
          emit(c);
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          ParseDirective(comment_text, line, path, &out);
          state = State::kCode;
          blank(c);
        } else {
          comment_text.push_back(c);
          blank(c);
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          ParseDirective(comment_text, line, path, &out);
          state = State::kCode;
          blank(c);
          blank(next);
          ++i;
        } else {
          comment_text.push_back(c);
          blank(c);
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          blank(c);
          blank(next);
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          blank(c);
        } else {
          blank(c);
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          blank(c);
          blank(next);
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          blank(c);
        } else {
          blank(c);
        }
        break;
      case State::kRaw:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t k = 0; k < raw_delim.size(); ++k) blank(text[i + k]);
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else {
          blank(c);
        }
        break;
    }
    if (c == '\n') ++line;
  }
  if (state == State::kLineComment) ParseDirective(comment_text, line, path, &out);
  return out;
}

/// Walks forward from the '<' at `pos`, returning the offset just past the
/// matching '>', or npos if unbalanced.
size_t BalanceAngles(const std::string& s, size_t pos) {
  int depth = 0;
  for (size_t i = pos; i < s.size(); ++i) {
    if (s[i] == '<') ++depth;
    else if (s[i] == '>') {
      if (--depth == 0) return i + 1;
    } else if (s[i] == ';' || s[i] == '{') {
      return std::string::npos;  // gave up: not a template argument list
    }
  }
  return std::string::npos;
}

/// Walks forward from the '(' at `pos`, returning the offset just past the
/// matching ')', or npos.
size_t BalanceParens(const std::string& s, size_t pos) {
  int depth = 0;
  for (size_t i = pos; i < s.size(); ++i) {
    if (s[i] == '(') ++depth;
    else if (s[i] == ')') {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

size_t SkipSpaces(const std::string& s, size_t pos) {
  while (pos < s.size() &&
         std::isspace(static_cast<unsigned char>(s[pos]))) {
    ++pos;
  }
  return pos;
}

/// Identifiers declared (variables/members) or returned (getters) with an
/// unordered associative container type, plus function names returning
/// Status/Result — collected across the whole file set.
struct SymbolTable {
  std::set<std::string> unordered_names;
  std::set<std::string> unordered_aliases;  ///< using X = std::unordered_...
  std::set<std::string> status_fns;
};

void CollectUnorderedNames(const std::string& code, SymbolTable* table) {
  static const char* kTypes[] = {"unordered_map<", "unordered_set<",
                                 "unordered_multimap<", "unordered_multiset<"};
  for (const char* type : kTypes) {
    size_t type_len = std::string(type).size();
    for (size_t pos = code.find(type); pos != std::string::npos;
         pos = code.find(type, pos + 1)) {
      // Require a non-identifier char before (avoids my_unordered_map<).
      if (pos > 0 && IsIdentChar(code[pos - 1]) && code[pos - 1] != ':') {
        continue;
      }
      size_t after = BalanceAngles(code, pos + type_len - 1);
      if (after == std::string::npos) continue;
      size_t p = SkipSpaces(code, after);
      while (p < code.size() && (code[p] == '&' || code[p] == '*')) {
        p = SkipSpaces(code, p + 1);
      }
      size_t name_start = p;
      while (p < code.size() && IsIdentChar(code[p])) ++p;
      if (p == name_start || !IsIdentStart(code[name_start])) continue;
      std::string name = code.substr(name_start, p - name_start);
      size_t q = SkipSpaces(code, p);
      // Variable/member declaration, getter declaration, or using-alias: all
      // mean "iterating <name> iterates a hash-ordered container".
      if (q < code.size() && (code[q] == ';' || code[q] == '{' ||
                              code[q] == '=' || code[q] == ',' ||
                              code[q] == ')' || code[q] == '(')) {
        table->unordered_names.insert(std::move(name));
      }
    }
  }
  // using Alias = std::unordered_map<...>;
  static const std::regex kAlias(
      "using\\s+([A-Za-z_]\\w*)\\s*=\\s*(std::)?unordered_(map|set|multimap|"
      "multiset)\\s*<");
  for (std::sregex_iterator it(code.begin(), code.end(), kAlias), end;
       it != end; ++it) {
    table->unordered_aliases.insert((*it)[1].str());
  }
}

/// Second collection pass (needs aliases from every file first): variables,
/// parameters and getters declared with an unordered alias type.
void CollectAliasDeclaredNames(const std::string& code, SymbolTable* table) {
  for (const std::string& alias : table->unordered_aliases) {
    for (size_t pos = code.find(alias); pos != std::string::npos;
         pos = code.find(alias, pos + 1)) {
      if (pos > 0 && (IsIdentChar(code[pos - 1]) || code[pos - 1] == ':')) {
        continue;
      }
      size_t after = pos + alias.size();
      if (after < code.size() && IsIdentChar(code[after])) continue;
      size_t p = SkipSpaces(code, after);
      while (p < code.size() && (code[p] == '&' || code[p] == '*')) {
        p = SkipSpaces(code, p + 1);
      }
      size_t name_start = p;
      while (p < code.size() && IsIdentChar(code[p])) ++p;
      if (p == name_start || !IsIdentStart(code[name_start])) continue;
      size_t q = SkipSpaces(code, p);
      if (q < code.size() && (code[q] == ';' || code[q] == '{' ||
                              code[q] == '=' || code[q] == ',' ||
                              code[q] == ')' || code[q] == '(' ||
                              code[q] == '[')) {
        table->unordered_names.insert(code.substr(name_start, p - name_start));
      }
    }
  }
}

void CollectStatusFns(const std::string& code, SymbolTable* table) {
  // Plain `Status Name(`-style declarations (with optional namespace
  // qualification of Status itself).
  static const std::regex kStatusFn(
      "(^|[^:\\w<,])(::)?(evc::)?Status\\s+([A-Za-z_]\\w*)\\s*\\(");
  for (std::sregex_iterator it(code.begin(), code.end(), kStatusFn), end;
       it != end; ++it) {
    table->status_fns.insert((*it)[4].str());
  }
  // `Result<...> Name(` declarations; angle brackets balanced manually.
  for (size_t pos = code.find("Result<"); pos != std::string::npos;
       pos = code.find("Result<", pos + 1)) {
    if (pos > 0 && IsIdentChar(code[pos - 1])) continue;
    size_t after = BalanceAngles(code, pos + 6);
    if (after == std::string::npos) continue;
    size_t p = SkipSpaces(code, after);
    size_t name_start = p;
    while (p < code.size() && IsIdentChar(code[p])) ++p;
    if (p == name_start || !IsIdentStart(code[name_start])) continue;
    size_t q = SkipSpaces(code, p);
    if (q < code.size() && code[q] == '(') {
      table->status_fns.insert(code.substr(name_start, p - name_start));
    }
  }
}

int LineAt(const Preprocessed& pre, size_t offset) {
  if (pre.line_of.empty()) return 1;
  if (offset >= pre.line_of.size()) return pre.line_of.back();
  return pre.line_of[offset];
}

/// Per-line regex checks: wall-clock, raw-random, check-macro.
void RunLineChecks(const std::string& path, const Preprocessed& pre,
                   std::vector<Finding>* findings) {
  struct Rule {
    const char* check;
    std::regex pattern;
    const char* message;
  };
  // NOTE: patterns run on comment/string-stripped text, so prose mentioning a
  // banned symbol never trips a rule.
  static const std::vector<Rule>* rules = new std::vector<Rule>{
      {kWallClock,
       std::regex("system_clock|steady_clock|high_resolution_clock"),
       "wall/monotonic clock use; sim code must take time from "
       "sim::Simulator::Now() (bit-identical replay)"},
      {kWallClock,
       std::regex("\\b(gettimeofday|clock_gettime|timespec_get|localtime|"
                  "gmtime|mktime|strftime)\\b"),
       "OS clock API; sim code must take time from sim::Simulator::Now()"},
      {kWallClock, std::regex("(std::time|(^|[^\\w.:>])time)\\s*\\("),
       "time() reads the wall clock; use sim::Simulator::Now()"},
      {kWallClock, std::regex("(^|[^\\w.:>])clock\\s*\\(\\s*\\)"),
       "clock() reads a process clock; use sim::Simulator::Now()"},
      {kRawRandom,
       std::regex("(std::rand\\s*\\(|\\bsrand\\s*\\(|(^|[^\\w.:>])rand\\s*"
                  "\\()"),
       "rand()/srand() is global nondeterministic state; draw from "
       "common/rng.h (evc::Rng)"},
      {kRawRandom, std::regex("\\brandom_device\\b"),
       "std::random_device is nondeterministic by design; seed an evc::Rng "
       "from the experiment seed instead"},
      {kRawRandom, std::regex("\\bdefault_random_engine\\b"),
       "std::default_random_engine is implementation-defined; use evc::Rng"},
      {kRawRandom,
       std::regex("\\bmt19937(_64)?\\s+[A-Za-z_]\\w*\\s*(;|\\(\\s*\\)|\\{\\s*"
                  "\\})"),
       "unseeded std::mt19937; all randomness must flow through common/rng.h "
       "with an explicit seed"},
      {kCheckMacro, std::regex("(^|[^\\w])assert\\s*\\("),
       "bare assert() vanishes under NDEBUG (release/fuzz builds); use "
       "EVC_CHECK"},
      {kCheckMacro, std::regex("#\\s*include\\s*[<\"](cassert|assert\\.h)[>\"]"),
       "<cassert> include; use EVC_CHECK from common/status.h"},
  };

  // The obs exporter shim is the one place allowed to touch the real clock
  // (it stamps export metadata, never sim-visible state).
  bool wall_clock_exempt = path.find("obs/export") != std::string::npos;

  std::istringstream stream(pre.code);
  std::string line_text;
  int line_no = 0;
  while (std::getline(stream, line_text)) {
    ++line_no;
    for (const Rule& rule : *rules) {
      if (wall_clock_exempt && std::string(rule.check) == kWallClock) continue;
      if (std::regex_search(line_text, rule.pattern)) {
        findings->push_back({rule.check, path, line_no, rule.message});
        break;  // one finding per line is enough signal
      }
    }
  }
}

/// Strips trailing balanced (...) / [...] groups then returns the trailing
/// identifier of a range-for's range expression ("net.peers()" -> "peers").
std::string TrailingIdentifier(std::string expr) {
  expr = Trim(expr);
  while (!expr.empty() && (expr.back() == ')' || expr.back() == ']')) {
    char close = expr.back();
    char open = close == ')' ? '(' : '[';
    int depth = 0;
    size_t i = expr.size();
    while (i > 0) {
      --i;
      if (expr[i] == close) ++depth;
      else if (expr[i] == open && --depth == 0) break;
    }
    if (depth != 0) return "";
    expr = Trim(expr.substr(0, i));
  }
  size_t end = expr.size();
  size_t begin = end;
  while (begin > 0 && IsIdentChar(expr[begin - 1])) --begin;
  return expr.substr(begin, end - begin);
}

void RunUnorderedIterationCheck(const std::string& path,
                                const Preprocessed& pre,
                                const SymbolTable& table,
                                std::vector<Finding>* findings) {
  const std::string& code = pre.code;
  for (size_t pos = code.find("for"); pos != std::string::npos;
       pos = code.find("for", pos + 1)) {
    if (pos > 0 && IsIdentChar(code[pos - 1])) continue;
    if (pos + 3 < code.size() && IsIdentChar(code[pos + 3])) continue;
    size_t paren = SkipSpaces(code, pos + 3);
    if (paren >= code.size() || code[paren] != '(') continue;
    size_t close = BalanceParens(code, paren);
    if (close == std::string::npos) continue;
    std::string head = code.substr(paren + 1, close - paren - 2);
    // Find a top-level ':' (range-for separator); skip '::'.
    int depth = 0;
    size_t colon = std::string::npos;
    for (size_t i = 0; i < head.size(); ++i) {
      char c = head[i];
      if (c == '(' || c == '[' || c == '<' || c == '{') ++depth;
      else if (c == ')' || c == ']' || c == '>' || c == '}') --depth;
      else if (c == ':' && depth <= 0) {
        if ((i + 1 < head.size() && head[i + 1] == ':') ||
            (i > 0 && head[i - 1] == ':')) {
          continue;
        }
        colon = i;
        break;
      } else if (c == '?') {
        break;  // conditional expression, not a range-for
      }
    }
    if (colon == std::string::npos) continue;
    std::string ident = TrailingIdentifier(head.substr(colon + 1));
    if (!ident.empty() && table.unordered_names.count(ident) > 0) {
      findings->push_back(
          {kUnorderedIteration, path, LineAt(pre, paren),
           "range-for over hash-ordered container '" + ident +
               "'; iteration order depends on hashing/addresses and breaks "
               "same-seed replay — use std::map, a sorted-key snapshot, or a "
               "justified allow()"});
    }
  }
}

void RunDiscardedStatusCheck(const std::string& path, const Preprocessed& pre,
                             const SymbolTable& table,
                             std::vector<Finding>* findings) {
  const std::string& code = pre.code;
  for (const std::string& fn : table.status_fns) {
    for (size_t pos = code.find(fn); pos != std::string::npos;
         pos = code.find(fn, pos + 1)) {
      if (pos > 0 && IsIdentChar(code[pos - 1])) continue;  // substring match
      size_t after_name = pos + fn.size();
      size_t paren = SkipSpaces(code, after_name);
      if (paren >= code.size() || code[paren] != '(') continue;
      // Walk back over the receiver chain: identifiers, '.', '->', '::'.
      size_t chain_start = pos;
      while (chain_start > 0) {
        char c = code[chain_start - 1];
        if (IsIdentChar(c) || c == '.' || c == ':') {
          --chain_start;
        } else if (c == '>' && chain_start >= 2 &&
                   code[chain_start - 2] == '-') {
          chain_start -= 2;
        } else {
          break;
        }
      }
      // The chain must begin a statement: preceded (ignoring whitespace) by
      // ';', '{', '}', or the start of the file. Anything else means the
      // value is consumed (assignment, return, argument, condition, decl).
      size_t before = chain_start;
      while (before > 0 &&
             std::isspace(static_cast<unsigned char>(code[before - 1]))) {
        --before;
      }
      if (before != 0 && code[before - 1] != ';' && code[before - 1] != '{' &&
          code[before - 1] != '}') {
        continue;
      }
      size_t call_end = BalanceParens(code, paren);
      if (call_end == std::string::npos) continue;
      size_t next = SkipSpaces(code, call_end);
      if (next < code.size() && code[next] == ';') {
        findings->push_back(
            {kDiscardedStatus, path, LineAt(pre, pos),
             "call to '" + fn +
                 "' discards its Status/Result; check it, propagate it "
                 "(EVC_RETURN_IF_ERROR), or EVC_CHECK_OK it"});
      }
    }
  }
}

bool IsSuppressed(std::vector<Suppression>& sups, const Finding& f) {
  for (Suppression& sup : sups) {
    if (sup.checks.count(f.check) > 0 &&
        (f.line == sup.line || f.line == sup.line + 1)) {
      sup.used = true;
      return true;
    }
  }
  return false;
}

}  // namespace

const std::vector<std::string>& AllCheckNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      kWallClock, kRawRandom, kUnorderedIteration, kDiscardedStatus,
      kCheckMacro};
  return *names;
}

std::vector<Finding> ScanFiles(const std::vector<SourceFile>& files,
                               const Options& options) {
  std::vector<Preprocessed> pres;
  pres.reserve(files.size());
  SymbolTable table;
  for (const SourceFile& file : files) {
    pres.push_back(Preprocess(file.path, file.content));
    CollectUnorderedNames(pres.back().code, &table);
    CollectStatusFns(pres.back().code, &table);
  }
  // Aliases can be declared in one file (a header) and used in another, so
  // alias-typed declarations are collected only once every file is parsed.
  for (const Preprocessed& pre : pres) {
    CollectAliasDeclaredNames(pre.code, &table);
  }

  auto enabled = [&](const char* check) {
    return options.only_checks.empty() || options.only_checks.count(check) > 0;
  };

  std::vector<Finding> all;
  for (size_t i = 0; i < files.size(); ++i) {
    const std::string& path = files[i].path;
    Preprocessed& pre = pres[i];
    std::vector<Finding> raw;
    RunLineChecks(path, pre, &raw);
    if (enabled(kUnorderedIteration)) {
      RunUnorderedIterationCheck(path, pre, table, &raw);
    }
    if (enabled(kDiscardedStatus)) {
      RunDiscardedStatusCheck(path, pre, table, &raw);
    }
    for (Finding& f : raw) {
      if (!enabled(f.check.c_str())) continue;
      if (IsSuppressed(pre.suppressions, f)) continue;
      all.push_back(std::move(f));
    }
    for (Finding& f : pre.bad_suppressions) all.push_back(std::move(f));
  }
  std::sort(all.begin(), all.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.check < b.check;
  });
  return all;
}

std::vector<Finding> ScanPaths(const std::vector<std::string>& paths,
                               const Options& options,
                               std::vector<std::string>* errors) {
  namespace fs = std::filesystem;
  std::vector<SourceFile> files;
  auto load = [&](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      errors->push_back("cannot read " + p.string());
      return;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    files.push_back({p.generic_string(), ss.str()});
  };
  for (const std::string& path : paths) {
    fs::path p(path);
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      std::vector<fs::path> found;
      for (auto it = fs::recursive_directory_iterator(p, ec);
           it != fs::recursive_directory_iterator(); ++it) {
        if (!it->is_regular_file()) continue;
        std::string ext = it->path().extension().string();
        if (ext == ".cc" || ext == ".h") found.push_back(it->path());
      }
      std::sort(found.begin(), found.end());
      for (const fs::path& f : found) load(f);
    } else if (fs::is_regular_file(p, ec)) {
      load(p);
    } else {
      errors->push_back("no such file or directory: " + path);
    }
  }
  return ScanFiles(files, options);
}

std::string FormatFinding(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         finding.check + "] " + finding.message;
}

int RunCommandLine(const std::vector<std::string>& args,
                   std::vector<std::string>* out) {
  Options options;
  bool werror = false;
  std::vector<std::string> paths;
  for (const std::string& arg : args) {
    if (arg == "--werror") {
      werror = true;
    } else if (arg == "--list-checks") {
      for (const std::string& name : AllCheckNames()) out->push_back(name);
      return 0;
    } else if (arg.rfind("--check=", 0) == 0) {
      std::stringstream ss(arg.substr(8));
      std::string name;
      const auto& known = AllCheckNames();
      while (std::getline(ss, name, ',')) {
        name = Trim(name);
        if (name.empty()) continue;
        if (std::find(known.begin(), known.end(), name) == known.end()) {
          out->push_back("evc_lint: unknown check '" + name + "'");
          return 2;
        }
        options.only_checks.insert(name);
      }
    } else if (arg == "--help" || arg == "-h") {
      out->push_back(
          "usage: evc_lint [--werror] [--check=name,...] [--list-checks] "
          "[paths...]");
      out->push_back(
          "scans .cc/.h files (default paths: src bench tools) for "
          "determinism and error-discipline violations");
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      out->push_back("evc_lint: unknown flag '" + arg + "'");
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths = {"src", "bench", "tools"};

  std::vector<std::string> errors;
  std::vector<Finding> findings = ScanPaths(paths, options, &errors);
  for (const std::string& err : errors) out->push_back("evc_lint: " + err);
  if (!errors.empty()) return 2;
  for (const Finding& f : findings) out->push_back(FormatFinding(f));
  if (findings.empty()) {
    out->push_back("evc_lint: clean");
    return 0;
  }
  out->push_back("evc_lint: " + std::to_string(findings.size()) +
                 " finding(s)");
  return werror ? 1 : 0;
}

}  // namespace lint
}  // namespace evc
