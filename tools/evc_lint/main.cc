// CLI wrapper for the evc-lint scanner. See lint.h for the rule catalog and
// the suppression syntax; run with --help for usage.

#include <cstdio>
#include <string>
#include <vector>

#include "evc_lint/lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::vector<std::string> out;
  int rc = evc::lint::RunCommandLine(args, &out);
  for (const std::string& line : out) {
    std::fprintf(rc == 2 ? stderr : stdout, "%s\n", line.c_str());
  }
  return rc;
}
