// evc_lint — a multi-pass determinism, layering & thread-readiness
// static-analysis suite.
//
// A self-contained token/regex-level scanner (no libclang) that enforces the
// project rules every replay/safety guarantee rests on. Three pass families:
//
// Per-line rules (comment/string-stripped text):
//
//   wall-clock           no wall clocks in sim code (system_clock,
//                        steady_clock, time(), gettimeofday, ...). Simulated
//                        time comes from sim::Simulator; a wall clock breaks
//                        bit-identical same-seed replay. The obs exporter
//                        shim (src/obs/export.*) is exempt by path.
//   raw-random           no std::rand / srand / std::random_device, and no
//                        unseeded std::mt19937. All randomness flows through
//                        common/rng.h so every draw is seed-derived.
//   check-macro          no bare assert(); use EVC_CHECK, which fires in
//                        release builds too (assert vanishes under NDEBUG,
//                        which is exactly when the fuzzer runs).
//
// Cross-file symbol passes (declarations in any file inform every file):
//
//   unordered-iteration  no range-for over std::unordered_map/set (or over
//                        getters/aliases/typedefs naming them). Hash-order
//                        iteration is address/seed dependent and diverges
//                        across runs.
//   unordered-snapshot   contents of an unordered container copied into a
//                        vector (iterator-pair constructor, assign(),
//                        insert()) and never passed through std::sort — the
//                        classic way hash-order nondeterminism is laundered
//                        past the iteration check.
//   discarded-status     no expression-statement calls to functions returning
//                        Status/Result (redundant belt to the [[nodiscard]]
//                        attribute on both types, for builds without -Werror).
//   pointer-taint        pointer values flowing into program state: "%p"
//                        format strings, pointer-to-integer casts
//                        (reinterpret_cast<uintptr_t> and C-style twins),
//                        and std::hash over pointer types. Addresses differ
//                        across runs (ASLR, allocator state); any of these
//                        silently keys exported state off them.
//
// Architecture passes (the include graph of the whole scan set):
//
//   layering             every `#include "..."` edge is checked against the
//                        declared layer DAG (see kLayerRanks in lint.cc):
//                          common
//                            -> clock / obs
//                            -> sim                      (simulator core)
//                            -> net / rpc                (sim/network*, rpc*)
//                            -> storage / crdt
//                            -> stores (replication, consensus, causal,
//                               cache, membership, resilience, session,
//                               txn, sla, stale, core)
//                            -> verify / workload
//                            -> api (src/evc.h)
//                            -> bench / tools / tests / examples
//                        An include that climbs this order (a lower layer
//                        reaching up) or names a directory missing from the
//                        map is a finding. Same-rank edges are legal but
//                        participate in cycle detection.
//   include-cycle        cycles in the file-level include graph, and cycles
//                        between same-rank layers — both are layering bugs
//                        that header guards merely hide.
//   thread-hostile       (src/ only) non-const namespace-scope globals,
//                        mutable `static` function-locals, and thread_local:
//                        state the deterministic single-threaded sim tolerates
//                        but that becomes a data race or a divergence source
//                        the day the same store code runs on the real
//                        threads+sockets Runtime (ROADMAP item 2). Each site
//                        needs a refactor into owned state or a reasoned
//                        allow().
//
// Suppression syntax (same line or the line directly above the finding):
//
//   // evc-lint: allow(unordered-iteration) reason=keys sorted before use
//
// A suppression without a `reason=` is itself reported (bad-suppression).
//
// The scanner strips comments, string and character literals before matching,
// so prose that merely mentions a banned symbol is never flagged. (The one
// exception: pointer-taint inspects string literals for "%p", since format
// strings are exactly where that bug lives.)
//
// Beyond findings, the CLI exposes two architecture reports:
//
//   --layers=dot         emit the observed layer graph as Graphviz DOT,
//                        ranks grouped, upward edges highlighted.
//   --runtime-worklist   list every `sim::` reference inside store-layer
//                        code — the exact call sites the Runtime port
//                        (ROADMAP item 2) must route through the runtime
//                        abstraction instead of the simulator.

#ifndef EVC_TOOLS_EVC_LINT_LINT_H_
#define EVC_TOOLS_EVC_LINT_LINT_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace evc {
namespace lint {

/// One rule violation (or a malformed suppression comment).
struct Finding {
  std::string check;    ///< Rule name, e.g. "wall-clock" or "bad-suppression".
  std::string file;     ///< Path as given to the scanner.
  int line = 0;         ///< 1-based line number.
  std::string message;  ///< Human-readable description.
};

/// Names of all real checks (excludes the synthetic "bad-suppression").
const std::vector<std::string>& AllCheckNames();

struct Options {
  /// If non-empty, only run these checks (bad-suppression always runs).
  std::set<std::string> only_checks;
  /// Paths containing any of these substrings are skipped by ScanPaths
  /// (e.g. "lint_fixtures", whose files are deliberately in violation).
  std::vector<std::string> excludes;
};

/// A source file already loaded into memory (path is used for reporting and
/// for path-based exemptions).
struct SourceFile {
  std::string path;
  std::string content;
};

/// Scans `files` as one unit: declarations collected from any file (e.g. an
/// unordered_map member in a header) inform checks in every other file, and
/// the include graph spans the whole set. Returns findings sorted by (file,
/// line, check). Suppressed findings are omitted; malformed suppressions are
/// reported as check "bad-suppression".
std::vector<Finding> ScanFiles(const std::vector<SourceFile>& files,
                               const Options& options = {});

/// Convenience: loads paths (files, or directories walked recursively for
/// .cc/.h files) and scans them. IO errors append to `*errors`.
std::vector<Finding> ScanPaths(const std::vector<std::string>& paths,
                               const Options& options,
                               std::vector<std::string>* errors);

/// Deterministic source-file discovery: each directory's entries are sorted
/// bytewise before recursing, so the returned order is byte-identical across
/// filesystems and platforms (readdir order is arbitrary). Files are
/// filtered to .cc/.h. Used by ScanPaths; exposed so the order itself can be
/// pinned by tests.
std::vector<std::string> ListSourceFiles(const std::vector<std::string>& paths,
                                         std::vector<std::string>* errors);

/// Maps a file path to its declared architecture layer ("common", "sim",
/// "net", "rpc", "replication", ..., "tests"), or "" when the path is
/// outside the layer map. See the layering rule table in lint.h's header
/// comment and kLayerRanks in lint.cc.
std::string LayerOfPath(const std::string& path);

/// Renders one finding as "file:line: [check] message".
std::string FormatFinding(const Finding& finding);

/// Renders findings as a machine-readable JSON array; each element is an
/// object {"path": ..., "line": ..., "check": ..., "message": ...}. Emitted
/// by the CLI under --format=json.
std::string FindingsToJson(const std::vector<Finding>& findings);

/// Full CLI entry point (used by main.cc and by the self-test to pin exit
/// codes). Returns 0 on a clean scan, or with findings when --werror is NOT
/// given; 1 when findings exist and --werror IS given; 2 on usage/IO errors.
/// Output lines append to `*out`.
int RunCommandLine(const std::vector<std::string>& args,
                   std::vector<std::string>* out);

}  // namespace lint
}  // namespace evc

#endif  // EVC_TOOLS_EVC_LINT_LINT_H_
