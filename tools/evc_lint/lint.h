// evc_lint — a determinism & error-discipline static-analysis pass.
//
// A self-contained token/regex-level scanner (no libclang) that enforces the
// project rules every replay/safety guarantee rests on:
//
//   wall-clock           no wall clocks in sim code (system_clock,
//                        steady_clock, time(), gettimeofday, ...). Simulated
//                        time comes from sim::Simulator; a wall clock breaks
//                        bit-identical same-seed replay. The obs exporter
//                        shim (src/obs/export.*) is exempt by path.
//   raw-random           no std::rand / srand / std::random_device, and no
//                        unseeded std::mt19937. All randomness flows through
//                        common/rng.h so every draw is seed-derived.
//   unordered-iteration  no range-for over std::unordered_map/set (or over
//                        getters returning them). Hash-order iteration is
//                        address/seed dependent and diverges across runs.
//   discarded-status     no expression-statement calls to functions returning
//                        Status/Result (redundant belt to the [[nodiscard]]
//                        attribute on both types, for builds without -Werror).
//   check-macro          no bare assert(); use EVC_CHECK, which fires in
//                        release builds too (assert vanishes under NDEBUG,
//                        which is exactly when the fuzzer runs).
//
// Suppression syntax (same line or the line directly above the finding):
//
//   // evc-lint: allow(unordered-iteration) reason=keys sorted before use
//
// A suppression without a `reason=` is itself reported (bad-suppression).
//
// The scanner strips comments, string and character literals before matching,
// so prose that merely mentions a banned symbol is never flagged.

#ifndef EVC_TOOLS_EVC_LINT_LINT_H_
#define EVC_TOOLS_EVC_LINT_LINT_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace evc {
namespace lint {

/// One rule violation (or a malformed suppression comment).
struct Finding {
  std::string check;    ///< Rule name, e.g. "wall-clock" or "bad-suppression".
  std::string file;     ///< Path as given to the scanner.
  int line = 0;         ///< 1-based line number.
  std::string message;  ///< Human-readable description.
};

/// Names of all real checks (excludes the synthetic "bad-suppression").
const std::vector<std::string>& AllCheckNames();

struct Options {
  /// If non-empty, only run these checks (bad-suppression always runs).
  std::set<std::string> only_checks;
};

/// A source file already loaded into memory (path is used for reporting and
/// for path-based exemptions).
struct SourceFile {
  std::string path;
  std::string content;
};

/// Scans `files` as one unit: declarations collected from any file (e.g. an
/// unordered_map member in a header) inform checks in every other file.
/// Returns findings sorted by (file, line, check). Suppressed findings are
/// omitted; malformed suppressions are reported as check "bad-suppression".
std::vector<Finding> ScanFiles(const std::vector<SourceFile>& files,
                               const Options& options = {});

/// Convenience: loads paths (files, or directories walked recursively for
/// .cc/.h files) and scans them. IO errors append to `*errors`.
std::vector<Finding> ScanPaths(const std::vector<std::string>& paths,
                               const Options& options,
                               std::vector<std::string>* errors);

/// Renders one finding as "file:line: [check] message".
std::string FormatFinding(const Finding& finding);

/// Full CLI entry point (used by main.cc and by the self-test to pin exit
/// codes). Returns 0 on a clean scan, or with findings when --werror is NOT
/// given; 1 when findings exist and --werror IS given; 2 on usage/IO errors.
/// Output lines append to `*out`.
int RunCommandLine(const std::vector<std::string>& args,
                   std::vector<std::string>* out);

}  // namespace lint
}  // namespace evc

#endif  // EVC_TOOLS_EVC_LINT_LINT_H_
