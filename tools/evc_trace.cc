// evc_trace — inspector for evc-trace-v1 span dumps.
//
// Usage:
//   evc_trace TRACE.json [--node=N] [--name=SUBSTR] [--outcome=STR]
//                        [--limit=N] [--tree] [--critical-path]
//
// Default output is a flat table of finished spans (oldest first) with
// durations, after applying the filters. --tree renders the parent/child
// hierarchy instead. --critical-path picks the longest root span and walks
// the chain of latest-ending children under it — the sequence of work that
// determined the end-to-end latency.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

using evc::obs::Json;

struct SpanRow {
  uint64_t id = 0;
  uint64_t parent = 0;
  uint32_t node = 0;
  int64_t start = 0;
  int64_t end = 0;
  std::string name;
  std::string outcome;
};

struct Options {
  std::string path;
  bool has_node = false;
  uint32_t node = 0;
  std::string name_substr;
  std::string outcome;
  size_t limit = 0;  // 0 = unlimited
  bool tree = false;
  bool critical_path = false;
};

void Usage() {
  std::fprintf(stderr,
               "usage: evc_trace TRACE.json [--node=N] [--name=SUBSTR]\n"
               "                 [--outcome=STR] [--limit=N] [--tree]\n"
               "                 [--critical-path]\n");
}

bool ParseArgs(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--node=", 0) == 0) {
      opt->has_node = true;
      opt->node = static_cast<uint32_t>(std::strtoul(arg.c_str() + 7, nullptr, 10));
    } else if (arg.rfind("--name=", 0) == 0) {
      opt->name_substr = arg.substr(7);
    } else if (arg.rfind("--outcome=", 0) == 0) {
      opt->outcome = arg.substr(10);
    } else if (arg.rfind("--limit=", 0) == 0) {
      opt->limit = static_cast<size_t>(std::strtoul(arg.c_str() + 8, nullptr, 10));
    } else if (arg == "--tree") {
      opt->tree = true;
    } else if (arg == "--critical-path") {
      opt->critical_path = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "evc_trace: unknown flag %s\n", arg.c_str());
      return false;
    } else if (opt->path.empty()) {
      opt->path = arg;
    } else {
      std::fprintf(stderr, "evc_trace: more than one input file\n");
      return false;
    }
  }
  return !opt->path.empty();
}

bool ReadWholeFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool Matches(const SpanRow& s, const Options& opt) {
  if (opt.has_node && s.node != opt.node) return false;
  if (!opt.name_substr.empty() &&
      s.name.find(opt.name_substr) == std::string::npos) {
    return false;
  }
  if (!opt.outcome.empty() && s.outcome != opt.outcome) return false;
  return true;
}

void PrintRow(const SpanRow& s, int depth) {
  std::printf("%*s%-8llu %-8llu %-5u %-11lld %-11lld %-9lld %-10s %s\n",
              depth * 2, "", static_cast<unsigned long long>(s.id),
              static_cast<unsigned long long>(s.parent), s.node,
              static_cast<long long>(s.start), static_cast<long long>(s.end),
              static_cast<long long>(s.end - s.start), s.outcome.c_str(),
              s.name.c_str());
}

void PrintHeader() {
  std::printf("%-8s %-8s %-5s %-11s %-11s %-9s %-10s %s\n", "id", "parent",
              "node", "start_us", "end_us", "dur_us", "outcome", "name");
}

void PrintTree(const SpanRow& s,
               const std::map<uint64_t, std::vector<const SpanRow*>>& children,
               int depth, size_t* printed, size_t limit) {
  if (limit != 0 && *printed >= limit) return;
  PrintRow(s, depth);
  ++*printed;
  const auto it = children.find(s.id);
  if (it == children.end()) return;
  for (const SpanRow* child : it->second) {
    PrintTree(*child, children, depth + 1, printed, limit);
  }
}

void PrintCriticalPath(
    const std::vector<SpanRow>& spans,
    const std::map<uint64_t, std::vector<const SpanRow*>>& children) {
  const SpanRow* root = nullptr;
  for (const SpanRow& s : spans) {
    if (s.parent != 0) continue;
    if (root == nullptr || s.end - s.start > root->end - root->start) {
      root = &s;
    }
  }
  if (root == nullptr) {
    std::printf("no root spans (every span has a live parent)\n");
    return;
  }
  std::printf("critical path under longest root span (dur %lld us):\n",
              static_cast<long long>(root->end - root->start));
  PrintHeader();
  int depth = 0;
  for (const SpanRow* at = root; at != nullptr; ++depth) {
    PrintRow(*at, depth);
    const SpanRow* next = nullptr;
    const auto it = children.find(at->id);
    if (it != children.end()) {
      for (const SpanRow* child : it->second) {
        if (next == nullptr || child->end > next->end) next = child;
      }
    }
    at = next;
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!ParseArgs(argc, argv, &opt)) {
    Usage();
    return 2;
  }
  std::string text;
  if (!ReadWholeFile(opt.path, &text)) {
    std::fprintf(stderr, "evc_trace: cannot read %s\n", opt.path.c_str());
    return 1;
  }
  auto parsed = Json::Parse(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "evc_trace: %s: %s\n", opt.path.c_str(),
                 parsed.status().ToString().c_str());
    return 1;
  }
  const Json& doc = *parsed;
  const Json* schema = doc.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->AsString() != "evc-trace-v1") {
    std::fprintf(stderr, "evc_trace: %s is not an evc-trace-v1 document\n",
                 opt.path.c_str());
    return 1;
  }
  const Json* spans_json = doc.Find("spans");
  if (spans_json == nullptr || !spans_json->is_array()) {
    std::fprintf(stderr, "evc_trace: %s has no spans array\n",
                 opt.path.c_str());
    return 1;
  }

  std::vector<SpanRow> spans;
  spans.reserve(spans_json->AsArray().size());
  for (const Json& j : spans_json->AsArray()) {
    SpanRow s;
    if (const Json* v = j.Find("id")) s.id = static_cast<uint64_t>(v->AsInt());
    if (const Json* v = j.Find("parent")) {
      s.parent = static_cast<uint64_t>(v->AsInt());
    }
    if (const Json* v = j.Find("node")) {
      s.node = static_cast<uint32_t>(v->AsInt());
    }
    if (const Json* v = j.Find("start")) s.start = v->AsInt();
    if (const Json* v = j.Find("end")) s.end = v->AsInt();
    if (const Json* v = j.Find("name")) s.name = v->AsString();
    if (const Json* v = j.Find("outcome")) s.outcome = v->AsString();
    spans.push_back(std::move(s));
  }

  std::map<uint64_t, std::vector<const SpanRow*>> children;
  std::map<uint64_t, bool> present;
  for (const SpanRow& s : spans) present[s.id] = true;
  for (const SpanRow& s : spans) {
    if (s.parent != 0 && present.count(s.parent) > 0) {
      children[s.parent].push_back(&s);
    }
  }

  const Json* dropped = doc.Find("dropped");
  std::printf("%s: %zu finished spans (%lld dropped by ring overflow)\n",
              opt.path.c_str(), spans.size(),
              dropped != nullptr ? static_cast<long long>(dropped->AsInt())
                                 : 0LL);

  if (opt.critical_path) {
    PrintCriticalPath(spans, children);
    return 0;
  }

  PrintHeader();
  size_t printed = 0;
  if (opt.tree) {
    // Roots: parent 0, or parent evicted from the ring.
    for (const SpanRow& s : spans) {
      if (s.parent != 0 && present.count(s.parent) > 0) continue;
      if (!Matches(s, opt)) continue;
      PrintTree(s, children, 0, &printed, opt.limit);
      if (opt.limit != 0 && printed >= opt.limit) break;
    }
  } else {
    for (const SpanRow& s : spans) {
      if (!Matches(s, opt)) continue;
      PrintRow(s, 0);
      if (opt.limit != 0 && ++printed >= opt.limit) break;
    }
  }
  return 0;
}
